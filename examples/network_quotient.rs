//! Network simplification and measurement (the introduction's applications
//! (c) and (d), refs [35]/[37]): collapse a network to its symmetry
//! quotient and score its structural heterogeneity.
//!
//! Run with `cargo run --release --example network_quotient`.

use dvicl::apps::quotient::{quotient, structure_entropy};
use dvicl::core::{build_autotree, DviclOptions};
use dvicl::data::social::{generate, SocialConfig};
use dvicl::graph::{named, Coloring};

fn main() {
    println!("{:<24} {:>8} {:>8} {:>10} {:>10} {:>9}", "graph", "n", "m", "quotient n", "quotient m", "entropy");
    let report = |name: &str, g: &dvicl::graph::Graph| {
        let tree = build_autotree(g, &Coloring::unit(g.n()), &DviclOptions::default());
        let q = quotient(g, &tree);
        let e = structure_entropy(g, &tree);
        println!(
            "{:<24} {:>8} {:>8} {:>10} {:>10} {:>9.4}",
            name,
            g.n(),
            g.m(),
            q.graph.n(),
            q.graph.m(),
            e
        );
    };

    // Fully symmetric → quotient collapses to almost nothing.
    report("petersen", &named::petersen());
    report("hypercube-Q5", &named::hypercube(5));
    report("balanced-tree-3^4", &named::rary_tree(3, 4));
    // Fully rigid → the quotient IS the graph.
    report("frucht", &named::frucht());
    // A social analog sits in between: the paper's refs [35, 37] observe
    // real networks are "richly symmetric" yet strongly heterogeneous —
    // entropy close to but below 1, quotient slightly smaller than G.
    let g = generate(&SocialConfig {
        core_n: 4000,
        twin_fans: 400,
        fan_size: 5,
        ..Default::default()
    });
    report("social-analog-4k", &g);
}
