//! Reproduces the paper's AutoTree figures:
//!
//! * Fig. 4 — the AutoTree of the Fig. 1(a) example graph: the hub is the
//!   axis, the triangle divides into three symmetric singletons, and the
//!   4-cycle survives as a non-singleton leaf labeled by the IR engine.
//! * Fig. 3 — the AutoTree of a three-winged example (singleton axis at
//!   the root, a clique axis one level down, symmetric leaf groups).
//! * Fig. 7/8 — structural-equivalence simplification: the twins {0,2} and
//!   {1,3} of Fig. 1(a) collapse, and the simplified graph's AutoTree.
//!
//! Legend: `·` singleton leaf, `▣` non-singleton leaf (IR-labeled),
//! `○` internal node; `γ=` shows each node's canonical labels.
//!
//! Run with `cargo run --release --example figure_autotrees`.

use dvicl::core::{build_autotree, simplify, DviclOptions};
use dvicl::graph::{named, Coloring};

fn main() {
    let opts = DviclOptions::default();

    println!("=== Fig. 4: AutoTree of the Fig. 1(a) graph ===");
    let g1 = named::fig1_example();
    let t1 = build_autotree(&g1, &Coloring::unit(g1.n()), &opts);
    print!("{}", t1.render());

    println!("\n=== Fig. 3: AutoTree of the three-winged example ===");
    let g3 = named::fig3_example();
    let t3 = build_autotree(&g3, &Coloring::unit(g3.n()), &opts);
    print!("{}", t3.render());

    println!("\n=== Fig. 7/8: structural-equivalence simplification ===");
    let s = simplify::dvicl_simplified(&g1, &Coloring::unit(g1.n()), &opts);
    println!("twin classes of Fig. 1(a): {:?}", s.twins.non_singleton);
    println!(
        "simplified graph G_s keeps representatives {:?} (multiplicities {:?})",
        s.reps, s.class_size
    );
    println!("AutoTree of (G_s, π_s):");
    print!("{}", s.tree.render());
    println!(
        "|Aut(G)| recovered through the simplification: {}",
        s.original_group_order()
    );
}
