//! k-symmetry anonymization (the paper's Section 1 application of \[34\]):
//! extend a graph so that every vertex has at least k−1 automorphic
//! counterparts — structural re-identification then cannot narrow a
//! target below k candidates.
//!
//! Run with `cargo run --release --example ksym_demo`.

use dvicl::core::{aut, build_autotree, ksym, DviclOptions};
use dvicl::graph::{named, Coloring};

fn main() {
    let g = named::fig1_example();
    let opts = DviclOptions::default();
    let tree = build_autotree(&g, &Coloring::unit(g.n()), &opts);
    let mut before = aut::orbits(&tree);
    println!(
        "original graph: n = {}, m = {}, orbits = {:?}",
        g.n(),
        g.m(),
        before.cells()
    );

    for k in [2usize, 3] {
        let (g2, stats) = ksym::k_symmetric_extension(&g, &tree, k);
        let t2 = build_autotree(&g2, &Coloring::unit(g2.n()), &opts);
        let mut orbits = aut::orbits(&t2);
        let min_orbit = orbits.cells().iter().map(|c| c.len()).min().unwrap();
        println!(
            "\nk = {k}: +{} vertices, +{} edges ({} root classes duplicated)",
            stats.added_vertices, stats.added_edges, stats.duplicated_classes
        );
        println!(
            "  extension: n = {}, m = {}, smallest orbit = {} (>= k: {})",
            g2.n(),
            g2.m(),
            min_orbit,
            min_orbit >= k
        );
    }
}
