//! Quickstart: canonical labeling, isomorphism testing, automorphism
//! groups and orbits with DviCL.
//!
//! Run with `cargo run --release --example quickstart`.

use dvicl::core::{aut, build_autotree, canonical_form, DviclOptions};
use dvicl::graph::{named, Coloring, Perm};

fn main() {
    // --- Isomorphism testing ------------------------------------------
    let g = named::petersen();
    let shuffled = g.permuted(&Perm::from_cycles(10, &[&[0, 4, 8], &[1, 9], &[2, 6]]).unwrap());
    println!("Petersen vs a relabeled copy:");
    println!(
        "  isomorphic: {}",
        canonical_form(&g) == canonical_form(&shuffled)
    );
    let prism = dvicl::graph::Graph::from_edges(
        6,
        &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3), (1, 4), (2, 5)],
    );
    let k33 = named::complete_bipartite(3, 3);
    println!("K3,3 vs the 3-prism (both 3-regular on 6 vertices):");
    println!(
        "  isomorphic: {}",
        canonical_form(&k33) == canonical_form(&prism)
    );

    // --- The AutoTree of the paper's running example ------------------
    let g = named::fig1_example();
    let tree = build_autotree(&g, &Coloring::unit(g.n()), &DviclOptions::default());
    let stats = tree.stats();
    println!("\nAutoTree of the paper's Fig. 1(a) graph:");
    println!(
        "  {} nodes, {} singleton leaves, {} non-singleton leaves, depth {}",
        stats.total_nodes, stats.singleton_leaves, stats.non_singleton_leaves, stats.depth
    );

    // --- Automorphism group and orbits --------------------------------
    println!("  |Aut(G)| = {}", aut::group_order(&tree));
    let mut orbits = aut::orbits(&tree);
    println!("  orbits: {:?}", orbits.cells());
    println!("  generators:");
    for gen in aut::generators(&tree) {
        println!("    {gen}");
    }
}
