//! Database indexing / deduplication (application (a) of the paper's
//! introduction): assign every graph in a collection a certificate so
//! that two graphs are isomorphic iff their certificates are equal, then
//! deduplicate a collection of randomly relabeled "molecules".
//!
//! Run with `cargo run --release --example chem_dedup`.

use dvicl::core::canonical_form;
use dvicl::graph::{named, CanonForm, Graph, Perm, V};
use std::collections::HashMap;

/// A tiny "molecular skeleton" library: distinct small graphs.
fn library() -> Vec<(&'static str, Graph)> {
    vec![
        ("benzene-ring", named::cycle(6)),
        ("cyclopentane-ring", named::cycle(5)),
        ("star-center", named::star(5)),
        ("prism", Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3), (1, 4), (2, 5)])),
        ("k33", named::complete_bipartite(3, 3)),
        ("cube", named::hypercube(3)),
        ("butane-chain", named::path(4)),
    ]
}

/// Deterministic shuffle of vertex labels.
fn shuffle(g: &Graph, salt: u64) -> Graph {
    let n = g.n();
    let mut image: Vec<V> = (0..n as V).collect();
    let mut state = salt.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        image.swap(i, j);
    }
    g.permuted(&Perm::from_image(image).expect("shuffle is a bijection"))
}

fn main() {
    // Build a collection with every library graph appearing under several
    // random relabelings.
    let mut collection: Vec<(String, Graph)> = Vec::new();
    for (name, g) in library() {
        for salt in 0..4u64 {
            collection.push((format!("{name}#{salt}"), shuffle(&g, salt + 1)));
        }
    }
    println!("collection: {} graphs", collection.len());

    // Index by certificate.
    let mut index: HashMap<CanonForm, Vec<String>> = HashMap::new();
    for (name, g) in &collection {
        index.entry(canonical_form(g)).or_default().push(name.clone());
    }
    println!("distinct certificates: {}", index.len());
    let mut groups: Vec<Vec<String>> = index.into_values().collect();
    groups.sort();
    for group in groups {
        println!("  {:?}", group);
    }
    assert_eq!(
        library().len(),
        collection
            .iter()
            .map(|(_, g)| canonical_form(g))
            .collect::<std::collections::HashSet<_>>()
            .len()
    );
    println!("deduplication recovered exactly the {} library skeletons", library().len());
}
