//! Database indexing / deduplication (application (a) of the paper's
//! introduction): assign every graph in a collection a certificate so
//! that two graphs are isomorphic iff their certificates are equal, then
//! deduplicate a collection of randomly relabeled "molecules" through
//! the canonical-fingerprint index.
//!
//! One [`dvicl::core::Session`] canonicalizes the whole collection
//! (arena pools and the `CombineCL` memo are reused across graphs — the
//! repeated fragments of a molecule library are exactly what the memo
//! feeds on), and a [`dvicl::index::FingerprintIndex`] groups the
//! certificates: one insert per graph, isomorphic graphs land in one
//! class, and the class member counts are the duplicate counts.
//!
//! Run with `cargo run --release --example chem_dedup` — add
//! `-- --threads 4` to canonicalize each graph with a parallel build
//! (certificates, classes, and counts are byte-identical at any width).

use dvicl::core::{DviclOptions, Session};
use dvicl::graph::{named, Graph, Perm, V};
use dvicl::index::FingerprintIndex;

/// A tiny "molecular skeleton" library: distinct small graphs.
fn library() -> Vec<(&'static str, Graph)> {
    vec![
        ("benzene-ring", named::cycle(6)),
        ("cyclopentane-ring", named::cycle(5)),
        ("star-center", named::star(5)),
        ("prism", Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3), (1, 4), (2, 5)])),
        ("k33", named::complete_bipartite(3, 3)),
        ("cube", named::hypercube(3)),
        ("butane-chain", named::path(4)),
    ]
}

/// Deterministic shuffle of vertex labels.
fn shuffle(g: &Graph, salt: u64) -> Graph {
    let n = g.n();
    let mut image: Vec<V> = (0..n as V).collect();
    let mut state = salt.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        image.swap(i, j);
    }
    g.permuted(&Perm::from_image(image).expect("shuffle is a bijection"))
}

/// Parses `--threads N` (default 1, `0` = all cores) from the example's
/// arguments.
fn threads_flag() -> usize {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--threads") {
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--threads requires a count (0 = all cores)");
                std::process::exit(2);
            }),
        None => 1,
    }
}

fn main() {
    let threads = threads_flag();
    // Build a collection with every library graph appearing under several
    // random relabelings.
    let mut collection: Vec<(String, Graph)> = Vec::new();
    for (name, g) in library() {
        for salt in 0..4u64 {
            collection.push((format!("{name}#{salt}"), shuffle(&g, salt + 1)));
        }
    }
    println!("collection: {} graphs", collection.len());

    // One session, one index: each graph costs one canonicalization and
    // one fingerprint probe, however large the collection grows.
    let mut session = Session::new(DviclOptions {
        threads,
        ..DviclOptions::default()
    });
    let mut index = FingerprintIndex::new();
    let mut names_by_class: Vec<Vec<String>> = Vec::new();
    for (name, g) in &collection {
        let (fp, form) = session.fingerprinted_form(g);
        let out = index.insert(fp, form, false).expect("insert");
        if out.fresh {
            names_by_class.push(Vec::new());
        }
        names_by_class[out.class].push(name.clone());
    }
    println!(
        "distinct certificates: {} (from {} canonicalizations)",
        index.len(),
        session.builds()
    );
    let mut groups = names_by_class.clone();
    groups.sort();
    for group in groups {
        println!("  {:?}", group);
    }

    // Every class's members really are isomorphic: a fresh lookup of any
    // member by fingerprint + stored-form confirmation finds its class.
    let (fp, form) = session.fingerprinted_form(&collection[0].1);
    assert_eq!(index.lookup(fp, &form), Some(0));
    assert_eq!(
        library().len(),
        index.len(),
        "deduplication must recover exactly the library skeletons"
    );
    assert_eq!(index.members_total(), collection.len() as u64);
    println!("deduplication recovered exactly the {} library skeletons", library().len());
}
