//! Symmetric subgraph matching in the style of the paper's Example 6.11
//! and the Table 6 experiment: find all subgraphs symmetric to a query,
//! and count the seed sets equivalent to an influence-maximization result.
//!
//! Run with `cargo run --release --example ssm_demo`.

use dvicl::apps::im::{select_seeds, IcConfig};
use dvicl::core::ssm::{count_images, enumerate_images, SsmIndex};
use dvicl::core::{build_autotree, DviclOptions};
use dvicl::data::social;
use dvicl::graph::{named, Coloring};

fn main() {
    // --- Example 6.11-style query on the three-winged graph -----------
    let g = named::fig3_example();
    let tree = build_autotree(&g, &Coloring::unit(g.n()), &DviclOptions::default());
    let index = SsmIndex::new(&tree);
    // Query: a pendant-clique path (3 - 2 - 4) crossing one wing into the
    // clique axis.
    let query = vec![3, 2, 4];
    let matches = enumerate_images(&tree, &index, &query, 1000);
    println!("SSM query {query:?} on the Fig. 3 example graph:");
    println!(
        "  {} symmetric subgraphs (complete: {}):",
        matches.matches.len(),
        !matches.truncated
    );
    for m in &matches.matches {
        println!("    {m:?}");
    }

    // --- Seed-set counting (the Table 6 experiment, one dataset) ------
    let g = social::generate(&social::SocialConfig {
        core_n: 2000,
        twin_fans: 150,
        fan_size: 5,
        ..Default::default()
    });
    println!("\nInfluence maximization on a social analog (n = {}):", g.n());
    let ic = IcConfig {
        prob: 0.05,
        rounds: 40,
        seed: 7,
    };
    let seeds = select_seeds(&g, 10, &ic);
    println!("  selected seeds: {seeds:?}");
    let tree = build_autotree(&g, &Coloring::unit(g.n()), &DviclOptions::default());
    let index = SsmIndex::new(&tree);
    let count = count_images(&tree, &index, &seeds);
    println!(
        "  seed sets with identical influence (by symmetry): {}",
        count.to_scientific()
    );
}
