//! Reproduces the paper's Fig. 1(b): the backtrack search tree built by
//! the individualization-refinement engine (bliss-like configuration,
//! first non-singleton target cell per \[18\]) for the example graph of
//! Fig. 1(a).
//!
//! Node identifiers are the traversal order, colorings are printed in the
//! paper's `[a,b|c]` notation, and each edge shows the individualized
//! vertex. Pruned subtrees do not appear (that is the point of the
//! figure: the tree has far fewer than 8! leaves).
//!
//! Run with `cargo run --release --example figure1_search_tree`.

use dvicl::canon::{canonical_form, Config};
use dvicl::graph::{named, Coloring};

fn main() {
    let g = named::fig1_example();
    let mut config = Config::bliss_like();
    config.record_tree = true;
    let result = canonical_form(&g, &Coloring::unit(8), &config);
    let tree = result.tree.expect("recording was requested");

    println!("Search tree T(G, π) for the Fig. 1(a) graph (bliss-like engine)");
    println!(
        "nodes: {}   leaves: {}   automorphism generators: {}",
        result.stats.nodes, result.stats.leaves, result.stats.generators_found
    );
    println!();
    print!("{}", tree.render());
    println!();
    println!("canonical labeling γ* = {}", result.labeling);
    println!("discovered generators:");
    for gen in &result.generators {
        println!("  {gen}");
    }
    let mut orbits = result.orbits;
    println!("orbits: {:?}", orbits.cells());
}
