//! Vendored offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small API surface it actually uses: `RngCore`, `SeedableRng`
//! (only `seed_from_u64`), the `Rng` extension trait with
//! `gen`/`gen_bool`/`gen_ratio`/`gen_range`, and `rngs::SmallRng`.
//! `SmallRng` here is a splitmix64 counter generator — deterministic for
//! a given seed, statistically solid, and not required to match the
//! upstream stream.

use std::ops::{Range, RangeInclusive};

/// Core random-number generation.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction; only the `seed_from_u64` entry point is vendored.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u128;
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi - lo) as u128 + 1;
                    lo + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*
    };
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// Extension trait with the sampling conveniences.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.gen::<f64>() < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    #[inline]
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % denominator as u64) < numerator as u64
    }

    /// Samples uniformly from `range`.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (splitmix64 sequence).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        #[inline]
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
