//! Vendored offline stand-in for the `rustc-hash` crate.
//!
//! The build environment has no network access and an empty cargo
//! registry, so the workspace vendors the tiny API surface it uses: the
//! Fx multiply-xor hasher and the `FxHashMap`/`FxHashSet` aliases. The
//! algorithm matches the upstream idea (rotate, xor, multiply by a
//! Fibonacci-like constant) — it is not required to be bit-identical,
//! only fast and well-distributed.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-xor hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let s: FxHashSet<u32> = [1, 2, 2, 3].into_iter().collect();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn hashing_is_deterministic_and_spreads() {
        use std::hash::Hash;
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            x.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(1), h(2));
        assert_ne!(h(1) & 0xffff, h(2) & 0xffff);
    }
}
