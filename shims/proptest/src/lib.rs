//! Vendored offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of proptest it uses: the `Strategy` trait with
//! `prop_map`/`prop_flat_map`, integer-range and tuple and
//! `collection::vec` strategies, `any::<T>()`, the `proptest!` macro,
//! and `prop_assert!`/`prop_assert_eq!`. Sampling is deterministic per
//! test (seeded from the test name) and there is no shrinking: a failing
//! case reports its inputs via the assertion message instead.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` (only `cases` is used).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// Builds a config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Deterministic splitmix64 generator used to drive strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from an arbitrary label (the test name), so
        /// each property gets its own fixed, reproducible sequence.
        pub fn deterministic(label: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: seed }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

use test_runner::TestRng;

/// A source of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u128;
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    lo + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*
    };
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}
impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a collection size.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Builds a `Vec` strategy of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `fn name()` that draws `config.cases` samples and runs the
/// body; `prop_assert*` failures abort the case with a message carrying
/// the offending values (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case_index in 0..config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!("property {} failed at case {}: {}",
                               stringify!($name), case_index, message);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not the
/// whole process) with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside `proptest!` with value-carrying diagnostics.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Wrapper(u64);

    impl crate::Arbitrary for Wrapper {
        fn arbitrary(rng: &mut crate::test_runner::TestRng) -> Self {
            Wrapper(rng.next_u64())
        }
    }

    proptest! {
        #[test]
        fn ranges_are_honoured(n in 3usize..10, m in 0u32..=4) {
            prop_assert!(n >= 3 && n < 10, "n={}", n);
            prop_assert!(m <= 4);
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u32..6, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for x in &v {
                prop_assert!(*x < 6);
            }
        }

        #[test]
        fn flat_map_and_tuples((n, k) in (1usize..8).prop_flat_map(|n| (Just(n), 0usize..n))) {
            prop_assert!(k < n);
        }

        #[test]
        fn early_return_ok_is_supported(n in 0u8..4) {
            if n == 0 {
                return Ok(());
            }
            prop_assert_ne!(n, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_form_parses(seed in any::<u64>()) {
            let w = Wrapper(seed);
            prop_assert_eq!(w.clone(), w);
        }
    }
}
