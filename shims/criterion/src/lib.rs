//! Vendored offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the benchmark-facing API it uses (`Criterion::benchmark_group`,
//! `bench_with_input`, `bench_function`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`). Instead of statistical
//! sampling, each benchmark body runs a single timed iteration and
//! prints the elapsed wall-clock time — enough for the bench targets to
//! compile, run, and give a coarse signal offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }
}

/// Timing harness handed to each benchmark body.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` once and records its wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        let out = f();
        self.elapsed = t0.elapsed();
        drop(black_box(out));
    }
}

/// Prevents the optimizer from deleting a benchmark result.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in runs one iteration.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in runs one iteration.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("{}/{}: {:?}", self.name, label, b.elapsed);
    }

    /// Benchmarks `f` with `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.name.clone();
        self.run(&label, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `name`.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&name.to_string(), &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmarks `f` directly on the driver.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function("single", f);
        group.finish();
        self
    }
}

/// Collects benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running each group function.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10).measurement_time(Duration::from_millis(1));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_machinery_runs() {
        benches();
    }
}
