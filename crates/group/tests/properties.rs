//! Property-based tests for the group machinery: BigUint arithmetic laws
//! against u128 reference, Schreier–Sims against brute-force enumeration,
//! and orbit closures.

use dvicl_graph::{Coloring, Graph, Perm, V};
use dvicl_group::{brute, BigUint, Orbits, StabChain};
use proptest::prelude::*;

proptest! {
    #[test]
    fn biguint_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let (ba, bb) = (BigUint::from_u64(a), BigUint::from_u64(b));
        prop_assert_eq!((&ba + &bb).to_decimal(), (a as u128 + b as u128).to_string());
        prop_assert_eq!((&ba * &bb).to_decimal(), (a as u128 * b as u128).to_string());
        prop_assert_eq!(ba.cmp(&bb), a.cmp(&b));
    }

    #[test]
    fn biguint_mul_is_commutative_and_associative(a in any::<u64>(), b in any::<u64>(), c in 0u64..1_000_000) {
        let (ba, bb, bc) = (BigUint::from_u64(a), BigUint::from_u64(b), BigUint::from_u64(c));
        prop_assert_eq!(&ba * &bb, &bb * &ba);
        prop_assert_eq!(&(&ba * &bb) * &bc, &ba * &(&bb * &bc));
        // Distributivity over addition.
        prop_assert_eq!(&(&ba + &bb) * &bc, &(&ba * &bc) + &(&bb * &bc));
    }

    #[test]
    fn biguint_decimal_digits(a in any::<u64>(), k in 1u64..8) {
        let mut x = BigUint::from_u64(a);
        for _ in 0..k {
            x.mul_u64_assign(1_000_000_007);
        }
        // to_scientific agrees with to_decimal's leading digits.
        let dec = x.to_decimal();
        let sci = x.to_scientific();
        if dec.len() > 7 {
            prop_assert!(sci.starts_with(&dec[0..1]));
            let suffix = format!("E{}", dec.len() - 1);
            let ok = sci.ends_with(&suffix);
            prop_assert!(ok, "sci {} lacks suffix {}", sci, suffix);
        } else {
            prop_assert_eq!(sci, dec);
        }
    }

    /// Schreier–Sims order and membership against exhaustive enumeration
    /// of the automorphism group of a random small graph.
    #[test]
    fn schreier_sims_matches_enumeration(n in 2usize..7, edges in proptest::collection::vec((0u32..7, 0u32..7), 0..12)) {
        let edges: Vec<(V, V)> = edges.into_iter().map(|(a, b)| (a % n as u32, b % n as u32)).collect();
        let g = Graph::from_edges(n, &edges);
        let autos = brute::automorphisms(&g, &Coloring::unit(n));
        let chain = StabChain::new(n, &autos);
        prop_assert_eq!(chain.order().to_u64(), Some(autos.len() as u64));
        // Every enumerated element is a member; a non-automorphism isn't.
        for a in &autos {
            prop_assert!(chain.contains(a));
        }
        for cand_seed in 0..3u64 {
            let mut image: Vec<V> = (0..n as V).collect();
            let mut state = cand_seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
            for i in (1..n).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                image.swap(i, (state >> 33) as usize % (i + 1));
            }
            let cand = Perm::from_image(image).unwrap();
            let is_auto = g.permuted(&cand) == g;
            prop_assert_eq!(chain.contains(&cand), is_auto);
        }
    }

    /// Orbit closure equals orbits of the enumerated group.
    #[test]
    fn orbit_closure_is_exact(n in 2usize..7, edges in proptest::collection::vec((0u32..7, 0u32..7), 0..12)) {
        let edges: Vec<(V, V)> = edges.into_iter().map(|(a, b)| (a % n as u32, b % n as u32)).collect();
        let g = Graph::from_edges(n, &edges);
        let autos = brute::automorphisms(&g, &Coloring::unit(n));
        // Closure from a (possibly partial) generating set: use every
        // third element — still generates a subgroup; orbits of the
        // closure of ALL elements equal the by-definition orbits.
        let mut from_all = Orbits::from_generators(n, &autos);
        let mut truth = Orbits::identity(n);
        for u in 0..n as V {
            for a in &autos {
                truth.union(u, a.apply(u));
            }
        }
        prop_assert_eq!(from_all.cells(), truth.cells());
    }
}

#[test]
fn factorial_cross_check() {
    // n! via BigUint equals |S_n| via Schreier–Sims on K_n's group.
    for n in 2..7usize {
        let g = dvicl_graph::named::complete(n);
        let autos = brute::automorphisms(&g, &Coloring::unit(n));
        let chain = StabChain::new(n, &autos);
        assert_eq!(chain.order(), BigUint::factorial(n as u64));
    }
}
