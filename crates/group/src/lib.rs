//! Permutation-group machinery for the DviCL reproduction.
//!
//! The paper's algorithms produce the automorphism group `Aut(G, π)` as a
//! *generating set*. This crate turns generating sets into answers:
//!
//! * [`Orbits`] — vertex orbits of the generated group (union-find closure),
//!   the basis of the paper's "orbit coloring" statistics (Table 1).
//! * [`StabChain`] — a Schreier–Sims base-and-strong-generating-set
//!   structure giving exact group order and membership testing.
//! * [`BigUint`] — minimal arbitrary-precision unsigned integers, because
//!   the paper reports symmetric-set counts up to `7.36E88` (Table 6),
//!   far beyond `u128`.
//! * [`brute`] — brute-force automorphism/canonical-form oracles for small
//!   graphs, used as test references throughout the workspace.

#![warn(missing_docs)]

mod biguint;
pub mod brute;
mod orbits;
mod schreier;

pub use biguint::BigUint;
pub use orbits::Orbits;
pub use schreier::StabChain;
