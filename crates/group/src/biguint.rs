//! Minimal arbitrary-precision unsigned integers.
//!
//! Only the operations the reproduction needs: addition, multiplication,
//! factorials/binomials, comparison, decimal and scientific formatting.
//! Implemented from scratch (no external bignum crate) per the
//! build-every-substrate rule; limbs are base-2³² little-endian.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign};

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian base-2³² limbs; no trailing zero limbs; empty = 0.
    limbs: Vec<u32>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// From a `u64`.
    pub fn from_u64(x: u64) -> Self {
        let mut limbs = vec![(x & 0xffff_ffff) as u32, (x >> 32) as u32];
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// The value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | (self.limbs[1] as u64) << 32),
            _ => None,
        }
    }

    /// The value as an `f64` (may lose precision or overflow to infinity).
    pub fn to_f64(&self) -> f64 {
        self.limbs
            .iter()
            .rev()
            .fold(0.0_f64, |acc, &l| acc * 4294967296.0 + l as f64)
    }

    /// `n!` as a big integer.
    ///
    /// ```
    /// use dvicl_group::BigUint;
    /// assert_eq!(BigUint::factorial(20).to_u64(), Some(2432902008176640000));
    /// assert_eq!(BigUint::factorial(64).to_scientific(), "1.26E89");
    /// ```
    pub fn factorial(n: u64) -> Self {
        let mut acc = BigUint::one();
        for k in 2..=n {
            acc.mul_u64_assign(k);
        }
        acc
    }

    /// Binomial coefficient `C(n, k)`.
    pub fn binomial(n: u64, k: u64) -> Self {
        if k > n {
            return BigUint::zero();
        }
        let k = k.min(n - k);
        let mut num = BigUint::one();
        for i in 0..k {
            num.mul_u64_assign(n - i);
        }
        // Divide by k! using exact small division.
        for i in 2..=k {
            num = num.div_u32_exact(i as u32);
        }
        num
    }

    /// Multiplies in place by a `u64`.
    pub fn mul_u64_assign(&mut self, x: u64) {
        if x == 0 {
            self.limbs.clear();
            return;
        }
        let lo = (x & 0xffff_ffff) as u32;
        let hi = (x >> 32) as u32;
        if hi == 0 {
            self.mul_u32_assign(lo);
        } else {
            let mut high_part = self.clone();
            high_part.mul_u32_assign(hi);
            high_part.shl_limbs(1);
            self.mul_u32_assign(lo);
            *self += &high_part;
        }
    }

    fn mul_u32_assign(&mut self, x: u32) {
        if x == 0 {
            self.limbs.clear();
            return;
        }
        let mut carry: u64 = 0;
        for l in &mut self.limbs {
            let prod = *l as u64 * x as u64 + carry;
            *l = (prod & 0xffff_ffff) as u32;
            carry = prod >> 32;
        }
        if carry > 0 {
            self.limbs.push(carry as u32);
        }
    }

    fn shl_limbs(&mut self, k: usize) {
        if !self.is_zero() {
            let mut new = vec![0u32; k];
            new.extend_from_slice(&self.limbs);
            self.limbs = new;
        }
    }

    /// Exact division by a small divisor; panics if the division leaves a
    /// remainder (used only where exactness is guaranteed, e.g. binomials).
    fn div_u32_exact(&self, d: u32) -> BigUint {
        assert!(d != 0, "division by zero");
        let mut out = vec![0u32; self.limbs.len()];
        let mut rem: u64 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = rem << 32 | self.limbs[i] as u64;
            out[i] = (cur / d as u64) as u32;
            rem = cur % d as u64;
        }
        assert_eq!(rem, 0, "div_u32_exact called with inexact division");
        while out.last() == Some(&0) {
            out.pop();
        }
        BigUint { limbs: out }
    }

    /// Divides by 10, returning (quotient, remainder-digit). Internal
    /// helper for decimal formatting.
    fn divmod10(&self) -> (BigUint, u8) {
        let mut out = vec![0u32; self.limbs.len()];
        let mut rem: u64 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = rem << 32 | self.limbs[i] as u64;
            out[i] = (cur / 10) as u32;
            rem = cur % 10;
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        (BigUint { limbs: out }, rem as u8)
    }

    /// Decimal string.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, d) = cur.divmod10();
            digits.push(b'0' + d);
            cur = q;
        }
        digits.reverse();
        // dvicl-lint: allow(panic-freedom) -- every byte is b'0' + d with d < 10, so the buffer is valid ASCII
        String::from_utf8(digits).expect("digits are ASCII")
    }

    /// The paper's table style: plain decimal when short, otherwise
    /// `d.ddE+ee` (e.g. `8.82E15`, `7.36E88`).
    pub fn to_scientific(&self) -> String {
        let dec = self.to_decimal();
        if dec.len() <= 7 {
            return dec;
        }
        let exp = dec.len() - 1;
        format!("{}.{}E{}", &dec[0..1], &dec[1..3], exp)
    }

    /// Number of decimal digits.
    pub fn digits(&self) -> usize {
        self.to_decimal().len()
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        let n = self.limbs.len().max(rhs.limbs.len());
        self.limbs.resize(n, 0);
        let mut carry: u64 = 0;
        for i in 0..n {
            let sum = self.limbs[i] as u64 + *rhs.limbs.get(i).unwrap_or(&0) as u64 + carry;
            self.limbs[i] = (sum & 0xffff_ffff) as u32;
            carry = sum >> 32;
        }
        if carry > 0 {
            self.limbs.push(carry as u32);
        }
    }
}

impl Add<&BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let mut out = self.clone();
        out += rhs;
        out
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = &*self * rhs;
    }
}

impl Mul<&BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u64 = 0;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let cur = out[i + j] as u64 + a as u64 * b as u64 + carry;
                out[i + j] = (cur & 0xffff_ffff) as u32;
                carry = cur >> 32;
            }
            let mut k = i + rhs.limbs.len();
            while carry > 0 {
                let cur = out[k] as u64 + carry;
                out[k] = (cur & 0xffff_ffff) as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        BigUint { limbs: out }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.limbs
            .len()
            .cmp(&other.limbs.len())
            .then_with(|| self.limbs.iter().rev().cmp(other.limbs.iter().rev()))
    }
}

impl From<u64> for BigUint {
    fn from(x: u64) -> Self {
        BigUint::from_u64(x)
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_decimal())
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({})", self.to_decimal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_roundtrip() {
        for x in [0u64, 1, 9, 10, 4294967295, 4294967296, u64::MAX] {
            assert_eq!(BigUint::from_u64(x).to_u64(), Some(x));
            assert_eq!(BigUint::from_u64(x).to_decimal(), x.to_string());
        }
    }

    #[test]
    fn add_with_carry() {
        let mut a = BigUint::from_u64(u64::MAX);
        a += &BigUint::one();
        assert_eq!(a.to_decimal(), "18446744073709551616");
        assert_eq!(a.to_u64(), None);
    }

    #[test]
    fn mul_matches_u128() {
        let a = 123_456_789_012_345u64;
        let b = 987_654_321_098u64;
        let big = &BigUint::from_u64(a) * &BigUint::from_u64(b);
        assert_eq!(big.to_decimal(), (a as u128 * b as u128).to_string());
    }

    #[test]
    fn factorials() {
        assert_eq!(BigUint::factorial(0).to_u64(), Some(1));
        assert_eq!(BigUint::factorial(5).to_u64(), Some(120));
        assert_eq!(BigUint::factorial(20).to_u64(), Some(2432902008176640000));
        assert_eq!(
            BigUint::factorial(25).to_decimal(),
            "15511210043330985984000000"
        );
        assert_eq!(BigUint::factorial(100).digits(), 158);
    }

    #[test]
    fn binomials() {
        assert_eq!(BigUint::binomial(10, 3).to_u64(), Some(120));
        assert_eq!(BigUint::binomial(52, 5).to_u64(), Some(2598960));
        assert_eq!(BigUint::binomial(5, 9).to_u64(), Some(0));
        assert_eq!(BigUint::binomial(7, 0).to_u64(), Some(1));
        // C(100, 50) has a known value.
        assert_eq!(
            BigUint::binomial(100, 50).to_decimal(),
            "100891344545564193334812497256"
        );
    }

    #[test]
    fn scientific_formatting() {
        assert_eq!(BigUint::from_u64(8_820_000).to_scientific(), "8820000");
        assert_eq!(
            BigUint::from_u64(8_820_000_000_000_000).to_scientific(),
            "8.82E15"
        );
        assert_eq!(BigUint::factorial(64).to_scientific(), "1.26E89");
    }

    #[test]
    fn ordering() {
        assert!(BigUint::factorial(10) < BigUint::factorial(11));
        assert!(BigUint::from_u64(5) > BigUint::zero());
        assert_eq!(
            BigUint::from_u64(42).cmp(&BigUint::from_u64(42)),
            Ordering::Equal
        );
    }

    #[test]
    fn to_f64_magnitude() {
        let f = BigUint::factorial(30).to_f64();
        assert!((f / 2.652528598e32 - 1.0).abs() < 1e-6);
    }
}
