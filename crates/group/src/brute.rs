//! Brute-force oracles for small graphs.
//!
//! Used as ground truth in tests across the workspace: exhaustive
//! automorphism enumeration (backtracking, suitable up to ~10–12 vertices)
//! and the literal "minimum `(G, π)^γ` over all permutations" canonical form
//! (suitable up to ~8 vertices).

use dvicl_graph::{CanonForm, Coloring, Graph, Perm, V};

/// Enumerates `Aut(G, π)` exhaustively by backtracking over color- and
/// degree-compatible images. Intended for test graphs only.
pub fn automorphisms(g: &Graph, pi: &Coloring) -> Vec<Perm> {
    let n = g.n();
    let mut image = vec![V::MAX; n];
    let mut used = vec![false; n];
    let mut out = Vec::new();
    backtrack(g, pi, 0, &mut image, &mut used, &mut out);
    out
}

fn backtrack(
    g: &Graph,
    pi: &Coloring,
    v: usize,
    image: &mut Vec<V>,
    used: &mut Vec<bool>,
    out: &mut Vec<Perm>,
) {
    let n = g.n();
    if v == n {
        // dvicl-lint: allow(panic-freedom) -- the backtracking search assigns each vertex a distinct unused image, so the full map is a bijection
        out.push(Perm::from_image(image.clone()).expect("complete image is a bijection"));
        return;
    }
    for w in 0..n as V {
        if used[w as usize]
            || pi.color_of(v as V) != pi.color_of(w)
            || g.degree(v as V) != g.degree(w)
        {
            continue;
        }
        // Adjacency with already-mapped vertices must be preserved both ways.
        let ok = (0..v).all(|u| g.has_edge(u as V, v as V) == g.has_edge(image[u], w));
        if !ok {
            continue;
        }
        image[v] = w;
        used[w as usize] = true;
        backtrack(g, pi, v + 1, image, used, out);
        used[w as usize] = false;
        image[v] = V::MAX;
    }
}

/// `|Aut(G, π)|` by brute force.
pub fn automorphism_count(g: &Graph, pi: &Coloring) -> u64 {
    automorphisms(g, pi).len() as u64
}

/// The literal minimum certificate `min_γ (G, π)^γ` over all `n!`
/// permutations that preserve `π`'s cells as positions. Exponential —
/// tests only (n ≤ 8).
pub fn min_canon_form(g: &Graph, pi: &Coloring) -> CanonForm {
    let n = g.n();
    assert!(n <= 9, "brute-force canonical form is exponential");
    let mut perm: Vec<V> = (0..n as V).collect();
    let mut best: Option<CanonForm> = None;
    permute_all(&mut perm, 0, &mut |p| {
        // Only color-preserving relabelings are candidates: the image of a
        // vertex must carry the same color for (G,π)^γ to have π's cells in
        // place (γ maps each cell onto a cell of equal color).
        let ok = (0..n as V).all(|v| pi.color_of(v) == pi.color_of_position(p[v as usize]));
        if !ok {
            return;
        }
        let form = CanonForm::new(g, pi.colors(), p);
        match &best {
            Some(b) if *b <= form => {}
            _ => best = Some(form),
        }
    });
    // dvicl-lint: allow(panic-freedom) -- the identity permutation is always enumerated and is color-preserving, so best is Some
    best.expect("at least the identity is color-preserving")
}

fn permute_all(perm: &mut Vec<V>, k: usize, f: &mut impl FnMut(&[V])) {
    if k == perm.len() {
        f(perm);
        return;
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        permute_all(perm, k + 1, f);
        perm.swap(k, i);
    }
}

/// True iff `g1` and `g2` are isomorphic as colored graphs, by exhaustive
/// search (tests only).
pub fn isomorphic(g1: &Graph, pi1: &Coloring, g2: &Graph, pi2: &Coloring) -> bool {
    if g1.n() != g2.n() || g1.m() != g2.m() {
        return false;
    }
    let n = g1.n();
    let mut image = vec![V::MAX; n];
    let mut used = vec![false; n];
    iso_backtrack(g1, pi1, g2, pi2, 0, &mut image, &mut used)
}

fn iso_backtrack(
    g1: &Graph,
    pi1: &Coloring,
    g2: &Graph,
    pi2: &Coloring,
    v: usize,
    image: &mut Vec<V>,
    used: &mut Vec<bool>,
) -> bool {
    let n = g1.n();
    if v == n {
        return true;
    }
    for w in 0..n as V {
        if used[w as usize]
            || pi1.color_of(v as V) != pi2.color_of(w)
            || g1.degree(v as V) != g2.degree(w)
        {
            continue;
        }
        let ok = (0..v).all(|u| g1.has_edge(u as V, v as V) == g2.has_edge(image[u], w));
        if !ok {
            continue;
        }
        image[v] = w;
        used[w as usize] = true;
        if iso_backtrack(g1, pi1, g2, pi2, v + 1, image, used) {
            return true;
        }
        used[w as usize] = false;
        image[v] = V::MAX;
    }
    false
}

/// Helper trait extension: color of the cell that *position* `p` falls in.
trait ColorOfPosition {
    fn color_of_position(&self, p: V) -> V;
}

impl ColorOfPosition for Coloring {
    fn color_of_position(&self, p: V) -> V {
        // Positions and colors coincide under the paper's color definition:
        // position p lies in the cell whose start offset is the largest
        // cell-start ≤ p.
        let mut start = 0 as V;
        for cell in self.cells() {
            let end = start + cell.len() as V;
            if p < end {
                return start;
            }
            start = end;
        }
        // dvicl-lint: allow(panic-freedom) -- the cells partition 0..n and p < n is checked by the caller, so some cell contains p
        unreachable!("position out of range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvicl_graph::named;

    #[test]
    fn known_automorphism_counts() {
        let unit = |g: &Graph| Coloring::unit(g.n());
        let cases: Vec<(Graph, u64)> = vec![
            (named::complete(4), 24),
            (named::cycle(5), 10),
            (named::cycle(6), 12),
            (named::path(4), 2),
            (named::star(4), 24),
            (named::complete_bipartite(2, 3), 12),
            (named::petersen(), 120),
            (named::hypercube(3), 48),
            (named::fig1_example(), 48),
        ];
        for (g, expected) in cases {
            let pi = unit(&g);
            assert_eq!(automorphism_count(&g, &pi), expected, "{g:?}");
        }
    }

    #[test]
    fn frucht_graph_is_asymmetric() {
        let g = named::frucht();
        assert_eq!(automorphism_count(&g, &Coloring::unit(12)), 1);
    }

    #[test]
    fn coloring_restricts_the_group() {
        // C4 has |Aut| = 8; fixing one vertex's color leaves only the
        // reflection through it: order 2.
        let g = named::cycle(4);
        let pi = Coloring::from_cells(vec![vec![1, 2, 3], vec![0]]).unwrap();
        assert_eq!(automorphism_count(&g, &pi), 2);
    }

    #[test]
    fn brute_canon_separates_non_isomorphic() {
        let pi4 = Coloring::unit(4);
        let c4 = min_canon_form(&named::cycle(4), &pi4);
        let p4 = min_canon_form(&named::path(4), &pi4);
        assert_ne!(c4, p4);
    }

    #[test]
    fn brute_canon_equal_for_isomorphic() {
        let g = named::cycle(5);
        let gamma = Perm::from_cycles(5, &[&[0, 3, 1], &[2, 4]]).unwrap();
        let h = g.permuted(&gamma);
        let pi = Coloring::unit(5);
        assert_eq!(min_canon_form(&g, &pi), min_canon_form(&h, &pi));
    }

    #[test]
    fn iso_oracle() {
        let g = named::petersen();
        let gamma = Perm::from_cycles(10, &[&[0, 7, 3], &[1, 9]]).unwrap();
        let pi = Coloring::unit(10);
        assert!(isomorphic(&g, &pi, &g.permuted(&gamma), &pi));
        assert!(!isomorphic(
            &named::cycle(6),
            &Coloring::unit(6),
            &named::complete_bipartite(3, 3),
            &Coloring::unit(6)
        ));
    }

    #[test]
    fn automorphisms_agree_with_schreier_sims() {
        let g = named::fig1_example();
        let pi = Coloring::unit(8);
        let gens = automorphisms(&g, &pi);
        let chain = crate::StabChain::new(8, &gens);
        assert_eq!(chain.order().to_u64(), Some(gens.len() as u64));
    }
}
