//! The `JsonSink` must emit valid NDJSON: every line a complete JSON
//! object, parseable without serde. The checker below is a tiny
//! recursive-descent JSON reader — enough to round-trip the hand-rolled
//! writer's output and inspect a few fields (satellite requirement).

#![cfg(not(feature = "obs-off"))]

use dvicl_obs::{JsonObj, JsonSink, PhaseRow, Sink, Summary, Value};
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A writer the test can read back after handing ownership to the sink.
#[derive(Clone)]
struct Shared(Arc<Mutex<Vec<u8>>>);

impl Write for Shared {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().map_err(|_| std::io::ErrorKind::Other)?.extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A parsed JSON value (test-local; the workspace has no serde).
#[derive(Debug, Clone, PartialEq)]
enum J {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<J>),
    Obj(BTreeMap<String, J>),
}

struct P<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> P<'a> {
    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }
    fn eat(&mut self, b: u8) -> Result<(), String> {
        self.ws();
        if self.i < self.s.len() && self.s[self.i] == b {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at {}", b as char, self.i))
        }
    }
    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.s.get(self.i).copied()
    }
    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.s.get(self.i).ok_or("eof in string")?;
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self.s.get(self.i).ok_or("eof in escape")?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.s.get(self.i..self.i + 4).ok_or("eof in \\u")?;
                            self.i += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u")?);
                        }
                        other => return Err(format!("bad escape {:?}", other as char)),
                    }
                }
                b => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.i - 1;
                    let chunk = self.s.get(start..start + len).ok_or("eof in utf8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.i = start + len;
                }
            }
        }
    }
    fn value(&mut self) -> Result<J, String> {
        match self.peek().ok_or("eof")? {
            b'{' => {
                self.eat(b'{')?;
                let mut map = BTreeMap::new();
                if self.peek() == Some(b'}') {
                    self.eat(b'}')?;
                    return Ok(J::Obj(map));
                }
                loop {
                    let k = self.string()?;
                    self.eat(b':')?;
                    map.insert(k, self.value()?);
                    match self.peek().ok_or("eof in obj")? {
                        b',' => self.eat(b',')?,
                        b'}' => {
                            self.eat(b'}')?;
                            return Ok(J::Obj(map));
                        }
                        other => return Err(format!("bad obj sep {:?}", other as char)),
                    }
                }
            }
            b'[' => {
                self.eat(b'[')?;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.eat(b']')?;
                    return Ok(J::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek().ok_or("eof in arr")? {
                        b',' => self.eat(b',')?,
                        b']' => {
                            self.eat(b']')?;
                            return Ok(J::Arr(items));
                        }
                        other => return Err(format!("bad arr sep {:?}", other as char)),
                    }
                }
            }
            b'"' => Ok(J::Str(self.string()?)),
            b't' => {
                self.lit("true")?;
                Ok(J::Bool(true))
            }
            b'f' => {
                self.lit("false")?;
                Ok(J::Bool(false))
            }
            b'n' => {
                self.lit("null")?;
                Ok(J::Null)
            }
            _ => {
                self.ws();
                let start = self.i;
                while self
                    .s
                    .get(self.i)
                    .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
                {
                    self.i += 1;
                }
                std::str::from_utf8(&self.s[start..self.i])
                    .map_err(|e| e.to_string())?
                    .parse::<f64>()
                    .map(J::Num)
                    .map_err(|e| e.to_string())
            }
        }
    }
    fn lit(&mut self, word: &str) -> Result<(), String> {
        self.ws();
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(format!("expected {word}"))
        }
    }
}

fn parse(line: &str) -> Result<J, String> {
    let mut p = P {
        s: line.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.ws();
    if p.i != p.s.len() {
        return Err(format!("trailing bytes at {} in {line:?}", p.i));
    }
    Ok(v)
}

fn obj(v: &J) -> &BTreeMap<String, J> {
    match v {
        J::Obj(m) => m,
        other => panic!("expected object, got {other:?}"),
    }
}

#[test]
fn ndjson_events_and_summary_round_trip() {
    let buf = Shared(Arc::new(Mutex::new(Vec::new())));
    let sink = JsonSink::new(Box::new(buf.clone()));

    sink.event(
        "budget_trip",
        &[
            ("resource", Value::Str("deadline \"2s\"\n".into())),
            ("spent", Value::U64(42)),
            ("ratio", Value::F64(0.5)),
            ("hard", Value::Bool(true)),
        ],
    );
    let mut summary = Summary::default();
    summary.phases.push(PhaseRow {
        label: "canon.search",
        calls: 3,
        total_ms: 1.5,
        self_ms: 1.25,
    });
    sink.finish(&summary);

    let bytes = buf.0.lock().expect("test buffer").clone();
    let text = String::from_utf8(bytes).expect("utf8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "one event + one summary line: {text:?}");

    let ev = parse(lines[0]).expect("event line parses");
    let ev = obj(&ev);
    assert_eq!(ev.get("type"), Some(&J::Str("event".into())));
    assert_eq!(ev.get("name"), Some(&J::Str("budget_trip".into())));
    let fields = obj(ev.get("fields").expect("fields"));
    assert_eq!(
        fields.get("resource"),
        Some(&J::Str("deadline \"2s\"\n".into()))
    );
    assert_eq!(fields.get("spent"), Some(&J::Num(42.0)));
    assert_eq!(fields.get("hard"), Some(&J::Bool(true)));

    let su = parse(lines[1]).expect("summary line parses");
    let su = obj(&su);
    assert_eq!(su.get("type"), Some(&J::Str("summary".into())));
    let inner = obj(su.get("summary").expect("summary"));
    let counters = obj(inner.get("counters").expect("counters"));
    assert!(counters.contains_key("search_nodes"));
    match inner.get("phases") {
        Some(J::Arr(rows)) => {
            let row = obj(&rows[0]);
            assert_eq!(row.get("label"), Some(&J::Str("canon.search".into())));
            assert_eq!(row.get("calls"), Some(&J::Num(3.0)));
        }
        other => panic!("expected phases array, got {other:?}"),
    }
}

#[test]
fn writer_output_is_valid_json_for_tricky_strings() {
    let tricky = "quote\" backslash\\ newline\n tab\t ctrl\u{1} unicode\u{00e9}";
    let line = JsonObj::new().str("k", tricky).finish();
    let parsed = parse(&line).expect("parses");
    assert_eq!(obj(&parsed).get("k"), Some(&J::Str(tricky.into())));
}
