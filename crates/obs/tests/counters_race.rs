//! Counters must be monotone and race-free: 8 threads hammering the
//! same counters lose no increments (satellite requirement; loom-free
//! by design — plain spawn + exact-total assertions).

#![cfg(not(feature = "obs-off"))]

use dvicl_obs::{self as obs, Counter};

const THREADS: u64 = 8;
const PER_THREAD: u64 = 10_000;

#[test]
fn eight_threads_lose_no_increments() {
    let before = obs::snapshot();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    obs::bump(Counter::RefineRounds);
                    if i % 2 == t % 2 {
                        obs::add(Counter::SearchNodes, 2);
                    }
                }
            });
        }
    });
    let delta = obs::snapshot().diff(&before);
    assert_eq!(delta.get(Counter::RefineRounds), THREADS * PER_THREAD);
    assert_eq!(delta.get(Counter::SearchNodes), THREADS * PER_THREAD);
}

#[test]
fn counters_are_monotone_while_bumping() {
    let mut last = obs::get(Counter::SsmStates);
    for _ in 0..1_000 {
        obs::bump(Counter::SsmStates);
        let now = obs::get(Counter::SsmStates);
        assert!(now > last, "counter went backwards: {last} -> {now}");
        last = now;
    }
}
