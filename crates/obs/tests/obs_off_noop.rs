//! Under the `obs-off` feature the whole layer must be inert: spans are
//! zero-sized, counter bumps do nothing, and the `span!` macro still
//! compiles (satellite requirement). Run with
//! `cargo test -p dvicl-obs --features obs-off`.

#![cfg(feature = "obs-off")]

use dvicl_obs::{self as obs, span, Counter};

#[test]
fn span_guard_is_a_zst_and_macro_compiles() {
    let g = span!("obs.off_check");
    assert_eq!(std::mem::size_of_val(&g), 0);
    drop(g);
    obs::set_timing(true);
    assert!(!obs::timing_enabled());
    {
        let _g = obs::span("obs.off_check");
    }
    assert!(obs::phases().is_empty());
}

#[test]
fn bumps_do_nothing() {
    let before = obs::snapshot();
    obs::bump(Counter::SearchNodes);
    obs::add(Counter::RefineRounds, 100);
    let delta = obs::snapshot().diff(&before);
    assert_eq!(delta.get(Counter::SearchNodes), 0);
    assert_eq!(delta.get(Counter::RefineRounds), 0);
    assert_eq!(delta.distinct_nonzero(), 0);
}
