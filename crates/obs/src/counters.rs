//! The fixed counter catalog and its process-wide atomic storage.
//!
//! Counters are deliberately a closed enum rather than a string-keyed
//! registry: every bump is an index into a static array of relaxed
//! atomics (no hashing, no locking, no allocation), and the catalog in
//! DESIGN.md §9 stays the single source of truth for what exists.

use std::sync::atomic::{AtomicU64, Ordering};

/// One process-wide work counter. The catalog (name, unit, where it is
/// incremented) is documented in DESIGN.md §9; the variant order is the
/// reporting order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Refinement splitters processed (`refine::Partition::run`).
    RefineRounds,
    /// IR search-tree nodes visited (`canon::Search::dfs`).
    SearchNodes,
    /// IR search-tree leaves reached (`canon::Search::visit_leaf`).
    SearchLeaves,
    /// Subtrees pruned by the node invariant, `P_A`/`P_B` (`canon`).
    PrunedInvariant,
    /// Branches skipped by discovered automorphisms, `P_C` (`canon`).
    PrunedOrbit,
    /// Non-trivial automorphism generators recorded (`canon`).
    AutFound,
    /// Component divisions applied (`core::SubArena::divide_components`).
    DivideComponents,
    /// `DivideI` divisions applied (`core::SubArena::divide_i`).
    DivideIApplied,
    /// `DivideS` divisions applied (`core::SubArena::divide_s`).
    DivideSApplied,
    /// Edges deleted by applied `DivideS` divisions (`core::SubArena`).
    DivideSEdgesDeleted,
    /// Structural-equivalence twin classes collapsed
    /// (`core::simplify::dvicl_simplified`).
    TwinClassesCollapsed,
    /// `CombineCL` leaf-labeling results served from the builder's
    /// cache (`core::build`).
    CacheClHits,
    /// `CombineCL` leaf labelings computed fresh (`core::build`).
    CacheClMisses,
    /// High-water mark of subgraph-arena pool bytes, summed over builds
    /// (`core::SubArena`): each DviCL run adds its own peak, so a
    /// snapshot diff around one build reads as that build's peak.
    SubBytesPeak,
    /// Subgraph-arena segment releases that handed buffer space back for
    /// reuse by a later child (`core::SubArena`).
    ArenaReuses,
    /// SSM matcher states expanded (`core::ssm`).
    SsmStates,
    /// Budget exhaustion / cancellation trips (`govern::Budget`).
    BudgetTrips,
    /// Witness checks performed by the paranoid verifier (`core::verify`).
    VerifyChecks,
    /// Witness checks that failed — always zero on a healthy build
    /// (`core::verify`).
    VerifyFailures,
    /// Faults injected by an installed `govern::FaultPlan`.
    FaultInjections,
    /// Fingerprint-index probes: every `insert`/`lookup`/`groupsize`
    /// that consulted the fingerprint map (`dvicl-index`).
    IndexProbes,
    /// Index probes whose fingerprint bucket held an exact
    /// stored-form match (`dvicl-index`).
    IndexHits,
    /// Index probes that compared against a stored form with the same
    /// fingerprint and found it *unequal* — the 2⁻¹²⁸ hash-collision
    /// path, resolved by the exact check (`dvicl-index`).
    IndexCollisions,
    /// Builds served by a `core::Session` that reused its arena pools
    /// and CombineCL memo from an earlier build (`core::Session`).
    SessionArenaReuses,
    /// Subtree jobs spawned onto the work-stealing pool — fragments
    /// built away from their parent's call stack (`core::pool`).
    PoolTasks,
    /// Pool jobs executed by a worker other than the one that spawned
    /// them (`core::pool`). `pool_tasks - pool_steals` jobs were
    /// popped back by their owner.
    PoolSteals,
    /// Refinement calls dispatched to the dense bitset kernel
    /// (`refine::Refiner`). Zero under `--kernel general`; equal to the
    /// refinement-call count under `--kernel bitset`.
    RefineKernelDense,
    /// Cell splits whose splitter-neighbor counts came from
    /// word-parallel `popcount(adjacency row & splitter mask)` instead
    /// of an adjacency-list scatter (`refine::BitsetKernel`).
    RefineSplitsPopcount,
    /// Cell splits realized by the degree-bucket radix (counting) sort
    /// instead of a comparison sort (`refine::BitsetKernel`).
    RadixSplits,
}

/// How many counters exist (the length of [`Counter::ALL`]).
pub const NUM_COUNTERS: usize = 29;

impl Counter {
    /// Every counter, in reporting order.
    pub const ALL: [Counter; NUM_COUNTERS] = [
        Counter::RefineRounds,
        Counter::SearchNodes,
        Counter::SearchLeaves,
        Counter::PrunedInvariant,
        Counter::PrunedOrbit,
        Counter::AutFound,
        Counter::DivideComponents,
        Counter::DivideIApplied,
        Counter::DivideSApplied,
        Counter::DivideSEdgesDeleted,
        Counter::TwinClassesCollapsed,
        Counter::CacheClHits,
        Counter::CacheClMisses,
        Counter::SubBytesPeak,
        Counter::ArenaReuses,
        Counter::SsmStates,
        Counter::BudgetTrips,
        Counter::VerifyChecks,
        Counter::VerifyFailures,
        Counter::FaultInjections,
        Counter::IndexProbes,
        Counter::IndexHits,
        Counter::IndexCollisions,
        Counter::SessionArenaReuses,
        Counter::PoolTasks,
        Counter::PoolSteals,
        Counter::RefineKernelDense,
        Counter::RefineSplitsPopcount,
        Counter::RadixSplits,
    ];

    /// The counter's stable snake_case name, as it appears in
    /// `--stats` reports and `BENCH_*.json` records.
    ///
    /// ```
    /// assert_eq!(dvicl_obs::Counter::SearchNodes.name(), "search_nodes");
    /// ```
    pub fn name(self) -> &'static str {
        match self {
            Counter::RefineRounds => "refine_rounds",
            Counter::SearchNodes => "search_nodes",
            Counter::SearchLeaves => "search_leaves",
            Counter::PrunedInvariant => "pruned_invariant",
            Counter::PrunedOrbit => "pruned_orbit",
            Counter::AutFound => "aut_found",
            Counter::DivideComponents => "divide_components",
            Counter::DivideIApplied => "divide_i_applied",
            Counter::DivideSApplied => "divide_s_applied",
            Counter::DivideSEdgesDeleted => "divide_s_edges_deleted",
            Counter::TwinClassesCollapsed => "twin_classes_collapsed",
            Counter::CacheClHits => "cache_cl_hits",
            Counter::CacheClMisses => "cache_cl_misses",
            Counter::SubBytesPeak => "sub_bytes_peak",
            Counter::ArenaReuses => "arena_reuses",
            Counter::SsmStates => "ssm_states",
            Counter::BudgetTrips => "budget_trips",
            Counter::VerifyChecks => "verify_checks",
            Counter::VerifyFailures => "verify_failures",
            Counter::FaultInjections => "fault_injections",
            Counter::IndexProbes => "index_probes",
            Counter::IndexHits => "index_hits",
            Counter::IndexCollisions => "index_collisions",
            Counter::SessionArenaReuses => "session_arena_reuses",
            Counter::PoolTasks => "pool_tasks",
            Counter::PoolSteals => "pool_steals",
            Counter::RefineKernelDense => "refine_kernel_dense",
            Counter::RefineSplitsPopcount => "refine_splits_popcount",
            Counter::RadixSplits => "radix_splits",
        }
    }
}

static COUNTERS: [AtomicU64; NUM_COUNTERS] = [const { AtomicU64::new(0) }; NUM_COUNTERS];

/// Adds `n` to a counter: one relaxed atomic add. With the `obs-off`
/// feature this compiles to nothing.
///
/// ```
/// use dvicl_obs::{self as obs, Counter};
/// let before = obs::get(Counter::SsmStates);
/// obs::add(Counter::SsmStates, 5);
/// # #[cfg(not(feature = "obs-off"))]
/// assert_eq!(obs::get(Counter::SsmStates) - before, 5);
/// ```
#[inline]
pub fn add(c: Counter, n: u64) {
    #[cfg(not(feature = "obs-off"))]
    COUNTERS[c as usize].fetch_add(n, Ordering::Relaxed);
    #[cfg(feature = "obs-off")]
    let _ = (c, n);
}

/// Increments a counter by one. See [`add`].
#[inline]
pub fn bump(c: Counter) {
    add(c, 1);
}

/// The current value of one counter (monotone since process start,
/// except across [`reset_counters`]).
#[inline]
pub fn get(c: Counter) -> u64 {
    COUNTERS[c as usize].load(Ordering::Relaxed)
}

/// A point-in-time copy of every counter. Measure a region with two
/// snapshots and [`Snapshot::diff`]; that stays correct even when other
/// threads keep counting elsewhere in the process.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    values: [u64; NUM_COUNTERS],
}

impl Snapshot {
    /// The snapshotted value of one counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.values[c as usize]
    }

    /// The counter-wise difference `self - earlier` (saturating, so a
    /// reset between the two snapshots cannot wrap).
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let mut values = [0u64; NUM_COUNTERS];
        for (i, v) in values.iter_mut().enumerate() {
            *v = self.values[i].saturating_sub(earlier.values[i]);
        }
        Snapshot { values }
    }

    /// `(name, value)` pairs in catalog order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Counter::ALL.iter().map(|&c| (c.name(), self.get(c)))
    }

    /// How many counters are non-zero in this snapshot.
    pub fn distinct_nonzero(&self) -> usize {
        self.values.iter().filter(|&&v| v > 0).count()
    }
}

/// Snapshots every counter.
///
/// ```
/// use dvicl_obs::{self as obs, Counter};
/// let a = obs::snapshot();
/// obs::bump(Counter::AutFound);
/// let d = obs::snapshot().diff(&a);
/// # #[cfg(not(feature = "obs-off"))]
/// assert_eq!(d.get(Counter::AutFound), 1);
/// assert_eq!(d.get(Counter::RefineRounds), 0);
/// ```
pub fn snapshot() -> Snapshot {
    let mut values = [0u64; NUM_COUNTERS];
    for (i, v) in values.iter_mut().enumerate() {
        *v = COUNTERS[i].load(Ordering::Relaxed);
    }
    Snapshot { values }
}

/// Zeroes every counter. Test/benchmark helper only — see
/// [`crate::reset`].
pub fn reset_counters() {
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_snake_case_and_unique() {
        let names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        for n in &names {
            assert!(
                n.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{n}"
            );
        }
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert_eq!(names.len(), NUM_COUNTERS);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn add_and_diff_round_trip() {
        let before = snapshot();
        add(Counter::DivideComponents, 7);
        bump(Counter::DivideComponents);
        let d = snapshot().diff(&before);
        assert_eq!(d.get(Counter::DivideComponents), 8);
        assert!(d.distinct_nonzero() >= 1);
    }
}
