//! Where observations go: the [`Sink`] trait, its three
//! implementations, and the process-wide installed sink.
//!
//! Exactly one sink is active per process (installed once, before the
//! pipeline runs). The default is [`NullSink`], which makes every
//! [`emit`] call a single `OnceLock` load — the overhead policy in
//! DESIGN.md §9 depends on that.

use crate::counters::{bump, snapshot, Counter, Snapshot};
use crate::json::{JsonArr, JsonObj};
use crate::span::phases;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// A field value attached to an [`emit`]ted event.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// An unsigned integer (counters, sizes).
    U64(u64),
    /// A float (durations in milliseconds, ratios).
    F64(f64),
    /// A short string (labels, resource names).
    Str(String),
    /// A flag.
    Bool(bool),
}

/// One timed phase in a [`Summary`], converted to milliseconds.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseRow {
    /// The span label (`crate.phase`).
    pub label: &'static str,
    /// Completed spans under this label.
    pub calls: u64,
    /// Inclusive wall time in milliseconds.
    pub total_ms: f64,
    /// Exclusive wall time in milliseconds (total minus child spans).
    pub self_ms: f64,
}

/// Everything a sink receives at [`finish`] time: the final counter
/// values and the phase-time breakdown.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// Final counter values.
    pub counters: Snapshot,
    /// Per-phase timing rows, in first-seen order (empty unless timing
    /// was enabled via [`crate::set_timing`]).
    pub phases: Vec<PhaseRow>,
}

/// A destination for observability output. Implementations must be
/// cheap when idle — [`emit`] is called from library code that does not
/// know which sink is installed.
pub trait Sink: Send + Sync {
    /// Receives one named event with its fields. Events are rare
    /// (budget trips, per-benchmark records), never per-node.
    fn event(&self, name: &str, fields: &[(&str, Value)]);

    /// Receives the end-of-run summary. Called at most once, by
    /// [`finish`].
    fn finish(&self, summary: &Summary);
}

/// The default sink: discards everything.
///
/// ```
/// use dvicl_obs::{NullSink, Sink, Summary};
/// NullSink.event("noop", &[]);
/// NullSink.finish(&Summary::default());
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn event(&self, _name: &str, _fields: &[(&str, Value)]) {}
    fn finish(&self, _summary: &Summary) {}
}

/// The human-readable sink behind the CLI's `--stats` flag: prints
/// [`render_text`] to stderr at [`finish`] time and ignores events
/// (budget trips already surface through the CLI's error path).
#[derive(Clone, Copy, Debug, Default)]
pub struct TextSink;

impl Sink for TextSink {
    fn event(&self, _name: &str, _fields: &[(&str, Value)]) {}

    fn finish(&self, summary: &Summary) {
        // Best effort: a closed stderr must not take the run down.
        let _ = io::stderr().write_all(render_text(summary).as_bytes());
    }
}

/// The machine-readable sink behind the CLI's `--trace-json <path>`
/// flag: newline-delimited JSON, one `{"type":"event",...}` object per
/// [`emit`] and one final `{"type":"summary",...}` object.
pub struct JsonSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonSink").finish_non_exhaustive()
    }
}

impl JsonSink {
    /// Wraps any writer (the tests use `Vec<u8>` behind a forwarder).
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonSink {
            out: Mutex::new(out),
        }
    }

    /// Creates (truncating) `path` and streams NDJSON to it.
    pub fn to_file(path: &std::path::Path) -> io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(JsonSink::new(Box::new(io::BufWriter::new(f))))
    }

    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        // Best effort: tracing must never take the run down.
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

fn fields_obj(fields: &[(&str, Value)]) -> JsonObj {
    let mut obj = JsonObj::new();
    for (k, v) in fields {
        obj = match v {
            Value::U64(x) => obj.u64(k, *x),
            Value::F64(x) => obj.f64(k, *x),
            Value::Str(x) => obj.str(k, x),
            Value::Bool(x) => obj.bool(k, *x),
        };
    }
    obj
}

/// Renders a [`Summary`] as one JSON object (`{"counters":{...},
/// "phases":[...]}`) — shared by [`JsonSink`]'s summary line and the
/// bench `BENCH_*.json` records.
pub fn summary_json(summary: &Summary) -> JsonObj {
    let mut counters = JsonObj::new();
    for (name, v) in summary.counters.iter() {
        counters = counters.u64(name, v);
    }
    let mut rows = JsonArr::new();
    for p in &summary.phases {
        rows = rows.push_obj(
            JsonObj::new()
                .str("label", p.label)
                .u64("calls", p.calls)
                .f64("total_ms", p.total_ms)
                .f64("self_ms", p.self_ms),
        );
    }
    JsonObj::new().obj("counters", counters).arr("phases", rows)
}

impl Sink for JsonSink {
    fn event(&self, name: &str, fields: &[(&str, Value)]) {
        let line = JsonObj::new()
            .str("type", "event")
            .str("name", name)
            .obj("fields", fields_obj(fields))
            .finish();
        self.write_line(&line);
    }

    fn finish(&self, summary: &Summary) {
        let line = JsonObj::new()
            .str("type", "summary")
            .obj("summary", summary_json(summary))
            .finish();
        self.write_line(&line);
    }
}

static SINK: OnceLock<Box<dyn Sink>> = OnceLock::new();
static NULL: NullSink = NullSink;
static FINISHED: AtomicBool = AtomicBool::new(false);

/// Installs the process-wide sink. Returns `false` (and drops `sink`)
/// if one was already installed — first install wins, so libraries must
/// never call this; only the binary entry point does.
pub fn install(sink: Box<dyn Sink>) -> bool {
    SINK.set(sink).is_ok()
}

fn active() -> &'static dyn Sink {
    match SINK.get() {
        Some(s) => s.as_ref(),
        None => &NULL,
    }
}

/// Sends one event to the installed sink. With no sink installed this
/// is one `OnceLock` load.
pub fn emit(name: &str, fields: &[(&str, Value)]) {
    active().event(name, fields);
}

/// Builds the end-of-run [`Summary`] from the live counters and phase
/// table.
pub fn summary() -> Summary {
    const MS: f64 = 1e6;
    Summary {
        counters: snapshot(),
        phases: phases()
            .into_iter()
            .map(|(label, st)| PhaseRow {
                label,
                calls: st.calls,
                total_ms: st.total_ns as f64 / MS,
                self_ms: st.self_ns as f64 / MS,
            })
            .collect(),
    }
}

/// Delivers the final [`Summary`] to the installed sink. Idempotent:
/// only the first call delivers, so both a normal exit path and a
/// defensive one can call it.
pub fn finish() {
    if FINISHED.swap(true, Ordering::SeqCst) {
        return;
    }
    active().finish(&summary());
}

/// Records a budget trip: bumps [`Counter::BudgetTrips`] and emits a
/// `budget_trip` event carrying the exhausted resource, the amount
/// spent, and the full counter snapshot at trip time — so a truncated
/// run still reports how far it got.
pub fn emit_budget_trip(resource: &str, spent: u64) {
    bump(Counter::BudgetTrips);
    let snap = snapshot();
    let mut fields: Vec<(&str, Value)> = vec![
        ("resource", Value::Str(resource.to_string())),
        ("spent", Value::U64(spent)),
    ];
    for (name, v) in snap.iter() {
        fields.push((name, Value::U64(v)));
    }
    emit("budget_trip", &fields);
}

/// Renders a [`Summary`] as the human `--stats` report (non-zero
/// counters plus the phase table when timing was on).
///
/// ```
/// let text = dvicl_obs::render_text(&dvicl_obs::summary());
/// assert!(text.starts_with("== dvicl stats =="));
/// ```
pub fn render_text(summary: &Summary) -> String {
    let mut out = String::from("== dvicl stats ==\n");
    let mut any = false;
    for (name, v) in summary.counters.iter() {
        if v > 0 {
            out.push_str(&format!("  {name:<24} {v}\n"));
            any = true;
        }
    }
    if !any {
        out.push_str("  (all counters zero)\n");
    }
    if !summary.phases.is_empty() {
        out.push_str("  phase                    calls    total_ms     self_ms\n");
        for p in &summary.phases {
            out.push_str(&format!(
                "  {:<24} {:>5} {:>11.3} {:>11.3}\n",
                p.label, p.calls, p.total_ms, p.self_ms
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_text_lists_nonzero_counters_and_phases() {
        let mut summary = Summary::default();
        summary.phases.push(PhaseRow {
            label: "obs.render_demo",
            calls: 2,
            total_ms: 1.25,
            self_ms: 1.0,
        });
        let text = render_text(&summary);
        assert!(text.contains("(all counters zero)"));
        assert!(text.contains("obs.render_demo"));
    }

    #[test]
    fn fields_obj_covers_all_value_kinds() {
        let obj = fields_obj(&[
            ("a", Value::U64(1)),
            ("b", Value::F64(0.5)),
            ("c", Value::Str("s".into())),
            ("d", Value::Bool(false)),
        ]);
        assert_eq!(obj.finish(), r#"{"a":1,"b":0.5,"c":"s","d":false}"#);
    }
}
