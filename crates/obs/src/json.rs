//! A hand-rolled JSON writer.
//!
//! The workspace has no serialization dependency (PR 1 removed serde
//! under the vendored-shim policy), so the observability sinks and the
//! bench `BENCH_*.json` records build their output through these two
//! small append-only builders. They emit a *subset* of JSON — object
//! and array literals with string / number / bool / null values — which
//! is all the schemas in DESIGN.md §9 need.

fn esc(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // dvicl-lint: allow(narrowing-cast) -- char to u32 is lossless (chars are scalar values below 2^21)
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                // dvicl-lint: allow(narrowing-cast) -- char to u32 is lossless (chars are scalar values below 2^21)
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xf;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        // JSON has no NaN/Inf; null is the least-surprising stand-in.
        out.push_str("null");
    }
}

/// Builder for a JSON object literal. Methods take and return `self`
/// so records read as one chained expression.
///
/// ```
/// use dvicl_obs::JsonObj;
/// let s = JsonObj::new().str("graph", "k_10").u64("n", 10).finish();
/// assert_eq!(s, r#"{"graph":"k_10","n":10}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObj {
    buf: String,
    any: bool,
}

impl JsonObj {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(&mut self, k: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push('"');
        esc(&mut self.buf, k);
        self.buf.push_str("\":");
    }

    /// Adds a string field (escaped).
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        esc(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field; non-finite values become `null`.
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        push_f64(&mut self.buf, v);
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a `null` field.
    pub fn null(mut self, k: &str) -> Self {
        self.key(k);
        self.buf.push_str("null");
        self
    }

    /// Adds a nested object field.
    pub fn obj(mut self, k: &str, v: JsonObj) -> Self {
        self.key(k);
        self.buf.push_str(&v.finish());
        self
    }

    /// Adds a nested array field.
    pub fn arr(mut self, k: &str, v: JsonArr) -> Self {
        self.key(k);
        self.buf.push_str(&v.finish());
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(self) -> String {
        let mut buf = self.buf;
        buf.insert(0, '{');
        buf.push('}');
        buf
    }
}

/// Builder for a JSON array literal; the element-wise counterpart of
/// [`JsonObj`].
///
/// ```
/// use dvicl_obs::JsonArr;
/// let s = JsonArr::new().push_u64(1).push_str("two").finish();
/// assert_eq!(s, r#"[1,"two"]"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonArr {
    buf: String,
    any: bool,
}

impl JsonArr {
    /// Starts an empty array.
    pub fn new() -> Self {
        Self::default()
    }

    fn sep(&mut self) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
    }

    /// Appends a string element (escaped).
    pub fn push_str(mut self, v: &str) -> Self {
        self.sep();
        self.buf.push('"');
        esc(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    /// Appends an unsigned integer element.
    pub fn push_u64(mut self, v: u64) -> Self {
        self.sep();
        self.buf.push_str(&v.to_string());
        self
    }

    /// Appends a float element; non-finite values become `null`.
    pub fn push_f64(mut self, v: f64) -> Self {
        self.sep();
        push_f64(&mut self.buf, v);
        self
    }

    /// Appends a nested object element.
    pub fn push_obj(mut self, v: JsonObj) -> Self {
        self.sep();
        self.buf.push_str(&v.finish());
        self
    }

    /// Closes the array and returns the JSON text.
    pub fn finish(self) -> String {
        let mut buf = self.buf;
        buf.insert(0, '[');
        buf.push(']');
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        let s = JsonObj::new().str("k", "a\"b\\c\n\t\u{1}").finish();
        assert_eq!(s, "{\"k\":\"a\\\"b\\\\c\\n\\t\\u0001\"}");
    }

    #[test]
    fn nested_structures_and_non_finite_floats() {
        let s = JsonObj::new()
            .f64("ok", 1.5)
            .f64("bad", f64::NAN)
            .arr("xs", JsonArr::new().push_obj(JsonObj::new().bool("b", true)))
            .null("none")
            .finish();
        assert_eq!(
            s,
            r#"{"ok":1.5,"bad":null,"xs":[{"b":true}],"none":null}"#
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonObj::new().finish(), "{}");
        assert_eq!(JsonArr::new().finish(), "[]");
    }
}
