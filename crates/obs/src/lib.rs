//! `dvicl-obs` — zero-dependency observability for the DviCL pipeline.
//!
//! The ROADMAP's north star is a system that is "as fast as the hardware
//! allows", which is unverifiable without a way to *see* where time and
//! work go. This crate gives the whole workspace one shared vocabulary
//! for that, in the house style (no `tracing` crate; everything offline
//! and dependency-free):
//!
//! * [`Counter`] — a fixed catalog of cheap process-wide counters
//!   (search-tree nodes, refinement rounds, divide decisions, cache
//!   hits…). Bumping is one relaxed atomic add; with the `obs-off`
//!   feature it compiles to nothing at all.
//! * [`span`] — a scoped timer producing the per-phase wall-time
//!   breakdown (refine / divide / combine / leaf-IR / ssm). Timing is
//!   off until [`set_timing`] enables it, so un-observed runs pay one
//!   atomic load per span.
//! * [`Sink`] — where events and the final summary go: [`NullSink`]
//!   (default), [`TextSink`] (the CLI's human `--stats` report on
//!   stderr), or [`JsonSink`] (newline-delimited JSON events plus a
//!   final summary object, the CLI's `--trace-json`).
//!
//! The counter catalog, span naming convention (`crate.phase`
//! dot-paths, enforced by `dvicl-lint`'s `obs-span-naming` rule), sink
//! selection and overhead policy are documented in DESIGN.md §9.
//!
//! # Quick start
//!
//! ```
//! use dvicl_obs::{self as obs, Counter};
//!
//! // Counters: bump on the hot path, snapshot around a measured region.
//! let before = obs::snapshot();
//! obs::bump(Counter::SearchNodes);
//! obs::add(Counter::DivideSEdgesDeleted, 3);
//! let delta = obs::snapshot().diff(&before);
//! # #[cfg(not(feature = "obs-off"))]
//! assert_eq!(delta.get(Counter::SearchNodes), 1);
//!
//! // Spans: time a phase (a no-op unless timing was enabled).
//! {
//!     let _g = obs::span("core.build");
//!     // ... the governed work ...
//! }
//! ```

#![deny(missing_docs)]

mod counters;
mod json;
mod sink;
mod span;

pub use counters::{add, bump, get, reset_counters, snapshot, Counter, Snapshot, NUM_COUNTERS};
pub use json::{JsonArr, JsonObj};
pub use sink::{
    emit, emit_budget_trip, finish, install, render_text, summary, summary_json, JsonSink,
    NullSink, PhaseRow, Sink, Summary, TextSink, Value,
};
pub use span::{phases, reset_phases, set_timing, span, timing_enabled, PhaseStat, Span};

/// Resets every counter *and* the phase table. Test/benchmark helper:
/// production code measures with [`snapshot`] deltas instead, so that
/// concurrent measurements cannot clobber each other.
///
/// ```
/// dvicl_obs::reset();
/// assert_eq!(dvicl_obs::get(dvicl_obs::Counter::SearchNodes), 0);
/// ```
pub fn reset() {
    reset_counters();
    reset_phases();
}
