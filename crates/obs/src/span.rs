//! Scoped phase timers.
//!
//! A [`span`] is a guard that, while timing is enabled, measures the
//! wall time of its scope and attributes it to a phase label. A
//! thread-local stack of open frames lets a parent phase subtract the
//! time spent in its children, so the report can show both *total*
//! (inclusive) and *self* (exclusive) time per phase — the breakdown
//! the DviCL paper reports as refine / divide / combine / leaf-IR.
//!
//! Timing is off by default: an un-observed span costs one relaxed
//! atomic load and nothing else. Under the `obs-off` feature the guard
//! is a zero-sized type and the whole module is inert.

/// Per-phase accumulated timing, keyed by span label.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// How many spans completed under this label.
    pub calls: u64,
    /// Inclusive wall time: the sum of each span's full duration.
    pub total_ns: u64,
    /// Exclusive wall time: [`PhaseStat::total_ns`] minus time spent in
    /// child spans opened (on the same thread) while this one was open.
    pub self_ns: u64,
}

/// Times the enclosing scope under a `crate.phase` label, exactly like
/// calling [`span`]; exists so call sites read as instrumentation.
///
/// ```
/// let _g = dvicl_obs::span!("core.combine");
/// ```
#[macro_export]
macro_rules! span {
    ($label:expr) => {
        $crate::span($label)
    };
}

#[cfg(not(feature = "obs-off"))]
mod imp {
    use super::PhaseStat;
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, PoisonError};
    use std::time::Instant;

    static TIMING: AtomicBool = AtomicBool::new(false);

    // The phase table is tiny (one entry per distinct label, ~a dozen in
    // the whole pipeline), so a linear scan under one mutex beats a map.
    static PHASES: Mutex<Vec<(&'static str, PhaseStat)>> = Mutex::new(Vec::new());

    struct Frame {
        label: &'static str,
        start: Instant,
        child_ns: u64,
    }

    thread_local! {
        static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    }

    /// Turns span timing on or off process-wide.
    pub fn set_timing(on: bool) {
        TIMING.store(on, Ordering::SeqCst);
    }

    /// Whether spans are currently measuring time.
    pub fn timing_enabled() -> bool {
        TIMING.load(Ordering::Relaxed)
    }

    /// A scope guard created by [`span`](crate::span); on drop it folds
    /// the scope's duration into the process-wide phase table.
    #[must_use = "a span measures until it is dropped; binding it to _ drops it immediately"]
    pub struct Span {
        active: bool,
    }

    /// Opens a timed span for `label` (a `crate.phase` dot-path; see
    /// DESIGN.md §9). Returns an inert guard when timing is disabled.
    ///
    /// ```
    /// dvicl_obs::set_timing(true);
    /// {
    ///     let _g = dvicl_obs::span("refine.refine");
    /// }
    /// dvicl_obs::set_timing(false);
    /// let phases = dvicl_obs::phases();
    /// assert!(phases.iter().any(|(l, st)| *l == "refine.refine" && st.calls >= 1));
    /// ```
    pub fn span(label: &'static str) -> Span {
        if !timing_enabled() {
            return Span { active: false };
        }
        STACK.with(|s| {
            s.borrow_mut().push(Frame {
                label,
                start: Instant::now(),
                child_ns: 0,
            });
        });
        Span { active: true }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            if !self.active {
                return;
            }
            let frame = STACK.with(|s| s.borrow_mut().pop());
            let Some(frame) = frame else { return };
            let total_ns =
                u64::try_from(frame.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let self_ns = total_ns.saturating_sub(frame.child_ns);
            STACK.with(|s| {
                if let Some(parent) = s.borrow_mut().last_mut() {
                    parent.child_ns = parent.child_ns.saturating_add(total_ns);
                }
            });
            let mut table = PHASES.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some((_, st)) = table.iter_mut().find(|(l, _)| *l == frame.label) {
                st.calls += 1;
                st.total_ns = st.total_ns.saturating_add(total_ns);
                st.self_ns = st.self_ns.saturating_add(self_ns);
            } else {
                table.push((
                    frame.label,
                    PhaseStat {
                        calls: 1,
                        total_ns,
                        self_ns,
                    },
                ));
            }
        }
    }

    /// A copy of the phase table, in first-seen order.
    pub fn phases() -> Vec<(&'static str, PhaseStat)> {
        PHASES
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Clears the phase table. Test/benchmark helper — see
    /// [`crate::reset`].
    pub fn reset_phases() {
        PHASES
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }
}

#[cfg(feature = "obs-off")]
mod imp {
    use super::PhaseStat;

    /// A scope guard created by [`span`](crate::span); zero-sized and
    /// inert under the `obs-off` feature.
    #[must_use = "a span measures until it is dropped; binding it to _ drops it immediately"]
    pub struct Span;

    /// Opens a timed span for `label`; inert under `obs-off`.
    #[inline]
    pub fn span(_label: &'static str) -> Span {
        Span
    }

    /// Turns span timing on or off; ignored under `obs-off`.
    pub fn set_timing(_on: bool) {}

    /// Whether spans are measuring time — always `false` under
    /// `obs-off`.
    pub fn timing_enabled() -> bool {
        false
    }

    /// The phase table — always empty under `obs-off`.
    pub fn phases() -> Vec<(&'static str, PhaseStat)> {
        Vec::new()
    }

    /// Clears the phase table; a no-op under `obs-off`.
    pub fn reset_phases() {}
}

pub use imp::{phases, reset_phases, set_timing, span, timing_enabled, Span};

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn nesting_attributes_self_time_to_each_label() {
        set_timing(true);
        {
            let _outer = span("obs.outer_phase");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("obs.inner_phase");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        set_timing(false);
        let table = phases();
        let outer = table
            .iter()
            .find(|(l, _)| *l == "obs.outer_phase")
            .map(|(_, st)| *st)
            .unwrap_or_default();
        let inner = table
            .iter()
            .find(|(l, _)| *l == "obs.inner_phase")
            .map(|(_, st)| *st)
            .unwrap_or_default();
        assert!(outer.calls >= 1 && inner.calls >= 1);
        assert!(outer.total_ns >= inner.total_ns);
        assert!(outer.self_ns <= outer.total_ns);
    }

    #[test]
    fn disabled_span_is_inert() {
        set_timing(false);
        let before = phases().len();
        {
            let _g = span("obs.never_recorded");
        }
        assert_eq!(phases().len(), before);
    }

    #[cfg(feature = "obs-off")]
    #[test]
    fn span_is_zero_sized_when_off() {
        assert_eq!(std::mem::size_of::<Span>(), 0);
        set_timing(true);
        assert!(!timing_enabled());
    }
}
