//! Plain-text edge-list I/O.
//!
//! The format matches the SNAP-style files the paper's datasets ship in:
//! one `u v` pair per line, `#`-prefixed comment lines ignored, whitespace
//! separated. Vertex ids may be arbitrary (non-dense) `u64`s; they are
//! compacted to `0..n` on read, and the mapping is returned.
//!
//! Reading returns typed [`DviclError`]s (never panics), with the parse
//! failure kind and 1-based line number attached — malformed input is a
//! recoverable condition, not a crash.

use crate::{Graph, GraphBuilder, V};
use dvicl_govern::{DviclError, ParseError, ParseErrorKind};
use rustc_hash::FxHashMap;
use std::io::{self, BufRead, BufWriter, Read, Write};
use std::num::IntErrorKind;
use std::path::Path;

/// Result of reading an edge list: the compacted graph plus the original id
/// of each compacted vertex.
#[derive(Clone, Debug)]
pub struct LoadedGraph {
    /// The compacted simple graph.
    pub graph: Graph,
    /// `original_ids[v]` is the id vertex `v` had in the input file.
    pub original_ids: Vec<u64>,
}

/// Reads an edge list from any reader. Lines starting with `#` or `%` are
/// comments; blank lines are skipped. Self-loops and duplicate edges are
/// dropped (the paper's preprocessing).
///
/// Errors are always typed: [`DviclError::Parse`] for malformed content
/// (truncated line, non-numeric token, overflowing id, no data at all) and
/// [`DviclError::InvalidInput`] for underlying reader failures.
pub fn read_edge_list<R: Read>(reader: R) -> Result<LoadedGraph, DviclError> {
    let mut ids: FxHashMap<u64, V> = FxHashMap::default();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut edges: Vec<(V, V)> = Vec::new();
    let mut intern = |raw: u64, original_ids: &mut Vec<u64>| -> V {
        *ids.entry(raw).or_insert_with(|| {
            let v = original_ids.len() as V;
            original_ids.push(raw);
            v
        })
    };
    let buf = io::BufReader::new(reader);
    let mut saw_data = false;
    for (lineno, line) in buf.lines().enumerate() {
        let line = line.map_err(|e| DviclError::invalid(format!("read failed: {e}")))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        saw_data = true;
        dvicl_govern::fault::checkpoint("graph.edge_line")?;
        let mut it = line.split_whitespace();
        let a = parse_vertex(it.next(), line, lineno)?;
        let b = parse_vertex(it.next(), line, lineno)?;
        let u = intern(a, &mut original_ids);
        let v = intern(b, &mut original_ids);
        if original_ids.len() > V::MAX as usize {
            return Err(ParseError::new(
                ParseErrorKind::TooLarge,
                format!("more than {} distinct vertex ids", V::MAX),
            )
            .at_line(lineno + 1)
            .into());
        }
        edges.push((u, v));
    }
    if !saw_data {
        return Err(ParseError::new(
            ParseErrorKind::Empty,
            "edge list contains no edges (only blank/comment lines)",
        )
        .into());
    }
    let mut builder = GraphBuilder::with_capacity(original_ids.len(), edges.len());
    for (u, v) in edges {
        builder.add_edge(u, v);
    }
    Ok(LoadedGraph {
        graph: builder.build(),
        original_ids,
    })
}

fn parse_vertex(tok: Option<&str>, line: &str, lineno: usize) -> Result<u64, DviclError> {
    let lineno = lineno + 1; // report 1-based
    let tok = tok.ok_or_else(|| {
        ParseError::new(
            ParseErrorKind::TruncatedLine,
            format!("expected `u v`, got {line:?}"),
        )
        .at_line(lineno)
    })?;
    tok.parse::<u64>().map_err(|e| {
        let kind = match e.kind() {
            IntErrorKind::PosOverflow | IntErrorKind::NegOverflow => ParseErrorKind::Overflow,
            _ => ParseErrorKind::NonNumeric,
        };
        ParseError::new(kind, format!("vertex id {tok:?}"))
            .at_line(lineno)
            .into()
    })
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<LoadedGraph, DviclError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)
        .map_err(|e| DviclError::invalid(format!("cannot open {}: {e}", path.display())))?;
    read_edge_list(file)
}

/// Writes a graph as an edge list (`u v` per line, `u < v`), with a size
/// header comment.
pub fn write_edge_list<W: Write>(writer: W, g: &Graph) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# nodes: {} edges: {}", g.n(), g.m())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Writes a graph to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(path: P, g: &Graph) -> io::Result<()> {
    write_edge_list(std::fs::File::create(path)?, g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_snap_style_input() {
        let input = "# comment\n% another\n\n10 20\n20 30\n10 20\n30 30\n";
        let loaded = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(loaded.graph.n(), 3);
        assert_eq!(loaded.graph.m(), 2); // duplicate + self-loop dropped
        assert_eq!(loaded.original_ids, vec![10, 20, 30]);
    }

    #[test]
    fn rejects_malformed_lines_with_typed_errors() {
        let non_numeric = read_edge_list("1 x\n".as_bytes()).unwrap_err();
        assert!(matches!(
            non_numeric,
            DviclError::Parse(ParseError {
                kind: ParseErrorKind::NonNumeric,
                line: Some(1),
                ..
            })
        ));
        let truncated = read_edge_list("0 1\n7\n".as_bytes()).unwrap_err();
        assert!(matches!(
            truncated,
            DviclError::Parse(ParseError {
                kind: ParseErrorKind::TruncatedLine,
                line: Some(2),
                ..
            })
        ));
        let overflow = read_edge_list("0 99999999999999999999999\n".as_bytes()).unwrap_err();
        assert!(matches!(
            overflow,
            DviclError::Parse(ParseError {
                kind: ParseErrorKind::Overflow,
                ..
            })
        ));
    }

    #[test]
    fn rejects_empty_input() {
        for input in ["", "# only a comment\n", "\n\n% x\n"] {
            let err = read_edge_list(input.as_bytes()).unwrap_err();
            assert!(
                matches!(
                    err,
                    DviclError::Parse(ParseError {
                        kind: ParseErrorKind::Empty,
                        ..
                    })
                ),
                "expected Empty for {input:?}, got {err}"
            );
            assert_eq!(err.exit_code(), 2);
        }
    }

    #[test]
    fn roundtrip() {
        let g = crate::named::petersen();
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &g).unwrap();
        let loaded = read_edge_list(&buf[..]).unwrap();
        // Ids in the file are already dense and appear in sorted edge order,
        // so the roundtrip preserves the labeling exactly.
        assert_eq!(loaded.graph.m(), g.m());
        assert_eq!(loaded.graph.n(), g.n());
        let relabel: Vec<V> = loaded.original_ids.iter().map(|&x| x as V).collect();
        let perm = crate::Perm::from_image(relabel).unwrap();
        assert_eq!(loaded.graph.permuted(&perm), g);
    }
}
