//! Plain-text edge-list I/O.
//!
//! The format matches the SNAP-style files the paper's datasets ship in:
//! one `u v` pair per line, `#`-prefixed comment lines ignored, whitespace
//! separated. Vertex ids may be arbitrary (non-dense) `u64`s; they are
//! compacted to `0..n` on read, and the mapping is returned.

use crate::{Graph, GraphBuilder, V};
use rustc_hash::FxHashMap;
use std::io::{self, BufRead, BufWriter, Read, Write};
use std::path::Path;

/// Result of reading an edge list: the compacted graph plus the original id
/// of each compacted vertex.
pub struct LoadedGraph {
    /// The compacted simple graph.
    pub graph: Graph,
    /// `original_ids[v]` is the id vertex `v` had in the input file.
    pub original_ids: Vec<u64>,
}

/// Reads an edge list from any reader. Lines starting with `#` or `%` are
/// comments; blank lines are skipped. Self-loops and duplicate edges are
/// dropped (the paper's preprocessing).
pub fn read_edge_list<R: Read>(reader: R) -> io::Result<LoadedGraph> {
    let mut ids: FxHashMap<u64, V> = FxHashMap::default();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut edges: Vec<(V, V)> = Vec::new();
    let mut intern = |raw: u64, original_ids: &mut Vec<u64>| -> V {
        *ids.entry(raw).or_insert_with(|| {
            let v = original_ids.len() as V;
            original_ids.push(raw);
            v
        })
    };
    let buf = io::BufReader::new(reader);
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<u64> {
            tok.ok_or_else(|| bad_line(lineno))?
                .parse::<u64>()
                .map_err(|_| bad_line(lineno))
        };
        let a = parse(it.next())?;
        let b = parse(it.next())?;
        let u = intern(a, &mut original_ids);
        let v = intern(b, &mut original_ids);
        edges.push((u, v));
    }
    let mut builder = GraphBuilder::with_capacity(original_ids.len(), edges.len());
    for (u, v) in edges {
        builder.add_edge(u, v);
    }
    Ok(LoadedGraph {
        graph: builder.build(),
        original_ids,
    })
}

fn bad_line(lineno: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed edge on line {}", lineno + 1),
    )
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> io::Result<LoadedGraph> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes a graph as an edge list (`u v` per line, `u < v`), with a size
/// header comment.
pub fn write_edge_list<W: Write>(writer: W, g: &Graph) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# nodes: {} edges: {}", g.n(), g.m())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Writes a graph to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(path: P, g: &Graph) -> io::Result<()> {
    write_edge_list(std::fs::File::create(path)?, g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_snap_style_input() {
        let input = "# comment\n% another\n\n10 20\n20 30\n10 20\n30 30\n";
        let loaded = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(loaded.graph.n(), 3);
        assert_eq!(loaded.graph.m(), 2); // duplicate + self-loop dropped
        assert_eq!(loaded.original_ids, vec![10, 20, 30]);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_edge_list("1 x\n".as_bytes()).is_err());
        assert!(read_edge_list("7\n".as_bytes()).is_err());
    }

    #[test]
    fn roundtrip() {
        let g = crate::named::petersen();
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &g).unwrap();
        let loaded = read_edge_list(&buf[..]).unwrap();
        // Ids in the file are already dense and appear in sorted edge order,
        // so the roundtrip preserves the labeling exactly.
        assert_eq!(loaded.graph.m(), g.m());
        assert_eq!(loaded.graph.n(), g.n());
        let relabel: Vec<V> = loaded.original_ids.iter().map(|&x| x as V).collect();
        let perm = crate::Perm::from_image(relabel).unwrap();
        assert_eq!(loaded.graph.permuted(&perm), g);
    }
}
