//! Canonical forms: the totally ordered certificates `(G, π)^γ`.

use crate::{Coloring, Graph, V};
use std::cmp::Ordering;

/// The certificate of a relabeled colored graph `(G, π)^γ`.
///
/// The paper represents `(G, π)^γ` as a sorted edge list over a totally
/// ordered set. We additionally record the multiset of colors (as sorted
/// `(color, count)` runs) so that certificates of *colored sub*graphs — as
/// used by the AutoTree, where labels are global color offsets and therefore
/// sparse — compare correctly: two forms are equal iff the subgraphs are
/// isomorphic as colored graphs under the labeling that produced them.
///
/// Forms order lexicographically: first by the color runs, then by the edge
/// list. `Ord` gives the total order the search algorithms minimize over.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CanonForm {
    /// Sorted `(color, multiplicity)` runs of the vertex color multiset.
    pub colors: Vec<(V, V)>,
    /// Sorted relabeled edges `(γ(u), γ(v))` with first < second.
    pub edges: Vec<(V, V)>,
}

impl CanonForm {
    /// Builds the certificate of `g` whose vertex `v` carries color
    /// `color[v]` and canonical label `label[v]`. Labels must be pairwise
    /// distinct (they need not be contiguous).
    pub fn new(g: &Graph, colors: &[V], labels: &[V]) -> Self {
        assert_eq!(g.n(), colors.len());
        assert_eq!(g.n(), labels.len());
        let mut color_runs: Vec<V> = colors.to_vec();
        color_runs.sort_unstable();
        let mut runs: Vec<(V, V)> = Vec::new();
        for c in color_runs {
            match runs.last_mut() {
                Some((rc, cnt)) if *rc == c => *cnt += 1,
                _ => runs.push((c, 1)),
            }
        }
        let mut edges: Vec<(V, V)> = g
            .edges()
            .map(|(u, v)| {
                let (a, b) = (labels[u as usize], labels[v as usize]);
                if a < b {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect();
        edges.sort_unstable();
        debug_assert!(edges.windows(2).all(|w| w[0] != w[1]), "labels not distinct");
        CanonForm {
            colors: runs,
            edges,
        }
    }

    /// Certificate of a whole colored graph under a discrete coloring given
    /// as a permutation-like label array (`labels[v]` = canonical position).
    pub fn of_colored_graph(g: &Graph, pi: &Coloring, labels: &[V]) -> Self {
        CanonForm::new(g, pi.colors(), labels)
    }

    /// The single-vertex certificate used for singleton AutoTree leaves:
    /// the paper defines `C(g, πg) = (π(v), π(v))` for `g = {v}`.
    pub fn singleton(color: V) -> Self {
        CanonForm {
            colors: vec![(color, 1)],
            edges: Vec::new(),
        }
    }

    /// Total number of vertices described by the form.
    pub fn n(&self) -> usize {
        self.colors.iter().map(|&(_, c)| c as usize).sum()
    }

    /// Number of edges in the form.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Lexicographic comparison (same as `Ord`, provided for readability at
    /// call sites that mirror the paper's `min` selection).
    pub fn cmp_lex(&self, other: &CanonForm) -> Ordering {
        self.cmp(other)
    }

    /// A borrowed view of this form — the exchange type for storage that
    /// keeps many forms in shared pools (the AutoTree in `dvicl-core`).
    pub fn view(&self) -> FormRef<'_> {
        FormRef {
            colors: &self.colors,
            edges: &self.edges,
        }
    }
}

/// A borrowed certificate: [`CanonForm`] with the two payload vectors
/// replaced by slices.
///
/// Pooled form storage (one `(start, len)` range per node into shared
/// arrays) hands out `FormRef`s instead of `&CanonForm`; the derived
/// `Ord` is the same lexicographic (colors, then edges) total order as
/// `CanonForm`'s, since a `Vec` and a slice compare identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FormRef<'a> {
    /// Sorted `(color, multiplicity)` runs of the vertex color multiset.
    pub colors: &'a [(V, V)],
    /// Sorted relabeled edges `(γ(u), γ(v))` with first < second.
    pub edges: &'a [(V, V)],
}

impl FormRef<'_> {
    /// Materializes an owned [`CanonForm`].
    pub fn to_form(&self) -> CanonForm {
        CanonForm {
            colors: self.colors.to_vec(),
            edges: self.edges.to_vec(),
        }
    }

    /// Total number of vertices described by the form.
    pub fn n(&self) -> usize {
        self.colors.iter().map(|&(_, c)| c as usize).sum()
    }

    /// Number of edges in the form.
    pub fn m(&self) -> usize {
        self.edges.len()
    }
}

impl PartialEq<CanonForm> for FormRef<'_> {
    fn eq(&self, other: &CanonForm) -> bool {
        *self == other.view()
    }
}

impl PartialEq<FormRef<'_>> for CanonForm {
    fn eq(&self, other: &FormRef<'_>) -> bool {
        self.view() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::named;
    use crate::Perm;

    #[test]
    fn isomorphic_labelings_give_equal_forms() {
        let g = named::cycle(5);
        let pi = Coloring::unit(5);
        let id: Vec<V> = (0..5).collect();
        let f1 = CanonForm::of_colored_graph(&g, &pi, &id);
        // Relabel the cycle by rotation: the rotated graph with the rotated
        // labeling describes the same abstract colored graph.
        let rot = Perm::from_cycles(5, &[&[0, 1, 2, 3, 4]]).unwrap();
        let g2 = g.permuted(&rot);
        // labels2[v] = position of v in the canonical order chosen for g2;
        // choosing labels2 = rot⁻¹ maps g2 back onto g's edge list.
        let labels2: Vec<V> = (0..5).map(|v| rot.inverse().apply(v)).collect();
        let f2 = CanonForm::of_colored_graph(&g2, &pi, &labels2);
        assert_eq!(f1, f2);
    }

    #[test]
    fn different_graphs_differ() {
        let pi = Coloring::unit(4);
        let id: Vec<V> = (0..4).collect();
        let c4 = CanonForm::of_colored_graph(&named::cycle(4), &pi, &id);
        let p4 = CanonForm::of_colored_graph(&named::path(4), &pi, &id);
        assert_ne!(c4, p4);
    }

    #[test]
    fn color_runs_participate_in_order() {
        let g = Graph::empty(2);
        let f1 = CanonForm::new(&g, &[0, 0], &[0, 1]);
        let f2 = CanonForm::new(&g, &[0, 1], &[0, 1]);
        assert_ne!(f1, f2);
        // (0,2) run sorts after the (0,1),(1,1) runs lexicographically.
        assert!(f2 < f1);
    }

    #[test]
    fn singleton_form() {
        let f = CanonForm::singleton(7);
        assert_eq!(f.n(), 1);
        assert_eq!(f.m(), 0);
        assert_eq!(f.colors, vec![(7, 1)]);
    }

    #[test]
    fn sparse_labels_allowed() {
        let g = named::path(3);
        let f = CanonForm::new(&g, &[0, 0, 0], &[10, 50, 90]);
        assert_eq!(f.edges, vec![(10, 50), (50, 90)]);
        assert_eq!(f.n(), 3);
    }
}
