//! graph6 encoding/decoding — the compact ASCII interchange format of the
//! nauty ecosystem (McKay's `formats.txt`). Supporting it makes the
//! library interoperable with the corpora the original tools ship with.
//!
//! Format recap: the vertex count is `n+63` as one byte for `n ≤ 62`,
//! `126` + 3 bytes (18 bits big-endian, 6 bits each `+63`) for
//! `n ≤ 258047`, or `126 126` + 6 bytes for larger `n`; then the upper
//! triangle of the adjacency matrix in column order
//! (`x_{0,1}, x_{0,2}, x_{1,2}, x_{0,3}, …`), packed big-endian into 6-bit
//! groups, each `+63`.

use crate::{Graph, GraphBuilder, V};
use std::fmt;

/// Error decoding a graph6 string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Graph6Error {
    /// A byte outside the printable graph6 range (63..=126).
    BadByte(u8),
    /// The string ended before the declared adjacency bits did.
    Truncated,
    /// Trailing bytes after the adjacency bits.
    TrailingData,
}

impl fmt::Display for Graph6Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Graph6Error::BadByte(b) => write!(f, "invalid graph6 byte {b:#04x}"),
            Graph6Error::Truncated => write!(f, "graph6 string too short"),
            Graph6Error::TrailingData => write!(f, "trailing bytes after graph6 data"),
        }
    }
}

impl std::error::Error for Graph6Error {}

/// Encodes a graph as a graph6 ASCII string.
pub fn to_graph6(g: &Graph) -> String {
    let n = g.n();
    let mut out: Vec<u8> = Vec::new();
    if n <= 62 {
        out.push(n as u8 + 63);
    } else if n <= 258_047 {
        out.push(126);
        for shift in [12, 6, 0] {
            out.push(((n >> shift) & 0x3f) as u8 + 63);
        }
    } else {
        out.push(126);
        out.push(126);
        for shift in [30, 24, 18, 12, 6, 0] {
            out.push(((n >> shift) & 0x3f) as u8 + 63);
        }
    }
    // Upper-triangle bits in column order, 6 per byte, zero-padded.
    let mut acc = 0u8;
    let mut bits = 0u8;
    for j in 1..n as V {
        for i in 0..j {
            acc = acc << 1 | g.has_edge(i, j) as u8;
            bits += 1;
            if bits == 6 {
                out.push(acc + 63);
                acc = 0;
                bits = 0;
            }
        }
    }
    if bits > 0 {
        out.push((acc << (6 - bits)) + 63);
    }
    String::from_utf8(out).expect("graph6 bytes are printable ASCII")
}

/// Decodes a graph6 ASCII string.
pub fn from_graph6(s: &str) -> Result<Graph, Graph6Error> {
    let bytes = s.trim_end().as_bytes();
    let mut pos = 0usize;
    let take = |pos: &mut usize| -> Result<u64, Graph6Error> {
        let b = *bytes.get(*pos).ok_or(Graph6Error::Truncated)?;
        *pos += 1;
        if !(63..=126).contains(&b) {
            return Err(Graph6Error::BadByte(b));
        }
        Ok((b - 63) as u64)
    };
    let n: usize = {
        let first = take(&mut pos)?;
        if first != 63 {
            first as usize
        } else {
            // 126 encodes as value 63.
            let second = take(&mut pos)?;
            if second != 63 {
                let mut n = second;
                for _ in 0..2 {
                    n = n << 6 | take(&mut pos)?;
                }
                n as usize
            } else {
                let mut n = 0u64;
                for _ in 0..6 {
                    n = n << 6 | take(&mut pos)?;
                }
                n as usize
            }
        }
    };
    let total_bits = n * n.saturating_sub(1) / 2;
    let mut b = GraphBuilder::new(n);
    let mut consumed = 0usize;
    let mut cur = 0u64;
    let mut avail = 0u8;
    'outer: for j in 1..n as V {
        for i in 0..j {
            if avail == 0 {
                cur = take(&mut pos)?;
                avail = 6;
            }
            avail -= 1;
            if cur >> avail & 1 == 1 {
                b.add_edge(i, j);
            }
            consumed += 1;
            if consumed == total_bits {
                break 'outer;
            }
        }
    }
    if pos != bytes.len() {
        return Err(Graph6Error::TrailingData);
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::named;

    #[test]
    fn known_strings() {
        // Canonical examples from McKay's formats.txt and common usage.
        assert_eq!(to_graph6(&named::complete(4)), "C~");
        assert_eq!(to_graph6(&Graph::empty(5)), "D??");
        assert_eq!(from_graph6("C~").unwrap(), named::complete(4));
        let p4 = from_graph6("CF").unwrap(); // 0-1,1-2? decode & sanity
        assert_eq!(p4.n(), 4);
    }

    #[test]
    fn roundtrip_named_graphs() {
        for g in [
            named::petersen(),
            named::fig1_example(),
            named::frucht(),
            named::complete_bipartite(3, 5),
            Graph::empty(1),
            Graph::empty(0),
            named::star(62), // n = 63: exercises the 3-byte size header
        ] {
            let enc = to_graph6(&g);
            let dec = from_graph6(&enc).expect("own encoding decodes");
            assert_eq!(dec, g, "roundtrip failed for {enc}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_graph6("").is_err());
        assert!(from_graph6("C").is_err()); // K4 header without bits
        assert!(from_graph6("C~~").is_err()); // trailing data
        assert!(from_graph6("C\u{7}").is_err()); // control byte
    }

    #[test]
    fn large_header() {
        let g = Graph::empty(100);
        let enc = to_graph6(&g);
        assert!(enc.starts_with('~'));
        assert_eq!(from_graph6(&enc).unwrap().n(), 100);
    }
}
