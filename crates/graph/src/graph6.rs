//! graph6 encoding/decoding — the compact ASCII interchange format of the
//! nauty ecosystem (McKay's `formats.txt`). Supporting it makes the
//! library interoperable with the corpora the original tools ship with.
//!
//! Format recap: the vertex count is `n+63` as one byte for `n ≤ 62`,
//! `126` + 3 bytes (18 bits big-endian, 6 bits each `+63`) for
//! `n ≤ 258047`, or `126 126` + 6 bytes for larger `n`; then the upper
//! triangle of the adjacency matrix in column order
//! (`x_{0,1}, x_{0,2}, x_{1,2}, x_{0,3}, …`), packed big-endian into 6-bit
//! groups, each `+63`.
//!
//! Decoding returns typed [`DviclError`]s and never panics; in particular
//! an oversized header (a declared `n` the payload cannot possibly back)
//! is rejected *before* any allocation proportional to `n`, so a
//! seven-byte string cannot demand gigabytes.

use crate::{Graph, GraphBuilder, V};
use dvicl_govern::{DviclError, ParseError, ParseErrorKind};

fn g6_err(kind: ParseErrorKind, detail: impl Into<String>) -> DviclError {
    DviclError::Parse(ParseError::new(kind, detail))
}

/// Encodes a graph as a graph6 ASCII string.
pub fn to_graph6(g: &Graph) -> String {
    let n = g.n();
    let mut out: Vec<u8> = Vec::new();
    if n <= 62 {
        // dvicl-lint: allow(narrowing-cast) -- guarded by n <= 62
        out.push(n as u8 + 63);
    } else if n <= 258_047 {
        out.push(126);
        for shift in [12, 6, 0] {
            // dvicl-lint: allow(narrowing-cast) -- masked with 0x3f, so the value is at most 63
            out.push(((n >> shift) & 0x3f) as u8 + 63);
        }
    } else {
        out.push(126);
        out.push(126);
        for shift in [30, 24, 18, 12, 6, 0] {
            // dvicl-lint: allow(narrowing-cast) -- masked with 0x3f, so the value is at most 63
            out.push(((n >> shift) & 0x3f) as u8 + 63);
        }
    }
    // Upper-triangle bits in column order, 6 per byte, zero-padded.
    let mut acc = 0u8;
    let mut bits = 0u8;
    for j in 1..n as V {
        for i in 0..j {
            // dvicl-lint: allow(narrowing-cast) -- bool as u8 is 0 or 1
            acc = acc << 1 | g.has_edge(i, j) as u8;
            bits += 1;
            if bits == 6 {
                out.push(acc + 63);
                acc = 0;
                bits = 0;
            }
        }
    }
    if bits > 0 {
        out.push((acc << (6 - bits)) + 63);
    }
    // Every pushed byte is 63..=126, i.e. printable ASCII.
    out.into_iter().map(char::from).collect()
}

/// Decodes a graph6 ASCII string.
pub fn from_graph6(s: &str) -> Result<Graph, DviclError> {
    dvicl_govern::fault::checkpoint("graph.graph6")?;
    let bytes = s.trim_end().as_bytes();
    if bytes.is_empty() {
        return Err(g6_err(ParseErrorKind::Empty, "empty graph6 string"));
    }
    let mut pos = 0usize;
    let take = |pos: &mut usize| -> Result<u64, DviclError> {
        let b = *bytes.get(*pos).ok_or_else(|| {
            g6_err(
                ParseErrorKind::Truncated,
                "graph6 string ended before the declared data",
            )
        })?;
        *pos += 1;
        if !(63..=126).contains(&b) {
            return Err(g6_err(
                ParseErrorKind::BadByte(b),
                "bytes must be in the printable range 63..=126",
            ));
        }
        Ok((b - 63) as u64)
    };
    let n_raw: u64 = {
        let first = take(&mut pos)?;
        if first != 63 {
            first
        } else {
            // 126 encodes as value 63.
            let second = take(&mut pos)?;
            if second != 63 {
                let mut n = second;
                for _ in 0..2 {
                    n = n << 6 | take(&mut pos)?;
                }
                n
            } else {
                let mut n = 0u64;
                for _ in 0..6 {
                    n = n << 6 | take(&mut pos)?;
                }
                n
            }
        }
    };
    if n_raw > V::MAX as u64 {
        return Err(g6_err(
            ParseErrorKind::TooLarge,
            format!("declared vertex count {n_raw} exceeds the supported maximum {}", V::MAX),
        ));
    }
    // Before building anything sized by n, verify the payload actually
    // carries the n(n-1)/2 adjacency bits the header promises. This is
    // the oversized-header guard: 36 bits of header can declare a graph
    // whose adjacency matrix alone needs petabytes.
    let total_bits = (n_raw as u128) * (n_raw as u128).saturating_sub(1) / 2;
    let required_bytes = total_bits.div_ceil(6);
    let available = (bytes.len() - pos) as u128;
    if available < required_bytes {
        return Err(g6_err(
            ParseErrorKind::Truncated,
            format!(
                "header declares {n_raw} vertices ({required_bytes} adjacency bytes) but only \
                 {available} bytes follow"
            ),
        ));
    }
    if available > required_bytes {
        return Err(g6_err(
            ParseErrorKind::TrailingData,
            format!("{} bytes after the adjacency data", available - required_bytes),
        ));
    }
    let n = n_raw as usize;
    let total_bits = total_bits as usize;
    let mut b = GraphBuilder::new(n);
    let mut consumed = 0usize;
    let mut cur = 0u64;
    let mut avail = 0u8;
    'outer: for j in 1..n as V {
        for i in 0..j {
            if avail == 0 {
                cur = take(&mut pos)?;
                avail = 6;
            }
            avail -= 1;
            if cur >> avail & 1 == 1 {
                b.add_edge(i, j);
            }
            consumed += 1;
            if consumed == total_bits {
                break 'outer;
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::named;

    #[test]
    fn known_strings() {
        // Canonical examples from McKay's formats.txt and common usage.
        assert_eq!(to_graph6(&named::complete(4)), "C~");
        assert_eq!(to_graph6(&Graph::empty(5)), "D??");
        assert_eq!(from_graph6("C~").unwrap(), named::complete(4));
        let p4 = from_graph6("CF").unwrap(); // 0-1,1-2? decode & sanity
        assert_eq!(p4.n(), 4);
    }

    #[test]
    fn roundtrip_named_graphs() {
        for g in [
            named::petersen(),
            named::fig1_example(),
            named::frucht(),
            named::complete_bipartite(3, 5),
            Graph::empty(1),
            Graph::empty(0),
            named::star(62), // n = 63: exercises the 3-byte size header
        ] {
            let enc = to_graph6(&g);
            let dec = from_graph6(&enc).expect("own encoding decodes");
            assert_eq!(dec, g, "roundtrip failed for {enc}");
        }
    }

    #[test]
    fn rejects_garbage_with_typed_errors() {
        let check = |s: &str, want: fn(&ParseErrorKind) -> bool| {
            match from_graph6(s) {
                Err(DviclError::Parse(p)) => assert!(want(&p.kind), "wrong kind {:?} for {s:?}", p.kind),
                other => panic!("expected parse error for {s:?}, got {other:?}"),
            }
        };
        check("", |k| matches!(k, ParseErrorKind::Empty));
        check("C", |k| matches!(k, ParseErrorKind::Truncated)); // K4 header without bits
        check("C~~", |k| matches!(k, ParseErrorKind::TrailingData)); // trailing data
        check("C\u{7}", |k| matches!(k, ParseErrorKind::BadByte(7))); // control byte
    }

    #[test]
    fn oversized_header_is_rejected_before_allocation() {
        // "~~" + 6 bytes of '~' declares n = 2^36 - 1; honoring it would
        // allocate tens of gigabytes before noticing the missing payload.
        let bomb = "~~~~~~~~";
        match from_graph6(bomb) {
            Err(DviclError::Parse(p)) => {
                assert!(matches!(
                    p.kind,
                    ParseErrorKind::TooLarge | ParseErrorKind::Truncated
                ));
            }
            other => panic!("header bomb must be rejected, got {other:?}"),
        }
        // A merely large-but-plausible header with no payload: "~WY_"
        // declares n = 100000 and then ends. Must be Truncated, cheaply.
        assert!(matches!(
            from_graph6("~WY_"),
            Err(DviclError::Parse(ParseError {
                kind: ParseErrorKind::Truncated,
                ..
            }))
        ));
    }

    #[test]
    fn large_header() {
        let g = Graph::empty(100);
        let enc = to_graph6(&g);
        assert!(enc.starts_with('~'));
        assert_eq!(from_graph6(&enc).unwrap().n(), 100);
    }
}
