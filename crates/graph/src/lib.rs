//! Graph substrate for the DviCL reproduction.
//!
//! This crate provides the foundational data types shared by every other
//! crate in the workspace:
//!
//! * [`Graph`] — an immutable undirected simple graph in CSR (compressed
//!   sparse row) form, the representation used by the refinement and
//!   canonical-labeling engines.
//! * [`Perm`] — dense vertex permutations with cycle-notation parsing and
//!   printing, composition, and inversion (the paper's `γ`).
//! * [`Coloring`] — ordered partitions of the vertex set (the paper's `π`),
//!   with the finer-than relation, equitability checking, and projection.
//! * [`CanonForm`] — the totally ordered certificate `(G, π)^γ` represented
//!   as a color multiset plus a sorted relabeled edge list.
//! * [`io`] — plain-text edge-list reading and writing.
//! * [`graph6`] — the nauty ecosystem's compact ASCII format.
//! * [`named`] — constructors for well-known graphs with known automorphism
//!   groups, used pervasively in tests and examples.
//!
//! Vertices are `u32` indices in `0..n`. All graphs are simple (no
//! self-loops, no parallel edges) and undirected, matching the problem
//! definition in Section 2 of the paper.

#![warn(missing_docs)]

mod coloring;
mod fingerprint;
mod form;
mod graph;
pub mod graph6;
pub mod io;
pub mod named;
mod perm;

pub use coloring::Coloring;
pub use fingerprint::Fingerprint;
pub use form::{CanonForm, FormRef};
pub use graph::{Graph, GraphBuilder};
pub use perm::Perm;

/// Vertex identifier. Graphs in this workspace address vertices as dense
/// `u32` indices in `0..n`.
pub type V = u32;
