//! Constructors for well-known graphs.
//!
//! These are used throughout the workspace's tests (they have known
//! automorphism groups) and by the dataset crate. The module also contains
//! the worked example graphs from the paper's figures.

use crate::{Graph, GraphBuilder, V};

/// The 8-vertex example graph of Fig. 1(a).
///
/// Vertices 0–3 form the 4-cycle `0-1-2-3`, vertices 4, 5, 6 form a
/// triangle, and vertex 7 is adjacent to all of 0–6. Its automorphism group
/// is `D_4 × S_3` (order 48) with orbits `{0,1,2,3}`, `{4,5,6}`, `{7}`.
pub fn fig1_example() -> Graph {
    Graph::from_edges(
        8,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            (4, 5),
            (5, 6),
            (6, 4),
            (0, 7),
            (1, 7),
            (2, 7),
            (3, 7),
            (4, 7),
            (5, 7),
            (6, 7),
        ],
    )
}

/// The 14-vertex example graph used for the AutoTree illustration of
/// Fig. 3: a center vertex 1 with three symmetric "wings".
///
/// Each wing `i ∈ {0,1,2}` has a pair `(aᵢ, bᵢ)` where `aᵢ` is adjacent to
/// the center and to `bᵢ`; the three `aᵢ` form a triangle (the clique axis
/// `a₁₁` of the paper); additionally each wing carries a second pendant pair
/// mirroring the paper's three-level structure. The exact figure's adjacency
/// cannot be recovered pixel-perfectly from the text, so this graph is built
/// to exhibit the same AutoTree phenomenology: a singleton axis at the root,
/// a clique axis one level down, and symmetric leaf groups of size 3.
pub fn fig3_example() -> Graph {
    // Center: 1.
    // Wing A: 2 (clique member), pendant chain 3-2, extra leaf pair (4,5):
    //   per wing w with clique member c: vertices c, x, y, z where
    //   edges: (1,c) via clique member? We follow a concrete readable shape:
    // Clique members: 2, 4, 6 (triangle; each adjacent to center 1).
    // Each clique member c has a pendant path c - p - q.
    let mut b = GraphBuilder::new(14);
    let center: V = 1;
    let wings: [(V, V, V); 3] = [(2, 3, 0), (4, 5, 7), (6, 8, 9)];
    // Clique among {2,4,6}.
    b.add_edge(2, 4);
    b.add_edge(4, 6);
    b.add_edge(2, 6);
    for &(c, p, q) in &wings {
        b.add_edge(center, c);
        b.add_edge(c, p);
        b.add_edge(p, q);
    }
    // A second symmetric group hanging off the center: three pendant
    // vertices 10, 11 on a shared stalk 12-13 is *not* symmetric; instead
    // attach a mirrored pendant pair to the center so the root has more
    // than one child class.
    b.add_edge(center, 10);
    b.add_edge(10, 11);
    b.add_edge(center, 12);
    b.add_edge(12, 13);
    b.build()
}

/// Complete graph `K_n`. `|Aut| = n!`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n as V {
        for v in (u + 1)..n as V {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Cycle `C_n` (requires `n >= 3`). `|Aut| = 2n`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut b = GraphBuilder::new(n);
    for v in 0..n as V {
        b.add_edge(v, ((v as usize + 1) % n) as V);
    }
    b.build()
}

/// Path `P_n` on `n` vertices. `|Aut| = 2` for `n >= 2`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n as V {
        b.add_edge(v - 1, v);
    }
    b.build()
}

/// Star `K_{1,n}` with center 0. `|Aut| = n!`.
pub fn star(leaves: usize) -> Graph {
    let mut b = GraphBuilder::new(leaves + 1);
    for v in 1..=leaves as V {
        b.add_edge(0, v);
    }
    b.build()
}

/// Complete bipartite graph `K_{a,b}` with parts `0..a` and `a..a+b`.
/// `|Aut| = a!·b!` for `a ≠ b` and `2·(a!)²` for `a = b`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = GraphBuilder::new(a + b);
    for u in 0..a as V {
        for v in a as V..(a + b) as V {
            g.add_edge(u, v);
        }
    }
    g.build()
}

/// The Petersen graph. `|Aut| = 120`.
pub fn petersen() -> Graph {
    let mut b = GraphBuilder::new(10);
    for v in 0..5 as V {
        b.add_edge(v, (v + 1) % 5); // outer cycle
        b.add_edge(v + 5, (v + 2) % 5 + 5); // inner pentagram
        b.add_edge(v, v + 5); // spokes
    }
    b.build()
}

/// The `d`-dimensional hypercube `Q_d`. `|Aut| = 2^d · d!`.
pub fn hypercube(d: usize) -> Graph {
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1 << bit);
            if w > v {
                b.add_edge(v as V, w as V);
            }
        }
    }
    b.build()
}

/// The Frucht graph: the smallest cubic graph with trivial automorphism
/// group (`|Aut| = 1`).
pub fn frucht() -> Graph {
    Graph::from_edges(
        12,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 0),
            (0, 7),
            (1, 7),
            (2, 8),
            (3, 9),
            (4, 9),
            (5, 10),
            (6, 10),
            (7, 11),
            (8, 11),
            (8, 9),
            (10, 11),
        ],
    )
}

/// Circulant graph `C_n(S)`: vertex `v` adjacent to `v ± s (mod n)` for each
/// `s ∈ S`. Vertex-transitive; `|Aut| >= n`.
pub fn circulant(n: usize, jumps: &[usize]) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for &s in jumps {
            let s = s % n;
            if s == 0 {
                continue;
            }
            b.add_edge(v as V, ((v + s) % n) as V);
        }
    }
    b.build()
}

/// 2-dimensional wrapped grid (torus) of `rows × cols`.
pub fn torus2(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs >= 3 per dimension");
    let idx = |r: usize, c: usize| (r * cols + c) as V;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(idx(r, c), idx((r + 1) % rows, c));
            b.add_edge(idx(r, c), idx(r, (c + 1) % cols));
        }
    }
    b.build()
}

/// Balanced `r`-ary rooted tree of the given depth (depth 0 = single root).
/// Rich in symmetry: `|Aut|` is an iterated wreath-product order.
pub fn rary_tree(r: usize, depth: usize) -> Graph {
    let mut edges = Vec::new();
    let mut level: Vec<V> = vec![0];
    let mut next_id: V = 1;
    for _ in 0..depth {
        let mut next_level = Vec::new();
        for &p in &level {
            for _ in 0..r {
                edges.push((p, next_id));
                next_level.push(next_id);
                next_id += 1;
            }
        }
        level = next_level;
    }
    Graph::from_edges(next_id as usize, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(complete(5).m(), 10);
        assert_eq!(cycle(6).m(), 6);
        assert_eq!(path(4).m(), 3);
        assert_eq!(star(7).m(), 7);
        assert_eq!(complete_bipartite(3, 4).m(), 12);
        assert_eq!(petersen().m(), 15);
        assert_eq!(hypercube(3).m(), 12);
        assert_eq!(frucht().m(), 18);
        assert_eq!(torus2(3, 4).m(), 24);
        assert_eq!(rary_tree(2, 3).n(), 15);
        assert_eq!(rary_tree(2, 3).m(), 14);
    }

    #[test]
    fn regularity() {
        for v in 0..10 {
            assert_eq!(petersen().degree(v), 3);
            assert_eq!(frucht().degree(v), 3);
        }
        for v in 0..12 {
            assert_eq!(frucht().degree(v), 3);
        }
        for v in 0..8 {
            assert_eq!(hypercube(3).degree(v), 3);
        }
        let t = torus2(4, 5);
        for v in 0..20 {
            assert_eq!(t.degree(v), 4);
        }
    }

    #[test]
    fn circulant_is_regular() {
        let g = circulant(10, &[1, 3]);
        for v in 0..10 {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn fig1_is_the_paper_graph() {
        let g = fig1_example();
        // Structural equivalences asserted in Section 2: N(0) = N(2) and
        // N(1) = N(3); 4 and 5 are NOT structurally equivalent.
        assert_eq!(g.neighbors(0), g.neighbors(2));
        assert_eq!(g.neighbors(1), g.neighbors(3));
        assert_ne!(g.neighbors(4), g.neighbors(5));
    }

    #[test]
    fn fig3_is_connected_with_center_degree() {
        let g = fig3_example();
        assert!(g.is_connected());
        assert_eq!(g.degree(1), 5); // three clique wings + two pendant stalks
    }
}

/// The Kneser graph `K(n, k)`: vertices are the k-subsets of `{0..n}`,
/// adjacent iff disjoint. `K(5, 2)` is the Petersen graph;
/// `|Aut| = n!` for `n ≥ 2k + 1`.
pub fn kneser(n: usize, k: usize) -> Graph {
    assert!(k >= 1 && n >= 2 * k, "Kneser needs n >= 2k");
    let subsets = k_subsets(n, k);
    let mut b = GraphBuilder::new(subsets.len());
    for (i, a) in subsets.iter().enumerate() {
        for (j, c) in subsets.iter().enumerate().skip(i + 1) {
            if a & c == 0 {
                b.add_edge(i as V, j as V);
            }
        }
    }
    b.build()
}

/// The Johnson graph `J(n, k)`: k-subsets adjacent iff they share `k-1`
/// elements. `|Aut| = n!` for `n ≠ 2k`.
pub fn johnson(n: usize, k: usize) -> Graph {
    assert!(k >= 1 && n >= k, "Johnson needs n >= k");
    let subsets = k_subsets(n, k);
    let mut b = GraphBuilder::new(subsets.len());
    for (i, a) in subsets.iter().enumerate() {
        for (j, c) in subsets.iter().enumerate().skip(i + 1) {
            if (a ^ c).count_ones() == 2 {
                b.add_edge(i as V, j as V);
            }
        }
    }
    b.build()
}

fn k_subsets(n: usize, k: usize) -> Vec<u64> {
    assert!(n <= 63, "subset universe limited to 63 elements");
    (0u64..1 << n).filter(|s| s.count_ones() as usize == k).collect()
}

/// The Paley graph of prime order `q ≡ 1 (mod 4)`: vertices `GF(q)`,
/// adjacent iff the difference is a nonzero square. Self-complementary,
/// strongly regular, vertex-transitive with `|Aut| = q(q-1)/2`.
pub fn paley(q: usize) -> Graph {
    assert!(q % 4 == 1, "Paley needs q ≡ 1 (mod 4)");
    assert!(
        (2..q).take_while(|d| d * d <= q).all(|d| !q.is_multiple_of(d)),
        "this construction implements prime q"
    );
    let mut is_square = vec![false; q];
    for x in 1..q {
        is_square[x * x % q] = true;
    }
    let mut b = GraphBuilder::new(q);
    for a in 0..q {
        for c in (a + 1)..q {
            if is_square[(c - a) % q] {
                b.add_edge(a as V, c as V);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod extended_tests {
    use super::*;

    #[test]
    fn kneser_5_2_is_petersen() {
        let k = kneser(5, 2);
        assert_eq!(k.n(), 10);
        assert_eq!(k.m(), 15);
        for v in 0..10 {
            assert_eq!(k.degree(v), 3);
        }
    }

    #[test]
    fn johnson_counts() {
        // J(4,2): octahedron = K_{2,2,2}: 6 vertices, 12 edges, 4-regular.
        let j = johnson(4, 2);
        assert_eq!(j.n(), 6);
        assert_eq!(j.m(), 12);
        for v in 0..6 {
            assert_eq!(j.degree(v), 4);
        }
    }

    #[test]
    fn paley_is_self_complementary_and_regular() {
        let p = paley(13);
        assert_eq!(p.n(), 13);
        for v in 0..13 {
            assert_eq!(p.degree(v), 6); // (q-1)/2
        }
        // Self-complementarity: same degree sequence as the complement
        // (full isomorphism is checked in the core crate's tests).
        assert_eq!(p.degree_sequence(), p.complement().degree_sequence());
        assert_eq!(p.m(), p.complement().m());
    }
}
