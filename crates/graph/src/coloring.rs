//! Ordered partitions of the vertex set (the paper's colorings `π`).

use crate::{Graph, Perm, V};
use std::fmt;

/// A coloring `π = [V1 | V2 | ... | Vk]`: a disjoint ordered partition of
/// `0..n`.
///
/// Following Section 2 of the paper, the *color* of a vertex in cell `Vi` is
/// `Σ_{j<i} |Vj|`, i.e. the start offset of its cell — so a discrete
/// coloring is exactly a permutation. Within each cell, vertices are kept in
/// ascending order (the internal order never affects any algorithm; it only
/// makes output deterministic).
#[derive(Clone, PartialEq, Eq)]
pub struct Coloring {
    color: Vec<V>,
    cells: Vec<Vec<V>>,
}

impl Coloring {
    /// The unit coloring `[0..n]` (a single cell).
    pub fn unit(n: usize) -> Self {
        if n == 0 {
            return Coloring {
                color: Vec::new(),
                cells: Vec::new(),
            };
        }
        Coloring {
            color: vec![0; n],
            cells: vec![(0..n as V).collect()],
        }
    }

    /// The discrete coloring `[0 | 1 | ... | n-1]` in identity order.
    pub fn discrete(n: usize) -> Self {
        Coloring {
            color: (0..n as V).collect(),
            cells: (0..n as V).map(|v| vec![v]).collect(),
        }
    }

    /// Builds a coloring from ordered cells. Returns `None` unless the cells
    /// form a disjoint partition of `0..n` for `n` = total size.
    pub fn from_cells(cells: Vec<Vec<V>>) -> Option<Self> {
        let n: usize = cells.iter().map(|c| c.len()).sum();
        let mut color = vec![V::MAX; n];
        let mut offset = 0 as V;
        let mut cells = cells;
        for cell in &mut cells {
            if cell.is_empty() {
                return None;
            }
            for &v in cell.iter() {
                let v = v as usize;
                if v >= n || color[v] != V::MAX {
                    return None;
                }
                color[v] = offset;
            }
            cell.sort_unstable();
            offset += cell.len() as V;
        }
        Some(Coloring { color, cells })
    }

    /// Builds a coloring from arbitrary per-vertex labels: cells are grouped
    /// by label and ordered by ascending label value.
    pub fn from_labels(labels: &[V]) -> Self {
        let mut order: Vec<V> = (0..labels.len() as V).collect();
        order.sort_unstable_by_key(|&v| (labels[v as usize], v));
        let mut cells: Vec<Vec<V>> = Vec::new();
        for &v in &order {
            match cells.last_mut() {
                Some(cell) if labels[cell[0] as usize] == labels[v as usize] => cell.push(v),
                _ => cells.push(vec![v]),
            }
        }
        // dvicl-lint: allow(panic-freedom) -- `order` is a permutation of 0..n and the grouping only splits it, so the cells partition 0..n
        Coloring::from_cells(cells).expect("grouped labels always form a partition")
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.color.len()
    }

    /// The ordered cells.
    pub fn cells(&self) -> &[Vec<V>] {
        &self.cells
    }

    /// Number of cells `k`.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of singleton cells.
    pub fn num_singletons(&self) -> usize {
        self.cells.iter().filter(|c| c.len() == 1).count()
    }

    /// The color `π(v)` (start offset of `v`'s cell).
    #[inline]
    pub fn color_of(&self, v: V) -> V {
        self.color[v as usize]
    }

    /// The size of the cell containing `v`.
    ///
    /// Costs a binary search over the cell start offsets; colors *are* the
    /// start offsets, so the search runs over a strictly increasing key.
    pub fn cell_len_of(&self, v: V) -> usize {
        let c = self.color[v as usize];
        // A cell's start offset is the color of any of its members, so the
        // search key is `color_of(cells[i][0])`, strictly increasing.
        let idx = self
            .cells
            .partition_point(|cell| self.color[cell[0] as usize] <= c);
        self.cells[idx - 1].len()
    }

    /// True iff `v` lies in a singleton cell.
    pub fn is_singleton(&self, v: V) -> bool {
        self.cell_len_of(v) == 1
    }

    /// The per-vertex color array.
    pub fn colors(&self) -> &[V] {
        &self.color
    }

    /// True iff every cell is a singleton (`k = n`).
    pub fn is_discrete(&self) -> bool {
        self.cells.len() == self.color.len()
    }

    /// True iff there is a single cell (`k = 1`, or `n = 0`).
    pub fn is_unit(&self) -> bool {
        self.cells.len() <= 1
    }

    /// True iff `self ⪯ other`: every cell of `self` is a subset of a cell
    /// of `other`, and the cell order is compatible (colors are
    /// non-decreasing refinements).
    pub fn is_finer_or_equal(&self, other: &Coloring) -> bool {
        if self.n() != other.n() {
            return false;
        }
        // Every cell of self must lie inside one cell of other...
        for cell in &self.cells {
            let c = other.color_of(cell[0]);
            if cell.iter().any(|&v| other.color_of(v) != c) {
                return false;
            }
        }
        // ...and splitting must preserve the relative order of other's cells.
        let mut pairs: Vec<(V, V)> = self
            .cells
            .iter()
            .map(|cell| (self.color_of(cell[0]), other.color_of(cell[0])))
            .collect();
        pairs.sort_unstable();
        pairs.windows(2).all(|w| w[0].1 <= w[1].1)
    }

    /// True iff `π` is equitable with respect to `g`: within every cell, all
    /// vertices have the same number of neighbors in every cell.
    pub fn is_equitable(&self, g: &Graph) -> bool {
        assert_eq!(self.n(), g.n());
        let n = self.n();
        let mut counts = vec![0usize; n];
        let mut reference = vec![0usize; n];
        for cell in &self.cells {
            if cell.len() == 1 {
                continue;
            }
            for (i, &v) in cell.iter().enumerate() {
                let store: &mut [usize] = if i == 0 {
                    &mut reference
                } else {
                    &mut counts
                };
                let mut touched = Vec::new();
                for &w in g.neighbors(v) {
                    let c = self.color[w as usize] as usize;
                    if store[c] == 0 {
                        touched.push(c);
                    }
                    store[c] += 1;
                }
                if i > 0 {
                    let ok = touched.iter().all(|&c| counts[c] == reference[c])
                        && g.degree(v) == g.degree(cell[0]);
                    for &c in &touched {
                        counts[c] = 0;
                    }
                    if !ok {
                        return false;
                    }
                }
            }
            for &w0 in g.neighbors(cell[0]) {
                reference[self.color[w0 as usize] as usize] = 0;
            }
        }
        true
    }

    /// The coloring `π^γ` with `π^γ(v) = π(v^γ)`: each cell `Vi` becomes
    /// `Vi^(γ⁻¹)`, in the same order.
    pub fn apply_perm(&self, gamma: &Perm) -> Coloring {
        assert_eq!(gamma.len(), self.n());
        let inv = gamma.inverse();
        let cells = self
            .cells
            .iter()
            .map(|cell| {
                let mut c: Vec<V> = cell.iter().map(|&v| inv.apply(v)).collect();
                c.sort_unstable();
                c
            })
            .collect();
        // dvicl-lint: allow(panic-freedom) -- applying a bijection to every member of a partition yields a partition
        Coloring::from_cells(cells).expect("permuted partition stays a partition")
    }

    /// For a discrete coloring, the corresponding permutation
    /// `π̄ : v ↦ π(v)`. Returns `None` if not discrete.
    pub fn to_perm(&self) -> Option<Perm> {
        if !self.is_discrete() {
            return None;
        }
        Perm::from_image(self.color.clone())
    }

    /// Individualizes vertex `v`: `v` is split out *in front of* the
    /// remainder of its cell. Panics if `v`'s cell is a singleton.
    pub fn individualize(&self, v: V) -> Coloring {
        let mut cells: Vec<Vec<V>> = Vec::with_capacity(self.cells.len() + 1);
        let mut found = false;
        for cell in &self.cells {
            if cell.contains(&v) {
                assert!(cell.len() > 1, "individualizing a singleton cell");
                cells.push(vec![v]);
                cells.push(cell.iter().copied().filter(|&u| u != v).collect());
                found = true;
            } else {
                cells.push(cell.clone());
            }
        }
        assert!(found, "vertex not in coloring");
        // dvicl-lint: allow(panic-freedom) -- splitting one cell into {v} and the rest preserves the partition property
        Coloring::from_cells(cells).expect("individualization keeps a partition")
    }

    /// Projects the coloring onto the vertex subset `verts` (the paper's
    /// `π_g`), relabeling to local indices `0..verts.len()` in the order
    /// given. Cells keep their relative order; empty intersections vanish.
    pub fn project(&self, verts: &[V]) -> Coloring {
        let mut local: Vec<(V, V)> = verts
            .iter()
            .enumerate()
            .map(|(i, &v)| (self.color_of(v), i as V))
            .collect();
        local.sort_unstable();
        let mut cells: Vec<Vec<V>> = Vec::new();
        let mut last = V::MAX;
        for (c, i) in local {
            match cells.last_mut() {
                Some(cell) if c == last => cell.push(i),
                _ => {
                    cells.push(vec![i]);
                    last = c;
                }
            }
        }
        // dvicl-lint: allow(panic-freedom) -- the cells contain each local index 0..verts.len() exactly once, a partition by construction
        Coloring::from_cells(cells).expect("projection forms a partition")
    }
}

impl fmt::Debug for Coloring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Coloring {
    /// Paper notation, e.g. `[0,1,2,3|4,5,6|7]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                write!(f, "|")?;
            }
            for (j, v) in cell.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::named;

    #[test]
    fn unit_and_discrete() {
        let u = Coloring::unit(4);
        assert!(u.is_unit());
        assert!(!u.is_discrete());
        assert_eq!(u.color_of(3), 0);
        let d = Coloring::discrete(4);
        assert!(d.is_discrete());
        assert_eq!(d.color_of(3), 3);
        assert!(d.is_finer_or_equal(&u));
        assert!(!u.is_finer_or_equal(&d));
    }

    #[test]
    fn colors_are_cell_offsets() {
        // π2 = [0,1,2,3 | 4,5,6 | 7] from the paper.
        let pi = Coloring::from_cells(vec![vec![0, 1, 2, 3], vec![4, 5, 6], vec![7]]).unwrap();
        assert_eq!(pi.color_of(2), 0);
        assert_eq!(pi.color_of(5), 4);
        assert_eq!(pi.color_of(7), 7);
        assert_eq!(pi.to_string(), "[0,1,2,3|4,5,6|7]");
    }

    #[test]
    fn rejects_bad_partitions() {
        assert!(Coloring::from_cells(vec![vec![0, 1], vec![1]]).is_none());
        assert!(Coloring::from_cells(vec![vec![0, 2]]).is_none());
        assert!(Coloring::from_cells(vec![vec![0], vec![]]).is_none());
    }

    #[test]
    fn paper_equitability_examples() {
        let g = named::fig1_example();
        // π1 = [0,1,2,3,4,5,6|7] is equitable (paper, Section 2).
        let pi1 =
            Coloring::from_cells(vec![vec![0, 1, 2, 3, 4, 5, 6], vec![7]]).unwrap();
        assert!(pi1.is_equitable(&g));
        // π2 = [0,1,2,3|4,5,6|7] is equitable.
        let pi2 = Coloring::from_cells(vec![vec![0, 1, 2, 3], vec![4, 5, 6], vec![7]]).unwrap();
        assert!(pi2.is_equitable(&g));
        // π3 = [0,1,2,3|4,5,6,7] is not equitable.
        let pi3 = Coloring::from_cells(vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]]).unwrap();
        assert!(!pi3.is_equitable(&g));
    }

    #[test]
    fn apply_perm_matches_paper_example() {
        // π3 = [0,1,2|3,4,5,6|7], γ3 = (1,3)(5,7) → π3^γ3 = [0,2,3|1,4,6,7|5].
        let pi3 = Coloring::from_cells(vec![vec![0, 1, 2], vec![3, 4, 5, 6], vec![7]]).unwrap();
        let g3 = Perm::from_cycles(8, &[&[1, 3], &[5, 7]]).unwrap();
        let out = pi3.apply_perm(&g3);
        assert_eq!(out.to_string(), "[0,2,3|1,4,6,7|5]");
    }

    #[test]
    fn discrete_coloring_to_perm_matches_paper() {
        // [0|3|2|1|4|6|5|7] corresponds to (1,3)(5,6).
        let pi = Coloring::from_cells(vec![
            vec![0],
            vec![3],
            vec![2],
            vec![1],
            vec![4],
            vec![6],
            vec![5],
            vec![7],
        ])
        .unwrap();
        let p = pi.to_perm().unwrap();
        assert_eq!(p, Perm::from_cycles(8, &[&[1, 3], &[5, 6]]).unwrap());
    }

    #[test]
    fn individualize_splits_in_front() {
        let pi = Coloring::from_cells(vec![vec![0, 1, 2, 3], vec![4, 5, 6], vec![7]]).unwrap();
        let out = pi.individualize(4);
        assert_eq!(out.to_string(), "[0,1,2,3|4|5,6|7]");
        assert!(out.is_finer_or_equal(&pi));
    }

    #[test]
    fn projection_keeps_cell_order() {
        let pi = Coloring::from_cells(vec![vec![0, 1, 2, 3], vec![4, 5, 6], vec![7]]).unwrap();
        // Project onto {2, 5, 7, 3} in that (local) order.
        let pg = pi.project(&[2, 5, 7, 3]);
        // Locals: 0 (=2, color 0), 3 (=3, color 0), 1 (=5, color 4), 2 (=7).
        assert_eq!(pg.to_string(), "[0,3|1|2]");
    }

    #[test]
    fn from_labels_groups_by_value() {
        let pi = Coloring::from_labels(&[9, 2, 9, 2, 5]);
        assert_eq!(pi.to_string(), "[1,3|4|0,2]");
        assert_eq!(pi.color_of(4), 2);
    }
}
