//! Immutable undirected simple graphs in CSR form, plus a mutable builder.

use crate::{Perm, V};
use rustc_hash::FxHashSet;
use std::fmt;

/// An immutable undirected simple graph stored in CSR (compressed sparse
/// row) form with sorted adjacency lists.
///
/// Construction deduplicates parallel edges and drops self-loops, matching
/// the paper's preprocessing of its datasets (Section 7, footnote 1).
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    adj: Vec<V>,
}

impl Graph {
    /// Builds a graph on `n` vertices from an edge list. Self-loops are
    /// dropped; parallel edges and orientation duplicates are deduplicated.
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(V, V)]) -> Self {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Adopts already-clean CSR arrays: `offsets` has `n + 1` entries,
    /// every row of `adj` is strictly ascending (sorted, deduplicated, no
    /// self-loop) and symmetric (`v ∈ N(u)` iff `u ∈ N(v)`). This is the
    /// zero-rebuild path used by the arena-backed subgraph store, which
    /// maintains those invariants by construction; they are re-checked
    /// here in debug builds.
    pub fn from_csr(offsets: Vec<usize>, adj: Vec<V>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have n + 1 entries");
        assert_eq!(*offsets.last().unwrap_or(&0), adj.len(), "offsets must cover adj");
        let g = Graph { offsets, adj };
        #[cfg(debug_assertions)]
        {
            let n = g.n();
            assert!(g.offsets.windows(2).all(|w| w[0] <= w[1]), "offsets not monotone");
            for v in 0..n as V {
                let row = g.neighbors(v);
                assert!(
                    row.windows(2).all(|w| w[0] < w[1]),
                    "row {v} not strictly ascending"
                );
                assert!(
                    row.iter().all(|&w| (w as usize) < n && w != v),
                    "row {v} has an out-of-range vertex or self-loop"
                );
                assert!(row.iter().all(|&w| g.has_edge(w, v)), "row {v} not symmetric");
            }
        }
        g
    }

    /// The raw CSR arrays `(offsets, adj)`: row `v` is
    /// `adj[offsets[v]..offsets[v + 1]]`. Lets flat-storage consumers
    /// (the subgraph arena, benchmark meters) copy adjacency wholesale
    /// instead of row by row.
    #[inline]
    pub fn csr(&self) -> (&[usize], &[V]) {
        (&self.offsets, &self.adj)
    }

    /// The empty graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            adj: Vec::new(),
        }
    }

    /// Number of vertices `n = |V|`.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges `m = |E|`.
    #[inline]
    pub fn m(&self) -> usize {
        self.adj.len() / 2
    }

    /// The sorted neighbor list `N(v)`.
    #[inline]
    pub fn neighbors(&self, v: V) -> &[V] {
        &self.adj[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// The degree `d(v) = |N(v)|`.
    #[inline]
    pub fn degree(&self, v: V) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Maximum degree over all vertices; 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.n() as V).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree `2m / n`; 0.0 for the empty graph.
    pub fn avg_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            2.0 * self.m() as f64 / self.n() as f64
        }
    }

    /// True iff `(u, v)` is an edge (binary search over `N(u)`).
    #[inline]
    pub fn has_edge(&self, u: V, v: V) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all edges, each reported once with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (V, V)> + '_ {
        (0..self.n() as V)
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
            .filter(|&(u, v)| u < v)
    }

    /// The relabeled graph `G^γ` where `E^γ = {(u^γ, v^γ) | (u,v) ∈ E}`.
    pub fn permuted(&self, gamma: &Perm) -> Graph {
        assert_eq!(gamma.len(), self.n(), "permutation size mismatch");
        let edges: Vec<(V, V)> = self
            .edges()
            .map(|(u, v)| (gamma.apply(u), gamma.apply(v)))
            .collect();
        Graph::from_edges(self.n(), &edges)
    }

    /// The subgraph induced by `verts` (which need not be sorted), with
    /// vertices relabeled to `0..verts.len()` in the given order. Returns
    /// the induced graph; the caller keeps `verts` as the local→global map.
    ///
    /// Panics if `verts` contains duplicates or out-of-range vertices.
    pub fn induced(&self, verts: &[V]) -> Graph {
        let mut local = Vec::new();
        let mut b = GraphBuilder::new(verts.len());
        self.induced_reusing(verts, &mut local, &mut b)
    }

    /// Buffer-reusing variant of [`Graph::induced`] for callers that
    /// extract many subgraphs: `local` is the local-id scratch map
    /// (resized and reset here, so it may be dirty) and `b` supplies the
    /// edge buffer, whose capacity survives across calls via
    /// [`GraphBuilder::build_reusing`].
    pub fn induced_reusing(&self, verts: &[V], local: &mut Vec<V>, b: &mut GraphBuilder) -> Graph {
        let n = self.n();
        local.clear();
        local.resize(n, V::MAX);
        for (i, &v) in verts.iter().enumerate() {
            assert!((v as usize) < n, "vertex out of range");
            assert!(local[v as usize] == V::MAX, "duplicate vertex in induced set");
            local[v as usize] = i as V;
        }
        b.reset(verts.len());
        for (i, &v) in verts.iter().enumerate() {
            for &w in self.neighbors(v) {
                let lw = local[w as usize];
                if lw != V::MAX && (lw as usize) > i {
                    b.add_edge(i as V, lw);
                }
            }
        }
        b.build_reusing()
    }

    /// Connected components; each component's vertex list is ascending, and
    /// components are ordered by their minimum vertex.
    ///
    /// Diagnostic API (`is_connected`, tests) — the build hot path carves
    /// components flat via `core::SubArena` instead.
    // dvicl-lint: allow(nested-vec-adjacency) -- component vertex lists for cold callers, not per-vertex adjacency
    pub fn components(&self) -> Vec<Vec<V>> {
        let n = self.n();
        let mut comp = vec![usize::MAX; n];
        // dvicl-lint: allow(nested-vec-adjacency) -- same cold-path result container as the return type
        let mut out: Vec<Vec<V>> = Vec::new();
        let mut stack = Vec::new();
        for s in 0..n {
            if comp[s] != usize::MAX {
                continue;
            }
            let id = out.len();
            let mut verts = Vec::new();
            comp[s] = id;
            stack.push(s as V);
            while let Some(v) = stack.pop() {
                verts.push(v);
                for &w in self.neighbors(v) {
                    if comp[w as usize] == usize::MAX {
                        comp[w as usize] = id;
                        stack.push(w);
                    }
                }
            }
            verts.sort_unstable();
            out.push(verts);
        }
        out
    }

    /// True iff the graph is connected (vacuously true for `n <= 1`).
    pub fn is_connected(&self) -> bool {
        self.n() <= 1 || self.components().len() == 1
    }

    /// The complement graph (no self-loops).
    pub fn complement(&self) -> Graph {
        let n = self.n();
        let mut b = GraphBuilder::new(n);
        for u in 0..n as V {
            let nu: FxHashSet<V> = self.neighbors(u).iter().copied().collect();
            for v in (u + 1)..n as V {
                if !nu.contains(&v) {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    }

    /// Disjoint union: `other`'s vertices are shifted by `self.n()`.
    pub fn disjoint_union(&self, other: &Graph) -> Graph {
        let shift = self.n() as V;
        let mut edges: Vec<(V, V)> = self.edges().collect();
        edges.extend(other.edges().map(|(u, v)| (u + shift, v + shift)));
        Graph::from_edges(self.n() + other.n(), &edges)
    }

    /// Degree sequence, descending. A cheap isomorphism invariant used by
    /// tests and the dataset harness.
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut d: Vec<usize> = (0..self.n() as V).map(|v| self.degree(v)).collect();
        d.sort_unstable_by(|a, b| b.cmp(a));
        d
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n(), self.m())
    }
}

/// Incremental builder for [`Graph`]. Accepts edges in any order, with
/// duplicates and self-loops, and produces a clean CSR graph.
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(V, V)>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Pre-allocates for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Records an undirected edge; self-loops are ignored. Panics if an
    /// endpoint is out of range.
    pub fn add_edge(&mut self, u: V, v: V) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for n={}",
            self.n
        );
        if u == v {
            return;
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
    }

    /// Finalizes into a CSR graph, deduplicating edges.
    pub fn build(mut self) -> Graph {
        self.build_reusing()
    }

    /// Non-consuming [`GraphBuilder::build`]: the recorded edges are
    /// drained into the graph but the builder (and its edge-buffer
    /// capacity) stays usable after a [`GraphBuilder::reset`], so loops
    /// that extract many subgraphs allocate the edge buffer once.
    pub fn build_reusing(&mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut offsets = vec![0usize; self.n + 1];
        for &(u, v) in &self.edges {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        for i in 0..self.n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![0 as V; self.edges.len() * 2];
        for &(u, v) in &self.edges {
            adj[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Each row is filled in ascending order of the opposite endpoint for
        // the (u,v) pass but interleaved with the (v,u) pass; sort rows.
        for v in 0..self.n {
            adj[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        self.edges.clear();
        Graph { offsets, adj }
    }

    /// Clears the builder for a new graph on `n` vertices, keeping the
    /// edge buffer's capacity.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.edges.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_graph() -> Graph {
        // The 8-vertex example graph of Fig. 1(a): vertices 0..3 form a
        // 4-cycle 0-1-2-3, vertices 4,5,6 a triangle attached pairwise, and
        // vertex 7 a hub adjacent to all of 0..6.
        crate::named::fig1_example()
    }

    #[test]
    fn builder_dedupes_and_drops_loops() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 0), (2, 2), (1, 2), (1, 2)]);
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(2, 2));
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(5, &[(2, 4), (2, 0), (2, 3), (2, 1)]);
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn fig1_stats() {
        let g = fig1_graph();
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 14);
        assert_eq!(g.degree(7), 7);
        assert_eq!(g.max_degree(), 7);
    }

    #[test]
    fn permuted_by_automorphism_is_equal() {
        let g = fig1_graph();
        // γ1 = (4,5,6) is an automorphism of Fig. 1(a).
        let gamma = Perm::from_cycles(8, &[&[4, 5, 6]]).unwrap();
        assert_eq!(g.permuted(&gamma), g);
        // γ2 = (0,1) is not.
        let gamma2 = Perm::from_cycles(8, &[&[0, 1]]).unwrap();
        assert_ne!(g.permuted(&gamma2), g);
    }

    #[test]
    fn induced_subgraph() {
        let g = fig1_graph();
        let tri = g.induced(&[4, 5, 6]);
        assert_eq!(tri.n(), 3);
        assert_eq!(tri.m(), 3);
        let cyc = g.induced(&[0, 1, 2, 3]);
        assert_eq!(cyc.m(), 4);
        assert_eq!(cyc.degree(0), 2);
    }

    #[test]
    fn components_ordering() {
        let g = Graph::from_edges(6, &[(0, 3), (1, 4)]);
        let comps = g.components();
        assert_eq!(comps, vec![vec![0, 3], vec![1, 4], vec![2], vec![5]]);
        assert!(!g.is_connected());
        assert!(fig1_graph().is_connected());
    }

    #[test]
    fn complement_of_complete_is_empty() {
        let k4 = crate::named::complete(4);
        assert_eq!(k4.complement().m(), 0);
        assert_eq!(Graph::empty(4).complement().m(), 6);
    }

    #[test]
    fn disjoint_union_shifts() {
        let a = crate::named::cycle(3);
        let b = crate::named::path(2);
        let u = a.disjoint_union(&b);
        assert_eq!(u.n(), 5);
        assert_eq!(u.m(), 4);
        assert!(u.has_edge(3, 4));
        assert!(!u.has_edge(2, 3));
    }

    #[test]
    fn edges_iterator_reports_each_once() {
        let g = fig1_graph();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.m());
        for &(u, v) in &edges {
            assert!(u < v);
        }
    }

    #[test]
    fn from_csr_matches_from_edges() {
        let g = fig1_graph();
        let (offsets, adj) = g.csr();
        let g2 = Graph::from_csr(offsets.to_vec(), adj.to_vec());
        assert_eq!(g, g2);
        assert_eq!(Graph::from_csr(vec![0], Vec::new()), Graph::empty(0));
    }

    #[test]
    #[should_panic(expected = "offsets must cover adj")]
    fn from_csr_rejects_short_offsets() {
        let _ = Graph::from_csr(vec![0, 1], Vec::new());
    }

    #[test]
    fn induced_reusing_matches_induced_across_calls() {
        let g = fig1_graph();
        let mut local = Vec::new();
        let mut b = GraphBuilder::new(0);
        for verts in [&[4u32, 5, 6][..], &[0, 1, 2, 3][..], &[7, 0, 4][..]] {
            assert_eq!(g.induced_reusing(verts, &mut local, &mut b), g.induced(verts));
        }
    }

    #[test]
    fn builder_reset_reuses_cleanly() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        let g1 = b.build_reusing();
        assert_eq!(g1.m(), 1);
        b.reset(2);
        b.add_edge(0, 1);
        let g2 = b.build_reusing();
        assert_eq!((g2.n(), g2.m()), (2, 1));
        // No stale edges leak across a reset.
        b.reset(4);
        assert_eq!(b.build_reusing().m(), 0);
    }

    #[test]
    fn degree_sequence_is_descending_invariant() {
        let g = fig1_graph();
        let gamma = Perm::from_cycles(8, &[&[0, 7], &[2, 4]]).unwrap();
        assert_eq!(g.degree_sequence(), g.permuted(&gamma).degree_sequence());
    }
}
