//! Dense vertex permutations (`γ` in the paper).

use crate::V;
use std::fmt;

/// A permutation of `0..n`, stored as its image array: `image[v] = v^γ`.
///
/// The paper applies permutations as a right action (`v^γ`), and composes
/// left-to-right: `v^(γδ) = (v^γ)^δ`. [`Perm::then`] implements that
/// composition.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Perm {
    image: Vec<V>,
}

impl Perm {
    /// The identity permutation `ι` on `n` points.
    pub fn identity(n: usize) -> Self {
        Perm {
            image: (0..n as V).collect(),
        }
    }

    /// Builds a permutation from its image array. Returns `None` if `image`
    /// is not a bijection on `0..image.len()`.
    pub fn from_image(image: Vec<V>) -> Option<Self> {
        let n = image.len();
        let mut seen = vec![false; n];
        for &x in &image {
            let x = x as usize;
            if x >= n || seen[x] {
                return None;
            }
            seen[x] = true;
        }
        Some(Perm { image })
    }

    /// Builds a permutation from its image array without validating
    /// bijectivity. Callers must guarantee `image` is a permutation of
    /// `0..image.len()`; [`Perm::from_image`] is the checked variant.
    pub fn from_image_unchecked(image: Vec<V>) -> Self {
        debug_assert!(Perm::from_image(image.clone()).is_some());
        Perm { image }
    }

    /// Builds a permutation on `n` points from disjoint cycles; vertices not
    /// mentioned are fixed. Returns `None` on out-of-range or repeated
    /// entries.
    pub fn from_cycles(n: usize, cycles: &[&[V]]) -> Option<Self> {
        let mut image: Vec<V> = (0..n as V).collect();
        let mut seen = vec![false; n];
        for cycle in cycles {
            for (i, &v) in cycle.iter().enumerate() {
                let v = v as usize;
                if v >= n || seen[v] {
                    return None;
                }
                seen[v] = true;
                image[v] = cycle[(i + 1) % cycle.len()];
            }
        }
        Some(Perm { image })
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.image.len()
    }

    /// True for the permutation on zero points.
    pub fn is_empty(&self) -> bool {
        self.image.is_empty()
    }

    /// The image `v^γ`.
    #[inline]
    pub fn apply(&self, v: V) -> V {
        self.image[v as usize]
    }

    /// The raw image slice.
    pub fn as_slice(&self) -> &[V] {
        &self.image
    }

    /// Consumes the permutation and returns the image array.
    pub fn into_image(self) -> Vec<V> {
        self.image
    }

    /// Left-to-right composition: `(self.then(other))(v) = other(self(v))`,
    /// i.e. `v^(γδ)` with `γ = self`, `δ = other`.
    pub fn then(&self, other: &Perm) -> Perm {
        assert_eq!(self.len(), other.len(), "composing perms of unequal size");
        Perm {
            image: self.image.iter().map(|&v| other.apply(v)).collect(),
        }
    }

    /// The inverse permutation `γ⁻¹`.
    pub fn inverse(&self) -> Perm {
        let mut inv = vec![0; self.len()];
        for (v, &img) in self.image.iter().enumerate() {
            inv[img as usize] = v as V;
        }
        Perm { image: inv }
    }

    /// True iff this is the identity.
    pub fn is_identity(&self) -> bool {
        self.image.iter().enumerate().all(|(i, &v)| i as V == v)
    }

    /// Vertices moved by the permutation (the support), ascending.
    pub fn support(&self) -> Vec<V> {
        self.image
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i as V != v)
            .map(|(i, _)| i as V)
            .collect()
    }

    /// Decomposes into non-trivial disjoint cycles, each rotated to start at
    /// its minimum element, ordered by that minimum.
    pub fn cycles(&self) -> Vec<Vec<V>> {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        for start in 0..n {
            if seen[start] || self.image[start] as usize == start {
                continue;
            }
            let mut cycle = Vec::new();
            let mut v = start;
            while !seen[v] {
                seen[v] = true;
                cycle.push(v as V);
                v = self.image[v] as usize;
            }
            out.push(cycle);
        }
        out
    }

    /// The order of the permutation (lcm of cycle lengths).
    pub fn order(&self) -> u64 {
        fn gcd(a: u64, b: u64) -> u64 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        self.cycles()
            .iter()
            .map(|c| c.len() as u64)
            .fold(1, |acc, l| acc / gcd(acc, l) * l)
    }
}

impl fmt::Debug for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Perm {
    /// Cycle notation, e.g. `(0,6)(1,5)(2,3,4)`; the identity prints as `()`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cycles = self.cycles();
        if cycles.is_empty() {
            return write!(f, "()");
        }
        for cycle in cycles {
            write!(f, "(")?;
            for (i, v) in cycle.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let id = Perm::identity(5);
        assert!(id.is_identity());
        assert_eq!(id.inverse(), id);
        assert_eq!(id.then(&id), id);
        assert_eq!(id.to_string(), "()");
        assert_eq!(id.order(), 1);
    }

    #[test]
    fn from_cycles_matches_paper_example() {
        // γ1 = (4,5,6) from Fig. 1(a): relabels 4 as 5, 5 as 6, 6 as 4.
        let g = Perm::from_cycles(8, &[&[4, 5, 6]]).unwrap();
        assert_eq!(g.apply(4), 5);
        assert_eq!(g.apply(5), 6);
        assert_eq!(g.apply(6), 4);
        assert_eq!(g.apply(0), 0);
        assert_eq!(g.to_string(), "(4,5,6)");
        assert_eq!(g.order(), 3);
    }

    #[test]
    fn compose_is_left_to_right() {
        let a = Perm::from_cycles(3, &[&[0, 1]]).unwrap();
        let b = Perm::from_cycles(3, &[&[1, 2]]).unwrap();
        // v^(ab): 0 -a-> 1 -b-> 2
        assert_eq!(a.then(&b).apply(0), 2);
        assert_eq!(b.then(&a).apply(0), 1);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let g = Perm::from_cycles(8, &[&[0, 6], &[1, 5], &[2, 3, 4]]).unwrap();
        assert!(g.then(&g.inverse()).is_identity());
        assert!(g.inverse().then(&g).is_identity());
    }

    #[test]
    fn rejects_non_bijections() {
        assert!(Perm::from_image(vec![0, 0, 1]).is_none());
        assert!(Perm::from_image(vec![0, 3, 1]).is_none());
        assert!(Perm::from_cycles(3, &[&[0, 1], &[1, 2]]).is_none());
        assert!(Perm::from_cycles(3, &[&[0, 5]]).is_none());
    }

    #[test]
    fn cycles_and_support() {
        let g = Perm::from_cycles(8, &[&[0, 6], &[2, 3, 4]]).unwrap();
        assert_eq!(g.cycles(), vec![vec![0, 6], vec![2, 3, 4]]);
        assert_eq!(g.support(), vec![0, 2, 3, 4, 6]);
        assert_eq!(g.order(), 6);
    }

    #[test]
    fn display_is_sorted_by_min_element() {
        let g = Perm::from_cycles(8, &[&[5, 6], &[1, 2]]).unwrap();
        assert_eq!(g.to_string(), "(1,2)(5,6)");
    }
}
