//! 128-bit fingerprints of canonical forms.
//!
//! A [`Fingerprint`] condenses a [`CanonForm`] into two 64-bit lanes so
//! that iso-testing a query against a corpus of `N` graphs is one
//! canonicalization plus one hash probe instead of `N` pairwise runs
//! (the index workload of `dvicl-index`). Equal forms always produce
//! equal fingerprints; unequal forms collide with probability about
//! 2⁻¹²⁸, and the index confirms every probe against the *stored* form,
//! so a collision can cost a comparison but never a wrong answer.
//!
//! The hash is hand-rolled (no external deps, per the workspace's
//! vendored-shims precedent): two independent lanes of a
//! multiply-xorshift sponge over the form's color runs and edge list,
//! finalized with a SplitMix64-style avalanche. The function is **part
//! of the on-disk index format** (`DVIX1`): changing any constant below
//! invalidates persisted indexes, so treat them as frozen.

use crate::form::{CanonForm, FormRef};
use crate::V;
use std::fmt;

/// Lane seeds and multipliers: large odd constants (golden-ratio and
/// SplitMix64 increments) chosen so the two lanes never agree on a
/// rotation of each other.
const SEED_HI: u64 = 0x9e37_79b9_7f4a_7c15;
const SEED_LO: u64 = 0x6a09_e667_f3bc_c909;
const MUL_HI: u64 = 0xff51_afd7_ed55_8ccd;
const MUL_LO: u64 = 0xc4ce_b9fe_1a85_ec53;

/// A 128-bit fingerprint of a canonical form, split into two 64-bit
/// lanes. The derived `Ord`/`Hash` make it directly usable as an index
/// key; [`fmt::Display`] renders the 32-hex-digit form that the CLI
/// `batch`/`serve` responses print.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint {
    /// High 64 bits.
    pub hi: u64,
    /// Low 64 bits.
    pub lo: u64,
}

/// One absorb-and-mix step of a lane.
#[inline]
fn absorb(state: u64, word: u64, mul: u64) -> u64 {
    let mut x = state ^ word.wrapping_mul(mul);
    x = x.rotate_left(31).wrapping_mul(mul | 1);
    x ^ (x >> 27)
}

/// SplitMix64 finalizer: full avalanche over one lane.
#[inline]
fn finish(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Fingerprint {
    /// Fingerprints a borrowed canonical form. The digest covers, in
    /// order: the number of color runs, each `(color, multiplicity)`
    /// run, the number of edges, and each `(u, v)` edge — exactly the
    /// data that defines form equality, each field absorbed as its own
    /// word so `[(1,2)]` and `[(2,1)]` cannot alias.
    pub fn of_form_ref(form: FormRef<'_>) -> Fingerprint {
        let mut hi = SEED_HI;
        let mut lo = SEED_LO;
        let mut feed = |word: u64| {
            hi = absorb(hi, word, MUL_HI);
            lo = absorb(lo, word, MUL_LO);
        };
        feed(form.colors.len() as u64);
        for &(c, mult) in form.colors {
            feed(pack(c, mult));
        }
        feed(form.edges.len() as u64);
        for &(u, v) in form.edges {
            feed(pack(u, v));
        }
        Fingerprint {
            hi: finish(hi),
            lo: finish(lo),
        }
    }

    /// Fingerprints an owned canonical form (see [`Self::of_form_ref`]).
    pub fn of_form(form: &CanonForm) -> Fingerprint {
        Fingerprint::of_form_ref(form.view())
    }

    /// Parses the 32-hex-digit rendering produced by `Display`.
    /// `None` for anything that is not exactly 32 hex digits.
    pub fn from_hex(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Fingerprint { hi, lo })
    }
}

/// Packs a `(V, V)` pair into one digest word.
#[inline]
fn pack(a: V, b: V) -> u64 {
    (u64::from(a) << 32) | u64::from(b)
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{named, Coloring};

    fn fp_of(g: &crate::Graph) -> Fingerprint {
        let labels: Vec<V> = (0..g.n() as V).collect();
        Fingerprint::of_form(&CanonForm::of_colored_graph(
            g,
            &Coloring::unit(g.n()),
            &labels,
        ))
    }

    #[test]
    fn equal_forms_equal_fingerprints() {
        let a = fp_of(&named::petersen());
        let b = fp_of(&named::petersen());
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_forms_differ() {
        let mut seen = std::collections::HashSet::new();
        for g in [
            named::petersen(),
            named::cycle(10),
            named::path(10),
            named::star(9),
            named::complete(5),
            named::hypercube(3),
            named::frucht(),
        ] {
            assert!(seen.insert(fp_of(&g)), "collision on {} vertices", g.n());
        }
    }

    #[test]
    fn colors_and_edges_both_participate() {
        let g = crate::Graph::empty(2);
        let f1 = CanonForm::new(&g, &[0, 0], &[0, 1]);
        let f2 = CanonForm::new(&g, &[0, 1], &[0, 1]);
        assert_ne!(Fingerprint::of_form(&f1), Fingerprint::of_form(&f2));
        // Field boundaries: a (1,2) run must not alias a (2,1) run.
        let r1 = CanonForm { colors: vec![(1, 2)], edges: vec![] };
        let r2 = CanonForm { colors: vec![(2, 1)], edges: vec![] };
        assert_ne!(Fingerprint::of_form(&r1), Fingerprint::of_form(&r2));
    }

    #[test]
    fn hex_round_trip() {
        let fp = fp_of(&named::frucht());
        let s = fp.to_string();
        assert_eq!(s.len(), 32);
        assert_eq!(Fingerprint::from_hex(&s), Some(fp));
        assert_eq!(Fingerprint::from_hex("xyz"), None);
        assert_eq!(Fingerprint::from_hex(&s[..31]), None);
    }

    #[test]
    fn digest_is_frozen() {
        // The fingerprint function is part of the DVIX1 on-disk format:
        // this vector pins the exact output so an accidental constant
        // change cannot silently orphan persisted indexes.
        let f = CanonForm {
            colors: vec![(0, 3)],
            edges: vec![(0, 1), (1, 2)],
        };
        assert_eq!(
            Fingerprint::of_form(&f).to_string(),
            "da64e6eb8eb87d52730cd1cb16ed3f17",
        );
        // Determinism across calls and across an owned/borrowed split.
        assert_eq!(Fingerprint::of_form(&f), Fingerprint::of_form_ref(f.view()));
    }
}
