//! Property-based tests for the graph substrate: algebraic laws of
//! permutations, coloring invariants, builder normalization, and the
//! graph6 roundtrip.

use dvicl_graph::{graph6, Coloring, Graph, Perm, V};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..120)
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

proptest! {
    #[test]
    fn builder_normalizes(n in 1usize..30, edges in proptest::collection::vec((0u32..30, 0u32..30), 0..80)) {
        let edges: Vec<(V, V)> = edges
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .collect();
        let g = Graph::from_edges(n, &edges);
        // No self-loops, sorted unique neighbor rows, symmetric adjacency.
        for v in 0..n as V {
            let nb = g.neighbors(v);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(!nb.contains(&v));
            for &w in nb {
                prop_assert!(g.has_edge(w, v));
            }
        }
        // Handshake lemma.
        let degsum: usize = (0..n as V).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degsum, 2 * g.m());
    }

    #[test]
    fn permutation_group_laws(g in arb_graph(), seed in any::<u64>()) {
        let n = g.n();
        let mut image: Vec<V> = (0..n as V).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            image.swap(i, (state >> 33) as usize % (i + 1));
        }
        let p = Perm::from_image(image).unwrap();
        // Inverse laws.
        prop_assert!(p.then(&p.inverse()).is_identity());
        prop_assert!(p.inverse().then(&p).is_identity());
        // Action laws: (G^p)^(p⁻¹) = G, and composition associates with
        // the action: (G^p)^q = G^(p·q).
        prop_assert_eq!(g.permuted(&p).permuted(&p.inverse()), g.clone());
        let q = p.inverse().then(&p).then(&p); // = p
        prop_assert_eq!(g.permuted(&p).permuted(&q.inverse()), g.clone());
        // Cycle notation roundtrip.
        let cycles = p.cycles();
        let rebuilt = Perm::from_cycles(
            n,
            &cycles.iter().map(|c| c.as_slice()).collect::<Vec<_>>(),
        )
        .unwrap();
        prop_assert_eq!(rebuilt, p);
    }

    #[test]
    fn coloring_laws(n in 1usize..25, labels in proptest::collection::vec(0u32..6, 1..25)) {
        let labels: Vec<V> = (0..n).map(|i| labels[i % labels.len()]).collect();
        let pi = Coloring::from_labels(&labels);
        prop_assert_eq!(pi.n(), n);
        // Colors are cell-start offsets: strictly increasing over cells,
        // consistent with membership.
        let mut offset = 0 as V;
        for cell in pi.cells() {
            for &v in cell {
                prop_assert_eq!(pi.color_of(v), offset);
                prop_assert_eq!(pi.cell_len_of(v), cell.len());
            }
            offset += cell.len() as V;
        }
        // Same input label ⇔ same cell.
        for u in 0..n as V {
            for v in 0..n as V {
                prop_assert_eq!(
                    labels[u as usize] == labels[v as usize],
                    pi.color_of(u) == pi.color_of(v)
                );
            }
        }
        // Discreteness detection.
        prop_assert_eq!(pi.is_discrete(), pi.num_cells() == n);
    }

    #[test]
    fn coloring_perm_action_is_a_right_action(n in 2usize..15, seed in any::<u64>()) {
        let labels: Vec<V> = (0..n as V).map(|v| v % 3).collect();
        let pi = Coloring::from_labels(&labels);
        let mk = |s: u64| {
            let mut image: Vec<V> = (0..n as V).collect();
            let mut state = s | 1;
            for i in (1..n).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                image.swap(i, (state >> 33) as usize % (i + 1));
            }
            Perm::from_image(image).unwrap()
        };
        let p = mk(seed);
        let q = mk(seed.rotate_left(17) ^ 0xabcdef);
        // (π^p)^q = π^(p·q) — note the paper's convention π^γ(v) = π(v^γ).
        let lhs = pi.apply_perm(&p).apply_perm(&q);
        let rhs = pi.apply_perm(&q.then(&p));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn graph6_roundtrip(g in arb_graph()) {
        let enc = graph6::to_graph6(&g);
        prop_assert!(enc.bytes().all(|b| (63..=126).contains(&b)));
        let dec = graph6::from_graph6(&enc).unwrap();
        prop_assert_eq!(dec, g);
    }

    #[test]
    fn induced_subgraph_respects_membership(g in arb_graph(), mask in any::<u64>()) {
        let verts: Vec<V> = (0..g.n() as V).filter(|&v| mask >> (v % 64) & 1 == 1).collect();
        if verts.is_empty() {
            return Ok(());
        }
        let sub = g.induced(&verts);
        prop_assert_eq!(sub.n(), verts.len());
        for (i, &u) in verts.iter().enumerate() {
            for (j, &v) in verts.iter().enumerate() {
                if i < j {
                    prop_assert_eq!(sub.has_edge(i as V, j as V), g.has_edge(u, v));
                }
            }
        }
    }

    #[test]
    fn components_partition_the_graph(g in arb_graph()) {
        let comps = g.components();
        let total: usize = comps.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, g.n());
        // No edge crosses components.
        let mut comp_of = vec![usize::MAX; g.n()];
        for (i, c) in comps.iter().enumerate() {
            for &v in c {
                comp_of[v as usize] = i;
            }
        }
        for (u, v) in g.edges() {
            prop_assert_eq!(comp_of[u as usize], comp_of[v as usize]);
        }
    }
}
