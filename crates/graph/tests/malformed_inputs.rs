//! Malformed-input corpus: every parser entry point must return a typed
//! `Err` — never panic — on hostile or truncated input, and the error
//! variant must say *what* went wrong.

use dvicl_graph::graph6::from_graph6;
use dvicl_graph::io::read_edge_list;
use dvicl_govern::{DviclError, ParseErrorKind};

fn parse_kind(err: DviclError) -> ParseErrorKind {
    match err {
        DviclError::Parse(p) => p.kind,
        other => panic!("expected a parse error, got {other}"),
    }
}

// -------------------------------------------------------------------
// Edge lists
// -------------------------------------------------------------------

#[test]
fn edge_list_truncated_lines() {
    for input in ["7\n", "0 1\n2\n", "  5  \n"] {
        assert!(
            matches!(
                parse_kind(read_edge_list(input.as_bytes()).unwrap_err()),
                ParseErrorKind::TruncatedLine
            ),
            "input {input:?}"
        );
    }
}

#[test]
fn edge_list_non_numeric_tokens() {
    for input in ["a b\n", "1 x\n", "0 1\n2 -3\n", "0 1e3\n", "0x10 3\n"] {
        assert!(
            matches!(
                parse_kind(read_edge_list(input.as_bytes()).unwrap_err()),
                ParseErrorKind::NonNumeric
            ),
            "input {input:?}"
        );
    }
}

#[test]
fn edge_list_u64_overflow_ids() {
    // u64::MAX is 18446744073709551615; one digit more overflows.
    let input = "0 184467440737095516159\n";
    assert!(matches!(
        parse_kind(read_edge_list(input.as_bytes()).unwrap_err()),
        ParseErrorKind::Overflow
    ));
    // u64::MAX itself is a *valid* id (ids are compacted, not allocated).
    let ok = read_edge_list("0 18446744073709551615\n".as_bytes()).unwrap();
    assert_eq!(ok.graph.n(), 2);
}

#[test]
fn edge_list_crlf_line_endings_parse_cleanly() {
    // Windows-style CRLF: `lines()` strips `\n`, our `trim()` strips the
    // stray `\r`, so the parse must agree byte-for-byte with the LF file.
    let crlf = "# header\r\n10 20\r\n20 30\r\n\r\n30 10\r\n";
    let lf = "# header\n10 20\n20 30\n\n30 10\n";
    let a = read_edge_list(crlf.as_bytes()).unwrap();
    let b = read_edge_list(lf.as_bytes()).unwrap();
    assert_eq!(a.graph, b.graph);
    assert_eq!(a.original_ids, b.original_ids);
    assert_eq!(a.graph.m(), 3);
}

#[test]
fn edge_list_duplicate_and_reversed_edges_collapse() {
    // Duplicate edges — including reversed duplicates and interleaved
    // self-loops — are preprocessing noise, not errors: the loaded graph
    // is simple and undirected.
    let input = "0 1\n1 0\n0 1\n2 2\n1 2\n2 1\n";
    let loaded = read_edge_list(input.as_bytes()).unwrap();
    assert_eq!(loaded.graph.n(), 3);
    assert_eq!(loaded.graph.m(), 2); // {0,1} and {1,2}; self-loop dropped
    assert!(loaded.graph.has_edge(0, 1));
    assert!(loaded.graph.has_edge(1, 2));
}

#[test]
fn edge_list_empty_inputs() {
    for input in ["", "\n", "# header only\n", "% comment\n\n# more\n"] {
        let err = read_edge_list(input.as_bytes()).unwrap_err();
        assert!(
            matches!(parse_kind(err), ParseErrorKind::Empty),
            "input {input:?}"
        );
    }
}

#[test]
fn edge_list_errors_report_the_line() {
    let err = read_edge_list("0 1\n1 2\nbroken\n".as_bytes()).unwrap_err();
    match err {
        DviclError::Parse(p) => assert_eq!(p.line, Some(3)),
        other => panic!("unexpected {other}"),
    }
}

// -------------------------------------------------------------------
// graph6
// -------------------------------------------------------------------

#[test]
fn graph6_empty_input() {
    for input in ["", "\n", "  \n"] {
        // trim_end removes trailing whitespace, so these are all empty.
        assert!(matches!(
            parse_kind(from_graph6(input).unwrap_err()),
            ParseErrorKind::Empty | ParseErrorKind::BadByte(_)
        ));
    }
}

#[test]
fn graph6_truncated_payloads() {
    // Headers that promise more adjacency bytes than follow.
    for input in ["C", "D?", "~??", "~~?????"] {
        assert!(
            matches!(
                parse_kind(from_graph6(input).unwrap_err()),
                ParseErrorKind::Truncated
            ),
            "input {input:?}"
        );
    }
}

#[test]
fn graph6_oversized_headers_fail_fast() {
    use std::time::Instant;
    // Each declares an astronomically large n with (at most) a few bytes
    // of payload. The decoder must reject without allocating for n.
    let bombs = ["~~~~~~~~", "~~zzzzzz", "~zzz"];
    let t0 = Instant::now();
    for bomb in bombs {
        let kind = parse_kind(from_graph6(bomb).unwrap_err());
        assert!(
            matches!(
                kind,
                ParseErrorKind::TooLarge | ParseErrorKind::Truncated
            ),
            "input {bomb:?} gave {kind:?}"
        );
    }
    assert!(
        t0.elapsed().as_millis() < 1000,
        "header bombs must be rejected in microseconds, not by OOM"
    );
}

#[test]
fn graph6_bad_bytes() {
    for input in ["C\u{7}", "\u{1}", "D\x20?"] {
        assert!(
            matches!(
                parse_kind(from_graph6(input).unwrap_err()),
                ParseErrorKind::BadByte(_)
            ),
            "input {input:?}"
        );
    }
}

#[test]
fn graph6_trailing_data() {
    assert!(matches!(
        parse_kind(from_graph6("C~~").unwrap_err()),
        ParseErrorKind::TrailingData
    ));
}

#[test]
fn parse_errors_map_to_exit_code_2() {
    let err = read_edge_list("nope\n".as_bytes()).unwrap_err();
    assert_eq!(err.exit_code(), 2);
    assert!(!err.is_exhaustion());
    let err = from_graph6("C").unwrap_err();
    assert_eq!(err.exit_code(), 2);
}
