//! Deterministic parser fault injection: a `parse@graph.*` arm must make
//! the parsers fail with a *typed* error at exactly the j-th read — never
//! a panic, never a partial graph.
//!
//! This lives in its own integration-test binary (own process) because
//! the fault plan is global state: a plan installed here must not be able
//! to leak into the malformed-input corpus tests. Within this binary all
//! scenarios run inside a single `#[test]` for the same reason.

use dvicl_govern::fault::{self, FaultPlan};
use dvicl_govern::{DviclError, ParseErrorKind};
use dvicl_graph::graph6::{from_graph6, to_graph6};
use dvicl_graph::io::read_edge_list;
use dvicl_graph::named;

#[test]
fn injected_parse_faults_are_typed_and_deterministic() {
    let input = "0 1\n1 2\n2 3\n3 4\n4 0\n";

    // Probe: count how many times each parser checkpoint fires on a
    // clean run, so the injection points below are known-reachable.
    fault::install(FaultPlan::default());
    read_edge_list(input.as_bytes()).unwrap();
    let probe = fault::hit_counts();
    fault::clear();
    let edge_lines = probe
        .iter()
        .find(|(site, _)| *site == "graph.edge_line")
        .map(|&(_, k)| k)
        .unwrap_or(0);
    assert_eq!(edge_lines, 5, "one checkpoint per data line");

    // Inject at every reachable line: the parse always fails with the
    // typed injected error, regardless of which read trips.
    for j in 1..=edge_lines {
        let plan = FaultPlan::parse(&format!("parse@graph.edge_line:{j}")).unwrap();
        fault::install(plan);
        let err = read_edge_list(input.as_bytes()).unwrap_err();
        fault::clear();
        match err {
            DviclError::Parse(p) => {
                assert_eq!(p.kind, ParseErrorKind::Truncated, "injection {j}");
                assert!(p.detail.contains("injected"), "injection {j}: {p:?}");
            }
            other => panic!("injection {j}: expected Parse, got {other}"),
        }
        assert_eq!(err_exit(&read_edge_list(input.as_bytes())), 0); // plan cleared
    }

    // graph6 reads hit their checkpoint once per decode.
    let enc = to_graph6(&named::petersen());
    let plan = FaultPlan::parse("parse@graph.graph6:1").unwrap();
    fault::install(plan);
    let err = from_graph6(&enc).unwrap_err();
    fault::clear();
    assert!(matches!(
        err,
        DviclError::Parse(ref p) if p.kind == ParseErrorKind::Truncated
    ));
    assert_eq!(err.exit_code(), 2);

    // With the plan cleared, both parsers succeed again.
    assert_eq!(read_edge_list(input.as_bytes()).unwrap().graph.m(), 5);
    assert_eq!(from_graph6(&enc).unwrap(), named::petersen());
}

fn err_exit(r: &Result<dvicl_graph::io::LoadedGraph, DviclError>) -> u8 {
    match r {
        Ok(_) => 0,
        Err(e) => e.exit_code(),
    }
}
