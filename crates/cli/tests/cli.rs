//! End-to-end tests of the `dvicl` binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn dvicl(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn canon_on_inline_graph6() {
    let (stdout, _, ok) = dvicl(&["canon", "g6:C~"]); // K4
    assert!(ok);
    assert!(stdout.contains("n: 4  m: 6"));
    assert!(stdout.contains("certificate (canonical graph6): C~"));
}

#[test]
fn aut_of_petersen() {
    // Published graph6 string of the Petersen graph.
    let (stdout, _, ok) = dvicl(&["aut", "g6:IheA@GUAo"]);
    assert!(ok);
    assert!(stdout.contains("|Aut(G)| = 120"));
    assert!(stdout.contains("orbits: 1 (0 singletons)"));
}

#[test]
fn iso_distinguishes() {
    // C6 vs K3,3-prism style pair via inline literals: encode with the
    // library first.
    use dvicl_graph::{graph6, named};
    let c6 = format!("g6:{}", graph6::to_graph6(&named::cycle(6)));
    let two_tri = format!(
        "g6:{}",
        graph6::to_graph6(&named::cycle(3).disjoint_union(&named::cycle(3)))
    );
    let (stdout, _, ok) = dvicl(&["iso", &c6, &two_tri]);
    assert!(ok);
    assert!(stdout.contains("isomorphic: no"));
    let (stdout, _, _) = dvicl(&["iso", &c6, &c6]);
    assert!(stdout.contains("isomorphic: yes"));
    assert!(stdout.contains("mapping: "));
}

#[test]
fn tree_stats_and_render() {
    use dvicl_graph::{graph6, named};
    let fig1 = format!("g6:{}", graph6::to_graph6(&named::fig1_example()));
    let (stdout, _, ok) = dvicl(&["tree", &fig1, "--render"]);
    assert!(ok);
    assert!(stdout.contains("nodes: 7"));
    assert!(stdout.contains("non-singleton leaves: 1"));
}

#[test]
fn ssm_counts() {
    use dvicl_graph::{graph6, named};
    let fig1 = format!("g6:{}", graph6::to_graph6(&named::fig1_example()));
    let (stdout, _, ok) = dvicl(&["ssm", &fig1, "4"]);
    assert!(ok);
    assert!(stdout.contains("images under Aut(G): 3"));
}

#[test]
fn reads_edge_list_from_stdin() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"# triangle\n0 1\n1 2\n2 0\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("n: 3  m: 3"));
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let (_, stderr, ok) = dvicl(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
}

#[test]
fn dataset_emits_edge_list() {
    let (stdout, _, ok) = dvicl(&["dataset", "wikivote"]);
    assert!(ok);
    assert!(stdout.starts_with("# nodes:"));
    let (_, stderr, ok) = dvicl(&["dataset", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("unknown dataset"));
}

#[test]
fn convert_roundtrip() {
    let (g6line, _, ok) = dvicl(&["convert", "g6:IheA@GUAo"]);
    assert!(ok);
    // Converting an inline graph6 yields an edge list...
    assert!(g6line.contains("# nodes: 10 edges: 15"));
}

#[test]
fn second_stdin_read_is_a_clear_error() {
    // `iso - -` used to silently read an empty second graph; now the
    // second `-` must fail with a typed message and exit code 2.
    let mut child = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["iso", "-", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"0 1\n1 2\n2 0\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("stdin") && stderr.contains("already consumed"),
        "stderr must explain the double stdin read, got: {stderr}"
    );
}

#[test]
fn timeout_exits_3_within_twice_the_deadline() {
    use std::time::{Duration, Instant};
    // A CFI instance over a cubic circulant: hard enough that the
    // unbudgeted debug-build run takes seconds, so a 300 ms deadline is
    // guaranteed to fire mid-search.
    let base = dvicl_data::bench_graphs::cubic_circulant(200);
    let hard = dvicl_data::bench_graphs::cfi(&base, false);
    let path = std::env::temp_dir().join(format!("dvicl-hard-{}.g6", std::process::id()));
    std::fs::write(&path, dvicl_graph::graph6::to_graph6(&hard)).unwrap();
    let t0 = Instant::now();
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "--timeout", "300ms", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    let elapsed = t0.elapsed();
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(3), "budget exhaustion must exit 3");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("budget exceeded"), "got: {stderr}");
    assert!(
        elapsed < Duration::from_millis(600),
        "a 300 ms deadline must abort within ~2x, took {elapsed:?}"
    );
}

#[test]
fn max_nodes_degrades_gracefully() {
    // A node budget far too small for the divided build: the run must
    // still succeed (whole-graph fallback), note the degradation on
    // stderr, and print a certificate.
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "--max-nodes", "2", "g6:IheA@GUAo"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("degraded"), "got: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("n: 10  m: 15"));
    assert!(stdout.contains("certificate (canonical graph6):"));
}

#[test]
fn malformed_input_exits_2() {
    let (_, stderr, _) = dvicl(&["canon", "g6:C"]); // truncated graph6
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "g6:C"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr.contains("parse error"), "got: {stderr}");
    // Bad flag values are input errors too.
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "--timeout", "banana", "g6:C~"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn paranoid_verifies_results() {
    // Witness checks pass on healthy runs and say so on stderr.
    let (stdout, stderr, ok) = dvicl(&["canon", "--paranoid", "g6:IheA@GUAo"]);
    assert!(ok, "paranoid canon failed: {stderr}");
    assert!(stdout.contains("certificate (canonical graph6):"));
    assert!(stderr.contains("paranoid: tree witness checks passed"), "got: {stderr}");

    let (stdout, stderr, ok) = dvicl(&["iso", "--paranoid", "g6:IheA@GUAo", "g6:IheA@GUAo"]);
    assert!(ok, "paranoid iso failed: {stderr}");
    assert!(stdout.contains("isomorphic: yes"));
    assert!(stderr.contains("paranoid: iso mapping witness checks passed"), "got: {stderr}");
}

#[test]
fn paranoid_covers_degraded_results() {
    // A degraded run must pass the same witness checks and carry both
    // the degradation marker and the paranoid confirmation.
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "--paranoid", "--max-nodes", "2", "g6:IheA@GUAo"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("degraded"), "got: {stderr}");
    assert!(stderr.contains("paranoid: tree witness checks passed"), "got: {stderr}");
}

#[test]
fn fault_plan_flag_trips_deterministically() {
    // Tripping the work budget at the first build checkpoint degrades
    // the run (marker on stderr, exit 0) — the resilient path treats an
    // injected WorkUnits trip exactly like a real one.
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "--paranoid", "--fault-plan", "trip@core.build_node:1", "g6:IheA@GUAo"])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "got: {stderr}");
    assert!(stderr.contains("degraded"), "got: {stderr}");
    assert!(stderr.contains("paranoid: tree witness checks passed"), "got: {stderr}");

    // Cancellation is not degradable: typed error, exit 3.
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "--fault-plan", "cancel@core.build_node:1", "g6:IheA@GUAo"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cancelled"), "got: {stderr}");

    // An injected parse fault surfaces as a parse error, exit 2.
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "--fault-plan", "parse@graph.graph6:1", "g6:IheA@GUAo"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn fault_plan_env_var_is_honored() {
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "g6:IheA@GUAo"])
        .env("DVICL_FAULT_PLAN", "cancel@govern.spend:1")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));

    // A malformed plan spec is a usage-level input error.
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "g6:C~"])
        .env("DVICL_FAULT_PLAN", "explode@everything")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "--fault-plan", "nope", "g6:C~"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn quotient_of_petersen_collapses() {
    let (stdout, _, ok) = dvicl(&["quotient", "g6:IheA@GUAo"]);
    assert!(ok);
    assert!(stdout.contains("quotient: n = 1, m = 0"));
    assert!(stdout.contains("entropy = 0.0000"));
}
