//! End-to-end tests of the `dvicl` binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn dvicl(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn canon_on_inline_graph6() {
    let (stdout, _, ok) = dvicl(&["canon", "g6:C~"]); // K4
    assert!(ok);
    assert!(stdout.contains("n: 4  m: 6"));
    assert!(stdout.contains("certificate (canonical graph6): C~"));
}

#[test]
fn aut_of_petersen() {
    // Published graph6 string of the Petersen graph.
    let (stdout, _, ok) = dvicl(&["aut", "g6:IheA@GUAo"]);
    assert!(ok);
    assert!(stdout.contains("|Aut(G)| = 120"));
    assert!(stdout.contains("orbits: 1 (0 singletons)"));
}

#[test]
fn iso_distinguishes() {
    // C6 vs K3,3-prism style pair via inline literals: encode with the
    // library first.
    use dvicl_graph::{graph6, named};
    let c6 = format!("g6:{}", graph6::to_graph6(&named::cycle(6)));
    let two_tri = format!(
        "g6:{}",
        graph6::to_graph6(&named::cycle(3).disjoint_union(&named::cycle(3)))
    );
    let (stdout, _, ok) = dvicl(&["iso", &c6, &two_tri]);
    assert!(ok);
    assert!(stdout.contains("isomorphic: no"));
    let (stdout, _, _) = dvicl(&["iso", &c6, &c6]);
    assert!(stdout.contains("isomorphic: yes"));
    assert!(stdout.contains("mapping: "));
}

#[test]
fn tree_stats_and_render() {
    use dvicl_graph::{graph6, named};
    let fig1 = format!("g6:{}", graph6::to_graph6(&named::fig1_example()));
    let (stdout, _, ok) = dvicl(&["tree", &fig1, "--render"]);
    assert!(ok);
    assert!(stdout.contains("nodes: 7"));
    assert!(stdout.contains("non-singleton leaves: 1"));
}

#[test]
fn ssm_counts() {
    use dvicl_graph::{graph6, named};
    let fig1 = format!("g6:{}", graph6::to_graph6(&named::fig1_example()));
    let (stdout, _, ok) = dvicl(&["ssm", &fig1, "4"]);
    assert!(ok);
    assert!(stdout.contains("images under Aut(G): 3"));
}

#[test]
fn reads_edge_list_from_stdin() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"# triangle\n0 1\n1 2\n2 0\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("n: 3  m: 3"));
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let (_, stderr, ok) = dvicl(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
}

#[test]
fn dataset_emits_edge_list() {
    let (stdout, _, ok) = dvicl(&["dataset", "wikivote"]);
    assert!(ok);
    assert!(stdout.starts_with("# nodes:"));
    let (_, stderr, ok) = dvicl(&["dataset", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("unknown dataset"));
}

#[test]
fn convert_roundtrip() {
    let (g6line, _, ok) = dvicl(&["convert", "g6:IheA@GUAo"]);
    assert!(ok);
    // Converting an inline graph6 yields an edge list...
    assert!(g6line.contains("# nodes: 10 edges: 15"));
}

#[test]
fn second_stdin_read_is_a_clear_error() {
    // `iso - -` used to silently read an empty second graph; now the
    // second `-` must fail with a typed message and exit code 2.
    let mut child = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["iso", "-", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"0 1\n1 2\n2 0\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("stdin") && stderr.contains("already consumed"),
        "stderr must explain the double stdin read, got: {stderr}"
    );
}

#[test]
fn timeout_exits_3_within_twice_the_deadline() {
    use std::time::{Duration, Instant};
    // A CFI instance over a cubic circulant: hard enough that the
    // unbudgeted debug-build run takes seconds, so a 300 ms deadline is
    // guaranteed to fire mid-search.
    let base = dvicl_data::bench_graphs::cubic_circulant(200);
    let hard = dvicl_data::bench_graphs::cfi(&base, false);
    let path = std::env::temp_dir().join(format!("dvicl-hard-{}.g6", std::process::id()));
    std::fs::write(&path, dvicl_graph::graph6::to_graph6(&hard)).unwrap();
    let t0 = Instant::now();
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "--timeout", "300ms", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    let elapsed = t0.elapsed();
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(3), "budget exhaustion must exit 3");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("budget exceeded"), "got: {stderr}");
    assert!(
        elapsed < Duration::from_millis(600),
        "a 300 ms deadline must abort within ~2x, took {elapsed:?}"
    );
}

#[test]
fn max_nodes_degrades_gracefully() {
    // A node budget far too small for the divided build: the run must
    // still succeed (whole-graph fallback), note the degradation on
    // stderr, and print a certificate.
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "--max-nodes", "2", "g6:IheA@GUAo"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("degraded"), "got: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("n: 10  m: 15"));
    assert!(stdout.contains("certificate (canonical graph6):"));
}

#[test]
fn malformed_input_exits_2() {
    let (_, stderr, _) = dvicl(&["canon", "g6:C"]); // truncated graph6
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "g6:C"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr.contains("parse error"), "got: {stderr}");
    // Bad flag values are input errors too.
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "--timeout", "banana", "g6:C~"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn paranoid_verifies_results() {
    // Witness checks pass on healthy runs and say so on stderr.
    let (stdout, stderr, ok) = dvicl(&["canon", "--paranoid", "g6:IheA@GUAo"]);
    assert!(ok, "paranoid canon failed: {stderr}");
    assert!(stdout.contains("certificate (canonical graph6):"));
    assert!(stderr.contains("paranoid: tree witness checks passed"), "got: {stderr}");

    let (stdout, stderr, ok) = dvicl(&["iso", "--paranoid", "g6:IheA@GUAo", "g6:IheA@GUAo"]);
    assert!(ok, "paranoid iso failed: {stderr}");
    assert!(stdout.contains("isomorphic: yes"));
    assert!(stderr.contains("paranoid: iso mapping witness checks passed"), "got: {stderr}");
}

#[test]
fn paranoid_covers_degraded_results() {
    // A degraded run must pass the same witness checks and carry both
    // the degradation marker and the paranoid confirmation.
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "--paranoid", "--max-nodes", "2", "g6:IheA@GUAo"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("degraded"), "got: {stderr}");
    assert!(stderr.contains("paranoid: tree witness checks passed"), "got: {stderr}");
}

#[test]
fn fault_plan_flag_trips_deterministically() {
    // Tripping the work budget at the first build checkpoint degrades
    // the run (marker on stderr, exit 0) — the resilient path treats an
    // injected WorkUnits trip exactly like a real one.
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "--paranoid", "--fault-plan", "trip@core.build_node:1", "g6:IheA@GUAo"])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "got: {stderr}");
    assert!(stderr.contains("degraded"), "got: {stderr}");
    assert!(stderr.contains("paranoid: tree witness checks passed"), "got: {stderr}");

    // Cancellation is not degradable: typed error, exit 3.
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "--fault-plan", "cancel@core.build_node:1", "g6:IheA@GUAo"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cancelled"), "got: {stderr}");

    // An injected parse fault surfaces as a parse error, exit 2.
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "--fault-plan", "parse@graph.graph6:1", "g6:IheA@GUAo"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn fault_plan_env_var_is_honored() {
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "g6:IheA@GUAo"])
        .env("DVICL_FAULT_PLAN", "cancel@govern.spend:1")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));

    // A malformed plan spec is a usage-level input error.
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "g6:C~"])
        .env("DVICL_FAULT_PLAN", "explode@everything")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "--fault-plan", "nope", "g6:C~"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn quotient_of_petersen_collapses() {
    let (stdout, _, ok) = dvicl(&["quotient", "g6:IheA@GUAo"]);
    assert!(ok);
    assert!(stdout.contains("quotient: n = 1, m = 0"));
    assert!(stdout.contains("entropy = 0.0000"));
}

/// Runs the binary with `input` piped to stdin; returns stdout, stderr
/// and the exit code.
fn dvicl_stdin(args: &[&str], input: &str) -> (String, String, Option<i32>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    // A process that fails before reading stdin (e.g. an unusable
    // --index file) closes the pipe early; that is the scenario under
    // test, not a harness error.
    let _ = child.stdin.as_mut().unwrap().write_all(input.as_bytes());
    let out = child.wait_with_output().unwrap();
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

/// A scratch path that is removed when the value drops.
struct TempPath(std::path::PathBuf);

impl TempPath {
    fn new(tag: &str) -> TempPath {
        TempPath(std::env::temp_dir().join(format!("dvicl-cli-{tag}-{}", std::process::id())))
    }

    fn as_str(&self) -> &str {
        self.0.to_str().unwrap()
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

#[test]
fn batch_protocol_answers_inserts_and_lookups() {
    // Petersen twice (one g6:, one as an inline edge list of the
    // isomorphic Kneser construction is overkill — relabeled g6 works),
    // a pentagon, and queries against both.
    let queries = "\
# corpus
insert g6:IheA@GUAo
insert el:0-1,1-2,2-3,3-4,4-0

lookup el:1-2,2-3,3-4,4-5,5-1
insert g6:IheA@GUAo
groupsize g6:IheA@GUAo
lookup el:0-1
";
    let (stdout, stderr, code) = dvicl_stdin(&["batch"], queries);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        lines,
        [
            "insert: class=0 members=1 fresh",
            "insert: class=1 members=1 fresh",
            "lookup: class=1 members=1",
            "insert: class=0 members=2 known",
            "groupsize: 2",
            "lookup: not-indexed",
        ],
        "stdout: {stdout}"
    );
    assert!(
        stderr.contains("served 6 requests (0 errors); index: 2 classes, 3 members"),
        "stderr: {stderr}"
    );
}

#[test]
fn batch_request_errors_stay_inline() {
    // Malformed specs and unknown commands answer `error:` lines and
    // the stream keeps going with exit 0.
    let queries = "\
insert el:0-x
frobnicate g6:C~
insert nope
insert g6:C~ extra
lookup g6:C~
";
    let (stdout, stderr, code) = dvicl_stdin(&["batch"], queries);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 5, "stdout: {stdout}");
    for line in &lines[..4] {
        assert!(line.starts_with("error: "), "got: {line}");
    }
    assert_eq!(lines[4], "lookup: not-indexed");
    assert!(stderr.contains("(4 errors)"), "stderr: {stderr}");
}

#[test]
fn batch_per_request_budget_trips_inline() {
    // Three work units cannot canonicalize Petersen, but the tripped
    // request must not take the service down: the pentagon after it
    // still gets a real answer.
    let queries = "\
insert g6:IheA@GUAo
insert el:0-1,1-2,2-3,3-4,4-0
";
    let (stdout, stderr, code) = dvicl_stdin(&["batch", "--req-max-nodes", "40"], queries);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "stdout: {stdout}");
    assert!(
        lines[0].starts_with("error: ") && lines[0].contains("budget"),
        "got: {}",
        lines[0]
    );
    assert_eq!(lines[1], "insert: class=0 members=1 fresh");
}

#[test]
fn batch_saves_an_index_that_serve_reloads() {
    let path = TempPath::new("roundtrip");
    let (_, stderr, code) = dvicl_stdin(
        &["batch", "--save", path.as_str()],
        "insert g6:IheA@GUAo\ninsert g6:IheA@GUAo\ninsert el:0-1,1-2,2-0\n",
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    // `serve` flushes per response and stops at `quit`; --paranoid makes
    // the load re-derive every stored fingerprint.
    let (stdout, stderr, code) = dvicl_stdin(
        &["serve", "--index", path.as_str(), "--paranoid"],
        "groupsize g6:IheA@GUAo\nlookup el:0-1,1-2,2-0\nquit\nlookup g6:C~\n",
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        lines,
        ["groupsize: 2", "lookup: class=1 members=1"],
        "lines after quit must not be answered; stdout: {stdout}"
    );
}

#[test]
fn batch_rejects_a_corrupt_index_file() {
    let path = TempPath::new("corrupt");
    std::fs::write(&path.0, b"not a DVIX1 file at all").unwrap();
    let (_, stderr, code) = dvicl_stdin(&["batch", "--index", path.as_str()], "lookup g6:C~\n");
    assert_eq!(code, Some(2), "stderr: {stderr}");
    assert!(stderr.contains("error:"), "stderr: {stderr}");
}

#[test]
fn batch_fault_injection_covers_the_index_checkpoints() {
    // An injected fault at index.insert is a per-request error: the
    // service answers it inline and keeps going.
    let (stdout, stderr, code) = dvicl_stdin(
        &["batch", "--fault-plan", "trip@index.insert:2"],
        "insert g6:C~\ninsert g6:C~\ninsert g6:C~\n",
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines[0], "insert: class=0 members=1 fresh");
    assert!(lines[1].starts_with("error: "), "got: {}", lines[1]);
    assert_eq!(lines[2], "insert: class=0 members=2 known");

    // At index.load the index is unusable: a process-level typed exit.
    let path = TempPath::new("faultload");
    let (_, _, code) = dvicl_stdin(
        &["batch", "--save", path.as_str()],
        "insert g6:C~\n",
    );
    assert_eq!(code, Some(0));
    let (_, stderr, code) = dvicl_stdin(
        &["batch", "--index", path.as_str(), "--fault-plan", "trip@index.load:1"],
        "lookup g6:C~\n",
    );
    assert_eq!(code, Some(3), "stderr: {stderr}");
}
