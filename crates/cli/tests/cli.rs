//! End-to-end tests of the `dvicl` binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn dvicl(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn canon_on_inline_graph6() {
    let (stdout, _, ok) = dvicl(&["canon", "g6:C~"]); // K4
    assert!(ok);
    assert!(stdout.contains("n: 4  m: 6"));
    assert!(stdout.contains("certificate (canonical graph6): C~"));
}

#[test]
fn aut_of_petersen() {
    // Published graph6 string of the Petersen graph.
    let (stdout, _, ok) = dvicl(&["aut", "g6:IheA@GUAo"]);
    assert!(ok);
    assert!(stdout.contains("|Aut(G)| = 120"));
    assert!(stdout.contains("orbits: 1 (0 singletons)"));
}

#[test]
fn iso_distinguishes() {
    // C6 vs K3,3-prism style pair via inline literals: encode with the
    // library first.
    use dvicl_graph::{graph6, named};
    let c6 = format!("g6:{}", graph6::to_graph6(&named::cycle(6)));
    let two_tri = format!(
        "g6:{}",
        graph6::to_graph6(&named::cycle(3).disjoint_union(&named::cycle(3)))
    );
    let (stdout, _, ok) = dvicl(&["iso", &c6, &two_tri]);
    assert!(ok);
    assert!(stdout.contains("isomorphic: no"));
    let (stdout, _, _) = dvicl(&["iso", &c6, &c6]);
    assert!(stdout.contains("isomorphic: yes"));
    assert!(stdout.contains("mapping: "));
}

#[test]
fn tree_stats_and_render() {
    use dvicl_graph::{graph6, named};
    let fig1 = format!("g6:{}", graph6::to_graph6(&named::fig1_example()));
    let (stdout, _, ok) = dvicl(&["tree", &fig1, "--render"]);
    assert!(ok);
    assert!(stdout.contains("nodes: 7"));
    assert!(stdout.contains("non-singleton leaves: 1"));
}

#[test]
fn ssm_counts() {
    use dvicl_graph::{graph6, named};
    let fig1 = format!("g6:{}", graph6::to_graph6(&named::fig1_example()));
    let (stdout, _, ok) = dvicl(&["ssm", &fig1, "4"]);
    assert!(ok);
    assert!(stdout.contains("images under Aut(G): 3"));
}

#[test]
fn reads_edge_list_from_stdin() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dvicl"))
        .args(["canon", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"# triangle\n0 1\n1 2\n2 0\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("n: 3  m: 3"));
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let (_, stderr, ok) = dvicl(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
}

#[test]
fn dataset_emits_edge_list() {
    let (stdout, _, ok) = dvicl(&["dataset", "wikivote"]);
    assert!(ok);
    assert!(stdout.starts_with("# nodes:"));
    let (_, stderr, ok) = dvicl(&["dataset", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("unknown dataset"));
}

#[test]
fn convert_roundtrip() {
    let (g6line, _, ok) = dvicl(&["convert", "g6:IheA@GUAo"]);
    assert!(ok);
    // Converting an inline graph6 yields an edge list...
    assert!(g6line.contains("# nodes: 10 edges: 15"));
}

#[test]
fn quotient_of_petersen_collapses() {
    let (stdout, _, ok) = dvicl(&["quotient", "g6:IheA@GUAo"]);
    assert!(ok);
    assert!(stdout.contains("quotient: n = 1, m = 0"));
    assert!(stdout.contains("entropy = 0.0000"));
}
