//! Guard: no panicking calls on input-reachable paths. The parsers and
//! the CLI front-end handle untrusted bytes, so `unwrap`/`expect`/
//! `panic!` outside their test modules are bugs by policy — malformed
//! input must surface as a typed [`dvicl_govern::DviclError`].

use std::path::{Path, PathBuf};

/// Everything before the file's `#[cfg(test)]` module (the corpora in
/// the test modules themselves unwrap freely, as tests should).
fn source_without_tests(path: &Path) -> String {
    let src = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    match src.find("#[cfg(test)]") {
        Some(i) => src[..i].to_string(),
        None => src,
    }
}

fn guarded_files() -> Vec<PathBuf> {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    vec![
        manifest.join("src/main.rs"),
        manifest.join("../graph/src/io.rs"),
        manifest.join("../graph/src/graph6.rs"),
    ]
}

#[test]
fn input_reachable_sources_have_no_panicking_calls() {
    for file in guarded_files() {
        let src = source_without_tests(&file);
        for needle in [".unwrap(", ".expect(", "panic!(", "unreachable!(", "todo!("] {
            assert!(
                !src.contains(needle),
                "{} contains `{needle}` outside its test module; \
                 input-reachable paths must return typed errors instead",
                file.display()
            );
        }
    }
}
