//! Guard: no panicking calls on input-reachable paths — and every other
//! workspace invariant (budget threading, unsafe audit, error taxonomy,
//! narrowing casts, offline guard). The old version of this test grepped
//! three files for `.unwrap(`-style substrings; the policy now lives in
//! `dvicl-lint`, which lexes every workspace source properly (comments,
//! strings and `#[cfg(test)]` modules excluded) and accepts only
//! reason-bearing suppression pragmas. This test drives the library API
//! over the whole workspace and requires zero unsuppressed findings.

use std::path::Path;

#[test]
fn workspace_passes_dvicl_lint() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = dvicl_lint::lint_workspace(&root)
        .unwrap_or_else(|e| panic!("dvicl-lint failed to run: {e}"));
    assert!(report.files_scanned > 0, "linter scanned no files");
    assert!(
        report.is_clean(),
        "dvicl-lint found unsuppressed findings:\n{}",
        report.human()
    );
}
