//! `dvicl` — command-line interface to the DviCL canonical labeling
//! library.
//!
//! ```text
//! dvicl canon  <GRAPH>              certificate digest + canonical labeling
//! dvicl aut    <GRAPH>              |Aut(G)|, orbits, generators
//! dvicl iso    <GRAPH> <GRAPH>      isomorphism test (+ explicit mapping)
//! dvicl tree   <GRAPH> [--render]   AutoTree statistics (and the tree)
//! dvicl ssm    <GRAPH> <v,v,...>    symmetric images of a vertex set
//! dvicl ksym   <GRAPH> <k>          k-symmetric extension (edge list out)
//! dvicl quotient <GRAPH>            symmetry quotient + structure entropy
//! dvicl dataset <NAME>              emit a suite dataset as an edge list
//! dvicl convert <GRAPH>             edge list <-> graph6
//! ```
//!
//! `<GRAPH>` is an edge-list file path, `-` for stdin, or `g6:<string>`
//! for an inline graph6 literal.

use dvicl_core::ssm::{count_images, enumerate_images, SsmIndex};
use dvicl_core::{aut, build_autotree, iso, ksym, DviclOptions};
use dvicl_graph::{graph6, io as gio, Coloring, Graph, V};
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  dvicl canon    <GRAPH>\n  dvicl aut      <GRAPH>\n  dvicl iso      <GRAPH> <GRAPH>\n  dvicl tree     <GRAPH> [--render]\n  dvicl ssm      <GRAPH> <v,v,...> [--limit N]\n  dvicl ksym     <GRAPH> <k>\n  dvicl quotient <GRAPH>\n  dvicl dataset  <NAME>\n  dvicl convert  <GRAPH>\n\nGRAPH: edge-list path, '-' for stdin, or g6:<graph6-literal>"
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing subcommand")?;
    match cmd.as_str() {
        "canon" => canon(arg(args, 1)?),
        "aut" => automorphisms(arg(args, 1)?),
        "iso" => isomorphic(arg(args, 1)?, arg(args, 2)?),
        "tree" => tree(arg(args, 1)?, args.iter().any(|a| a == "--render")),
        "ssm" => ssm(arg(args, 1)?, arg(args, 2)?, flag_value(args, "--limit")),
        "ksym" => ksym_cmd(arg(args, 1)?, arg(args, 2)?),
        "quotient" => quotient_cmd(arg(args, 1)?),
        "dataset" => dataset(arg(args, 1)?),
        "convert" => convert(arg(args, 1)?),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

fn arg(args: &[String], i: usize) -> Result<&str, String> {
    args.get(i)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing argument #{i}"))
}

fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn load(spec: &str) -> Result<Graph, String> {
    if let Some(g6) = spec.strip_prefix("g6:") {
        return graph6::from_graph6(g6).map_err(|e| e.to_string());
    }
    if spec == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| e.to_string())?;
        return load_text(&buf);
    }
    let text = std::fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
    load_text(&text)
}

fn load_text(text: &str) -> Result<Graph, String> {
    // Heuristic: a single token without whitespace separators on the first
    // non-comment line is graph6; otherwise an edge list.
    let first = text
        .lines()
        .find(|l| !l.trim().is_empty() && !l.starts_with('#') && !l.starts_with('%'));
    match first {
        Some(line) if !line.trim().contains(char::is_whitespace) => {
            graph6::from_graph6(line.trim()).map_err(|e| e.to_string())
        }
        _ => gio::read_edge_list(text.as_bytes())
            .map(|l| l.graph)
            .map_err(|e| e.to_string()),
    }
}

fn build(g: &Graph) -> dvicl_core::AutoTree {
    // traces-like leaves: the robust configuration on regular graphs.
    let opts = DviclOptions {
        leaf_config: dvicl_canon::Config::traces_like(),
        ..DviclOptions::default()
    };
    build_autotree(g, &Coloring::unit(g.n()), &opts)
}

fn canon(spec: &str) -> Result<(), String> {
    let g = load(spec)?;
    let tree = build(&g);
    let labeling = tree.canonical_labeling();
    let canonical = g.permuted(&labeling);
    println!("n: {}  m: {}", g.n(), g.m());
    println!("certificate (canonical graph6): {}", graph6::to_graph6(&canonical));
    println!("canonical labeling: {labeling}");
    Ok(())
}

fn automorphisms(spec: &str) -> Result<(), String> {
    let g = load(spec)?;
    let tree = build(&g);
    println!("|Aut(G)| = {}", aut::group_order(&tree));
    let mut orbits = aut::orbits(&tree);
    println!(
        "orbits: {} ({} singletons)",
        orbits.count(),
        orbits.count_singletons()
    );
    let gens = aut::generators(&tree);
    println!("generators ({}):", gens.len());
    for gen in gens.iter().take(50) {
        println!("  {gen}");
    }
    if gens.len() > 50 {
        println!("  ... {} more", gens.len() - 50);
    }
    Ok(())
}

fn isomorphic(a: &str, b: &str) -> Result<(), String> {
    let (ga, gb) = (load(a)?, load(b)?);
    match iso::find_isomorphism(&ga, &gb) {
        Some(gamma) => {
            println!("isomorphic: yes");
            println!("mapping: {gamma}");
            Ok(())
        }
        None => {
            println!("isomorphic: no");
            Ok(())
        }
    }
}

fn tree(spec: &str, render: bool) -> Result<(), String> {
    let g = load(spec)?;
    let t = build(&g);
    let s = t.stats();
    println!(
        "nodes: {}  singleton leaves: {}  non-singleton leaves: {} (avg size {:.2}, max {})  depth: {}",
        s.total_nodes,
        s.singleton_leaves,
        s.non_singleton_leaves,
        s.avg_non_singleton_size,
        s.max_non_singleton_size,
        s.depth
    );
    if render {
        print!("{}", t.render());
    }
    Ok(())
}

fn ssm(spec: &str, set: &str, limit: Option<usize>) -> Result<(), String> {
    let g = load(spec)?;
    let set: Vec<V> = set
        .split(',')
        .map(|t| t.trim().parse::<V>().map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    let tree = build(&g);
    let index = SsmIndex::new(&tree);
    println!("images under Aut(G): {}", count_images(&tree, &index, &set).to_scientific());
    let limit = limit.unwrap_or(20);
    let res = enumerate_images(&tree, &index, &set, limit);
    println!(
        "first {} matches{}:",
        res.matches.len(),
        if res.complete { " (complete)" } else { "" }
    );
    for m in &res.matches {
        println!("  {m:?}");
    }
    Ok(())
}

fn ksym_cmd(spec: &str, k: &str) -> Result<(), String> {
    let g = load(spec)?;
    let k: usize = k.parse().map_err(|_| "k must be a positive integer")?;
    let tree = build(&g);
    let (g2, stats) = ksym::k_symmetric_extension(&g, &tree, k);
    eprintln!(
        "k={k}: +{} vertices, +{} edges ({} classes duplicated)",
        stats.added_vertices, stats.added_edges, stats.duplicated_classes
    );
    gio::write_edge_list(std::io::stdout(), &g2).map_err(|e| e.to_string())
}

fn quotient_cmd(spec: &str) -> Result<(), String> {
    let g = load(spec)?;
    let tree = build(&g);
    let q = dvicl_apps::quotient::quotient(&g, &tree);
    let e = dvicl_apps::quotient::structure_entropy(&g, &tree);
    println!(
        "G: n = {}, m = {}   quotient: n = {}, m = {}   entropy = {e:.4}",
        g.n(),
        g.m(),
        q.graph.n(),
        q.graph.m()
    );
    Ok(())
}

fn dataset(name: &str) -> Result<(), String> {
    let all = dvicl_data::social_suite()
        .into_iter()
        .chain(dvicl_data::benchmark_suite());
    for d in all {
        if d.name.eq_ignore_ascii_case(name) {
            let g = (d.build)();
            return gio::write_edge_list(std::io::stdout(), &g).map_err(|e| e.to_string());
        }
    }
    Err(format!(
        "unknown dataset `{name}`; known: {}",
        dvicl_data::social_suite()
            .iter()
            .chain(dvicl_data::benchmark_suite().iter())
            .map(|d| d.name)
            .collect::<Vec<_>>()
            .join(", ")
    ))
}

fn convert(spec: &str) -> Result<(), String> {
    let g = load(spec)?;
    if spec.starts_with("g6:") {
        gio::write_edge_list(std::io::stdout(), &g).map_err(|e| e.to_string())
    } else {
        println!("{}", graph6::to_graph6(&g));
        Ok(())
    }
}
