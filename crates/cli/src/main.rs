//! `dvicl` — command-line interface to the DviCL canonical labeling
//! library.
//!
//! ```text
//! dvicl canon  <GRAPH>              certificate digest + canonical labeling
//! dvicl aut    <GRAPH>              |Aut(G)|, orbits, generators
//! dvicl iso    <GRAPH> <GRAPH>      isomorphism test (+ explicit mapping)
//! dvicl tree   <GRAPH> [--render]   AutoTree statistics (and the tree)
//! dvicl ssm    <GRAPH> <v,v,...>    symmetric images of a vertex set
//! dvicl ksym   <GRAPH> <k>          k-symmetric extension (edge list out)
//! dvicl quotient <GRAPH>            symmetry quotient + structure entropy
//! dvicl dataset <NAME>              emit a suite dataset as an edge list
//! dvicl convert <GRAPH>             edge list <-> graph6
//! dvicl batch  [QUERIES]            drain insert/lookup/groupsize queries
//! dvicl serve                       the same protocol, interactive
//! ```
//!
//! `<GRAPH>` is an edge-list file path, `-` for stdin (readable at most
//! once per invocation), or `g6:<string>` for an inline graph6 literal.
//!
//! Every subcommand accepts `--timeout <DUR>` (e.g. `100ms`, `5s`, `2m`)
//! and `--max-nodes <N>`, which govern the whole run under one shared
//! budget, and `--threads <N>`, which widens tree builds over a scoped
//! work-stealing pool (default 1; `0` = all cores; results are
//! byte-identical at any width). Exit codes: 0 success, 2 bad input or
//! usage, 3 budget
//! exceeded. When `--max-nodes` stops the divide-and-conquer build, the
//! run degrades to whole-graph labeling (still correct, noted on stderr)
//! instead of failing.
//!
//! Observability (DESIGN.md §9): `--stats` prints the counter and
//! phase-time report to stderr after the run; `--trace-json <path>`
//! streams newline-delimited JSON events plus a final summary object to
//! `path`. Either flag also enables span timing.
//!
//! Robustness (DESIGN.md §11): `--paranoid` re-checks every result
//! against its witness (canonical form against the root labeling, each
//! generator against its subgraph, each iso answer against the explicit
//! mapping) and exits 4 on a witness failure. `--fault-plan <SPEC>` (or
//! the `DVICL_FAULT_PLAN` environment variable) installs a deterministic
//! fault-injection plan, e.g. `trip@core.build_node:3`.
//!
//! Corpus service ([`batch`]): `batch` and `serve` answer
//! `insert`/`lookup`/`groupsize` queries against a canonical-fingerprint
//! index (`--index`/`--save` persist it as `DVIX1`), canonicalizing each
//! query once through a reusable session; `--req-timeout` and
//! `--req-max-nodes` cap every request with its own budget, and a failed
//! request answers `error: ...` inline instead of ending the service.

mod batch;

use dvicl_core::ssm::{try_count_images, try_enumerate_images, SsmIndex};
use dvicl_core::{aut, build_autotree_resilient, iso, ksym, AutoTree, DviclOptions};
use dvicl_govern::{parse_duration, Budget, DviclError};
use dvicl_graph::{graph6, io as gio, Coloring, Graph, V};
use std::io::Read;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

/// Whether `--paranoid` is in force: every result is re-checked against
/// its witness before being reported. A process-wide flag because it
/// changes behavior of every subcommand uniformly.
static PARANOID: AtomicBool = AtomicBool::new(false);

fn paranoid() -> bool {
    PARANOID.load(Ordering::Relaxed)
}

/// The `--threads` selection (default 1; `0` means all available
/// parallelism). Like [`PARANOID`], a process-wide value: every build in
/// the process — one-shot subcommands and the batch/serve session alike
/// — runs at the same width, and the certificates are byte-identical at
/// any width.
static THREADS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(1);

fn threads() -> usize {
    THREADS.load(Ordering::Relaxed)
}

/// The `--kernel` selection (default `auto`), stored as the
/// `KernelKind` discriminant. Process-wide like [`THREADS`]: every
/// refinement in the process dispatches through the same kernel choice,
/// and certificates are byte-identical under any choice.
static KERNEL: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

fn kernel() -> dvicl_canon::KernelKind {
    match KERNEL.load(Ordering::Relaxed) {
        1 => dvicl_canon::KernelKind::General,
        2 => dvicl_canon::KernelKind::Bitset,
        _ => dvicl_canon::KernelKind::Auto,
    }
}

/// The `--target-cell` override; `usize::MAX` means "not set" so each
/// subcommand keeps its configuration's own selector default.
static TARGET_CELL: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(usize::MAX);

fn target_cell() -> Option<dvicl_canon::TargetCell> {
    match TARGET_CELL.load(Ordering::Relaxed) {
        0 => Some(dvicl_canon::TargetCell::FirstNonSingleton),
        1 => Some(dvicl_canon::TargetCell::SmallestFirst),
        2 => Some(dvicl_canon::TargetCell::LargestFirst),
        3 => Some(dvicl_canon::TargetCell::MostConstrained),
        _ => None,
    }
}

/// The leaf IR configuration every build in the process uses:
/// traces-like (the robust configuration on regular graphs) with the
/// `--kernel` and `--target-cell` overrides applied.
pub(crate) fn leaf_config() -> dvicl_canon::Config {
    let mut cfg = dvicl_canon::Config::traces_like();
    cfg.kernel = kernel();
    if let Some(tc) = target_cell() {
        cfg.target_cell = tc;
    }
    cfg
}

/// Writes a line to stdout, exiting quietly with status 0 when the
/// consumer closed the pipe early — `dvicl aut G | head` is a normal
/// way to use the tool, not a panic.
macro_rules! outln {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        if writeln!(std::io::stdout(), $($arg)*).is_err() {
            std::process::exit(0);
        }
    }};
}

/// [`outln!`] without the trailing newline.
macro_rules! out {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        if write!(std::io::stdout(), $($arg)*).is_err() {
            std::process::exit(0);
        }
    }};
}

/// Streams `g` as an edge list to stdout. A consumer closing the pipe
/// early ends the program quietly (status 0); other I/O errors map into
/// the typed taxonomy.
fn emit_edge_list(g: &Graph) -> Result<(), DviclError> {
    match gio::write_edge_list(std::io::stdout(), g) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => std::process::exit(0),
        Err(e) => Err(DviclError::invalid(format!("writing edge list: {e}"))),
    }
}

fn main() -> ExitCode {
    // Environment-installed fault plan first; an explicit --fault-plan
    // flag below overrides it.
    if let Err(e) = dvicl_govern::fault::install_from_env() {
        eprintln!("error: {e}");
        return ExitCode::from(e.exit_code());
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (args, budget, obs_cfg) = match global_flags(args) {
        Ok(split) => split,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(e.exit_code());
        }
    };
    if let Err(e) = obs_cfg.activate() {
        eprintln!("error: {e}");
        return ExitCode::from(e.exit_code());
    }
    let code = match run(&args, &budget) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
        Err(CliError::Lib(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    };
    // Deliver the final summary to the installed sink even when the run
    // failed — a budget-tripped run's counters are exactly the
    // interesting ones.
    dvicl_obs::finish();
    if obs_cfg.stats && obs_cfg.trace_json.is_some() {
        // The JSON sink owns finish(); print the human report too.
        eprint!("{}", dvicl_obs::render_text(&dvicl_obs::summary()));
    }
    code
}

/// The observability selection parsed from the global flags.
#[derive(Default)]
struct ObsConfig {
    stats: bool,
    trace_json: Option<String>,
}

impl ObsConfig {
    /// Installs the selected sink and enables span timing. `--trace-json`
    /// wins the sink slot when both flags are given; `--stats` then
    /// prints its report directly at exit.
    fn activate(&self) -> Result<(), DviclError> {
        if let Some(path) = &self.trace_json {
            let sink = dvicl_obs::JsonSink::to_file(std::path::Path::new(path))
                .map_err(|e| DviclError::invalid(format!("--trace-json {path}: {e}")))?;
            dvicl_obs::install(Box::new(sink));
        } else if self.stats {
            dvicl_obs::install(Box::new(dvicl_obs::TextSink));
        }
        if self.stats || self.trace_json.is_some() {
            dvicl_obs::set_timing(true);
        }
        Ok(())
    }
}

fn usage() -> &'static str {
    "usage:\n  dvicl canon    <GRAPH>\n  dvicl aut      <GRAPH>\n  dvicl iso      <GRAPH> <GRAPH>\n  dvicl tree     <GRAPH> [--render]\n  dvicl ssm      <GRAPH> <v,v,...> [--limit N]\n  dvicl ksym     <GRAPH> <k>\n  dvicl quotient <GRAPH>\n  dvicl dataset  <NAME>\n  dvicl convert  <GRAPH>\n  dvicl batch    [--index P] [--save P] [--req-timeout D] [--req-max-nodes N] [QUERIES]\n  dvicl serve    [--index P] [--save P] [--req-timeout D] [--req-max-nodes N]\n\nGRAPH: edge-list path, '-' for stdin (at most once), or g6:<graph6-literal>\nQUERIES: lines of `insert|lookup|groupsize g6:<literal>|el:u-v,u-v,...`\n\nglobal flags (any subcommand):\n  --timeout <DUR>      wall-clock budget (100ms, 5s, 2m, ...)\n  --max-nodes <N>      work budget in search/build nodes\n  --threads <N>        worker threads for tree builds (default 1, 0 = all cores)\n  --kernel <K>         refinement kernel: auto|general|bitset (default auto)\n  --target-cell <T>    IR target cell: first|smallest|largest|most-constrained\n  --stats              counter + phase-time report on stderr\n  --trace-json <PATH>  NDJSON events + summary to PATH\n  --paranoid           re-check every result against its witness\n  --fault-plan <SPEC>  deterministic fault injection (see DESIGN.md §11)\n\nexit codes: 0 ok, 2 bad input, 3 budget exceeded, 4 witness check failed"
}

/// A CLI failure: either a usage mistake (print the help text, exit 2)
/// or a typed library error (exit via [`DviclError::exit_code`]).
enum CliError {
    Usage(String),
    Lib(DviclError),
}

impl From<DviclError> for CliError {
    fn from(e: DviclError) -> Self {
        CliError::Lib(e)
    }
}

/// Strips `--timeout`/`--max-nodes`/`--stats`/`--trace-json` (valid
/// anywhere on the line) and builds the run's shared budget and
/// observability selection from them.
fn global_flags(args: Vec<String>) -> Result<(Vec<String>, Budget, ObsConfig), DviclError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut timeout = None;
    let mut max_nodes = None;
    let mut obs_cfg = ObsConfig::default();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--timeout" => {
                let v = it
                    .next()
                    .ok_or_else(|| DviclError::invalid("--timeout needs a duration"))?;
                timeout = Some(parse_duration(&v)?);
            }
            "--max-nodes" => {
                let v = it
                    .next()
                    .ok_or_else(|| DviclError::invalid("--max-nodes needs a count"))?;
                max_nodes = Some(v.parse::<u64>().map_err(|_| {
                    DviclError::invalid(format!("--max-nodes: not a count: {v:?}"))
                })?);
            }
            "--stats" => obs_cfg.stats = true,
            "--paranoid" => PARANOID.store(true, Ordering::Relaxed),
            "--threads" => {
                let v = it
                    .next()
                    .ok_or_else(|| DviclError::invalid("--threads needs a count (0 = all cores)"))?;
                let n = v.parse::<usize>().map_err(|_| {
                    DviclError::invalid(format!("--threads: not a count: {v:?}"))
                })?;
                THREADS.store(n, Ordering::Relaxed);
            }
            "--kernel" => {
                let v = it
                    .next()
                    .ok_or_else(|| DviclError::invalid("--kernel needs auto|general|bitset"))?;
                let k = dvicl_canon::KernelKind::parse(&v).ok_or_else(|| {
                    DviclError::invalid(format!("--kernel: unknown kernel: {v:?}"))
                })?;
                KERNEL.store(k as usize, Ordering::Relaxed);
            }
            "--target-cell" => {
                let v = it.next().ok_or_else(|| {
                    DviclError::invalid("--target-cell needs first|smallest|largest|most-constrained")
                })?;
                let t = dvicl_canon::TargetCell::parse(&v).ok_or_else(|| {
                    DviclError::invalid(format!("--target-cell: unknown selector: {v:?}"))
                })?;
                TARGET_CELL.store(t as usize, Ordering::Relaxed);
            }
            "--fault-plan" => {
                let v = it
                    .next()
                    .ok_or_else(|| DviclError::invalid("--fault-plan needs a plan spec"))?;
                dvicl_govern::fault::install(dvicl_govern::FaultPlan::parse(&v)?);
            }
            "--trace-json" => {
                let v = it
                    .next()
                    .ok_or_else(|| DviclError::invalid("--trace-json needs a file path"))?;
                obs_cfg.trace_json = Some(v);
            }
            _ => rest.push(a),
        }
    }
    Ok((rest, Budget::new(timeout, max_nodes), obs_cfg))
}

fn run(args: &[String], budget: &Budget) -> Result<(), CliError> {
    let cmd = args
        .first()
        .ok_or_else(|| CliError::Usage("missing subcommand".into()))?;
    let mut loader = Loader::default();
    let ld = &mut loader;
    match cmd.as_str() {
        "canon" => canon(ld, arg(args, 1)?, budget),
        "aut" => automorphisms(ld, arg(args, 1)?, budget),
        "iso" => isomorphic(ld, arg(args, 1)?, arg(args, 2)?, budget),
        "tree" => tree(ld, arg(args, 1)?, args.iter().any(|a| a == "--render"), budget),
        "ssm" => ssm(ld, arg(args, 1)?, arg(args, 2)?, flag_value(args, "--limit"), budget),
        "ksym" => ksym_cmd(ld, arg(args, 1)?, arg(args, 2)?, budget),
        "quotient" => quotient_cmd(ld, arg(args, 1)?, budget),
        "dataset" => dataset(arg(args, 1)?),
        "convert" => convert(ld, arg(args, 1)?, budget),
        "batch" => batch::batch(&args[1..]),
        "serve" => batch::serve(&args[1..]),
        other => Err(CliError::Usage(format!("unknown subcommand `{other}`"))),
    }
}

fn arg(args: &[String], i: usize) -> Result<&str, CliError> {
    args.get(i)
        .map(|s| s.as_str())
        .ok_or_else(|| CliError::Usage(format!("missing argument #{i}")))
}

fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Loads graph arguments, reading stdin at most once per process: a
/// second `-` is a typed error, not a silent empty graph.
#[derive(Default)]
struct Loader {
    stdin_used: bool,
}

impl Loader {
    fn load(&mut self, spec: &str) -> Result<Graph, DviclError> {
        if let Some(g6) = spec.strip_prefix("g6:") {
            return graph6::from_graph6(g6);
        }
        if spec == "-" {
            if self.stdin_used {
                return Err(DviclError::invalid(
                    "stdin (`-`) was already consumed by an earlier argument; \
                     pass the second graph as a file or g6:<literal>",
                ));
            }
            self.stdin_used = true;
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| DviclError::invalid(format!("reading stdin: {e}")))?;
            return load_text(&buf);
        }
        let text = std::fs::read_to_string(spec)
            .map_err(|e| DviclError::invalid(format!("{spec}: {e}")))?;
        load_text(&text)
    }
}

fn load_text(text: &str) -> Result<Graph, DviclError> {
    // Heuristic: a single token without whitespace separators on the first
    // non-comment line is graph6; otherwise an edge list.
    let first = text
        .lines()
        .find(|l| !l.trim().is_empty() && !l.starts_with('#') && !l.starts_with('%'));
    match first {
        Some(line) if !line.trim().contains(char::is_whitespace) => {
            graph6::from_graph6(line.trim())
        }
        _ => gio::read_edge_list(text.as_bytes()).map(|l| l.graph),
    }
}

fn build(g: &Graph, budget: &Budget) -> Result<AutoTree, DviclError> {
    // `--threads` only changes wall-clock time: the parallel build's
    // deterministic merge keeps the tree byte-identical (DESIGN.md §14).
    // Likewise `--kernel`: both refinement kernels produce identical
    // equitable partitions, so the tree is byte-identical under either.
    let opts = DviclOptions {
        leaf_config: leaf_config(),
        threads: threads(),
        ..DviclOptions::default()
    };
    let outcome = build_autotree_resilient(g, &Coloring::unit(g.n()), &opts, budget)?;
    if outcome.degraded {
        eprintln!("note: node budget exhausted; degraded to whole-graph labeling");
    }
    if paranoid() {
        // Degraded trees go through the same checks as full ones: the
        // witness contract does not weaken under degradation.
        dvicl_core::verify::verify_tree(g, &outcome.tree)?;
        eprintln!("paranoid: tree witness checks passed");
    }
    Ok(outcome.tree)
}

fn canon(ld: &mut Loader, spec: &str, budget: &Budget) -> Result<(), CliError> {
    let g = ld.load(spec)?;
    let tree = build(&g, budget)?;
    let labeling = tree.canonical_labeling();
    let canonical = g.permuted(&labeling);
    outln!("n: {}  m: {}", g.n(), g.m());
    outln!("certificate (canonical graph6): {}", graph6::to_graph6(&canonical));
    outln!("canonical labeling: {labeling}");
    Ok(())
}

fn automorphisms(ld: &mut Loader, spec: &str, budget: &Budget) -> Result<(), CliError> {
    let g = ld.load(spec)?;
    let tree = build(&g, budget)?;
    outln!("|Aut(G)| = {}", aut::group_order(&tree));
    let mut orbits = aut::orbits(&tree);
    outln!(
        "orbits: {} ({} singletons)",
        orbits.count(),
        orbits.count_singletons()
    );
    let gens = aut::generators(&tree);
    outln!("generators ({}):", gens.len());
    for gen in gens.iter().take(50) {
        outln!("  {gen}");
    }
    if gens.len() > 50 {
        outln!("  ... {} more", gens.len() - 50);
    }
    Ok(())
}

fn isomorphic(ld: &mut Loader, a: &str, b: &str, budget: &Budget) -> Result<(), CliError> {
    let (ga, gb) = (ld.load(a)?, ld.load(b)?);
    let outcome = iso::try_find_isomorphism_outcome(&ga, &gb, budget)?;
    if outcome.degraded {
        // Same marker contract as `build`: a degraded answer is still
        // correct but the caller must be able to see it happened.
        eprintln!("note: node budget exhausted; degraded to whole-graph labeling");
    }
    match outcome.mapping {
        Some(gamma) => {
            if paranoid() {
                dvicl_core::verify::verify_iso(&ga, &gb, &gamma)?;
                eprintln!("paranoid: iso mapping witness checks passed");
            }
            outln!("isomorphic: yes");
            outln!("mapping: {gamma}");
            Ok(())
        }
        None => {
            outln!("isomorphic: no");
            Ok(())
        }
    }
}

fn tree(ld: &mut Loader, spec: &str, render: bool, budget: &Budget) -> Result<(), CliError> {
    let g = ld.load(spec)?;
    let t = build(&g, budget)?;
    let s = t.stats();
    outln!(
        "nodes: {}  singleton leaves: {}  non-singleton leaves: {} (avg size {:.2}, max {})  depth: {}",
        s.total_nodes,
        s.singleton_leaves,
        s.non_singleton_leaves,
        s.avg_non_singleton_size,
        s.max_non_singleton_size,
        s.depth
    );
    if render {
        out!("{}", t.render());
    }
    Ok(())
}

fn ssm(
    ld: &mut Loader,
    spec: &str,
    set: &str,
    limit: Option<usize>,
    budget: &Budget,
) -> Result<(), CliError> {
    let g = ld.load(spec)?;
    let set: Vec<V> = set
        .split(',')
        .map(|t| {
            t.trim()
                .parse::<V>()
                .map_err(|_| DviclError::invalid(format!("not a vertex id: {t:?}")))
        })
        .collect::<Result<_, _>>()?;
    let tree = build(&g, budget)?;
    let index = SsmIndex::new(&tree);
    outln!(
        "images under Aut(G): {}",
        try_count_images(&tree, &index, &set, budget)?.to_scientific()
    );
    let limit = limit.unwrap_or(20);
    let res = try_enumerate_images(&tree, &index, &set, limit, budget)?;
    outln!(
        "first {} matches{}:",
        res.matches.len(),
        if res.truncated { "" } else { " (complete)" }
    );
    for m in &res.matches {
        outln!("  {m:?}");
    }
    Ok(())
}

fn ksym_cmd(ld: &mut Loader, spec: &str, k: &str, budget: &Budget) -> Result<(), CliError> {
    let g = ld.load(spec)?;
    let k: usize = k
        .parse()
        .map_err(|_| DviclError::invalid(format!("k must be a positive integer, got {k:?}")))?;
    let tree = build(&g, budget)?;
    let (g2, stats) = ksym::try_k_symmetric_extension(&g, &tree, k, budget)?;
    eprintln!(
        "k={k}: +{} vertices, +{} edges ({} classes duplicated)",
        stats.added_vertices, stats.added_edges, stats.duplicated_classes
    );
    emit_edge_list(&g2)?;
    Ok(())
}

fn quotient_cmd(ld: &mut Loader, spec: &str, budget: &Budget) -> Result<(), CliError> {
    let g = ld.load(spec)?;
    let tree = build(&g, budget)?;
    let q = dvicl_apps::quotient::quotient(&g, &tree);
    let e = dvicl_apps::quotient::structure_entropy(&g, &tree);
    outln!(
        "G: n = {}, m = {}   quotient: n = {}, m = {}   entropy = {e:.4}",
        g.n(),
        g.m(),
        q.graph.n(),
        q.graph.m()
    );
    Ok(())
}

fn dataset(name: &str) -> Result<(), CliError> {
    let all = dvicl_data::social_suite()
        .into_iter()
        .chain(dvicl_data::benchmark_suite());
    for d in all {
        if d.name.eq_ignore_ascii_case(name) {
            let g = (d.build)();
            return emit_edge_list(&g).map_err(CliError::from);
        }
    }
    Err(DviclError::invalid(format!(
        "unknown dataset `{name}`; known: {}",
        dvicl_data::social_suite()
            .iter()
            .chain(dvicl_data::benchmark_suite().iter())
            .map(|d| d.name)
            .collect::<Vec<_>>()
            .join(", ")
    ))
    .into())
}

fn convert(ld: &mut Loader, spec: &str, budget: &Budget) -> Result<(), CliError> {
    budget.check()?;
    let g = ld.load(spec)?;
    if spec.starts_with("g6:") {
        emit_edge_list(&g)?;
        Ok(())
    } else {
        outln!("{}", graph6::to_graph6(&g));
        Ok(())
    }
}
