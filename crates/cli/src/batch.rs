//! The batch isomorphism service: `dvicl batch` and `dvicl serve`.
//!
//! Both subcommands run the same line protocol over a
//! [`FingerprintIndex`], canonicalizing queries through one reusable
//! [`Session`] so the arena pools and `CombineCL` memo amortize across
//! the whole stream (each request costs exactly one canonicalization
//! plus one hash probe — ROADMAP item 2):
//!
//! ```text
//! insert    <GRAPH>     add to the index; prints class, member count, fresh/known
//! lookup    <GRAPH>     find the query's isomorphism class, if indexed
//! groupsize <GRAPH>     member count of the query's class, if indexed
//! quit                  (serve only) save and exit
//! ```
//!
//! `<GRAPH>` is `g6:<graph6-literal>` or `el:u-v,u-v,...` (an inline
//! edge list; vertex count inferred). Blank lines and `#` comments are
//! skipped. One response line per request; a request that fails —
//! malformed graph, tripped per-request budget, witness failure,
//! injected fault — answers `error: ...` inline and the service keeps
//! going with exit code 0. Only process-level failures (unusable index
//! file, bad flags, failed save) terminate with a typed exit code.
//!
//! `batch` drains a query file (or stdin) and exits; `serve` flushes
//! after every response so a driving process can speak the protocol
//! interactively.

use crate::CliError;
use dvicl_core::{DviclOptions, Session};
use dvicl_govern::{parse_duration, Budget, DviclError};
use dvicl_graph::{graph6, io as gio, CanonForm, Fingerprint, Graph};
use dvicl_index::FingerprintIndex;
use dvicl_obs as obs;
use std::io::{BufRead, Write};
use std::path::Path;
use std::time::Duration;

/// Flags shared by `batch` and `serve`.
struct ServiceOpts {
    /// `--index PATH`: preload this `DVIX1` file.
    index: Option<String>,
    /// `--save PATH`: write the final index here on clean exit.
    save: Option<String>,
    /// `--req-timeout DUR`: wall-clock allowance per request.
    req_timeout: Option<Duration>,
    /// `--req-max-nodes N`: work allowance per request.
    req_max_nodes: Option<u64>,
    /// Positional query file (`batch` only; stdin when absent).
    input: Option<String>,
}

impl ServiceOpts {
    fn parse(args: &[String], positional_input: bool) -> Result<ServiceOpts, CliError> {
        let mut opts = ServiceOpts {
            index: None,
            save: None,
            req_timeout: None,
            req_max_nodes: None,
            input: None,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let value = |it: &mut std::slice::Iter<String>, flag: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
            };
            match a.as_str() {
                "--index" => opts.index = Some(value(&mut it, "--index")?),
                "--save" => opts.save = Some(value(&mut it, "--save")?),
                "--req-timeout" => {
                    opts.req_timeout = Some(parse_duration(&value(&mut it, "--req-timeout")?)?)
                }
                "--req-max-nodes" => {
                    let v = value(&mut it, "--req-max-nodes")?;
                    opts.req_max_nodes = Some(v.parse::<u64>().map_err(|_| {
                        CliError::Usage(format!("--req-max-nodes: not a count: {v:?}"))
                    })?);
                }
                other if other.starts_with('-') && other != "-" => {
                    return Err(CliError::Usage(format!("unknown flag `{other}`")));
                }
                _ if positional_input && opts.input.is_none() => {
                    opts.input = Some(a.clone());
                }
                other => {
                    return Err(CliError::Usage(format!("unexpected argument `{other}`")));
                }
            }
        }
        Ok(opts)
    }

    /// One fresh allowance per request: a hostile query trips its own
    /// typed error without starving the rest of the stream.
    fn request_budget(&self) -> Budget {
        Budget::new(self.req_timeout, self.req_max_nodes)
    }
}

/// The mutable service state threaded through every request line.
struct Service {
    session: Session,
    index: FingerprintIndex,
    requests: u64,
    errors: u64,
}

impl Service {
    fn new(opts: &ServiceOpts) -> Result<Service, DviclError> {
        let index = match &opts.index {
            Some(path) => FingerprintIndex::load(Path::new(path), crate::paranoid())?,
            None => FingerprintIndex::new(),
        };
        // The same leaf configuration the other subcommands build with
        // (traces-like plus any --kernel / --target-cell overrides); the
        // global --threads width applies to every request's build.
        let session = Session::new(DviclOptions {
            leaf_config: crate::leaf_config(),
            threads: crate::threads(),
            ..DviclOptions::default()
        });
        Ok(Service {
            session,
            index,
            requests: 0,
            errors: 0,
        })
    }

    /// Parses an inline graph spec: `g6:<literal>` or `el:u-v,...`.
    fn parse_graph(spec: &str) -> Result<Graph, DviclError> {
        if let Some(g6) = spec.strip_prefix("g6:") {
            return graph6::from_graph6(g6);
        }
        if let Some(el) = spec.strip_prefix("el:") {
            // `0-1,1-2` becomes the edge-list text `0 1\n1 2\n`, so the
            // inline form reuses the hardened reader and its typed errors.
            let text: String = el
                .split(',')
                .map(|edge| edge.replacen('-', " ", 1))
                .collect::<Vec<_>>()
                .join("\n");
            return gio::read_edge_list(text.as_bytes()).map(|l| l.graph);
        }
        Err(DviclError::invalid(format!(
            "graph spec must start with g6: or el:, got {spec:?}"
        )))
    }

    /// One canonicalization, one fingerprint: the cost of every request
    /// regardless of index size.
    fn key(&mut self, spec: &str, budget: &Budget) -> Result<(Fingerprint, CanonForm), DviclError> {
        let g = Service::parse_graph(spec)?;
        self.session.try_fingerprinted_form(&g, budget)
    }

    /// Answers one request line; `None` for blank lines and comments.
    fn respond(&mut self, line: &str, budget: &Budget) -> Option<String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return None;
        }
        self.requests += 1;
        let mut tokens = line.split_whitespace();
        let cmd = tokens.next()?;
        let answer = match (cmd, tokens.next(), tokens.next()) {
            (_, _, Some(extra)) => Err(DviclError::invalid(format!(
                "trailing token {extra:?} after the graph spec"
            ))),
            ("insert", Some(spec), None) => self.key(spec, budget).and_then(|(fp, form)| {
                let out = self.index.insert(fp, form, crate::paranoid())?;
                Ok(format!(
                    "insert: class={} members={} {}",
                    out.class,
                    out.members,
                    if out.fresh { "fresh" } else { "known" }
                ))
            }),
            ("lookup", Some(spec), None) => self.key(spec, budget).map(|(fp, form)| {
                match self.index.lookup(fp, &form) {
                    Some(class) => format!(
                        "lookup: class={class} members={}",
                        self.index.classes()[class].members
                    ),
                    None => "lookup: not-indexed".to_string(),
                }
            }),
            ("groupsize", Some(spec), None) => self.key(spec, budget).map(|(fp, form)| {
                match self.index.group_size(fp, &form) {
                    Some(members) => format!("groupsize: {members}"),
                    None => "groupsize: not-indexed".to_string(),
                }
            }),
            (cmd @ ("insert" | "lookup" | "groupsize"), None, None) => {
                Err(DviclError::invalid(format!("{cmd} needs a graph spec")))
            }
            (other, _, None) => Err(DviclError::invalid(format!(
                "unknown request `{other}` (expected insert/lookup/groupsize)"
            ))),
        };
        Some(answer.unwrap_or_else(|e| {
            self.errors += 1;
            format!("error: {e}")
        }))
    }

    /// Clean-exit bookkeeping: optional save, then a stream summary on
    /// stderr (stdout carries only protocol responses).
    fn finish(&self, opts: &ServiceOpts) -> Result<(), DviclError> {
        if let Some(path) = &opts.save {
            self.index.save(Path::new(path))?;
        }
        eprintln!(
            "served {} requests ({} errors); index: {} classes, {} members",
            self.requests,
            self.errors,
            self.index.len(),
            self.index.members_total()
        );
        Ok(())
    }
}

/// Writes one response line, treating a closed pipe as a normal end of
/// service (same contract as the `outln!` macro).
fn respond_line(out: &mut impl Write, line: &str) {
    if writeln!(out, "{line}").is_err() {
        std::process::exit(0);
    }
}

/// `dvicl batch [FLAGS] [QUERIES]` — drain a query file (stdin when
/// absent) and exit.
pub(crate) fn batch(args: &[String]) -> Result<(), CliError> {
    let _span = obs::span("cli.batch");
    let opts = ServiceOpts::parse(args, true)?;
    let mut service = Service::new(&opts)?;
    let text = match opts.input.as_deref() {
        Some("-") | None => {
            let mut buf = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf)
                .map_err(|e| DviclError::invalid(format!("reading stdin: {e}")))?;
            buf
        }
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| DviclError::invalid(format!("{path}: {e}")))?,
    };
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for line in text.lines() {
        if let Some(answer) = service.respond(line, &opts.request_budget()) {
            respond_line(&mut out, &answer);
        }
    }
    if out.flush().is_err() {
        std::process::exit(0);
    }
    drop(out);
    service.finish(&opts)?;
    Ok(())
}

/// `dvicl serve [FLAGS]` — answer stdin line by line, flushing per
/// response, until `quit` or end of input.
pub(crate) fn serve(args: &[String]) -> Result<(), CliError> {
    let _span = obs::span("cli.serve");
    let opts = ServiceOpts::parse(args, false)?;
    let mut service = Service::new(&opts)?;
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| DviclError::invalid(format!("reading stdin: {e}")))?;
        if line.trim() == "quit" {
            break;
        }
        if let Some(answer) = service.respond(&line, &opts.request_budget()) {
            respond_line(&mut out, &answer);
            if out.flush().is_err() {
                std::process::exit(0);
            }
        }
    }
    service.finish(&opts)?;
    Ok(())
}
