//! The workspace symbol table: every parsed item of every analyzed
//! file, indexed for the call graph and the workspace-level rules.
//!
//! Resolution is by *name*, deliberately over-approximated: `dvicl-lint`
//! has no type information, so a call `x.refine()` resolves to every
//! workspace function named `refine`. For the reachability questions
//! the rules ask ("can this loop reach a budget checkpoint?", "is this
//! type touched from the hot path?") an over-approximation in the edge
//! set means *fewer* findings, never false ones from missing edges.

use crate::parse::{Item, ItemKind};
use crate::FileData;
use std::collections::HashMap;

/// A reference to one item of one analyzed file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SymRef {
    /// Index into the workspace's file list.
    pub file: usize,
    /// Index into that file's `items`.
    pub item: usize,
}

/// Workspace-wide item index.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Every `Fn` item *with a body*, in file order. Positions in this
    /// vector are the node ids of the call graph.
    pub fns: Vec<SymRef>,
    /// Function name → indices into [`SymbolTable::fns`].
    pub fns_by_name: HashMap<String, Vec<usize>>,
    /// Every `Static` item.
    pub statics: Vec<SymRef>,
    /// Every `Struct` item.
    pub structs: Vec<SymRef>,
}

impl SymbolTable {
    pub fn build(files: &[FileData]) -> SymbolTable {
        let mut table = SymbolTable::default();
        for (fi, file) in files.iter().enumerate() {
            for (ii, item) in file.items.iter().enumerate() {
                let r = SymRef { file: fi, item: ii };
                match item.kind {
                    ItemKind::Fn if item.body.is_some() => {
                        let id = table.fns.len();
                        table.fns.push(r);
                        table
                            .fns_by_name
                            .entry(item.name.clone())
                            .or_default()
                            .push(id);
                    }
                    ItemKind::Static => table.statics.push(r),
                    ItemKind::Struct => table.structs.push(r),
                    _ => {}
                }
            }
        }
        table
    }

    /// The parsed item behind a reference.
    pub fn item<'a>(&self, files: &'a [FileData], r: SymRef) -> &'a Item {
        &files[r.file].items[r.item]
    }

    /// The item behind call-graph node `id`.
    pub fn fn_item<'a>(&self, files: &'a [FileData], id: usize) -> &'a Item {
        self.item(files, self.fns[id])
    }

    /// Call-graph node ids of every function named `name`.
    pub fn fns_named(&self, name: &str) -> &[usize] {
        self.fns_by_name.get(name).map_or(&[], |v| v.as_slice())
    }
}
