//! A lightweight Rust *item* parser over the lexed token stream.
//!
//! `dvicl-lint` stays dependency-free (no `syn`), so this recognizes
//! exactly the item granularity the rules need — `fn`/`impl`/`struct`/
//! `enum`/`static`/`const`/`use`/`mod`/`trait`/`type` — with code-token
//! spans, in-file module paths, enclosing `impl` types, struct field
//! types, and `thread_local!` awareness. It is *not* a grammar: bodies
//! are brace-matched token ranges, types are source slices, and
//! expressions are never interpreted. Two deliberate blind spots keep
//! it honest on real code:
//!
//! - Function *signatures* are skipped after the item is recorded, so
//!   `impl Iterator` in a return position or `fn(usize) -> bool`
//!   pointer types can never be mistaken for items. Function *bodies*
//!   are walked, so nested items (including `impl` blocks in bodies)
//!   are found.
//! - `macro_rules!` bodies are skipped wholesale — macro fragments are
//!   pseudo-code no item parser should believe.
//!
//! Downstream consumers: `symbols` builds the workspace symbol table
//! from these items, `callgraph` resolves call edges between the `Fn`
//! items, and `dataflow` walks `Fn` body ranges.

use crate::lexer::{Tok, TokKind};

/// What kind of item was recognized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Struct,
    Enum,
    Static,
    Const,
    Use,
    Mod,
    Impl,
    Trait,
    TypeAlias,
}

/// One recognized item. Spans are *code positions*: indices into the
/// `code` vector of non-comment token indices, matching how the rules
/// iterate token streams.
#[derive(Clone, Debug)]
pub struct Item {
    pub kind: ItemKind,
    /// Item name (type name for `impl` blocks; `""` for unnamed
    /// targets such as `impl Trait for (A, B)` or grouped `use`).
    pub name: String,
    /// Code position of the introducing keyword.
    pub kw_cp: usize,
    /// Code position of the name token (== `kw_cp` when unnamed).
    pub name_cp: usize,
    /// `Fn` only: code positions of the body interior — first token
    /// after the opening `{` (inclusive) to the closing `}` (the close
    /// position itself, exclusive as a slice bound). `None` for
    /// bodyless trait methods.
    pub body: Option<(usize, usize)>,
    /// Code positions of the header: keyword (inclusive) to the body
    /// `{` or terminating `;` (exclusive).
    pub sig: (usize, usize),
    /// `::`-joined in-file module path (`""` at file top level; test
    /// modules included — pair with [`Item::is_test`]).
    pub module: String,
    /// For items inside an `impl` block: the target type name.
    pub impl_type: Option<String>,
    /// `static mut` / (never set for `const`).
    pub is_mut: bool,
    /// `Static`/`Const`: source text of the declared type.
    pub type_text: String,
    /// `Struct`: `(field, type-text)` pairs (tuple fields named
    /// `"0"`, `"1"`, …). `Enum`: `(variant, payload-text)` pairs.
    pub fields: Vec<(String, String)>,
    /// Declared inside a `thread_local! { … }` invocation.
    pub thread_local: bool,
    /// The keyword falls inside a `#[cfg(test)]`/`#[test]` span.
    pub is_test: bool,
}

/// Lexical scopes the walker tracks while scanning.
enum ScopeKind {
    Module(String),
    Impl(String),
    ThreadLocal,
}

struct Scope {
    /// Code position of the scope's closing `}`.
    close_cp: usize,
    kind: ScopeKind,
}

struct Parser<'a> {
    src: &'a str,
    toks: &'a [Tok],
    code: &'a [usize],
    test_spans: &'a [(usize, usize)],
}

impl<'a> Parser<'a> {
    fn tok(&self, cp: usize) -> Option<&'a Tok> {
        self.code.get(cp).map(|&i| &self.toks[i])
    }

    fn text(&self, cp: usize) -> &'a str {
        self.tok(cp).map(|t| t.text(self.src)).unwrap_or("")
    }

    fn is_punct(&self, cp: usize, b: u8) -> bool {
        matches!(self.tok(cp), Some(t) if t.kind == TokKind::Punct(b))
    }

    fn is_ident(&self, cp: usize) -> bool {
        matches!(self.tok(cp), Some(t) if t.kind == TokKind::Ident)
    }

    fn in_test(&self, cp: usize) -> bool {
        let Some(t) = self.tok(cp) else { return false };
        self.test_spans.iter().any(|&(s, e)| t.start >= s && t.start < e)
    }

    /// Source text spanned by the code positions `[from, to)`.
    fn slice(&self, from: usize, to: usize) -> String {
        match (self.tok(from), to.checked_sub(1).and_then(|c| self.tok(c))) {
            (Some(a), Some(b)) if b.end >= a.start => {
                self.src.get(a.start..b.end).unwrap_or("").trim().to_string()
            }
            _ => String::new(),
        }
    }

    /// Matching `}` for the `{` at `open_cp`.
    fn matching_brace(&self, open_cp: usize) -> Option<usize> {
        let mut depth = 0i32;
        let mut cp = open_cp;
        loop {
            match self.tok(cp)?.kind {
                TokKind::Punct(b'{') => depth += 1,
                TokKind::Punct(b'}') => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(cp);
                    }
                }
                _ => {}
            }
            cp += 1;
        }
    }

    /// From `cp`, the first `{` or `;` at zero paren/bracket depth.
    /// Returns `(cp, true)` for a brace, `(cp, false)` for a semi.
    fn body_open(&self, mut cp: usize) -> Option<(usize, bool)> {
        let mut depth = 0i32;
        loop {
            match self.tok(cp)?.kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
                TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
                TokKind::Punct(b'{') if depth == 0 => return Some((cp, true)),
                TokKind::Punct(b';') if depth == 0 => return Some((cp, false)),
                _ => {}
            }
            cp += 1;
        }
    }

    /// From `cp`, the first position whose token is one of `stops` at
    /// zero paren/bracket/brace/angle depth. `->` does not close an
    /// angle bracket. Used to find the end of type positions and
    /// initializers, where `<`/`>` are always generics.
    fn scan_to(&self, mut cp: usize, stops: &[u8]) -> Option<usize> {
        let mut depth = 0i32;
        let mut angle = 0i32;
        loop {
            let t = self.tok(cp)?;
            match t.kind {
                TokKind::Punct(b) if depth == 0 && angle == 0 && stops.contains(&b) => {
                    return Some(cp)
                }
                TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => depth += 1,
                TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => depth -= 1,
                TokKind::Punct(b'<') if depth == 0 => angle += 1,
                // `->` is an arrow, not a generic close.
                TokKind::Punct(b'>')
                    if depth == 0 && angle > 0 && !(cp > 0 && self.is_punct(cp - 1, b'-')) =>
                {
                    angle -= 1;
                }
                _ => {}
            }
            cp += 1;
        }
    }

    fn module_path(&self, scopes: &[Scope]) -> String {
        let names: Vec<&str> = scopes
            .iter()
            .filter_map(|s| match &s.kind {
                ScopeKind::Module(m) => Some(m.as_str()),
                _ => None,
            })
            .collect();
        names.join("::")
    }

    fn impl_type(&self, scopes: &[Scope]) -> Option<String> {
        scopes.iter().rev().find_map(|s| match &s.kind {
            ScopeKind::Impl(t) if !t.is_empty() => Some(t.clone()),
            _ => None,
        })
    }

    fn item(&self, kind: ItemKind, kw_cp: usize, name_cp: usize, scopes: &[Scope]) -> Item {
        Item {
            kind,
            name: if self.is_ident(name_cp) && name_cp != kw_cp {
                self.text(name_cp).to_string()
            } else {
                String::new()
            },
            kw_cp,
            name_cp,
            body: None,
            sig: (kw_cp, kw_cp),
            module: self.module_path(scopes),
            impl_type: self.impl_type(scopes),
            is_mut: false,
            type_text: String::new(),
            fields: Vec::new(),
            thread_local: scopes.iter().any(|s| matches!(s.kind, ScopeKind::ThreadLocal)),
            is_test: self.in_test(kw_cp),
        }
    }
}

/// Parses all items of one lexed file. `code` is the non-comment token
/// index vector, `test_spans` the `#[cfg(test)]` byte spans (both as
/// produced by the engine).
pub fn items(src: &str, toks: &[Tok], code: &[usize], test_spans: &[(usize, usize)]) -> Vec<Item> {
    let p = Parser {
        src,
        toks,
        code,
        test_spans,
    };
    let mut out = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut cp = 0usize;
    while cp < code.len() {
        while scopes.last().is_some_and(|s| s.close_cp <= cp) {
            scopes.pop();
        }
        if !p.is_ident(cp) {
            cp += 1;
            continue;
        }
        cp = match p.text(cp) {
            "mod" => parse_mod(&p, cp, &mut scopes, &mut out),
            "impl" => parse_impl(&p, cp, &mut scopes, &mut out),
            "fn" => parse_fn(&p, cp, &scopes, &mut out),
            "struct" => parse_struct(&p, cp, &scopes, &mut out),
            "enum" => parse_enum(&p, cp, &scopes, &mut out),
            "static" => parse_static(&p, cp, ItemKind::Static, &scopes, &mut out),
            "const" => parse_const(&p, cp, &scopes, &mut out),
            "use" => parse_use(&p, cp, &scopes, &mut out),
            "trait" => parse_trait(&p, cp, &scopes, &mut out),
            "type" => parse_type_alias(&p, cp, &scopes, &mut out),
            "thread_local" => parse_thread_local(&p, cp, &mut scopes),
            "macro_rules" => skip_macro_rules(&p, cp),
            _ => cp + 1,
        };
    }
    out
}

fn parse_mod(p: &Parser, cp: usize, scopes: &mut Vec<Scope>, out: &mut Vec<Item>) -> usize {
    if !p.is_ident(cp + 1) {
        return cp + 1;
    }
    let mut item = p.item(ItemKind::Mod, cp, cp + 1, scopes);
    if p.is_punct(cp + 2, b'{') {
        let Some(close) = p.matching_brace(cp + 2) else { return cp + 1 };
        item.sig = (cp, cp + 2);
        scopes.push(Scope {
            close_cp: close,
            kind: ScopeKind::Module(item.name.clone()),
        });
        out.push(item);
        cp + 3
    } else {
        // `mod name;` — an out-of-line module; nothing to descend into.
        item.sig = (cp, cp + 2);
        out.push(item);
        cp + 2
    }
}

fn parse_impl(p: &Parser, cp: usize, scopes: &mut Vec<Scope>, out: &mut Vec<Item>) -> usize {
    let Some((open, is_brace)) = p.body_open(cp + 1) else { return cp + 1 };
    if !is_brace {
        return open + 1;
    }
    let Some(close) = p.matching_brace(open) else { return cp + 1 };
    // Header: skip leading generics, then the target type is the path
    // after `for` (trait impls) or right after the generics (inherent).
    let mut k = cp + 1;
    if p.is_punct(k, b'<') {
        let mut angle = 0i32;
        while k < open {
            if p.is_punct(k, b'<') {
                angle += 1;
            } else if p.is_punct(k, b'>') && !(k > 0 && p.is_punct(k - 1, b'-')) {
                angle -= 1;
                if angle == 0 {
                    k += 1;
                    break;
                }
            }
            k += 1;
        }
    }
    // A `for` at angle depth 0 inside the header switches to the
    // trait-impl form; the target follows it.
    let mut angle = 0i32;
    let mut for_cp = None;
    for j in k..open {
        if p.is_punct(j, b'<') {
            angle += 1;
        } else if p.is_punct(j, b'>') && !(j > 0 && p.is_punct(j - 1, b'-')) {
            angle = (angle - 1).max(0);
        } else if angle == 0 && p.is_ident(j) && p.text(j) == "for" {
            for_cp = Some(j);
            break;
        }
    }
    let mut t = for_cp.map_or(k, |f| f + 1);
    // Skip reference/pointer/dyn prefixes, then take the last segment
    // of the leading path.
    while t < open {
        match p.tok(t).map(|x| x.kind) {
            Some(TokKind::Punct(b'&')) | Some(TokKind::Punct(b'*')) | Some(TokKind::Lifetime) => {
                t += 1
            }
            Some(TokKind::Ident) if matches!(p.text(t), "dyn" | "mut" | "const") => t += 1,
            _ => break,
        }
    }
    let mut name_cp = cp;
    while t < open && p.is_ident(t) {
        name_cp = t;
        if p.is_punct(t + 1, b':') && p.is_punct(t + 2, b':') && p.is_ident(t + 3) {
            t += 3;
        } else {
            break;
        }
    }
    let mut item = p.item(ItemKind::Impl, cp, name_cp, scopes);
    item.sig = (cp, open);
    scopes.push(Scope {
        close_cp: close,
        kind: ScopeKind::Impl(item.name.clone()),
    });
    out.push(item);
    open + 1
}

fn parse_fn(p: &Parser, cp: usize, scopes: &[Scope], out: &mut Vec<Item>) -> usize {
    if !p.is_ident(cp + 1) {
        // `fn` in a type position (`fn(usize) -> bool` pointers).
        return cp + 1;
    }
    let Some((open, is_brace)) = p.body_open(cp + 2) else { return cp + 1 };
    let mut item = p.item(ItemKind::Fn, cp, cp + 1, scopes);
    item.sig = (cp, open);
    if !is_brace {
        // Bodyless trait method.
        out.push(item);
        return open + 1;
    }
    let Some(close) = p.matching_brace(open) else { return cp + 1 };
    item.body = Some((open + 1, close));
    out.push(item);
    // Skip the signature (it may contain `impl`/`fn` in type positions)
    // but walk the body so nested items are found.
    open + 1
}

fn parse_struct(p: &Parser, cp: usize, scopes: &[Scope], out: &mut Vec<Item>) -> usize {
    if !p.is_ident(cp + 1) {
        return cp + 1;
    }
    let mut item = p.item(ItemKind::Struct, cp, cp + 1, scopes);
    let Some(start) = p.scan_to(cp + 2, b"{(;") else { return cp + 1 };
    item.sig = (cp, start);
    if p.is_punct(start, b';') {
        out.push(item);
        return start + 1;
    }
    if p.is_punct(start, b'(') {
        // Tuple struct: types between top-level commas.
        let Some(close) = p.scan_to(start + 1, b")") else { return cp + 1 };
        let mut field_start = start + 1;
        let mut idx = 0usize;
        while field_start < close {
            let end = p.scan_to(field_start, b",)").unwrap_or(close).min(close);
            if end > field_start {
                let text = strip_visibility(&p.slice(field_start, end));
                item.fields.push((idx.to_string(), text));
                idx += 1;
            }
            field_start = end + 1;
        }
        out.push(item);
        let Some(semi) = p.scan_to(close + 1, b";") else { return close + 1 };
        return semi + 1;
    }
    // Named fields.
    let Some(close) = p.matching_brace(start) else { return cp + 1 };
    let mut k = start + 1;
    while k < close {
        k = skip_attrs_and_vis(p, k, close);
        if k >= close {
            break;
        }
        if p.is_ident(k) && p.is_punct(k + 1, b':') {
            let ty_start = k + 2;
            let end = p.scan_to(ty_start, b",}").unwrap_or(close).min(close);
            item.fields.push((p.text(k).to_string(), p.slice(ty_start, end)));
            k = end + 1;
        } else {
            k += 1;
        }
    }
    out.push(item);
    close + 1
}

fn parse_enum(p: &Parser, cp: usize, scopes: &[Scope], out: &mut Vec<Item>) -> usize {
    if !p.is_ident(cp + 1) {
        return cp + 1;
    }
    let mut item = p.item(ItemKind::Enum, cp, cp + 1, scopes);
    let Some(open) = p.scan_to(cp + 2, b"{;") else { return cp + 1 };
    item.sig = (cp, open);
    if p.is_punct(open, b';') {
        out.push(item);
        return open + 1;
    }
    let Some(close) = p.matching_brace(open) else { return cp + 1 };
    let mut k = open + 1;
    while k < close {
        k = skip_attrs_and_vis(p, k, close);
        if k >= close || !p.is_ident(k) {
            k += 1;
            continue;
        }
        let name = p.text(k).to_string();
        let mut payload = String::new();
        let mut j = k + 1;
        if p.is_punct(j, b'(') {
            let end = p.scan_to(j + 1, b")").unwrap_or(close).min(close);
            payload = p.slice(j + 1, end);
            j = end + 1;
        } else if p.is_punct(j, b'{') {
            let end = p.matching_brace(j).unwrap_or(close).min(close);
            payload = p.slice(j + 1, end);
            j = end + 1;
        }
        // Optional `= discriminant`, then the separating comma.
        let next = p.scan_to(j, b",}").unwrap_or(close).min(close);
        item.fields.push((name, payload));
        k = next + 1;
    }
    out.push(item);
    close + 1
}

fn parse_static(
    p: &Parser,
    cp: usize,
    kind: ItemKind,
    scopes: &[Scope],
    out: &mut Vec<Item>,
) -> usize {
    let mut k = cp + 1;
    let is_mut = p.is_ident(k) && p.text(k) == "mut";
    if is_mut {
        k += 1;
    }
    if !p.is_ident(k) || !p.is_punct(k + 1, b':') {
        return cp + 1;
    }
    let mut item = p.item(kind, cp, k, scopes);
    item.is_mut = is_mut;
    let ty_start = k + 2;
    let end = p.scan_to(ty_start, b"=;").unwrap_or(ty_start);
    item.type_text = p.slice(ty_start, end);
    item.sig = (cp, end);
    out.push(item);
    // Skip the initializer (it may contain braces).
    p.scan_to(end, b";").map_or(end + 1, |s| s + 1)
}

fn parse_const(p: &Parser, cp: usize, scopes: &[Scope], out: &mut Vec<Item>) -> usize {
    // `const fn` is handled by the `fn` keyword; `const { … }` blocks
    // and `*const` pointers are not items.
    if p.is_ident(cp + 1) && p.is_punct(cp + 2, b':') {
        return parse_static(p, cp, ItemKind::Const, scopes, out);
    }
    cp + 1
}

fn parse_use(p: &Parser, cp: usize, scopes: &[Scope], out: &mut Vec<Item>) -> usize {
    let Some(semi) = p.scan_to(cp + 1, b";") else { return cp + 1 };
    let mut name_cp = cp;
    for j in (cp + 1..semi).rev() {
        if p.is_ident(j) {
            name_cp = j;
            break;
        }
    }
    let mut item = p.item(ItemKind::Use, cp, name_cp, scopes);
    item.type_text = p.slice(cp + 1, semi);
    item.sig = (cp, semi);
    out.push(item);
    semi + 1
}

fn parse_trait(p: &Parser, cp: usize, scopes: &[Scope], out: &mut Vec<Item>) -> usize {
    if !p.is_ident(cp + 1) {
        return cp + 1;
    }
    let mut item = p.item(ItemKind::Trait, cp, cp + 1, scopes);
    let Some(open) = p.scan_to(cp + 2, b"{;") else { return cp + 1 };
    item.sig = (cp, open);
    out.push(item);
    // Walk the body (default methods are real fns); no scope change.
    open + 1
}

fn parse_type_alias(p: &Parser, cp: usize, scopes: &[Scope], out: &mut Vec<Item>) -> usize {
    if !p.is_ident(cp + 1) {
        return cp + 1;
    }
    let mut item = p.item(ItemKind::TypeAlias, cp, cp + 1, scopes);
    let Some(semi) = p.scan_to(cp + 2, b";") else { return cp + 1 };
    item.sig = (cp, semi);
    out.push(item);
    semi + 1
}

fn parse_thread_local(p: &Parser, cp: usize, scopes: &mut Vec<Scope>) -> usize {
    if p.is_punct(cp + 1, b'!') && p.is_punct(cp + 2, b'{') {
        if let Some(close) = p.matching_brace(cp + 2) {
            scopes.push(Scope {
                close_cp: close,
                kind: ScopeKind::ThreadLocal,
            });
            return cp + 3;
        }
    }
    cp + 1
}

fn skip_macro_rules(p: &Parser, cp: usize) -> usize {
    if p.is_punct(cp + 1, b'!') && p.is_ident(cp + 2) && p.is_punct(cp + 3, b'{') {
        if let Some(close) = p.matching_brace(cp + 3) {
            return close + 1;
        }
    }
    cp + 1
}

/// Skips `#[…]` attributes and `pub`(`(…)`) visibility at a field or
/// variant position; never advances past `limit`.
fn skip_attrs_and_vis(p: &Parser, mut k: usize, limit: usize) -> usize {
    loop {
        if k >= limit {
            return k;
        }
        if p.is_punct(k, b'#') && p.is_punct(k + 1, b'[') {
            let mut depth = 0i32;
            let mut j = k + 1;
            while j < limit {
                if p.is_punct(j, b'[') {
                    depth += 1;
                } else if p.is_punct(j, b']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            k = j + 1;
            continue;
        }
        if p.is_ident(k) && p.text(k) == "pub" {
            k += 1;
            if p.is_punct(k, b'(') {
                let mut depth = 0i32;
                while k < limit {
                    if p.is_punct(k, b'(') {
                        depth += 1;
                    } else if p.is_punct(k, b')') {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    k += 1;
                }
            }
            continue;
        }
        return k;
    }
}

fn strip_visibility(text: &str) -> String {
    let t = text.trim();
    let t = t.strip_prefix("pub").map_or(t, |rest| {
        let rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix('(') {
            r.split_once(')').map_or(rest, |(_, tail)| tail)
        } else {
            rest
        }
    });
    t.trim().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn parse(src: &str) -> Vec<Item> {
        let toks = lexer::lex(src);
        let code: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        items(src, &toks, &code, &[])
    }

    fn find<'a>(items: &'a [Item], kind: ItemKind, name: &str) -> &'a Item {
        items
            .iter()
            .find(|i| i.kind == kind && i.name == name)
            .unwrap_or_else(|| panic!("no {kind:?} named {name} in {items:?}"))
    }

    #[test]
    fn fns_with_modules_and_impls() {
        let src = r#"
            pub fn top() { helper(); }
            mod inner {
                pub struct S { pub n: usize }
                impl S {
                    pub fn method(&self) -> usize { self.n }
                }
                impl std::fmt::Display for S {
                    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                        write!(f, "{}", self.n)
                    }
                }
            }
        "#;
        let items = parse(src);
        let top = find(&items, ItemKind::Fn, "top");
        assert_eq!(top.module, "");
        assert!(top.impl_type.is_none());
        assert!(top.body.is_some());
        let method = find(&items, ItemKind::Fn, "method");
        assert_eq!(method.module, "inner");
        assert_eq!(method.impl_type.as_deref(), Some("S"));
        let fmt = find(&items, ItemKind::Fn, "fmt");
        assert_eq!(fmt.impl_type.as_deref(), Some("S"));
    }

    #[test]
    fn impl_in_signature_position_is_not_a_scope() {
        let src = r#"
            fn gen(xs: &[u8]) -> impl Iterator<Item = u8> + '_ { xs.iter().copied() }
            fn ptr(f: fn(usize) -> bool) -> bool { f(0) }
            fn after() {}
        "#;
        let items = parse(src);
        assert_eq!(items.iter().filter(|i| i.kind == ItemKind::Impl).count(), 0);
        let after = find(&items, ItemKind::Fn, "after");
        assert!(after.impl_type.is_none());
        assert_eq!(items.iter().filter(|i| i.kind == ItemKind::Fn).count(), 3);
    }

    #[test]
    fn nested_fns_and_body_impls_are_found() {
        let src = r#"
            fn outer() {
                fn nested(x: usize) -> usize { x }
                struct Local;
                impl Local { fn m(&self) {} }
                nested(1);
            }
        "#;
        let items = parse(src);
        assert!(items.iter().any(|i| i.kind == ItemKind::Fn && i.name == "nested"));
        let m = find(&items, ItemKind::Fn, "m");
        assert_eq!(m.impl_type.as_deref(), Some("Local"));
    }

    #[test]
    fn struct_fields_with_generic_types() {
        let src = r#"
            pub struct Table<K, V> {
                pub map: HashMap<K, Vec<(V, usize)>>,
                count: usize,
            }
            struct Pair(pub u32, Vec<u8>);
            struct Unit;
        "#;
        let items = parse(src);
        let table = find(&items, ItemKind::Struct, "Table");
        assert_eq!(table.fields.len(), 2);
        assert_eq!(table.fields[0].0, "map");
        assert_eq!(table.fields[0].1, "HashMap<K, Vec<(V, usize)>>");
        assert_eq!(table.fields[1], ("count".into(), "usize".into()));
        let pair = find(&items, ItemKind::Struct, "Pair");
        assert_eq!(pair.fields[0], ("0".into(), "u32".into()));
        assert_eq!(pair.fields[1], ("1".into(), "Vec<u8>".into()));
        assert!(find(&items, ItemKind::Struct, "Unit").fields.is_empty());
    }

    #[test]
    fn enum_variants_and_payloads() {
        let src = r#"
            pub enum Counter {
                RefineRounds,
                Custom(String, usize),
                Rich { a: u8 },
            }
        "#;
        let items = parse(src);
        let e = find(&items, ItemKind::Enum, "Counter");
        let names: Vec<&str> = e.fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["RefineRounds", "Custom", "Rich"]);
        assert_eq!(e.fields[1].1, "String, usize");
    }

    #[test]
    fn statics_consts_and_thread_local() {
        let src = r#"
            static mut GLOBAL: usize = 0;
            pub const LIMIT: u32 = 10;
            thread_local! {
                static STACK: RefCell<Vec<u8>> = RefCell::new(Vec::new());
            }
            static PLAIN: AtomicU64 = AtomicU64::new(0);
        "#;
        let items = parse(src);
        let g = find(&items, ItemKind::Static, "GLOBAL");
        assert!(g.is_mut && !g.thread_local);
        assert_eq!(g.type_text, "usize");
        let limit = find(&items, ItemKind::Const, "LIMIT");
        assert_eq!(limit.type_text, "u32");
        let stack = find(&items, ItemKind::Static, "STACK");
        assert!(stack.thread_local);
        assert_eq!(stack.type_text, "RefCell<Vec<u8>>");
        assert!(!find(&items, ItemKind::Static, "PLAIN").thread_local);
    }

    #[test]
    fn traits_aliases_uses_and_macro_rules() {
        let src = r#"
            use std::collections::HashMap;
            pub trait Visit {
                type Out;
                fn visit(&self) -> Self::Out;
                fn noop(&self) {}
            }
            type Alias = HashMap<u8, u8>;
            macro_rules! weird { () => { fn not_an_item() {} }; }
            fn real() {}
        "#;
        let items = parse(src);
        assert!(items.iter().any(|i| i.kind == ItemKind::Use));
        find(&items, ItemKind::Trait, "Visit");
        let fns: Vec<&str> = items
            .iter()
            .filter(|i| i.kind == ItemKind::Fn)
            .map(|i| i.name.as_str())
            .collect();
        assert_eq!(fns, ["visit", "noop", "real"], "macro body must be skipped");
        assert!(find(&items, ItemKind::Fn, "visit").body.is_none());
        assert!(find(&items, ItemKind::Fn, "noop").body.is_some());
        find(&items, ItemKind::TypeAlias, "Alias");
    }

    #[test]
    fn impl_header_forms() {
        let src = r#"
            struct A; struct B<T>(T);
            impl A { fn a(&self) {} }
            impl<T: Clone> B<T> { fn b(&self) {} }
            impl<T> Default for B<T> where T: Default {
                fn default() -> Self { B(T::default()) }
            }
            impl Iterator for A {
                type Item = u8;
                fn next(&mut self) -> Option<u8> { None }
            }
        "#;
        let items = parse(src);
        assert_eq!(find(&items, ItemKind::Fn, "a").impl_type.as_deref(), Some("A"));
        assert_eq!(find(&items, ItemKind::Fn, "b").impl_type.as_deref(), Some("B"));
        assert_eq!(find(&items, ItemKind::Fn, "default").impl_type.as_deref(), Some("B"));
        assert_eq!(find(&items, ItemKind::Fn, "next").impl_type.as_deref(), Some("A"));
    }
}
