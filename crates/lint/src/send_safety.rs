//! The Send-safety report: a machine-readable classification of the
//! `core::sub` / `core::arena` types the parallel-build PR (ROADMAP
//! item 1) will move across worker threads.
//!
//! For every struct, enum, and static declared in `crates/core/src/
//! sub.rs` and `crates/core/src/arena.rs`, each field's declared type
//! text is screened for the same `!Send` markers the
//! shared-state-screen rule uses (`Rc`, `RefCell`, `Cell`,
//! `UnsafeCell`, raw pointers) plus borrowed data (`&` in a field
//! type means the value cannot be moved to a worker that outlives the
//! borrow). A type with no flagged field is `send-ready`; one with any
//! flagged field is `blocked`, and the report names the field and the
//! marker so the parallel PR knows exactly what to restructure.
//!
//! The report is JSON (schema `dvicl-send-safety-v1`), emitted by
//! `dvicl-lint --send-safety-report <FILE>` and archived by the CI
//! lint job. Like the rest of the linter it is a *screen*, not a
//! proof: it reads declared type text, not resolved types, so a
//! type alias hiding an `Rc` would pass here and be caught by the
//! compiler the moment a `Send` bound appears.

use crate::parse::ItemKind;
use crate::rules::shared_state_screen::{type_mentions, UNSHAREABLE};
use crate::Workspace;
use std::fmt::Write as _;

/// The schema tag embedded in the report.
pub const SCHEMA: &str = "dvicl-send-safety-v1";

/// The files whose types the report covers.
pub const COVERED_FILES: [&str; 3] = [
    "crates/core/src/sub.rs",
    "crates/core/src/arena.rs",
    "crates/pool/src/lib.rs",
];

/// One field (or enum payload) verdict.
struct FieldVerdict {
    name: String,
    type_text: String,
    /// The `!Send` marker found in the type text, if any.
    marker: Option<&'static str>,
}

/// One covered type.
struct TypeVerdict {
    name: String,
    kind: &'static str,
    file: String,
    line: u32,
    fields: Vec<FieldVerdict>,
}

impl TypeVerdict {
    fn blocked(&self) -> bool {
        self.fields.iter().any(|f| f.marker.is_some())
    }
}

/// Screens one declared type text for `!Send` markers.
fn classify(type_text: &str) -> Option<&'static str> {
    if let Some(bad) = UNSHAREABLE.iter().find(|m| type_mentions(type_text, m)) {
        return Some(bad);
    }
    if type_text.contains("*const") || type_text.contains("*mut") {
        return Some("raw pointer");
    }
    if type_text.contains('&') {
        return Some("borrowed data");
    }
    None
}

/// Builds the JSON report over an analyzed workspace. Types appear in
/// declaration order per file, files in [`COVERED_FILES`] order.
pub fn report(ws: &Workspace) -> String {
    let mut types: Vec<TypeVerdict> = Vec::new();
    for covered in COVERED_FILES {
        let Some(file) = ws.file_by_rel(covered) else { continue };
        for item in &file.items {
            if item.is_test {
                continue;
            }
            let kind = match item.kind {
                ItemKind::Struct => "struct",
                ItemKind::Enum => "enum",
                ItemKind::Static => "static",
                _ => continue,
            };
            let name_tok = &file.toks[file.code[item.name_cp]];
            let fields = if kind == "static" {
                vec![FieldVerdict {
                    name: item.name.clone(),
                    type_text: item.type_text.clone(),
                    marker: classify(&item.type_text),
                }]
            } else {
                item.fields
                    .iter()
                    .map(|(name, ty)| FieldVerdict {
                        name: name.clone(),
                        type_text: ty.clone(),
                        marker: classify(ty),
                    })
                    .collect()
            };
            types.push(TypeVerdict {
                name: item.name.clone(),
                kind,
                file: file.rel.clone(),
                line: name_tok.line,
                fields,
            });
        }
    }

    let blocked = types.iter().filter(|t| t.blocked()).count();
    let mut out = String::new();
    let _ = write!(out, "{{\"schema\":{}", crate::report::json_str(SCHEMA));
    out.push_str(",\"files\":[");
    for (i, f) in COVERED_FILES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&crate::report::json_str(f));
    }
    out.push_str("],\"types\":[");
    for (i, t) in types.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"kind\":{},\"file\":{},\"line\":{},\"status\":{},\"fields\":[",
            crate::report::json_str(&t.name),
            crate::report::json_str(t.kind),
            crate::report::json_str(&t.file),
            t.line,
            crate::report::json_str(if t.blocked() { "blocked" } else { "send-ready" }),
        );
        for (j, f) in t.fields.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"type\":{}",
                crate::report::json_str(&f.name),
                crate::report::json_str(&f.type_text),
            );
            if let Some(m) = f.marker {
                let _ = write!(out, ",\"marker\":{}", crate::report::json_str(m));
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    let _ = write!(
        out,
        "],\"summary\":{{\"types\":{},\"send_ready\":{},\"blocked\":{}}}}}",
        types.len(),
        types.len() - blocked,
        blocked
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws_with(sub: &str, arena: &str) -> Workspace {
        Workspace::analyze(vec![
            ("crates/core/src/sub.rs".to_string(), sub.to_string()),
            ("crates/core/src/arena.rs".to_string(), arena.to_string()),
        ])
    }

    #[test]
    fn owned_types_are_send_ready() {
        let ws = ws_with(
            "pub struct Sub { pub n: usize, verts: Vec<u32> }",
            "pub struct SubArena { adj: Vec<u32>, peak: u64 }",
        );
        let r = report(&ws);
        assert!(r.contains("\"schema\":\"dvicl-send-safety-v1\""), "{r}");
        assert!(r.contains("\"name\":\"Sub\""), "{r}");
        assert!(r.contains("\"name\":\"SubArena\""), "{r}");
        assert!(r.contains("\"summary\":{\"types\":2,\"send_ready\":2,\"blocked\":0}"), "{r}");
        assert!(!r.contains("\"status\":\"blocked\""), "{r}");
    }

    #[test]
    fn rc_field_blocks_and_names_the_marker() {
        let ws = ws_with(
            "pub struct Sub { shared: Rc<Vec<u32>>, n: usize }",
            "",
        );
        let r = report(&ws);
        assert!(r.contains("\"status\":\"blocked\""), "{r}");
        assert!(r.contains("\"marker\":\"Rc\""), "{r}");
        assert!(r.contains("\"blocked\":1"), "{r}");
    }

    #[test]
    fn raw_pointer_and_borrow_fields_block() {
        let ws = ws_with(
            "pub struct A { p: *mut u8 }\npub struct B<'a> { s: &'a [u32] }",
            "",
        );
        let r = report(&ws);
        assert!(r.contains("\"marker\":\"raw pointer\""), "{r}");
        assert!(r.contains("\"marker\":\"borrowed data\""), "{r}");
        assert!(r.contains("\"blocked\":2"), "{r}");
    }

    #[test]
    fn test_only_types_are_excluded() {
        let ws = ws_with(
            "pub struct Sub { n: usize }\n#[cfg(test)]\nmod tests { struct Fixture { r: Rc<u8> } }",
            "",
        );
        let r = report(&ws);
        assert!(!r.contains("Fixture"), "{r}");
        assert!(r.contains("\"blocked\":0"), "{r}");
    }
}
