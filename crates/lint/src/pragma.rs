//! Suppression pragmas: `// dvicl-lint: allow(<rule>[, <rule>...]) -- <reason>`.
//!
//! A pragma silences findings of the named rules on its own line and on
//! the line immediately below it, so both styles work:
//!
//! ```text
//! foo.unwrap() // dvicl-lint: allow(panic-freedom) -- len checked above
//!
//! // dvicl-lint: allow(panic-freedom) -- len checked above
//! foo.unwrap()
//! ```
//!
//! The reason is mandatory: a pragma without a non-empty `-- reason`
//! tail does **not** suppress anything and is itself reported as a
//! `pragma-missing-reason` finding. Naming a rule that does not exist is
//! reported as `pragma-unknown-rule`. Both keep the suppression surface
//! auditable — every silenced finding carries a stated invariant.

/// A parsed (possibly malformed) suppression pragma.
#[derive(Clone, Debug)]
pub struct Pragma {
    /// 1-based line the pragma comment starts on.
    pub line: u32,
    /// 1-based column of the comment.
    pub col: u32,
    /// Rule ids named in `allow(...)`.
    pub rules: Vec<String>,
    /// The stated reason, `None` when the `-- reason` tail is missing
    /// or empty.
    pub reason: Option<String>,
}

impl Pragma {
    /// Whether this pragma (if well-formed) suppresses `rule` at
    /// 1-based `line`.
    pub fn suppresses(&self, rule: &str, line: u32) -> bool {
        self.reason.is_some()
            && (line == self.line || line == self.line + 1)
            && self.rules.iter().any(|r| r == rule)
    }
}

/// Parses the text of one line comment (including the leading `//`).
/// Returns `None` when the comment is not a dvicl-lint pragma at all.
/// Malformed pragmas (no `allow(...)` clause) come back with an empty
/// rule list so the engine can flag them.
pub fn parse(comment: &str, line: u32, col: u32) -> Option<Pragma> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("dvicl-lint:")?.trim();
    let (clause, tail) = match rest.find(')') {
        Some(i) => (&rest[..=i], &rest[i + 1..]),
        None => (rest, ""),
    };
    let rules = clause
        .strip_prefix("allow(")
        .and_then(|r| r.strip_suffix(')'))
        .map(|inner| {
            inner
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect::<Vec<_>>()
        })
        .unwrap_or_default();
    let reason = tail
        .trim()
        .strip_prefix("--")
        .map(|r| r.trim())
        .filter(|r| !r.is_empty())
        .map(|r| r.to_string());
    Some(Pragma {
        line,
        col,
        rules,
        reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_pragma() {
        let p = parse(
            "// dvicl-lint: allow(panic-freedom) -- index bounded by loop",
            7,
            3,
        )
        .unwrap();
        assert_eq!(p.rules, vec!["panic-freedom"]);
        assert_eq!(p.reason.as_deref(), Some("index bounded by loop"));
        assert!(p.suppresses("panic-freedom", 7));
        assert!(p.suppresses("panic-freedom", 8));
        assert!(!p.suppresses("panic-freedom", 9));
        assert!(!p.suppresses("unsafe-audit", 7));
    }

    #[test]
    fn multiple_rules_one_pragma() {
        let p = parse(
            "// dvicl-lint: allow(panic-freedom, narrowing-cast) -- proven in from_cells",
            1,
            1,
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert!(p.suppresses("narrowing-cast", 2));
    }

    #[test]
    fn missing_reason_does_not_suppress() {
        let p = parse("// dvicl-lint: allow(panic-freedom)", 4, 1).unwrap();
        assert!(p.reason.is_none());
        assert!(!p.suppresses("panic-freedom", 4));
    }

    #[test]
    fn empty_reason_counts_as_missing() {
        let p = parse("// dvicl-lint: allow(panic-freedom) --   ", 4, 1).unwrap();
        assert!(p.reason.is_none());
    }

    #[test]
    fn non_pragma_comments_pass_through() {
        assert!(parse("// just a comment", 1, 1).is_none());
        assert!(parse("/// docs about dvicl-lint pragmas", 1, 1).is_none());
    }

    #[test]
    fn malformed_clause_has_no_rules() {
        let p = parse("// dvicl-lint: allowed(panic-freedom) -- oops", 1, 1).unwrap();
        assert!(p.rules.is_empty());
    }
}
