//! Rendering findings: a human `file:line:col` listing and a JSON form
//! for CI tooling. JSON is emitted by hand — the workspace builds
//! offline, so no serde.

use crate::rules::Finding;
use std::fmt::Write as _;

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, ordered by file then line then column.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of findings silenced by well-formed pragmas.
    pub suppressed: usize,
}

impl Report {
    /// True when the run should exit zero.
    pub fn is_clean(&self) -> bool {
        self.findings
            .iter()
            .all(|f| f.severity != crate::rules::Severity::Deny)
    }

    /// Human-readable listing, one finding per line plus a summary.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}[{}] {}:{}:{}: {}",
                f.severity.as_str(),
                f.rule,
                f.file,
                f.line,
                f.col,
                f.message
            );
        }
        let _ = writeln!(
            out,
            "dvicl-lint: {} finding(s), {} suppressed, {} file(s) scanned",
            self.findings.len(),
            self.suppressed,
            self.files_scanned
        );
        out
    }

    /// GitHub Actions workflow commands: one `::error`/`::warning`
    /// annotation per finding, so findings surface inline on the PR
    /// diff. The summary line goes through as a `::notice`.
    pub fn github(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let cmd = match f.severity {
                crate::rules::Severity::Deny => "error",
                crate::rules::Severity::Warn => "warning",
            };
            let _ = writeln!(
                out,
                "::{cmd} file={},line={},col={},title={}::{}",
                f.file,
                f.line,
                f.col,
                f.rule,
                gh_escape(&f.message)
            );
        }
        let _ = writeln!(
            out,
            "::notice title=dvicl-lint::{} finding(s), {} suppressed, {} file(s) scanned",
            self.findings.len(),
            self.suppressed,
            self.files_scanned
        );
        out
    }

    /// JSON object with a `findings` array; stable key order.
    pub fn json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":{},\"severity\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{}}}",
                json_str(f.rule),
                json_str(f.severity.as_str()),
                json_str(&f.file),
                f.line,
                f.col,
                json_str(&f.message)
            );
        }
        let _ = write!(
            out,
            "],\"suppressed\":{},\"files_scanned\":{}}}",
            self.suppressed, self.files_scanned
        );
        out
    }
}

/// Workflow-command data escaping: `%`, CR, and LF must be
/// percent-encoded or GitHub truncates the message at the newline.
fn gh_escape(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
/// Shared with the send-safety report writer.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            // dvicl-lint: allow(narrowing-cast) -- char as u32 is the full scalar value, a widening conversion
            c if (c as u32) < 0x20 => {
                // dvicl-lint: allow(narrowing-cast) -- char as u32 is the full scalar value, a widening conversion
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    fn sample() -> Finding {
        Finding {
            rule: "panic-freedom",
            severity: Severity::Deny,
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            byte: 0,
            message: "`.unwrap()` in non-test code".into(),
        }
    }

    #[test]
    fn human_lists_span_and_rule() {
        let r = Report {
            findings: vec![sample()],
            files_scanned: 1,
            suppressed: 2,
        };
        let h = r.human();
        assert!(h.contains("deny[panic-freedom] crates/x/src/lib.rs:3:9:"));
        assert!(h.contains("1 finding(s), 2 suppressed, 1 file(s) scanned"));
    }

    #[test]
    fn json_escapes_and_orders_keys() {
        let mut f = sample();
        f.message = "quote \" and \\ and\nnewline".into();
        let r = Report {
            findings: vec![f],
            files_scanned: 1,
            suppressed: 0,
        };
        let j = r.json();
        assert!(j.starts_with("{\"findings\":["));
        assert!(j.contains("\\\""));
        assert!(j.contains("\\n"));
        assert!(j.ends_with("\"suppressed\":0,\"files_scanned\":1}"));
    }

    #[test]
    fn clean_report_is_clean() {
        assert!(Report::default().is_clean());
    }

    #[test]
    fn github_format_emits_workflow_commands() {
        let mut f = sample();
        f.message = "50% of\nthe time".into();
        let r = Report {
            findings: vec![f],
            files_scanned: 1,
            suppressed: 0,
        };
        let g = r.github();
        assert!(
            g.contains("::error file=crates/x/src/lib.rs,line=3,col=9,title=panic-freedom::"),
            "{g}"
        );
        assert!(g.contains("50%25 of%0Athe time"), "{g}");
        assert!(g.contains("::notice title=dvicl-lint::1 finding(s)"), "{g}");
    }
}
