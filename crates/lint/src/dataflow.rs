//! A small forward dataflow pass over one function body: tracks
//! open/close *pairs* of resource method calls (`SubArena::mark` /
//! `SubArena::release` for the arena-discipline rule) across the
//! body's block structure and reports paths that exit while a resource
//! is open.
//!
//! The abstraction is a per-variable open/closed state plus the brace
//! depth it was opened at:
//!
//! - `let m = recv.mark();` opens `m` at the current depth.
//! - `recv.release(m)` at the *same* depth closes `m` unconditionally.
//! - `recv.release(m)` at a *deeper* depth is a conditional close: `m`
//!   stays closed for the rest of that block (so a `return`/`?` right
//!   after the release is clean), and reopens when the block ends —
//!   the fall-through path never executed the release. This is exactly
//!   the `try_…` rollback shape: release-then-`Err` inside an `if`,
//!   keep the resource on the success path.
//! - `?` / `return` while any variable is open is a leak on that exit
//!   path; `break`/`continue` leak only variables opened inside the
//!   loop being exited.
//! - A block ending (or the body ending) below a variable's open depth
//!   while it is still open is a leak on the fall-through path.
//!
//! The pass is syntactic: it does not model `if`/`else` joins beyond
//! the reopen rule above, so "both branches release" patterns need a
//! pragma. The workspace has none; the rule's escape hatch documents
//! the invariant when one appears.

use crate::lexer::{Tok, TokKind};

/// Why an issue was raised.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IssueKind {
    /// `?`, `return`, `break`, or `continue` reached with the variable
    /// open. The payload is the exiting token's text.
    EarlyExit(&'static str),
    /// The variable's scope (or the whole body) ended with it open.
    OutOfScope,
    /// Closed twice on the same path.
    DoubleClose,
    /// Re-bound by a new `let … = ….mark()` while still open.
    ShadowedOpen,
}

/// One discipline violation found in a body.
#[derive(Clone, Debug)]
pub struct Issue {
    pub kind: IssueKind,
    /// Code position of the token the issue is anchored at (the exit
    /// token, the closing `}`, or the re-binding `let`).
    pub at_cp: usize,
    /// The tracked variable.
    pub var: String,
    /// Code position where the variable was opened.
    pub opened_cp: usize,
}

struct Tracked {
    var: String,
    opened_cp: usize,
    open_depth: i32,
    open: bool,
    /// Depth of a conditional close to undo when its block ends.
    closed_at: Option<i32>,
}

/// Scans a function body (code positions `[start, end]` where `end` is
/// the closing `}`) for `let v = ….<open_method>()` / `….<close_method>(v)`
/// pairing violations.
pub fn scan_pairs(
    src: &str,
    toks: &[Tok],
    code: &[usize],
    body: (usize, usize),
    open_method: &str,
    close_method: &str,
) -> Vec<Issue> {
    let tok = |cp: usize| code.get(cp).map(|&i| &toks[i]);
    let text = |cp: usize| tok(cp).map(|t| t.text(src)).unwrap_or("");
    let is_punct = |cp: usize, b: u8| matches!(tok(cp), Some(t) if t.kind == TokKind::Punct(b));
    let is_ident = |cp: usize| matches!(tok(cp), Some(t) if t.kind == TokKind::Ident);

    let mut issues = Vec::new();
    let mut tracked: Vec<Tracked> = Vec::new();
    let mut depth = 0i32;
    // Depths of loop-body interiors, innermost last.
    let mut loop_depths: Vec<i32> = Vec::new();
    let mut pending_loop = false;
    // Paren depth since the loop keyword, so `while let Some(x) = …(…)`
    // doesn't arm on a closure or group before its real body.
    let (start, end) = body;
    let mut cp = start;
    while cp <= end {
        let Some(t) = tok(cp) else { break };
        match t.kind {
            TokKind::Punct(b'{') => {
                depth += 1;
                // A loop keyword arms the next block at paren depth 0;
                // closure bodies (`|…| {`) do not count.
                if pending_loop && !is_punct(cp.wrapping_sub(1), b'|') {
                    loop_depths.push(depth);
                    pending_loop = false;
                }
            }
            TokKind::Punct(b'}') => {
                depth -= 1;
                // Undo conditional closes whose block just ended.
                for tr in tracked.iter_mut() {
                    if let Some(d) = tr.closed_at {
                        if d > depth {
                            tr.open = true;
                            tr.closed_at = None;
                        }
                    }
                }
                // Variables falling out of scope while open.
                for tr in tracked.iter_mut() {
                    if tr.open && tr.open_depth > depth {
                        issues.push(Issue {
                            kind: IssueKind::OutOfScope,
                            at_cp: cp,
                            var: tr.var.clone(),
                            opened_cp: tr.opened_cp,
                        });
                        tr.open = false;
                    }
                }
                tracked.retain(|tr| tr.open_depth <= depth);
                while loop_depths.last().is_some_and(|&d| d > depth) {
                    loop_depths.pop();
                }
            }
            // `?Sized` bounds are not the try operator.
            TokKind::Punct(b'?') if text(cp + 1) != "Sized" => {
                early_exit(&tracked, cp, "?", None, &mut issues);
            }
            TokKind::Ident => match text(cp) {
                "return" => early_exit(&tracked, cp, "return", None, &mut issues),
                "break" => {
                    early_exit(&tracked, cp, "break", loop_depths.last().copied(), &mut issues)
                }
                "continue" => {
                    early_exit(&tracked, cp, "continue", loop_depths.last().copied(), &mut issues)
                }
                "for" | "while" | "loop" => pending_loop = true,
                "let" => {
                    if let Some((var, var_cp)) =
                        let_opens(src, toks, code, cp, end, open_method)
                    {
                        if let Some(tr) =
                            tracked.iter_mut().find(|tr| tr.var == var && tr.open)
                        {
                            issues.push(Issue {
                                kind: IssueKind::ShadowedOpen,
                                at_cp: cp,
                                var: var.clone(),
                                opened_cp: tr.opened_cp,
                            });
                            tr.open = false;
                        }
                        tracked.push(Tracked {
                            var,
                            opened_cp: var_cp,
                            open_depth: depth,
                            open: true,
                            closed_at: None,
                        });
                    }
                }
                // `.close_method ( var )`
                m if m == close_method
                    && cp > start
                    && is_punct(cp - 1, b'.')
                    && is_punct(cp + 1, b'(')
                    && is_ident(cp + 2)
                    && is_punct(cp + 3, b')') =>
                {
                    let var = text(cp + 2);
                    // Most recent binding wins (shadowing). Unknown
                    // vars (parameters released for a caller) are out
                    // of this pass's scope.
                    if let Some(tr) = tracked.iter_mut().rev().find(|tr| tr.var == var) {
                        if !tr.open {
                            issues.push(Issue {
                                kind: IssueKind::DoubleClose,
                                at_cp: cp,
                                var: var.to_string(),
                                opened_cp: tr.opened_cp,
                            });
                        } else if depth > tr.open_depth {
                            tr.open = false;
                            tr.closed_at = Some(depth);
                        } else {
                            tr.open = false;
                            tr.closed_at = None;
                        }
                    }
                }
                _ => {}
            },
            _ => {}
        }
        cp += 1;
    }
    issues
}

/// Does the `let` statement starting at `let_cp` bind the result of an
/// `….<open_method>()` call? Returns the bound variable and its code
/// position. Only simple `let [mut] name = …;` bindings are matched —
/// pattern bindings never carry arena marks in this codebase.
fn let_opens(
    src: &str,
    toks: &[Tok],
    code: &[usize],
    let_cp: usize,
    end: usize,
    open_method: &str,
) -> Option<(String, usize)> {
    let tok = |cp: usize| code.get(cp).map(|&i| &toks[i]);
    let text = |cp: usize| tok(cp).map(|t| t.text(src)).unwrap_or("");
    let is_punct = |cp: usize, b: u8| matches!(tok(cp), Some(t) if t.kind == TokKind::Punct(b));

    let mut k = let_cp + 1;
    if text(k) == "mut" {
        k += 1;
    }
    let var_cp = k;
    if !matches!(tok(k), Some(t) if t.kind == TokKind::Ident) {
        return None;
    }
    if !is_punct(k + 1, b'=') {
        return None;
    }
    // Scan the initializer to the statement's `;` for `.open_method()`.
    let mut depth = 0i32;
    let mut j = k + 2;
    while j <= end {
        let t = tok(j)?;
        match t.kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            TokKind::Punct(b';') if depth == 0 => break,
            TokKind::Ident
                if t.text(src) == open_method
                    && is_punct(j.wrapping_sub(1), b'.')
                    && is_punct(j + 1, b'(')
                    && is_punct(j + 2, b')') =>
            {
                return Some((text(var_cp).to_string(), var_cp));
            }
            _ => {}
        }
        j += 1;
    }
    None
}

fn early_exit(
    tracked: &[Tracked],
    cp: usize,
    what: &'static str,
    min_depth: Option<i32>,
    issues: &mut Vec<Issue>,
) {
    for tr in tracked {
        if !tr.open {
            continue;
        }
        // break/continue only leak marks opened inside the loop.
        if let Some(d) = min_depth {
            if tr.open_depth < d {
                continue;
            }
        }
        issues.push(Issue {
            kind: IssueKind::EarlyExit(what),
            at_cp: cp,
            var: tr.var.clone(),
            opened_cp: tr.opened_cp,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    /// Runs the pass over the body of the first `fn` in `src`.
    fn scan(src: &str) -> Vec<Issue> {
        let toks = lexer::lex(src);
        let code: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let items = crate::parse::items(src, &toks, &code, &[]);
        let body = items
            .iter()
            .find(|i| i.kind == crate::parse::ItemKind::Fn)
            .and_then(|i| i.body)
            .expect("fixture has a fn with a body");
        scan_pairs(src, &toks, &code, (body.0, body.1), "mark", "release")
    }

    #[test]
    fn balanced_mark_release_is_clean() {
        let issues = scan(
            "fn f(a: &mut A) -> R {
                let mark = a.mark();
                let out = a.carve();
                a.release(mark);
                out
            }",
        );
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn release_before_try_is_clean_and_after_is_not() {
        let clean = scan(
            "fn f(a: &mut A) -> Result<R, E> {
                let mark = a.mark();
                let out = a.carve();
                a.release(mark);
                Ok(out?)
            }",
        );
        assert!(clean.is_empty(), "{clean:?}");
        let dirty = scan(
            "fn f(a: &mut A) -> Result<R, E> {
                let mark = a.mark();
                let out = a.carve()?;
                a.release(mark);
                Ok(out)
            }",
        );
        assert_eq!(dirty.len(), 1, "{dirty:?}");
        assert_eq!(dirty[0].kind, IssueKind::EarlyExit("?"));
        assert_eq!(dirty[0].var, "mark");
    }

    #[test]
    fn conditional_release_reopens_on_fallthrough() {
        // The try_… rollback shape: release + Err inside the if is
        // clean, but the success path leaks unless the caller owns it.
        let issues = scan(
            "fn f(a: &mut A) -> Result<R, E> {
                let mark = a.mark();
                if a.over() {
                    a.release(mark);
                    return Err(E::Budget);
                }
                Ok(a.take())
            }",
        );
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert_eq!(issues[0].kind, IssueKind::OutOfScope);
    }

    #[test]
    fn return_while_open_is_flagged() {
        let issues = scan(
            "fn f(a: &mut A) -> usize {
                let m = a.mark();
                if a.empty() {
                    return 0;
                }
                a.release(m);
                1
            }",
        );
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert_eq!(issues[0].kind, IssueKind::EarlyExit("return"));
        assert_eq!(issues[0].var, "m");
    }

    #[test]
    fn break_outside_the_marks_loop_is_clean() {
        let issues = scan(
            "fn f(a: &mut A) {
                let m = a.mark();
                for x in a.items() {
                    if x.bad() {
                        break;
                    }
                }
                a.release(m);
            }",
        );
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn break_with_loop_local_mark_open_is_flagged() {
        let issues = scan(
            "fn f(a: &mut A) {
                while a.more() {
                    let m = a.mark();
                    if a.bad() {
                        break;
                    }
                    a.release(m);
                }
            }",
        );
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert_eq!(issues[0].kind, IssueKind::EarlyExit("break"));
    }

    #[test]
    fn per_iteration_pairs_and_double_release() {
        let clean = scan(
            "fn f(a: &mut A) {
                for _ in 0..a.n() {
                    let m = a.mark();
                    a.carve();
                    a.release(m);
                }
            }",
        );
        assert!(clean.is_empty(), "{clean:?}");
        let dirty = scan(
            "fn f(a: &mut A) {
                let m = a.mark();
                a.release(m);
                a.release(m);
            }",
        );
        assert_eq!(dirty.len(), 1, "{dirty:?}");
        assert_eq!(dirty[0].kind, IssueKind::DoubleClose);
    }

    #[test]
    fn body_end_with_open_mark_is_flagged() {
        let issues = scan(
            "fn f(a: &mut A) -> Child {
                let m = a.mark();
                a.carve()
            }",
        );
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert_eq!(issues[0].kind, IssueKind::OutOfScope);
        assert_eq!(issues[0].var, "m");
    }

    #[test]
    fn question_mark_sized_bound_is_ignored() {
        let issues = scan(
            "fn f(a: &mut A) {
                let m = a.mark();
                fn helper<T: ?Sized>(t: &T) {}
                a.release(m);
            }",
        );
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn releases_of_caller_owned_marks_are_ignored() {
        let issues = scan(
            "fn f(a: &mut A, m: Mark) {
                a.release(m);
            }",
        );
        assert!(issues.is_empty(), "{issues:?}");
    }
}
