//! The intra-workspace call graph, built over the symbol table's `Fn`
//! nodes by scanning every function body for call-shaped token
//! sequences: `name(` and `.name(`.
//!
//! Edges are resolved by name to *every* workspace function with that
//! name (see `symbols` for why over-approximation is the safe
//! direction here). Macro invocations (`name!(…)`) and definitions are
//! excluded; calls into `std` or through trait objects simply resolve
//! to nothing and add no edge. Turbofish calls (`name::<T>(…)`) are a
//! known blind spot — none of the governed code paths use them at call
//! sites the rules reason about.

use crate::lexer::TokKind;
use crate::symbols::SymbolTable;
use crate::FileData;

/// Keywords that look like `ident (` at call sites but never are.
const NON_CALL_KEYWORDS: [&str; 12] = [
    "if", "while", "for", "match", "return", "loop", "in", "as", "let", "else", "move", "fn",
];

#[derive(Debug, Default)]
pub struct CallGraph {
    /// `callees[id]` — call-graph node ids called from fn `id`'s body,
    /// deduplicated, in first-occurrence order.
    pub callees: Vec<Vec<usize>>,
}

impl CallGraph {
    pub fn build(files: &[FileData], syms: &SymbolTable) -> CallGraph {
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); syms.fns.len()];
        for (id, &r) in syms.fns.iter().enumerate() {
            let file = &files[r.file];
            let item = &file.items[r.item];
            let Some((start, end)) = item.body else { continue };
            for cp in start..end {
                let Some(&ti) = file.code.get(cp) else { break };
                let tok = &file.toks[ti];
                if tok.kind != TokKind::Ident {
                    continue;
                }
                // `name (` — and not `name !(`, not `fn name (`.
                if !is_punct(file, cp + 1, b'(') {
                    continue;
                }
                if cp > 0 && is_kw(file, cp - 1, "fn") {
                    continue;
                }
                let name = tok.text(&file.src);
                if NON_CALL_KEYWORDS.contains(&name) {
                    continue;
                }
                for &target in syms.fns_named(name) {
                    let titem = syms.fn_item(files, target);
                    if titem.is_test && !item.is_test {
                        continue;
                    }
                    if !callees[id].contains(&target) {
                        callees[id].push(target);
                    }
                }
            }
        }
        CallGraph { callees }
    }

    /// Fixpoint over call edges: `out[id]` is true when `id` is a seed
    /// or any of its (transitive) callees is. This answers "can
    /// execution starting in `id` reach a seed function?".
    pub fn can_reach(&self, seeds: &[bool]) -> Vec<bool> {
        let mut out = seeds.to_vec();
        let mut changed = true;
        while changed {
            changed = false;
            for id in 0..self.callees.len() {
                if out[id] {
                    continue;
                }
                if self.callees[id].iter().any(|&c| out[c]) {
                    out[id] = true;
                    changed = true;
                }
            }
        }
        out
    }

    /// Forward reachability: every node reachable from the `roots` by
    /// following call edges (roots included).
    pub fn reachable_from(&self, roots: &[bool]) -> Vec<bool> {
        let mut out = roots.to_vec();
        let mut stack: Vec<usize> = (0..out.len()).filter(|&i| out[i]).collect();
        while let Some(id) = stack.pop() {
            for &c in &self.callees[id] {
                if !out[c] {
                    out[c] = true;
                    stack.push(c);
                }
            }
        }
        out
    }
}

fn is_punct(file: &FileData, cp: usize, b: u8) -> bool {
    matches!(file.code.get(cp), Some(&i) if file.toks[i].kind == TokKind::Punct(b))
}

fn is_kw(file: &FileData, cp: usize, kw: &str) -> bool {
    matches!(file.code.get(cp), Some(&i) if file.toks[i].kind == TokKind::Ident
        && file.toks[i].text(&file.src) == kw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileData;

    fn ws(src: &str) -> (Vec<FileData>, SymbolTable, CallGraph) {
        let files = vec![FileData::analyze("crates/core/src/x.rs".into(), src.into())];
        let syms = SymbolTable::build(&files);
        let graph = CallGraph::build(&files, &syms);
        (files, syms, graph)
    }

    #[test]
    fn direct_method_and_transitive_edges() {
        let src = r#"
            fn leaf(budget: usize) {}
            fn middle(x: &X) { x.leaf(1); }
            fn top() { middle(); }
            fn island() { println!("no edges"); }
        "#;
        let (files, syms, graph) = ws(src);
        let id = |n: &str| syms.fns_named(n)[0];
        assert_eq!(graph.callees[id("middle")], vec![id("leaf")]);
        assert_eq!(graph.callees[id("top")], vec![id("middle")]);
        assert!(graph.callees[id("island")].is_empty(), "macro is not a call");
        let mut seeds = vec![false; syms.fns.len()];
        seeds[id("leaf")] = true;
        let reach = graph.can_reach(&seeds);
        assert!(reach[id("top")] && reach[id("middle")] && !reach[id("island")]);
        let _ = files;
    }

    #[test]
    fn forward_reachability_from_roots() {
        let src = r#"
            fn root() { a(); }
            fn a() { b(); }
            fn b() {}
            fn other() { b(); }
        "#;
        let (_, syms, graph) = ws(src);
        let id = |n: &str| syms.fns_named(n)[0];
        let mut roots = vec![false; syms.fns.len()];
        roots[id("root")] = true;
        let fwd = graph.reachable_from(&roots);
        assert!(fwd[id("a")] && fwd[id("b")]);
        assert!(!fwd[id("other")]);
    }

    #[test]
    fn test_fns_do_not_capture_edges_from_production_code() {
        let src = r#"
            fn prod() { helper(); }
            #[cfg(test)]
            mod tests {
                fn helper() {}
            }
        "#;
        let (_, syms, graph) = ws(src);
        let prod = syms.fns_named("prod")[0];
        assert!(graph.callees[prod].is_empty());
    }
}
