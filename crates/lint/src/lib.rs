//! `dvicl-lint` — a dependency-free static invariant checker for the
//! DviCL workspace.
//!
//! PR 1 established execution-governance invariants (typed errors,
//! budget threading, panic-free input paths); this crate enforces them
//! mechanically over every workspace `.rs` source instead of by
//! convention. It is deliberately dependency-free (hand-rolled lexer,
//! hand-rolled JSON) so the workspace keeps building offline.
//!
//! The pipeline: every file is lexed ([`lexer::lex`]) and item-parsed
//! ([`parse::items`]) into a [`FileData`]; the [`Workspace`] then
//! builds a symbol table ([`symbols::SymbolTable`]) and call graph
//! ([`callgraph::CallGraph`]) over all files. Per-file rules from
//! [`rules::catalog`] see one file; workspace rules from
//! [`rules::ws_catalog`] see the whole [`Workspace`] (call-graph
//! reachability, cross-file registries). Findings inside
//! `#[cfg(test)]` items are dropped, then `// dvicl-lint: allow(...)
//! -- reason` pragmas are applied per owning file. See DESIGN.md §8
//! for the rule catalog and the suppression policy, §12 for the
//! parser/call-graph/dataflow architecture.
//!
//! What gets scanned: non-test sources of every workspace crate
//! (`crates/*/src/**` and the root `src/`). Test-class trees (`tests/`,
//! `benches/`, `examples/`, `fixtures/`) and the vendored `shims/` are
//! skipped — tests unwrap freely by design, and the shims are stand-ins
//! for third-party code the rules do not govern.

pub mod callgraph;
pub mod dataflow;
pub mod lexer;
pub mod parse;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod send_safety;
pub mod symbols;

use lexer::{Tok, TokKind};
use pragma::Pragma;
use report::Report;
use rules::{FileCtx, Finding, Severity};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Meta-rule id: a pragma without a non-empty `-- reason` tail.
pub const PRAGMA_MISSING_REASON: &str = "pragma-missing-reason";
/// Meta-rule id: a pragma naming a rule that does not exist.
pub const PRAGMA_UNKNOWN_RULE: &str = "pragma-unknown-rule";

/// Directory names never descended into when walking the workspace.
const SKIP_DIRS: [&str; 6] = ["target", "tests", "benches", "examples", "fixtures", "shims"];

/// A failure of the lint *run* itself (not a finding).
#[derive(Debug)]
pub enum LintError {
    /// Reading a source file or directory failed.
    Io {
        path: PathBuf,
        source: std::io::Error,
    },
    /// The given root does not look like the dvicl workspace.
    NotAWorkspace { path: PathBuf },
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io { path, source } => {
                write!(f, "io error on {}: {source}", path.display())
            }
            LintError::NotAWorkspace { path } => write!(
                f,
                "{} is not the dvicl workspace root (no Cargo.toml + crates/)",
                path.display()
            ),
        }
    }
}

impl std::error::Error for LintError {}

/// The crate a workspace-relative path belongs to: the directory under
/// `crates/`, or `"dvicl"` for the root `src/`, or `""` when unknown.
pub fn crate_name_of(rel: &str) -> &str {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or(""),
        Some("src") => "dvicl",
        _ => "",
    }
}

/// One analyzed source file: lexed, test-span-mapped, item-parsed.
pub struct FileData {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Crate the file belongs to (see [`crate_name_of`]).
    pub crate_name: String,
    pub src: String,
    pub toks: Vec<Tok>,
    /// Indices into `toks` of the non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Byte spans of `#[cfg(test)]` / `#[test]` items.
    pub test_spans: Vec<(usize, usize)>,
    /// Parsed items (see [`parse::items`]).
    pub items: Vec<parse::Item>,
}

impl FileData {
    /// Lexes and item-parses one source text.
    pub fn analyze(rel: String, src: String) -> FileData {
        let toks = lexer::lex(&src);
        let code: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let test_spans = find_test_spans(&src, &toks, &code);
        let items = parse::items(&src, &toks, &code, &test_spans);
        let crate_name = crate_name_of(&rel).to_string();
        FileData {
            rel,
            crate_name,
            src,
            toks,
            code,
            test_spans,
            items,
        }
    }

    /// A rule-facing view of this file.
    pub fn ctx(&self) -> FileCtx<'_> {
        FileCtx {
            rel: &self.rel,
            crate_name: &self.crate_name,
            src: &self.src,
            toks: &self.toks,
            code: &self.code,
            test_spans: &self.test_spans,
            items: &self.items,
        }
    }

    /// Whether a byte offset falls inside a test-only item.
    pub fn in_test(&self, byte: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| byte >= s && byte < e)
    }
}

/// The whole analyzed workspace: every file plus the symbol table and
/// call graph the workspace-level rules reason over.
pub struct Workspace {
    pub files: Vec<FileData>,
    pub symbols: symbols::SymbolTable,
    pub calls: callgraph::CallGraph,
}

impl Workspace {
    /// Analyzes `(rel, source)` pairs into a linted workspace model.
    pub fn analyze(sources: Vec<(String, String)>) -> Workspace {
        let files: Vec<FileData> = sources
            .into_iter()
            .map(|(rel, src)| FileData::analyze(rel, src))
            .collect();
        let symbols = symbols::SymbolTable::build(&files);
        let calls = callgraph::CallGraph::build(&files, &symbols);
        Workspace {
            files,
            symbols,
            calls,
        }
    }

    /// The file with this workspace-relative path.
    pub fn file_by_rel(&self, rel: &str) -> Option<&FileData> {
        self.files.iter().find(|f| f.rel == rel)
    }

    /// Runs every applicable per-file and workspace rule, drops
    /// findings in test items, applies suppression pragmas per owning
    /// file, and returns the report.
    pub fn lint(&self) -> Report {
        let mut findings: Vec<Finding> = Vec::new();
        let mut pragmas_by_file: HashMap<&str, Vec<Pragma>> = HashMap::new();
        for file in &self.files {
            let ctx = file.ctx();
            let (pragmas, meta_findings) = collect_pragmas(&ctx);
            findings.extend(meta_findings);
            pragmas_by_file.insert(file.rel.as_str(), pragmas);
            for meta in rules::catalog() {
                if !(meta.applies)(&file.crate_name) {
                    continue;
                }
                findings.extend((meta.check)(&ctx));
            }
        }
        for meta in rules::ws_catalog() {
            findings.extend((meta.check)(self));
        }

        // Drop findings inside test-only items of their owning file,
        // then apply that file's suppressions.
        findings.retain(|f| {
            self.file_by_rel(&f.file)
                .is_none_or(|file| !file.in_test(f.byte))
        });
        let before = findings.len();
        findings.retain(|f| {
            // The pragma meta-findings are not themselves suppressible —
            // otherwise a malformed pragma could hide its own malformation.
            f.rule == PRAGMA_MISSING_REASON
                || f.rule == PRAGMA_UNKNOWN_RULE
                || !pragmas_by_file
                    .get(f.file.as_str())
                    .is_some_and(|ps| ps.iter().any(|p| p.suppresses(f.rule, f.line)))
        });
        let suppressed = before - findings.len();
        findings.sort_by_key(|f| (f.file.clone(), f.line, f.col));
        Report {
            findings,
            files_scanned: self.files.len(),
            suppressed,
        }
    }
}

/// Lints one source text under its workspace-relative path (which
/// drives rule applicability) as a single-file workspace. Returns
/// *unsuppressed* findings plus pragma meta-findings, sorted by
/// position; the second value is how many findings well-formed pragmas
/// silenced.
pub fn lint_source(rel: &str, src: &str) -> (Vec<Finding>, usize) {
    let ws = Workspace::analyze(vec![(rel.to_string(), src.to_string())]);
    let report = ws.lint();
    (report.findings, report.suppressed)
}

/// Collects pragmas from the comment tokens and emits meta-findings for
/// malformed ones (missing reason, unknown rule).
fn collect_pragmas(ctx: &FileCtx) -> (Vec<Pragma>, Vec<Finding>) {
    let known = rules::known_rule_ids();
    let mut pragmas = Vec::new();
    let mut findings = Vec::new();
    for tok in ctx.toks {
        if tok.kind != TokKind::LineComment {
            continue;
        }
        let Some(p) = pragma::parse(ctx.text(tok), tok.line, tok.col) else {
            continue;
        };
        if p.reason.is_none() {
            findings.push(Finding {
                rule: PRAGMA_MISSING_REASON,
                severity: Severity::Deny,
                file: ctx.rel.to_string(),
                line: tok.line,
                col: tok.col,
                byte: tok.start,
                message: "suppression pragma is missing its `-- <reason>` tail; \
                          it suppresses nothing until the invariant is stated"
                    .to_string(),
            });
        }
        if p.rules.is_empty() {
            findings.push(Finding {
                rule: PRAGMA_UNKNOWN_RULE,
                severity: Severity::Deny,
                file: ctx.rel.to_string(),
                line: tok.line,
                col: tok.col,
                byte: tok.start,
                message: "suppression pragma has no `allow(<rule>)` clause".to_string(),
            });
        }
        for r in &p.rules {
            if !known.iter().any(|k| k == r) {
                findings.push(Finding {
                    rule: PRAGMA_UNKNOWN_RULE,
                    severity: Severity::Deny,
                    file: ctx.rel.to_string(),
                    line: tok.line,
                    col: tok.col,
                    byte: tok.start,
                    message: format!("suppression pragma names unknown rule `{r}`"),
                });
            }
        }
        pragmas.push(p);
    }
    (pragmas, findings)
}

/// Byte spans of items guarded by `#[cfg(test)]` (including `not(test)`
/// awareness) or `#[test]`: the whole following item, brace-matched.
fn find_test_spans(src: &str, toks: &[Tok], code: &[usize]) -> Vec<(usize, usize)> {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut cp = 0;
    while cp < code.len() {
        let i = code[cp];
        if toks[i].kind == TokKind::Punct(b'#') {
            if let Some((attr_end_cp, is_test)) = parse_attr(src, toks, code, cp) {
                if is_test {
                    if let Some(end_byte) = item_end(toks, code, attr_end_cp + 1) {
                        spans.push((toks[i].start, end_byte));
                    }
                }
                cp = attr_end_cp + 1;
                continue;
            }
        }
        cp += 1;
    }
    spans
}

/// Parses an attribute starting at code position `cp` (on `#`). Returns
/// the code position of the closing `]` and whether the attribute marks
/// a test item: `#[test]`, or `#[cfg(...)]`/`#[cfg_attr(...)]` whose
/// arguments mention `test` outside a `not(...)` group.
fn parse_attr(src: &str, toks: &[Tok], code: &[usize], cp: usize) -> Option<(usize, bool)> {
    let mut k = cp + 1;
    // Optional inner-attribute bang.
    if tok_is(toks, code, k, TokKind::Punct(b'!')) {
        k += 1;
    }
    if !tok_is(toks, code, k, TokKind::Punct(b'[')) {
        return None;
    }
    let first_ident = code.get(k + 1).map(|&i| &toks[i]);
    let is_bare_test = matches!(first_ident, Some(t) if t.kind == TokKind::Ident && t.text(src) == "test")
        && tok_is(toks, code, k + 2, TokKind::Punct(b']'));
    let is_cfg = matches!(first_ident, Some(t) if t.kind == TokKind::Ident && t.text(src) == "cfg");
    // Scan to the matching `]`, tracking whether `test` appears outside
    // any `not(...)`.
    let mut depth = 0i32;
    let mut not_depths: Vec<i32> = Vec::new();
    let mut mentions_test = false;
    let mut pos = k;
    loop {
        let &idx = code.get(pos)?;
        let t = &toks[idx];
        match t.kind {
            TokKind::Punct(b'[') => depth += 1,
            TokKind::Punct(b']') => {
                depth -= 1;
                if depth == 0 {
                    let is_test = is_bare_test || (is_cfg && mentions_test);
                    return Some((pos, is_test));
                }
            }
            TokKind::Punct(b'(') => {
                let prev = code.get(pos.wrapping_sub(1)).map(|&i| &toks[i]);
                if matches!(prev, Some(p) if p.kind == TokKind::Ident && p.text(src) == "not") {
                    not_depths.push(depth);
                }
                depth += 1;
            }
            TokKind::Punct(b')') => {
                depth -= 1;
                if not_depths.last() == Some(&depth) {
                    not_depths.pop();
                }
            }
            TokKind::Ident if t.text(src) == "test" && not_depths.is_empty() => {
                mentions_test = true;
            }
            _ => {}
        }
        pos += 1;
    }
}

/// From code position `cp` (just past a test attribute), skips further
/// attributes, then returns the end byte of the item: the matching `}`
/// of its first top-level brace, or the `;` of a bodyless item.
fn item_end(toks: &[Tok], code: &[usize], mut cp: usize) -> Option<usize> {
    // Skip stacked attributes (`#[test] #[ignore] fn ...`).
    while matches!(code.get(cp).map(|&i| toks[i].kind), Some(TokKind::Punct(b'#'))) {
        let mut depth = 0i32;
        loop {
            let &idx = code.get(cp)?;
            match toks[idx].kind {
                TokKind::Punct(b'[') => depth += 1,
                TokKind::Punct(b']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            cp += 1;
        }
        cp += 1;
    }
    // Find `{` or `;` at zero grouping depth.
    let mut depth = 0i32;
    let open = loop {
        let &idx = code.get(cp)?;
        match toks[idx].kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
            TokKind::Punct(b';') if depth == 0 => return Some(toks[idx].end),
            TokKind::Punct(b'{') if depth == 0 => break cp,
            _ => {}
        }
        cp += 1;
    };
    let mut braces = 0i32;
    let mut pos = open;
    loop {
        let &idx = code.get(pos)?;
        match toks[idx].kind {
            TokKind::Punct(b'{') => braces += 1,
            TokKind::Punct(b'}') => {
                braces -= 1;
                if braces == 0 {
                    return Some(toks[idx].end);
                }
            }
            _ => {}
        }
        pos += 1;
    }
}

fn tok_is(toks: &[Tok], code: &[usize], cp: usize, kind: TokKind) -> bool {
    matches!(code.get(cp), Some(&i) if toks[i].kind == kind)
}

/// All lintable `.rs` files under the workspace root, sorted. Walks
/// `crates/` and the root `src/`; skips test-class directories and the
/// vendored shims (see [`SKIP_DIRS`]).
pub fn workspace_files(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    if !root.join("Cargo.toml").is_file() || !root.join("crates").is_dir() {
        return Err(LintError::NotAWorkspace {
            path: root.to_path_buf(),
        });
    }
    let mut files = Vec::new();
    walk(&root.join("crates"), &mut files)?;
    walk(&root.join("src"), &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = std::fs::read_dir(dir).map_err(|source| LintError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    for entry in entries {
        let entry = entry.map_err(|source| LintError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Analyzes every workspace source under `root` into a [`Workspace`]
/// (the entry point for the self-check tests and the report tooling).
pub fn analyze_workspace(root: &Path) -> Result<Workspace, LintError> {
    let files = workspace_files(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        sources.push((rel_of(root, path), read_source(path)?));
    }
    Ok(Workspace::analyze(sources))
}

/// Lints every workspace source under `root`.
pub fn lint_workspace(root: &Path) -> Result<Report, LintError> {
    Ok(analyze_workspace(root)?.lint())
}

/// Lints explicit files (together, as one workspace). `rel_override`,
/// when given, is the workspace-relative path used for rule
/// applicability (so a fixture can be linted *as if* it lived at a
/// governed path).
pub fn lint_files(
    root: &Path,
    files: &[PathBuf],
    rel_override: Option<&str>,
) -> Result<Report, LintError> {
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let rel = match rel_override {
            Some(r) => r.to_string(),
            None => rel_of(root, path),
        };
        sources.push((rel, read_source(path)?));
    }
    Ok(Workspace::analyze(sources).lint())
}

fn read_source(path: &Path) -> Result<String, LintError> {
    std::fs::read_to_string(path).map_err(|source| LintError::Io {
        path: path.to_path_buf(),
        source,
    })
}

/// Workspace-relative `/`-separated form of `path`.
pub fn rel_of(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    parts.join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_names() {
        assert_eq!(crate_name_of("crates/core/src/build.rs"), "core");
        assert_eq!(crate_name_of("src/lib.rs"), "dvicl");
        assert_eq!(crate_name_of("weird/path.rs"), "");
    }

    #[test]
    fn findings_inside_cfg_test_are_dropped() {
        let src = "pub fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\n";
        let (findings, _) = lint_source("crates/core/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn cfg_not_test_is_not_a_test_item() {
        let src = "#[cfg(not(test))]\nfn f() { x.unwrap(); }\n";
        let (findings, _) = lint_source("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "panic-freedom");
    }

    #[test]
    fn nested_test_submodules_are_covered() {
        let src = "#[cfg(test)]\nmod tests {\n    mod inner {\n        fn f() { x.unwrap(); }\n    }\n}\n";
        let (findings, _) = lint_source("crates/core/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn well_formed_pragma_suppresses_and_counts() {
        let src = "fn f() {\n    x.unwrap() // dvicl-lint: allow(panic-freedom) -- x checked non-empty above\n}\n";
        let (findings, suppressed) = lint_source("crates/core/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn pragma_on_previous_line_suppresses() {
        let src = "fn f() {\n    // dvicl-lint: allow(panic-freedom) -- invariant: set by new()\n    x.unwrap()\n}\n";
        let (findings, suppressed) = lint_source("crates/core/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn missing_reason_pragma_is_a_finding_and_suppresses_nothing() {
        let src = "fn f() {\n    x.unwrap() // dvicl-lint: allow(panic-freedom)\n}\n";
        let (findings, suppressed) = lint_source("crates/core/src/x.rs", src);
        assert_eq!(suppressed, 0);
        let rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&PRAGMA_MISSING_REASON), "{rules:?}");
        assert!(rules.contains(&"panic-freedom"), "{rules:?}");
    }

    #[test]
    fn unknown_rule_pragma_is_a_finding() {
        let src = "fn f() { // dvicl-lint: allow(no-such-rule) -- why not\n}\n";
        let (findings, _) = lint_source("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, PRAGMA_UNKNOWN_RULE);
    }
}
