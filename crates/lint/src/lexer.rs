//! A hand-rolled Rust lexer, just deep enough for static invariant
//! checking.
//!
//! The workspace must keep building offline, so this deliberately does
//! not use `syn` or any other parser crate. The lexer's one job is to
//! classify every byte of a `.rs` source file so that rule matchers can
//! operate on *code* tokens and never be fooled by text inside:
//!
//! - line comments (`// ...`) and **nested** block comments
//!   (`/* /* */ */`),
//! - string literals, including raw strings `r#"…"#` with any number of
//!   hashes, byte strings `b"…"`/`br#"…"#`, and escape sequences,
//! - char literals vs lifetimes (`'a'` is a char, `'a` in `&'a T` is a
//!   lifetime),
//! - raw identifiers (`r#fn`).
//!
//! Comments are kept as tokens (not discarded) because two rules read
//! them: the unsafe-audit rule looks for `// SAFETY:` comments and the
//! suppression machinery parses `// dvicl-lint: allow(...)` pragmas.
//!
//! Everything is byte-oriented; multi-byte UTF-8 only ever appears
//! inside comments, strings, and char literals, all of which are
//! consumed as opaque runs. Columns are therefore 1-based *byte*
//! offsets within the line, which is what editors and CI annotations
//! expect for ASCII-dominated source.

/// What a token is. `Ident` covers keywords too — the lexer does not
/// maintain a keyword table; rules match on the identifier text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers like `r#fn`).
    Ident,
    /// A lifetime such as `'a` or `'static` (tick included in the span).
    Lifetime,
    /// A char or byte-char literal: `'x'`, `'\n'`, `b'0'`.
    CharLit,
    /// A string literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`.
    StrLit,
    /// A numeric literal (integers, floats, hex/octal/binary, suffixes).
    NumLit,
    /// A single punctuation byte (`{`, `>`, `!`, ...). Multi-byte
    /// operators arrive as consecutive `Punct` tokens.
    Punct(u8),
    /// A `// ...` comment, newline excluded.
    LineComment,
    /// A `/* ... */` comment, nesting handled, delimiters included.
    BlockComment,
}

/// One lexed token: kind plus byte span plus 1-based line/column of its
/// first byte.
#[derive(Clone, Copy, Debug)]
pub struct Tok {
    pub kind: TokKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte, exclusive.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based byte column of the first byte within its line.
    pub col: u32,
}

impl Tok {
    /// The token's text within `src` (the source it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

struct Cursor<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.i + ahead).copied()
    }

    /// Advances one byte, maintaining line/column counters.
    fn bump(&mut self) {
        if let Some(&b) = self.src.get(self.i) {
            self.i += 1;
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consumes bytes while `pred` holds.
    fn eat_while(&mut self, pred: impl Fn(u8) -> bool) {
        while let Some(b) = self.peek(0) {
            if pred(b) {
                self.bump();
            } else {
                break;
            }
        }
    }
}

/// Lexes `src` into a token stream. Never fails: unterminated literals
/// and comments are consumed to end-of-file, which is the useful
/// behavior for a linter (the compiler will report the real error).
pub fn lex(src: &str) -> Vec<Tok> {
    let mut c = Cursor {
        src: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = c.peek(0) {
        let (start, line, col) = (c.i, c.line, c.col);
        let kind = match b {
            b if b.is_ascii_whitespace() => {
                c.bump();
                continue;
            }
            b'/' if c.peek(1) == Some(b'/') => {
                c.eat_while(|b| b != b'\n');
                TokKind::LineComment
            }
            b'/' if c.peek(1) == Some(b'*') => {
                lex_block_comment(&mut c);
                TokKind::BlockComment
            }
            b'"' => {
                lex_string(&mut c);
                TokKind::StrLit
            }
            b'\'' => lex_tick(&mut c),
            b'r' | b'b' => match lex_prefixed(&mut c) {
                Some(kind) => kind,
                None => {
                    c.eat_while(is_ident_continue);
                    TokKind::Ident
                }
            },
            b if is_ident_start(b) => {
                c.eat_while(is_ident_continue);
                TokKind::Ident
            }
            b if b.is_ascii_digit() => {
                lex_number(&mut c);
                TokKind::NumLit
            }
            b => {
                c.bump();
                TokKind::Punct(b)
            }
        };
        out.push(Tok {
            kind,
            start,
            end: c.i,
            line,
            col,
        });
    }
    out
}

/// Consumes a possibly-nested `/* ... */` comment (cursor on the `/`).
fn lex_block_comment(c: &mut Cursor) {
    c.bump_n(2); // "/*"
    let mut depth = 1usize;
    while depth > 0 {
        match (c.peek(0), c.peek(1)) {
            (Some(b'/'), Some(b'*')) => {
                depth += 1;
                c.bump_n(2);
            }
            (Some(b'*'), Some(b'/')) => {
                depth -= 1;
                c.bump_n(2);
            }
            (Some(_), _) => c.bump(),
            (None, _) => break, // unterminated: swallow to EOF
        }
    }
}

/// Consumes a `"..."` string with escapes (cursor on the opening quote).
fn lex_string(c: &mut Cursor) {
    c.bump(); // opening quote
    while let Some(b) = c.peek(0) {
        match b {
            b'\\' => c.bump_n(2),
            b'"' => {
                c.bump();
                return;
            }
            _ => c.bump(),
        }
    }
}

/// Disambiguates `'` — char literal vs lifetime (cursor on the tick).
///
/// `'a'` and `'\n'` are chars; `'a` followed by anything but a closing
/// tick is a lifetime (`'static`, `'_`). The decisive look-ahead: after
/// `'x` where `x` starts an identifier, it is a char literal iff the
/// next byte is `'`.
fn lex_tick(c: &mut Cursor) -> TokKind {
    match c.peek(1) {
        Some(b'\\') => {
            // Escaped char literal: consume tick, backslash-escape, then
            // scan to the closing tick (covers '\u{1F600}' too).
            c.bump_n(3);
            c.eat_while(|b| b != b'\'');
            c.bump();
            TokKind::CharLit
        }
        Some(b) if is_ident_start(b) && c.peek(2) != Some(b'\'') => {
            // Lifetime: tick + identifier, no closing tick.
            c.bump();
            c.eat_while(is_ident_continue);
            TokKind::Lifetime
        }
        _ => {
            // Char literal, possibly multi-byte UTF-8: scan to the tick.
            c.bump();
            c.eat_while(|b| b != b'\'');
            c.bump();
            TokKind::CharLit
        }
    }
}

/// Handles `r`/`b` prefixes: raw strings `r"…"`/`r#"…"#`, byte strings
/// `b"…"`/`br#"…"#`, byte chars `b'…'`, and raw identifiers `r#fn`.
/// Returns `None` when the token is a plain identifier starting with
/// `r`/`b` (cursor untouched in that case).
fn lex_prefixed(c: &mut Cursor) -> Option<TokKind> {
    let first = c.peek(0)?;
    // Length of the alphabetic prefix to inspect past: `r`, `b`, `br`.
    let plen = if first == b'b' && c.peek(1) == Some(b'r') {
        2
    } else {
        1
    };
    // Count hashes after the prefix.
    let mut hashes = 0usize;
    while c.peek(plen + hashes) == Some(b'#') {
        hashes += 1;
    }
    match c.peek(plen + hashes) {
        Some(b'"') if first == b'r' || plen == 2 || hashes == 0 => {
            // r"…" r#"…"# b"…" br#"…"# — raw iff prefix has `r`.
            let raw = first == b'r' || plen == 2;
            c.bump_n(plen + hashes + 1);
            if raw {
                lex_raw_string_tail(c, hashes);
            } else {
                // b"…": ordinary escapes apply. Rewind is impossible, so
                // scan from here exactly like lex_string's loop.
                while let Some(b) = c.peek(0) {
                    match b {
                        b'\\' => c.bump_n(2),
                        b'"' => {
                            c.bump();
                            break;
                        }
                        _ => c.bump(),
                    }
                }
            }
            Some(TokKind::StrLit)
        }
        Some(b'\'') if first == b'b' && plen == 1 && hashes == 0 => {
            // b'…' byte char.
            c.bump();
            lex_tick(c);
            Some(TokKind::CharLit)
        }
        Some(b) if first == b'r' && plen == 1 && hashes == 1 && is_ident_start(b) => {
            // Raw identifier r#fn.
            c.bump_n(2);
            c.eat_while(is_ident_continue);
            Some(TokKind::Ident)
        }
        _ => None,
    }
}

/// Consumes the body of a raw string after the opening quote: scans for
/// `"` followed by `hashes` `#` bytes.
fn lex_raw_string_tail(c: &mut Cursor, hashes: usize) {
    while let Some(b) = c.peek(0) {
        if b == b'"' {
            let mut ok = true;
            for k in 0..hashes {
                if c.peek(1 + k) != Some(b'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                c.bump_n(1 + hashes);
                return;
            }
        }
        c.bump();
    }
}

/// Consumes a numeric literal (cursor on the first digit). Handles
/// `0x…`/`0b…`/`0o…`, `_` separators, type suffixes, floats, and signed
/// exponents with or without a fractional part (`1e-9`, `2.5E+3`) —
/// while refusing to swallow the `..` of a range like `0..n`.
fn lex_number(c: &mut Cursor) {
    let start = c.i;
    c.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    // Hex/binary/octal literals have no exponent: `0xAE-1` is a
    // subtraction, not a signed exponent.
    let radix_prefixed =
        c.src.get(start) == Some(&b'0') && matches!(c.src.get(start + 1), Some(b'x' | b'b' | b'o'));
    if !radix_prefixed {
        eat_exponent_sign(c);
    }
    // A fractional part only if `.` is followed by a digit ( `1.max()`
    // and `0..n` must not consume the dot).
    if c.peek(0) == Some(b'.') {
        if let Some(b) = c.peek(1) {
            if b.is_ascii_digit() {
                c.bump();
                c.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
                eat_exponent_sign(c);
            }
        }
    }
}

/// After an alphanumeric run ending in `e`/`E`, a `+`/`-` followed by a
/// digit is a signed exponent (`1e-9`, `1.5E+3`), not an operator.
fn eat_exponent_sign(c: &mut Cursor) {
    if matches!(c.peek(0), Some(b'+') | Some(b'-'))
        && matches!(c.src.get(c.i.wrapping_sub(1)), Some(b'e') | Some(b'E'))
        && c.peek(1).is_some_and(|b| b.is_ascii_digit())
    {
        c.bump();
        c.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn code_texts(src: &str) -> Vec<String> {
        lex(src)
            .iter()
            .filter(|t| {
                !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
            })
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ks = kinds("fn main() {}");
        assert_eq!(ks[0], (TokKind::Ident, "fn".into()));
        assert_eq!(ks[1], (TokKind::Ident, "main".into()));
        assert_eq!(ks[2], (TokKind::Punct(b'('), "(".into()));
    }

    #[test]
    fn line_and_block_comments_are_tokens() {
        let src = "a // panic!(\n/* unwrap() */ b";
        let ks = kinds(src);
        assert_eq!(ks[1].0, TokKind::LineComment);
        assert_eq!(ks[2].0, TokKind::BlockComment);
        assert_eq!(code_texts(src), vec!["a", "b"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "x /* outer /* inner unwrap() */ still comment */ y";
        assert_eq!(code_texts(src), vec!["x", "y"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"let s = "contains .unwrap() and panic!";"#;
        let toks = lex(src);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::StrLit).collect();
        assert_eq!(strs.len(), 1);
        assert!(!code_texts(src).iter().any(|t| t == "unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"a "quoted" panic!( body"# ; let t = 1;"###;
        let toks = lex(src);
        let s = toks
            .iter()
            .find(|t| t.kind == TokKind::StrLit)
            .map(|t| t.text(src))
            .unwrap_or_default();
        assert!(s.starts_with("r#\"") && s.ends_with("\"#"), "got {s:?}");
        assert!(code_texts(src).iter().any(|t| t == "t"));
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "let c = 'a'; fn f<'a>(x: &'a str, y: char) { let z = '\\''; let w = '✓'; }";
        let toks = lex(src);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::CharLit)
            .map(|t| t.text(src))
            .collect();
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(chars, vec!["'a'", "'\\''", "'✓'"]);
        assert_eq!(lifetimes, vec!["'a", "'a"]);
    }

    #[test]
    fn static_lifetime_and_underscore() {
        let src = "&'static str; &'_ T";
        let toks = lex(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(lifetimes, vec!["'static", "'_"]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let a = b\"bytes\"; let b = b'0'; let c = br#\"raw\"#;";
        let toks = lex(src);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::StrLit).count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::CharLit).count(),
            1
        );
    }

    #[test]
    fn raw_identifiers() {
        let src = "let r#fn = 1;";
        let toks = lex(src);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text(src) == "r#fn"));
    }

    #[test]
    fn raw_strings_multi_hash_with_embedded_terminators() {
        // A two-hash raw string whose body contains the one-hash
        // terminator `"#` must not close early.
        let src = r####"let s = r##"has "# inside and a \ backslash"## ; tail"####;
        let toks = lex(src);
        let s = toks
            .iter()
            .find(|t| t.kind == TokKind::StrLit)
            .map(|t| t.text(src))
            .unwrap_or_default();
        assert!(s.starts_with("r##\"") && s.ends_with("\"##"), "got {s:?}");
        assert!(code_texts(src).iter().any(|t| t == "tail"));
    }

    #[test]
    fn raw_byte_strings_and_unterminated_raw_string() {
        let src = "let a = br##\"raw \"# bytes\"##; let b = 1;";
        let toks = lex(src);
        let strs: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::StrLit)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(strs, vec!["br##\"raw \"# bytes\"##"]);
        // Unterminated raw string: swallowed to EOF as one literal, no
        // panic, nothing after it leaks out as an identifier.
        let src2 = "x r#\"never closed\" y";
        let toks2 = lex(src2);
        assert_eq!(toks2.len(), 2);
        assert_eq!(toks2[1].kind, TokKind::StrLit);
        assert_eq!(toks2[1].text(src2), "r#\"never closed\" y");
    }

    #[test]
    fn deeply_nested_and_unterminated_block_comments() {
        let src = "a /* 1 /* 2 /* 3 unwrap() */ 2 */ 1 */ b";
        assert_eq!(code_texts(src), vec!["a", "b"]);
        // Unterminated at depth 2: swallowed to EOF.
        let src2 = "a /* outer /* inner */ still open b";
        assert_eq!(code_texts(src2), vec!["a"]);
        // `/*/` does not self-close (the `/` is shared).
        let src3 = "a /*/ still comment */ b";
        assert_eq!(code_texts(src3), vec!["a", "b"]);
    }

    #[test]
    fn lifetimes_vs_chars_in_braces_labels_and_bounds() {
        // Char literals holding brace/quote bytes must stay opaque, or
        // downstream brace matching would desynchronize.
        let src = "match c { '{' => 1, '}' => 2, '\\'' => 3, _ => 4 }";
        let toks = lex(src);
        let braces = toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Punct(b'{') | TokKind::Punct(b'}')))
            .count();
        assert_eq!(braces, 2, "only the match braces are punctuation");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::CharLit).count(),
            3
        );
        // Loop labels and `?Sized` bounds.
        let src2 = "'outer: loop { break 'outer; } fn f<T: ?Sized>() {}";
        let toks2 = lex(src2);
        let lifetimes: Vec<_> = toks2
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text(src2))
            .collect();
        assert_eq!(lifetimes, vec!["'outer", "'outer"]);
    }

    #[test]
    fn exponents_without_fraction_and_hex_subtraction() {
        let src = "let a = 1e-9; let b = 2E+10; let c = 0xAE-1; let d = 5e3;";
        let toks = lex(src);
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::NumLit)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(nums, vec!["1e-9", "2E+10", "0xAE", "1", "5e3"]);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let src = "for i in 0..n { let x = 1.5e-3; let h = 0xff_u32; }";
        let toks = lex(src);
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::NumLit)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(nums, vec!["0", "1.5e-3", "0xff_u32"]);
    }

    #[test]
    fn line_and_col_are_one_based() {
        let src = "a\n  bb";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
