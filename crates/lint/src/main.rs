//! `dvicl-lint` CLI: lint the workspace (default) or explicit files.
//!
//! Exit codes: 0 clean, 1 findings, 2 the lint run itself failed
//! (bad arguments, unreadable file, root not found).

use dvicl_lint::report::Report;
use dvicl_lint::{lint_files, lint_workspace, rules};
use std::path::PathBuf;
// dvicl-lint: allow(offline-guard) -- exit-code plumbing only; the linter never spawns processes
use std::process::ExitCode;

const USAGE: &str = "\
dvicl-lint — static invariant checker for the DviCL workspace

USAGE:
    dvicl-lint [OPTIONS] [FILES...]

With no FILES, lints every non-test source in the workspace.

OPTIONS:
    --root <DIR>    Workspace root (default: autodetected)
    --as <REL>      Lint the given FILES as if they lived at this
                    workspace-relative path (fixture testing)
    --json          Emit the report as JSON instead of text
    --list-rules    Print the rule catalog and exit
    -h, --help      Show this help
";

struct Args {
    root: Option<PathBuf>,
    rel_override: Option<String>,
    json: bool,
    list_rules: bool,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        rel_override: None,
        json: false,
        list_rules: false,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(v) => args.root = Some(PathBuf::from(v)),
                None => return Err("--root needs a directory argument".to_string()),
            },
            "--as" => match it.next() {
                Some(v) => args.rel_override = Some(v),
                None => return Err("--as needs a workspace-relative path".to_string()),
            },
            "--json" => args.json = true,
            "--list-rules" => args.list_rules = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                // dvicl-lint: allow(offline-guard) -- exit-code plumbing only
                std::process::exit(0);
            }
            f if !f.starts_with('-') => args.files.push(PathBuf::from(f)),
            other => return Err(format!("unknown flag `{other}` (see --help)")),
        }
    }
    Ok(args)
}

/// The workspace root: `--root`, else two levels above this crate's
/// manifest (cargo sets `CARGO_MANIFEST_DIR` for `cargo run`), else the
/// first ancestor of the current directory holding `Cargo.toml` and
/// `crates/`.
fn find_root(explicit: Option<PathBuf>) -> Option<PathBuf> {
    if let Some(r) = explicit {
        return Some(r);
    }
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(root) = p.parent().and_then(|p| p.parent()) {
            if root.join("Cargo.toml").is_file() && root.join("crates").is_dir() {
                return Some(root.to_path_buf());
            }
        }
    }
    let mut cur = std::env::current_dir().ok()?;
    loop {
        if cur.join("Cargo.toml").is_file() && cur.join("crates").is_dir() {
            return Some(cur);
        }
        if !cur.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dvicl-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for meta in rules::catalog() {
            println!("{:<18} [{}] {}", meta.id, meta.severity.as_str(), meta.summary);
        }
        println!(
            "{:<18} [deny] pragma without a `-- reason` tail (emitted by the engine)",
            dvicl_lint::PRAGMA_MISSING_REASON
        );
        println!(
            "{:<18} [deny] pragma naming an unknown rule (emitted by the engine)",
            dvicl_lint::PRAGMA_UNKNOWN_RULE
        );
        return ExitCode::SUCCESS;
    }
    let Some(root) = find_root(args.root) else {
        eprintln!("dvicl-lint: cannot locate the workspace root; pass --root");
        return ExitCode::from(2);
    };
    let result = if args.files.is_empty() {
        lint_workspace(&root)
    } else {
        lint_files(&root, &args.files, args.rel_override.as_deref())
    };
    let report: Report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dvicl-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.json {
        println!("{}", report.json());
    } else {
        print!("{}", report.human());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
