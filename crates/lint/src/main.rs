//! `dvicl-lint` CLI: lint the workspace (default) or explicit files.
//!
//! Exit codes: 0 clean, 1 findings, 2 the lint run itself failed
//! (bad arguments, unreadable file, root not found).

use dvicl_lint::report::Report;
use dvicl_lint::{analyze_workspace, lint_files, rules, send_safety};
use std::path::PathBuf;
// dvicl-lint: allow(offline-guard) -- exit-code plumbing only; the linter never spawns processes
use std::process::ExitCode;

const USAGE: &str = "\
dvicl-lint — static invariant checker for the DviCL workspace

USAGE:
    dvicl-lint [OPTIONS] [FILES...]

With no FILES, lints every non-test source in the workspace.

OPTIONS:
    --root <DIR>    Workspace root (default: autodetected)
    --as <REL>      Lint the given FILES as if they lived at this
                    workspace-relative path (fixture testing)
    --format <FMT>  Report format: human (default), json, or github
                    (GitHub Actions ::error annotations)
    --json          Shorthand for --format json
    --send-safety-report <FILE>
                    Also write the core::sub/core::arena Send-safety
                    report (JSON, schema dvicl-send-safety-v1) to
                    FILE; `-` writes it to stdout (the lint report
                    then goes to stderr so stdout stays pure JSON)
    --list-rules    Print the rule catalog and exit
    -h, --help      Show this help
";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Github,
}

struct Args {
    root: Option<PathBuf>,
    rel_override: Option<String>,
    format: Format,
    send_safety: Option<String>,
    list_rules: bool,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        rel_override: None,
        format: Format::Human,
        send_safety: None,
        list_rules: false,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(v) => args.root = Some(PathBuf::from(v)),
                None => return Err("--root needs a directory argument".to_string()),
            },
            "--as" => match it.next() {
                Some(v) => args.rel_override = Some(v),
                None => return Err("--as needs a workspace-relative path".to_string()),
            },
            "--format" => match it.next().as_deref() {
                Some("human") => args.format = Format::Human,
                Some("json") => args.format = Format::Json,
                Some("github") => args.format = Format::Github,
                Some(other) => {
                    return Err(format!(
                        "unknown format `{other}` (expected human, json, or github)"
                    ))
                }
                None => return Err("--format needs human, json, or github".to_string()),
            },
            "--send-safety-report" => match it.next() {
                Some(v) => args.send_safety = Some(v),
                None => return Err("--send-safety-report needs a file path (or -)".to_string()),
            },
            "--json" => args.format = Format::Json,
            "--list-rules" => args.list_rules = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                // dvicl-lint: allow(offline-guard) -- exit-code plumbing only
                std::process::exit(0);
            }
            f if !f.starts_with('-') => args.files.push(PathBuf::from(f)),
            other => return Err(format!("unknown flag `{other}` (see --help)")),
        }
    }
    Ok(args)
}

/// The workspace root: `--root`, else two levels above this crate's
/// manifest (cargo sets `CARGO_MANIFEST_DIR` for `cargo run`), else the
/// first ancestor of the current directory holding `Cargo.toml` and
/// `crates/`.
fn find_root(explicit: Option<PathBuf>) -> Option<PathBuf> {
    if let Some(r) = explicit {
        return Some(r);
    }
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(root) = p.parent().and_then(|p| p.parent()) {
            if root.join("Cargo.toml").is_file() && root.join("crates").is_dir() {
                return Some(root.to_path_buf());
            }
        }
    }
    let mut cur = std::env::current_dir().ok()?;
    loop {
        if cur.join("Cargo.toml").is_file() && cur.join("crates").is_dir() {
            return Some(cur);
        }
        if !cur.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dvicl-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for meta in rules::catalog() {
            println!("{:<18} [{}] {}", meta.id, meta.severity.as_str(), meta.summary);
        }
        for meta in rules::ws_catalog() {
            println!("{:<18} [{}] {}", meta.id, meta.severity.as_str(), meta.summary);
        }
        println!(
            "{:<18} [deny] pragma without a `-- reason` tail (emitted by the engine)",
            dvicl_lint::PRAGMA_MISSING_REASON
        );
        println!(
            "{:<18} [deny] pragma naming an unknown rule (emitted by the engine)",
            dvicl_lint::PRAGMA_UNKNOWN_RULE
        );
        return ExitCode::SUCCESS;
    }
    let Some(root) = find_root(args.root) else {
        eprintln!("dvicl-lint: cannot locate the workspace root; pass --root");
        return ExitCode::from(2);
    };
    // The full-workspace path analyzes once and reuses the workspace
    // for both the lint report and the Send-safety report.
    let (report, ws): (Report, Option<dvicl_lint::Workspace>) = if args.files.is_empty() {
        match analyze_workspace(&root) {
            Ok(ws) => (ws.lint(), Some(ws)),
            Err(e) => {
                eprintln!("dvicl-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        match lint_files(&root, &args.files, args.rel_override.as_deref()) {
            Ok(r) => (r, None),
            Err(e) => {
                eprintln!("dvicl-lint: {e}");
                return ExitCode::from(2);
            }
        }
    };
    if let Some(dest) = &args.send_safety {
        let ws_owned;
        let ws_ref = match &ws {
            Some(w) => w,
            None => match analyze_workspace(&root) {
                Ok(w) => {
                    ws_owned = w;
                    &ws_owned
                }
                Err(e) => {
                    eprintln!("dvicl-lint: {e}");
                    return ExitCode::from(2);
                }
            },
        };
        let json = send_safety::report(ws_ref);
        if dest == "-" {
            println!("{json}");
        } else if let Err(e) = std::fs::write(dest, json + "\n") {
            eprintln!("dvicl-lint: cannot write {dest}: {e}");
            return ExitCode::from(2);
        }
    }
    // `--send-safety-report -` owns stdout (so it can be piped to jq);
    // the lint report moves to stderr for that invocation.
    let report_to_stdout = args.send_safety.as_deref() != Some("-");
    let rendered = match args.format {
        Format::Json => report.json() + "\n",
        Format::Github => report.github(),
        Format::Human => report.human(),
    };
    if report_to_stdout {
        print!("{rendered}");
    } else {
        eprint!("{rendered}");
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
