//! fault-checkpoint-naming: checkpoint sites are the keys of the fault
//! plan grammar.
//!
//! DESIGN.md §11 fixes the convention: a fault checkpoint site is a
//! span-style dot-path of at least two `[a-z0-9_]+` segments whose
//! first segment names the crate that hosts the checkpoint
//! (`"core.build_node"`, `"graph.edge_line"`). A misspelled site makes
//! the checkpoint silently unreachable from `--fault-plan` /
//! `DVICL_FAULT_PLAN` specs — the sweep would simply never fire there —
//! so the convention is machine-checked: every string literal passed to
//! a `checkpoint(...)` call must parse as such a dot-path with a known
//! crate prefix. (Plan *specs* may use the `*` wildcard; call sites
//! must not — each checkpoint names exactly one place.)

use super::{code_tok, is_punct, FileCtx, Finding, Severity};
use crate::lexer::TokKind;
use crate::rules::obs_span_naming::KNOWN_PREFIXES;

pub const ID: &str = "fault-checkpoint-naming";

fn is_segment(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

/// `Ok(())` for a well-formed site name, `Err(reason)` otherwise.
fn validate(site: &str) -> Result<(), String> {
    let mut segments = site.split('.');
    // split() always yields at least one item.
    let first = segments.next().unwrap_or_default();
    if !KNOWN_PREFIXES.contains(&first) {
        return Err(format!(
            "first segment `{first}` is not a workspace crate (expected one of {})",
            KNOWN_PREFIXES.join(", ")
        ));
    }
    let mut rest = 0usize;
    for seg in segments {
        if !is_segment(seg) {
            return Err(format!(
                "segment `{seg}` is not lower_snake_case ([a-z0-9_]+)"
            ));
        }
        rest += 1;
    }
    if rest == 0 {
        return Err("site needs at least two dot-separated segments (crate.place)".to_string());
    }
    Ok(())
}

pub fn check(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    for pos in 0..ctx.code.len() {
        let Some(tok) = code_tok(ctx, pos, 0) else {
            continue;
        };
        if tok.kind != TokKind::Ident || ctx.text(tok) != "checkpoint" {
            continue;
        }
        if !is_punct(ctx, pos, 1, b'(') {
            continue;
        }
        let Some(lit) = code_tok(ctx, pos, 2) else {
            continue;
        };
        if lit.kind != TokKind::StrLit {
            continue; // a computed site is out of this rule's reach
        }
        let text = ctx.text(lit);
        let site = text.trim_matches('"');
        if let Err(reason) = validate(site) {
            out.push(ctx.finding(
                ID,
                Severity::Deny,
                lit,
                format!(
                    "fault checkpoint site \"{site}\" breaks the crate.place convention: {reason}"
                ),
            ));
        }
    }
    out
}
