//! narrowing-cast: `as u8` / `as u16` / `as u32` silently truncate.
//!
//! Vertex counts, color offsets, and limb values flow through these
//! casts; a truncation on a large graph corrupts the canonical form
//! instead of failing. Every narrowing cast must either carry a pragma
//! proving its range, or live in an allowlisted file whose whole point
//! is fixed-width arithmetic.
//!
//! Widening casts (`as u64`, `as usize`, `as f64`) are not flagged.

use super::{FileCtx, Finding, Severity, code_tok, is_punct};
use crate::lexer::TokKind;

pub const ID: &str = "narrowing-cast";

/// Files whose entire purpose is fixed-width arithmetic; flagging every
/// masked limb extraction there would drown the signal. The reason is
/// part of the allowlist so the audit trail survives refactors.
pub const FILE_ALLOWLIST: [(&str, &str); 1] = [(
    "crates/group/src/biguint.rs",
    "u32-limb big integer: every cast extracts a masked limb or carry",
)];

const NARROW_TARGETS: [&str; 3] = ["u8", "u16", "u32"];

pub fn check(ctx: &FileCtx) -> Vec<Finding> {
    if FILE_ALLOWLIST.iter().any(|(f, _)| *f == ctx.rel) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for pos in 0..ctx.code.len() {
        let Some(tok) = code_tok(ctx, pos, 0) else {
            continue;
        };
        if tok.kind != TokKind::Ident || ctx.text(tok) != "as" {
            continue;
        }
        let Some(target) = code_tok(ctx, pos, 1) else {
            continue;
        };
        if target.kind != TokKind::Ident {
            continue;
        }
        let ty = ctx.text(target);
        // `use x as y` renames also lex as `as` + ident; only the three
        // narrowing primitive names are flagged, so renames never trip
        // unless someone shadows a primitive, which deserves the flag.
        if !NARROW_TARGETS.contains(&ty) {
            continue;
        }
        // `as u32` followed by `::` is a path cast-alias, not a cast —
        // does not occur in practice, but cheap to exclude.
        if is_punct(ctx, pos, 2, b':') {
            continue;
        }
        out.push(ctx.finding(
            ID,
            Severity::Deny,
            tok,
            format!(
                "narrowing `as {ty}` can truncate; prove the range in a pragma or \
                 use a checked conversion"
            ),
        ));
    }
    out
}
