//! registry-coherence: checkpoint sites and obs counters are
//! *registries*, and a rename must never silently orphan them.
//!
//! Two cross-checks:
//!
//! 1. **Fault checkpoints.** Every `checkpoint("crate.place")` call
//!    site in non-test code is extracted from source and compared
//!    against `govern::fault::CHECKPOINT_SITES`. A site used but not
//!    registered cannot be swept by `tests/fault_sweep.rs`; a site
//!    registered but never reached is a fault plan aimed at nothing.
//!    (The check only engages when a `CHECKPOINT_SITES` registry is in
//!    the analyzed set, so single-file fixture runs of other rules are
//!    unaffected.)
//!
//! 2. **Obs counters.** In the `obs` crate's counter module, the
//!    `Counter` enum, `Counter::ALL`, the `name()` arms, and
//!    `NUM_COUNTERS` must agree: every variant listed in `ALL` exactly
//!    once, every variant named by a unique snake_case string, and the
//!    count constant equal to the variant count. `ALL` with a
//!    duplicated entry *compiles* (the array length still matches) but
//!    silently drops a counter from every BENCH record — exactly the
//!    rot this rule pins.

use super::{Finding, Severity};
use crate::lexer::TokKind;
use crate::parse::{Item, ItemKind};
use crate::{FileData, Workspace};

pub const ID: &str = "registry-coherence";

/// The const the fault checkpoints are registered in.
pub const CHECKPOINT_REGISTRY: &str = "CHECKPOINT_SITES";

/// One extracted checkpoint call site.
#[derive(Clone, Debug)]
pub struct SiteUse {
    pub site: String,
    /// Workspace-relative path of the using file.
    pub rel: String,
    pub line: u32,
    pub col: u32,
    pub byte: usize,
}

/// Every `checkpoint("…")` call in non-test code across the workspace,
/// in file order. Public: the checkpoint self-check test compares this
/// set against what the fault sweep replays.
pub fn used_checkpoint_sites(ws: &Workspace) -> Vec<SiteUse> {
    let mut out = Vec::new();
    for file in &ws.files {
        for cp in 0..file.code.len() {
            let tok = &file.toks[file.code[cp]];
            if tok.kind != TokKind::Ident || tok.text(&file.src) != "checkpoint" {
                continue;
            }
            if !is_punct(file, cp + 1, b'(') {
                continue;
            }
            let Some(&si) = file.code.get(cp + 2) else { continue };
            let s = &file.toks[si];
            if s.kind != TokKind::StrLit || file.in_test(tok.start) {
                continue;
            }
            let Some(site) = str_lit_value(s.text(&file.src)) else { continue };
            out.push(SiteUse {
                site: site.to_string(),
                rel: file.rel.clone(),
                line: s.line,
                col: s.col,
                byte: s.start,
            });
        }
    }
    out
}

/// The registered checkpoint sites: string literals in the initializer
/// of a non-test `CHECKPOINT_SITES` const/static, with the file and
/// item that declared it. `None` when no registry is in the analyzed
/// set.
pub fn registered_checkpoint_sites(ws: &Workspace) -> Option<(Vec<SiteUse>, SiteUse)> {
    for file in &ws.files {
        for item in &file.items {
            if item.name != CHECKPOINT_REGISTRY
                || !matches!(item.kind, ItemKind::Const | ItemKind::Static)
                || item.is_test
            {
                continue;
            }
            let mut entries = Vec::new();
            let mut cp = item.sig.1;
            // Initializer: from the `=` to the terminating `;`.
            while let Some(&ti) = file.code.get(cp) {
                let t = &file.toks[ti];
                match t.kind {
                    TokKind::Punct(b';') => break,
                    TokKind::StrLit => {
                        if let Some(v) = str_lit_value(t.text(&file.src)) {
                            entries.push(SiteUse {
                                site: v.to_string(),
                                rel: file.rel.clone(),
                                line: t.line,
                                col: t.col,
                                byte: t.start,
                            });
                        }
                    }
                    _ => {}
                }
                cp += 1;
            }
            let name_tok = &file.toks[file.code[item.name_cp]];
            let anchor = SiteUse {
                site: String::new(),
                rel: file.rel.clone(),
                line: name_tok.line,
                col: name_tok.col,
                byte: name_tok.start,
            };
            return Some((entries, anchor));
        }
    }
    None
}

pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    check_checkpoints(ws, &mut out);
    check_counters(ws, &mut out);
    out
}

fn check_checkpoints(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some((registered, anchor)) = registered_checkpoint_sites(ws) else {
        return;
    };
    let used = used_checkpoint_sites(ws);
    for u in &used {
        if !registered.iter().any(|r| r.site == u.site) {
            out.push(at(
                u,
                format!(
                    "checkpoint site \"{}\" is not in govern::fault::{CHECKPOINT_REGISTRY}; \
                     the fault sweep cannot replay it — register it",
                    u.site
                ),
            ));
        }
    }
    for (i, r) in registered.iter().enumerate() {
        if registered[..i].iter().any(|p| p.site == r.site) {
            out.push(at(
                r,
                format!("checkpoint site \"{}\" is registered twice", r.site),
            ));
        } else if !used.iter().any(|u| u.site == r.site) {
            out.push(at(
                &SiteUse {
                    site: r.site.clone(),
                    ..anchor.clone()
                },
                format!(
                    "registered checkpoint site \"{}\" is never exercised by non-test code; \
                     a fault plan aimed at it injects nothing — remove or re-wire it",
                    r.site
                ),
            ));
        }
    }
}

/// Counter-registry coherence inside the obs crate.
fn check_counters(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        if file.crate_name != "obs" {
            continue;
        }
        let Some(enum_item) = file
            .items
            .iter()
            .find(|i| i.kind == ItemKind::Enum && i.name == "Counter" && !i.is_test)
        else {
            continue;
        };
        let variants: Vec<&str> = enum_item.fields.iter().map(|(n, _)| n.as_str()).collect();
        let enum_tok = &file.toks[file.code[enum_item.name_cp]];

        // Counter::ALL entries.
        if let Some(all) = find_const(file, "ALL") {
            let entries = counter_refs(file, all.sig.1, usize::MAX, true);
            let all_tok = &file.toks[file.code[all.name_cp]];
            for v in &variants {
                if !entries.iter().any(|(name, _)| name == v) {
                    out.push(tok_finding(
                        file,
                        all_tok,
                        format!("counter variant `{v}` is missing from Counter::ALL; it would \
                                 never be reported or reset"),
                    ));
                }
            }
            for (i, (name, cp)) in entries.iter().enumerate() {
                if entries[..i].iter().any(|(p, _)| p == name) {
                    let t = &file.toks[file.code[*cp]];
                    out.push(tok_finding(
                        file,
                        t,
                        format!("counter `{name}` appears twice in Counter::ALL — the array \
                                 still type-checks but a counter is silently dropped"),
                    ));
                }
            }
        }

        // name() arms: Counter::X => "snake_case".
        if let Some(name_fn) = file.items.iter().find(|i| {
            i.kind == ItemKind::Fn
                && i.name == "name"
                && i.impl_type.as_deref() == Some("Counter")
                && !i.is_test
        }) {
            if let Some((start, end)) = name_fn.body {
                let arms = counter_arms(file, start, end);
                for v in &variants {
                    if !arms.iter().any(|(var, _, _)| var == v) {
                        out.push(tok_finding(
                            file,
                            enum_tok,
                            format!("counter variant `{v}` has no explicit arm in \
                                     Counter::name(); every counter needs a stable \
                                     snake_case name"),
                        ));
                    }
                }
                for (i, (var, label, cp)) in arms.iter().enumerate() {
                    let t = &file.toks[file.code[*cp]];
                    if !is_snake_case(label) {
                        out.push(tok_finding(
                            file,
                            t,
                            format!("counter name \"{label}\" for `{var}` is not snake_case"),
                        ));
                    }
                    if arms[..i].iter().any(|(_, p, _)| p == label) {
                        out.push(tok_finding(
                            file,
                            t,
                            format!("counter name \"{label}\" is used by more than one \
                                     variant; BENCH records would merge them"),
                        ));
                    }
                }
            }
        }

        // NUM_COUNTERS (when its initializer is a bare literal).
        if let Some(num) = find_const(file, "NUM_COUNTERS") {
            let cp = num.sig.1 + 1;
            if let Some(&ti) = file.code.get(cp) {
                let t = &file.toks[ti];
                if t.kind == TokKind::NumLit && is_punct(file, cp + 1, b';') {
                    let lit: usize = t.text(&file.src).replace('_', "").parse().unwrap_or(0);
                    if lit != variants.len() {
                        out.push(tok_finding(
                            file,
                            t,
                            format!(
                                "NUM_COUNTERS is {lit} but the Counter enum has {} variants",
                                variants.len()
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// `Counter :: Ident` references in `[from, to)` code positions.
/// `stop_at_semi` bounds the scan at the first top-level `;` (for
/// const initializers).
fn counter_refs(
    file: &FileData,
    from: usize,
    to: usize,
    stop_at_semi: bool,
) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut cp = from;
    while cp < to.min(file.code.len()) {
        let t = &file.toks[file.code[cp]];
        if stop_at_semi && t.kind == TokKind::Punct(b';') {
            break;
        }
        if t.kind == TokKind::Ident
            && t.text(&file.src) == "Counter"
            && is_punct(file, cp + 1, b':')
            && is_punct(file, cp + 2, b':')
        {
            if let Some(&ni) = file.code.get(cp + 3) {
                let n = &file.toks[ni];
                if n.kind == TokKind::Ident {
                    out.push((n.text(&file.src).to_string(), cp + 3));
                }
            }
        }
        cp += 1;
    }
    out
}

/// `Counter :: Var => "label"` arms in a body range: (variant, label,
/// label code position).
fn counter_arms(file: &FileData, from: usize, to: usize) -> Vec<(String, String, usize)> {
    let mut out = Vec::new();
    for (var, cp) in counter_refs(file, from, to, false) {
        // cp is the variant ident; expect `=> "label"`.
        if is_punct(file, cp + 1, b'=') && is_punct(file, cp + 2, b'>') {
            if let Some(&li) = file.code.get(cp + 3) {
                let l = &file.toks[li];
                if l.kind == TokKind::StrLit {
                    if let Some(v) = str_lit_value(l.text(&file.src)) {
                        out.push((var, v.to_string(), cp + 3));
                    }
                }
            }
        }
    }
    out
}

fn find_const<'a>(file: &'a FileData, name: &str) -> Option<&'a Item> {
    file.items
        .iter()
        .find(|i| i.kind == ItemKind::Const && i.name == name && !i.is_test)
}

fn is_snake_case(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// The contents of a plain or raw string literal token.
fn str_lit_value(text: &str) -> Option<&str> {
    let first = text.find('"')?;
    let last = text.rfind('"')?;
    if last > first {
        text.get(first + 1..last)
    } else {
        None
    }
}

fn is_punct(file: &FileData, cp: usize, b: u8) -> bool {
    matches!(file.code.get(cp), Some(&i) if file.toks[i].kind == TokKind::Punct(b))
}

fn at(u: &SiteUse, message: String) -> Finding {
    Finding {
        rule: ID,
        severity: Severity::Deny,
        file: u.rel.clone(),
        line: u.line,
        col: u.col,
        byte: u.byte,
        message,
    }
}

fn tok_finding(file: &FileData, tok: &crate::lexer::Tok, message: String) -> Finding {
    Finding {
        rule: ID,
        severity: Severity::Deny,
        file: file.rel.clone(),
        line: tok.line,
        col: tok.col,
        byte: tok.start,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::ID;
    use crate::lint_source;

    #[test]
    fn matching_registry_and_usage_is_clean() {
        let src = r#"
            pub const CHECKPOINT_SITES: [&str; 2] = ["govern.spend", "core.ssm"];
            pub fn spend() -> Result<(), DviclError> {
                checkpoint("govern.spend")?;
                checkpoint("core.ssm")
            }
        "#;
        let (findings, _) = lint_source("crates/govern/src/fault.rs", src);
        assert!(findings.iter().all(|f| f.rule != ID), "{findings:?}");
    }

    #[test]
    fn unregistered_and_orphaned_sites_are_flagged() {
        let src = r#"
            pub const CHECKPOINT_SITES: [&str; 2] = ["govern.spend", "govern.orphan"];
            pub fn spend() -> Result<(), DviclError> {
                checkpoint("govern.spend")?;
                checkpoint("govern.rogue")
            }
        "#;
        let (findings, _) = lint_source("crates/govern/src/fault.rs", src);
        let mine: Vec<_> = findings.iter().filter(|f| f.rule == ID).collect();
        assert_eq!(mine.len(), 2, "{findings:?}");
        assert!(mine.iter().any(|f| f.message.contains("govern.rogue")));
        assert!(mine.iter().any(|f| f.message.contains("govern.orphan")));
    }

    #[test]
    fn counter_all_duplicates_and_missing_names_are_flagged() {
        let src = r#"
            pub enum Counter { A, B }
            pub const NUM_COUNTERS: usize = 2;
            impl Counter {
                pub const ALL: [Counter; NUM_COUNTERS] = [Counter::A, Counter::A];
                pub fn name(self) -> &'static str {
                    match self {
                        Counter::A => "a_count",
                        _ => "other",
                    }
                }
            }
        "#;
        let (findings, _) = lint_source("crates/obs/src/counters.rs", src);
        let mine: Vec<_> = findings.iter().filter(|f| f.rule == ID).collect();
        // B missing from ALL, A duplicated in ALL, B missing a name arm.
        assert_eq!(mine.len(), 3, "{findings:?}");
    }

    #[test]
    fn coherent_counter_registry_is_clean() {
        let src = r#"
            pub enum Counter { A, B }
            pub const NUM_COUNTERS: usize = 2;
            impl Counter {
                pub const ALL: [Counter; NUM_COUNTERS] = [Counter::A, Counter::B];
                pub fn name(self) -> &'static str {
                    match self {
                        Counter::A => "a_count",
                        Counter::B => "b_count",
                    }
                }
            }
        "#;
        let (findings, _) = lint_source("crates/obs/src/counters.rs", src);
        assert!(findings.iter().all(|f| f.rule != ID), "{findings:?}");
    }
}
