//! The rule framework: every rule sees one lexed file at a time and
//! emits findings with a rule id, severity, and `file:line:col` span.
//!
//! Applicability is decided here, not inside each rule: a rule declares
//! which crates it covers via [`RuleMeta::applies`], and the engine
//! (in `lib.rs`) strips `#[cfg(test)]` regions and suppressed lines
//! after the rules run. Rules therefore only contain matching logic.

use crate::lexer::{Tok, TokKind};

pub mod arena_discipline;
pub mod budget_reachability;
pub mod error_taxonomy;
pub mod fault_checkpoint_naming;
pub mod narrowing_cast;
pub mod nested_vec_adjacency;
pub mod obs_span_naming;
pub mod offline_guard;
pub mod panic_freedom;
pub mod registry_coherence;
pub mod shared_state_screen;
pub mod unsafe_audit;

/// How severe a finding is. Every current rule is `Deny` (the binary
/// exits non-zero); the field exists so future advisory rules can ship
/// as `Warn` without changing the report format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Fails the lint run.
    Deny,
    /// Reported but does not fail the run.
    Warn,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// One reported violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Stable rule id (kebab-case), also the pragma key.
    pub rule: &'static str,
    pub severity: Severity,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Byte offset of the anchoring token — used by the engine to drop
    /// findings inside `#[cfg(test)]` items; not part of the report.
    pub byte: usize,
    /// Human explanation of this specific violation.
    pub message: String,
}

/// Static description of a rule, used by `--list-rules`, the docs, and
/// pragma validation.
pub struct RuleMeta {
    pub id: &'static str,
    pub severity: Severity,
    /// One-line summary for the catalog.
    pub summary: &'static str,
    /// Whether the rule runs on a file belonging to `crate_name`
    /// (`"cli"`, `"core"`, ... — `"dvicl"` for the root crate).
    pub applies: fn(crate_name: &str) -> bool,
    /// The matcher itself.
    pub check: fn(&FileCtx) -> Vec<Finding>,
}

/// Everything a rule may look at for one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path, `/`-separated (also used by path-scoped
    /// rules such as nested-vec-adjacency).
    pub rel: &'a str,
    /// Crate the file belongs to (directory under `crates/`, or
    /// `"dvicl"` for the root `src/`).
    pub crate_name: &'a str,
    pub src: &'a str,
    /// The full token stream, comments included.
    pub toks: &'a [Tok],
    /// Indices into `toks` of the non-comment tokens, in order. Rules
    /// that match token sequences iterate this so interleaved comments
    /// cannot break a pattern.
    pub code: &'a [usize],
    /// Byte spans of `#[cfg(test)]` / `#[test]` items; findings inside
    /// are dropped by the engine, but rules may also consult this to
    /// avoid analyzing test-only functions.
    pub test_spans: &'a [(usize, usize)],
    /// Parsed items (fns with body spans, impls, structs, statics, …)
    /// — see [`crate::parse::items`].
    pub items: &'a [crate::parse::Item],
}

impl FileCtx<'_> {
    /// The text of a token.
    pub fn text(&self, tok: &Tok) -> &str {
        tok.text(self.src)
    }

    /// Whether a byte offset falls inside a test-only item.
    pub fn in_test(&self, byte: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| byte >= s && byte < e)
    }

    /// Builds a finding anchored at `tok`.
    pub fn finding(&self, meta_id: &'static str, severity: Severity, tok: &Tok, message: String) -> Finding {
        Finding {
            rule: meta_id,
            severity,
            file: self.rel.to_string(),
            line: tok.line,
            col: tok.col,
            byte: tok.start,
            message,
        }
    }
}

fn applies_everywhere(_crate_name: &str) -> bool {
    true
}

/// Library crates only: the `cli` binary and the `bench`/`lint` tooling
/// crates are allowed process/exit-code idioms and their own error
/// types; everything else must speak `DviclError`.
fn applies_to_library_crates(crate_name: &str) -> bool {
    !matches!(crate_name, "cli" | "bench" | "lint")
}

/// A workspace-level rule: sees the whole analyzed [`crate::Workspace`]
/// (symbol table, call graph, every file) instead of one file.
pub struct WsRuleMeta {
    pub id: &'static str,
    pub severity: Severity,
    pub summary: &'static str,
    pub check: fn(&crate::Workspace) -> Vec<Finding>,
}

/// The rule catalog, in reporting order.
pub fn catalog() -> &'static [RuleMeta] {
    &[
        RuleMeta {
            id: panic_freedom::ID,
            severity: Severity::Deny,
            summary: "no unwrap/expect/panic!/unreachable!/todo!/unimplemented! in non-test code",
            applies: applies_everywhere,
            check: panic_freedom::check,
        },
        RuleMeta {
            id: arena_discipline::ID,
            severity: Severity::Deny,
            summary: "every path through a function pairing SubArena mark/release must release on all early exits",
            applies: applies_everywhere,
            check: arena_discipline::check,
        },
        RuleMeta {
            id: unsafe_audit::ID,
            severity: Severity::Deny,
            summary: "every unsafe block/impl needs an immediately preceding `// SAFETY:` comment",
            applies: applies_everywhere,
            check: unsafe_audit::check,
        },
        RuleMeta {
            id: error_taxonomy::ID,
            severity: Severity::Deny,
            summary: "library crates must use DviclError: no Box<dyn Error>, Result<_, String>, or stringly Err values",
            applies: applies_to_library_crates,
            check: error_taxonomy::check,
        },
        RuleMeta {
            id: narrowing_cast::ID,
            severity: Severity::Deny,
            summary: "narrowing `as u8/u16/u32` casts need a pragma or allowlist entry proving they cannot truncate",
            applies: applies_everywhere,
            check: narrowing_cast::check,
        },
        RuleMeta {
            id: nested_vec_adjacency::ID,
            severity: Severity::Deny,
            summary: "no `Vec<Vec<_>>` adjacency on the build/refine hot path — CSR/arena storage only",
            applies: applies_everywhere, // path-scoped inside the rule
            check: nested_vec_adjacency::check,
        },
        RuleMeta {
            id: offline_guard::ID,
            severity: Severity::Deny,
            summary: "no std::net / std::process outside the cli and bench crates",
            applies: |c| !matches!(c, "cli" | "bench"),
            check: offline_guard::check,
        },
        RuleMeta {
            id: obs_span_naming::ID,
            severity: Severity::Deny,
            summary: "span labels must be crate.phase dot-paths with a known crate prefix",
            applies: applies_everywhere,
            check: obs_span_naming::check,
        },
        RuleMeta {
            id: fault_checkpoint_naming::ID,
            severity: Severity::Deny,
            summary: "fault checkpoint sites must be crate.place dot-paths with a known crate prefix",
            applies: applies_everywhere,
            check: fault_checkpoint_naming::check,
        },
    ]
}

/// The workspace-level rule catalog, in reporting order. These run
/// once per lint run over the whole [`crate::Workspace`].
pub fn ws_catalog() -> &'static [WsRuleMeta] {
    &[
        WsRuleMeta {
            id: budget_reachability::ID,
            severity: Severity::Deny,
            summary: "looping/recursive functions in refine/canon/core must reach the Budget machinery through the call graph",
            check: budget_reachability::check,
        },
        WsRuleMeta {
            id: shared_state_screen::ID,
            severity: Severity::Deny,
            summary: "no static mut / Rc / RefCell / raw-pointer shared state reachable from the build/refine/canon hot path",
            check: shared_state_screen::check,
        },
        WsRuleMeta {
            id: registry_coherence::ID,
            severity: Severity::Deny,
            summary: "fault checkpoint sites and obs counters must stay coherent with their registries",
            check: registry_coherence::check,
        },
    ]
}

/// Rule ids that pragmas may name: both catalogs plus the two pragma
/// meta-rules emitted by the engine itself.
pub fn known_rule_ids() -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = catalog().iter().map(|m| m.id).collect();
    ids.extend(ws_catalog().iter().map(|m| m.id));
    ids.push(crate::PRAGMA_MISSING_REASON);
    ids.push(crate::PRAGMA_UNKNOWN_RULE);
    ids
}

/// Helper shared by sequence-matching rules: the code token at code
/// position `pos + ahead`, if any.
pub fn code_tok<'a>(ctx: &'a FileCtx, pos: usize, ahead: usize) -> Option<&'a Tok> {
    ctx.code.get(pos + ahead).map(|&i| &ctx.toks[i])
}

/// True when the code token at `pos + ahead` is the punct byte `b`.
pub fn is_punct(ctx: &FileCtx, pos: usize, ahead: usize, b: u8) -> bool {
    matches!(code_tok(ctx, pos, ahead), Some(t) if t.kind == TokKind::Punct(b))
}

/// True when the code token at `pos + ahead` is an identifier with
/// exactly this text.
pub fn is_ident(ctx: &FileCtx, pos: usize, ahead: usize, text: &str) -> bool {
    matches!(code_tok(ctx, pos, ahead), Some(t) if t.kind == TokKind::Ident && ctx.text(t) == text)
}
