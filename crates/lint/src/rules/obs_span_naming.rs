//! obs-span-naming: span labels are the keys of the phase-time table.
//!
//! DESIGN.md §9 fixes the convention: a label is a dot-path of at least
//! two `[a-z0-9_]+` segments whose first segment names the crate that
//! opens the span (`"canon.search"`, `"core.leaf_ir"`). A misspelled
//! label silently creates a new phase row instead of folding into the
//! intended one, so the convention is machine-checked: every string
//! literal passed to a `span(...)` / `span!(...)` call must parse as
//! such a dot-path with a known crate prefix.

use super::{code_tok, is_punct, FileCtx, Finding, Severity};
use crate::lexer::TokKind;

pub const ID: &str = "obs-span-naming";

/// First-segment vocabulary: the workspace's crate short names (plus
/// `dvicl` for the root crate). Kept in one place so adding a crate is
/// a one-line change.
pub const KNOWN_PREFIXES: [&str; 15] = [
    "graph", "govern", "group", "refine", "canon", "core", "apps", "data", "cli", "bench",
    "lint", "obs", "index", "pool", "dvicl",
];

fn is_segment(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

/// `Ok(())` for a well-formed label, `Err(reason)` otherwise.
fn validate(label: &str) -> Result<(), String> {
    let mut segments = label.split('.');
    // split() always yields at least one item.
    let first = segments.next().unwrap_or_default();
    if !KNOWN_PREFIXES.contains(&first) {
        return Err(format!(
            "first segment `{first}` is not a workspace crate (expected one of {})",
            KNOWN_PREFIXES.join(", ")
        ));
    }
    let mut rest = 0usize;
    for seg in segments {
        if !is_segment(seg) {
            return Err(format!(
                "segment `{seg}` is not lower_snake_case ([a-z0-9_]+)"
            ));
        }
        rest += 1;
    }
    if rest == 0 {
        return Err("label needs at least two dot-separated segments (crate.phase)".to_string());
    }
    Ok(())
}

pub fn check(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    for pos in 0..ctx.code.len() {
        let Some(tok) = code_tok(ctx, pos, 0) else {
            continue;
        };
        if tok.kind != TokKind::Ident || ctx.text(tok) != "span" {
            continue;
        }
        // `span("...")` or the `span!("...")` macro form.
        let lit_at = if is_punct(ctx, pos, 1, b'(') {
            2
        } else if is_punct(ctx, pos, 1, b'!') && is_punct(ctx, pos, 2, b'(') {
            3
        } else {
            continue;
        };
        let Some(lit) = code_tok(ctx, pos, lit_at) else {
            continue;
        };
        if lit.kind != TokKind::StrLit {
            continue; // a non-literal label is out of this rule's reach
        }
        let text = ctx.text(lit);
        let label = text.trim_matches('"');
        if let Err(reason) = validate(label) {
            out.push(ctx.finding(
                ID,
                Severity::Deny,
                lit,
                format!("span label \"{label}\" breaks the crate.phase convention: {reason}"),
            ));
        }
    }
    out
}
