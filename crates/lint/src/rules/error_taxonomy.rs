//! error-taxonomy: library crates speak `DviclError`, nothing else.
//!
//! Three stringly-typed escape hatches are banned in library code:
//!
//! 1. `Box<dyn Error>` (any path spelling) — erases the failure class
//!    the CLI exit codes and retry logic match on,
//! 2. `Result<_, String>` — same, minus even the trait,
//! 3. `Err(format!(...))` / `Err(x.to_string())` / `.map_err(|e|
//!    e.to_string())` — manufacturing a stringly error at the source.
//!
//! The `cli` binary and the `bench`/`lint` tooling crates are exempt
//! (see `applies_to_library_crates` in the catalog).

use super::{FileCtx, Finding, Severity, code_tok, is_ident, is_punct};
use crate::lexer::TokKind;

pub const ID: &str = "error-taxonomy";

pub fn check(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    for pos in 0..ctx.code.len() {
        let Some(tok) = code_tok(ctx, pos, 0) else {
            continue;
        };
        if tok.kind != TokKind::Ident {
            continue;
        }
        match ctx.text(tok) {
            // `Box < dyn ... Error ... >`
            "Box" if is_punct(ctx, pos, 1, b'<')
                && is_ident(ctx, pos, 2, "dyn")
                && generic_args_mention(ctx, pos + 1, "Error") =>
            {
                out.push(ctx.finding(
                    ID,
                    Severity::Deny,
                    tok,
                    "`Box<dyn Error>` erases the error class; use `DviclError`".to_string(),
                ));
            }
            // `Result < ..., String >`
            "Result" if is_punct(ctx, pos, 1, b'<') => {
                if let Some(err_pos) = error_type_position(ctx, pos + 1) {
                    if is_ident(ctx, err_pos, 0, "String") && is_punct(ctx, err_pos, 1, b'>') {
                        out.push(ctx.finding(
                            ID,
                            Severity::Deny,
                            tok,
                            "`Result<_, String>` is a stringly error; use `DviclError`"
                                .to_string(),
                        ));
                    }
                }
            }
            // `Err ( ... format! | ... .to_string() ... )`
            "Err" if is_punct(ctx, pos, 1, b'(') => {
                if let Some(bad) = stringly_call_inside(ctx, pos + 1) {
                    out.push(ctx.finding(
                        ID,
                        Severity::Deny,
                        tok,
                        format!("`Err({bad})` manufactures a stringly error; construct a `DviclError` variant"),
                    ));
                }
            }
            // `.map_err ( ... to_string | format! ... )`
            "map_err" if pos > 0 && is_punct(ctx, pos - 1, 0, b'.') && is_punct(ctx, pos, 1, b'(')
            => {
                if let Some(bad) = stringly_call_inside(ctx, pos + 1) {
                    out.push(ctx.finding(
                        ID,
                        Severity::Deny,
                        tok,
                        format!("`.map_err({bad})` converts the error to a string; map into a `DviclError` variant"),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

/// From the code position of an opening `<`, scans the generic argument
/// list and reports whether any identifier equals `needle`. Angle depth
/// is tracked; a `>` that is part of `->` does not close the list.
fn generic_args_mention(ctx: &FileCtx, open_pos: usize, needle: &str) -> bool {
    let mut depth = 0i32;
    let mut pos = open_pos;
    while let Some(tok) = code_tok(ctx, pos, 0) {
        match tok.kind {
            TokKind::Punct(b'<') => depth += 1,
            TokKind::Punct(b'>') => {
                if pos > 0 && is_punct(ctx, pos - 1, 0, b'-') {
                    // `->` return arrow inside an fn type, not a close.
                } else {
                    depth -= 1;
                    if depth == 0 {
                        return false;
                    }
                }
            }
            TokKind::Ident if ctx.text(tok) == needle => return true,
            TokKind::Punct(b';') => return false, // runaway: bail at stmt end
            _ => {}
        }
        pos += 1;
    }
    false
}

/// From the code position of `Result`'s opening `<`, returns the code
/// position just after the comma separating Ok and Err types (angle
/// depth 1, paren/bracket depth 0).
fn error_type_position(ctx: &FileCtx, open_pos: usize) -> Option<usize> {
    let mut angle = 0i32;
    let mut grouping = 0i32;
    let mut pos = open_pos;
    while let Some(tok) = code_tok(ctx, pos, 0) {
        match tok.kind {
            TokKind::Punct(b'<') => angle += 1,
            TokKind::Punct(b'>') if !(pos > 0 && is_punct(ctx, pos - 1, 0, b'-')) => {
                angle -= 1;
                if angle == 0 {
                    return None; // single-argument Result alias
                }
            }
            TokKind::Punct(b'(') | TokKind::Punct(b'[') => grouping += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') => grouping -= 1,
            TokKind::Punct(b',') if angle == 1 && grouping == 0 => return Some(pos + 1),
            TokKind::Punct(b';') => return None,
            _ => {}
        }
        pos += 1;
    }
    None
}

/// Decides whether the argument of an `Err(...)` / `.map_err(...)`
/// call *is itself* a string: it starts with `format!` (after an
/// optional `|..|` closure header) or ends with `.to_string()`.
///
/// A `format!` nested inside a typed constructor —
/// `Err(DviclError::invalid(format!(...)))` — is the sanctioned way to
/// carry detail text and is deliberately not flagged.
fn stringly_call_inside(ctx: &FileCtx, open_pos: usize) -> Option<&'static str> {
    // The value starts after the `(` plus an optional `move |…|` or
    // `|…|` closure header.
    let mut start = open_pos + 1;
    if is_ident(ctx, start, 0, "move") {
        start += 1;
    }
    if is_punct(ctx, start, 0, b'|') {
        start += 1;
        // `||` (no params) lexes as two pipes; a param list ends at the
        // next pipe.
        while let Some(tok) = code_tok(ctx, start, 0) {
            let done = tok.kind == TokKind::Punct(b'|');
            start += 1;
            if done {
                break;
            }
        }
    }
    if is_ident(ctx, start, 0, "format") && is_punct(ctx, start, 1, b'!') {
        return Some("format!(..)");
    }
    // Find the matching `)` of the call, then look at what precedes it.
    let mut depth = 0i32;
    let mut pos = open_pos;
    let close = loop {
        let tok = code_tok(ctx, pos, 0)?;
        match tok.kind {
            TokKind::Punct(b'(') => depth += 1,
            TokKind::Punct(b')') => {
                depth -= 1;
                if depth == 0 {
                    break pos;
                }
            }
            _ => {}
        }
        pos += 1;
    };
    if close >= 4
        && is_punct(ctx, close - 4, 0, b'.')
        && is_ident(ctx, close - 3, 0, "to_string")
        && is_punct(ctx, close - 2, 0, b'(')
        && is_punct(ctx, close - 1, 0, b')')
    {
        return Some("..to_string()");
    }
    None
}
