//! panic-freedom: panicking constructs are banned in non-test code.
//!
//! The DviCL pipeline ingests untrusted bytes and runs under budgets;
//! PR 1's contract is that malformed input and exhaustion surface as
//! typed `DviclError`s, never as a process abort deep inside the
//! refinement or search recursion. This rule bans the panicking macros
//! and the panicking `Option`/`Result` adapters everywhere outside
//! `#[cfg(test)]` items. True invariants ("a non-identity permutation
//! moves a point") are annotated with a suppression pragma whose reason
//! states the invariant.

use super::{FileCtx, Finding, Severity, code_tok, is_punct};
use crate::lexer::TokKind;

pub const ID: &str = "panic-freedom";

const BANNED_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const BANNED_METHODS: [&str; 2] = ["unwrap", "expect"];

pub fn check(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    for pos in 0..ctx.code.len() {
        let Some(tok) = code_tok(ctx, pos, 0) else {
            continue;
        };
        if tok.kind != TokKind::Ident {
            continue;
        }
        let name = ctx.text(tok);
        // `panic!(` / `unreachable!(` / `todo!(` / `unimplemented!(`.
        if BANNED_MACROS.contains(&name) && is_punct(ctx, pos, 1, b'!') {
            out.push(ctx.finding(
                ID,
                Severity::Deny,
                tok,
                format!("`{name}!` in non-test code; return a typed `DviclError` instead"),
            ));
            continue;
        }
        // `.unwrap(` / `.expect(` — exact identifier match, so the
        // non-panicking `unwrap_or*` family never trips.
        if BANNED_METHODS.contains(&name)
            && pos > 0
            && is_punct(ctx, pos - 1, 0, b'.')
            && is_punct(ctx, pos, 1, b'(')
        {
            out.push(ctx.finding(
                ID,
                Severity::Deny,
                tok,
                format!(
                    "`.{name}()` in non-test code; propagate a typed `DviclError` \
                     (or state the invariant in a suppression pragma)"
                ),
            ));
        }
    }
    out
}
