//! budget-reachability: every looping or recursive function in the
//! `refine`/`canon`/`core` crates must be able to *reach* the
//! `govern::Budget` machinery through the call graph.
//!
//! This replaces the token-level budget-threading rule (which only
//! looked at five named modules and each function in isolation) with a
//! workspace property: a loop is metered if the function itself takes
//! or spends a budget, **or** some function it (transitively) calls
//! does. A refinement loop whose body calls `split_by` — which spends
//! one unit per splitter — passes without ceremony; a new O(n) loop
//! that cannot reach any `spend`/`checkpoint` is exactly the runaway
//! the governor cannot see, and gets flagged.
//!
//! Bounded helpers (an O(k) hash mix, a one-shot readout) that neither
//! take a budget nor call metered code still carry a suppression
//! pragma stating who meters them — the audit trail stays in the
//! source, as before.

use super::{Finding, Severity};
use crate::lexer::TokKind;
use crate::Workspace;

pub const ID: &str = "budget-reachability";

/// The governed crates: the divide/refine/search pipeline.
pub const GOVERNED_CRATES: [&str; 3] = ["refine", "canon", "core"];

/// Identifiers that count as "references the budget machinery".
const BUDGET_IDENTS: [&str; 7] = [
    "Budget",
    "budget",
    "CancelToken",
    "cancel",
    "spend",
    "gov",
    "checkpoint",
];

/// Loop keywords.
const LOOP_KEYWORDS: [&str; 3] = ["for", "while", "loop"];

pub fn check(ws: &Workspace) -> Vec<Finding> {
    let syms = &ws.symbols;
    // Seeds: functions that directly mention the budget machinery in
    // their signature or body (taking `budget: &Budget` counts — that
    // is the threading pattern).
    let seeds: Vec<bool> = (0..syms.fns.len())
        .map(|id| {
            let r = syms.fns[id];
            let file = &ws.files[r.file];
            let item = &file.items[r.item];
            let end = item.body.map_or(item.sig.1, |b| b.1);
            (item.sig.0..end).any(|cp| {
                matches!(file.code.get(cp), Some(&i)
                    if file.toks[i].kind == TokKind::Ident
                        && BUDGET_IDENTS.contains(&file.toks[i].text(&file.src)))
            })
        })
        .collect();
    let certified = ws.calls.can_reach(&seeds);

    let mut out = Vec::new();
    for (id, &cert) in certified.iter().enumerate() {
        if cert {
            continue;
        }
        let r = syms.fns[id];
        let file = &ws.files[r.file];
        if !GOVERNED_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        let item = &file.items[r.item];
        if item.is_test {
            continue;
        }
        let Some((start, end)) = item.body else { continue };
        let ident_at = |cp: usize| -> Option<&str> {
            match file.code.get(cp) {
                Some(&i) if file.toks[i].kind == TokKind::Ident => {
                    Some(file.toks[i].text(&file.src))
                }
                _ => None,
            }
        };
        let is_punct = |cp: usize, b: u8| {
            matches!(file.code.get(cp), Some(&i) if file.toks[i].kind == TokKind::Punct(b))
        };
        let loops = (start..end).any(|cp| matches!(ident_at(cp), Some(t) if LOOP_KEYWORDS.contains(&t)));
        // Self-recursion: a bare `name(…)` call, or a true
        // `self.name(…)` method call. `self.field.name(…)` is a call
        // on a *member* that happens to share the name (`len`,
        // `push`, …), not recursion.
        let recurses = (start..end).any(|cp| {
            if !matches!(ident_at(cp), Some(t) if t == item.name) || !is_punct(cp + 1, b'(') {
                return false;
            }
            if cp == 0 || !is_punct(cp - 1, b'.') {
                return true;
            }
            cp >= 2 && ident_at(cp - 2) == Some("self") && (cp == 2 || !is_punct(cp - 3, b'.'))
        });
        if !loops && !recurses {
            continue;
        }
        let name_tok = &file.toks[file.code[item.name_cp]];
        let how = if recurses { "recursive" } else { "looping" };
        out.push(Finding {
            rule: ID,
            severity: Severity::Deny,
            file: file.rel.clone(),
            line: name_tok.line,
            col: name_tok.col,
            byte: name_tok.start,
            message: format!(
                "{how} function `{}` in a governed crate cannot reach the Budget machinery \
                 through any call path; thread the budget through it or state who meters it \
                 in a pragma",
                item.name
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::ID;
    use crate::lint_source;

    #[test]
    fn loop_reaching_budget_through_a_callee_is_clean() {
        // The old token rule flagged this: `walk` never mentions the
        // budget, but its callee spends. The call graph certifies it.
        let src = "
            fn spend_one(budget: &Budget) -> Result<(), DviclError> {
                budget.spend(1)
            }
            pub fn walk(xs: &[u8], b: &B) -> Result<(), DviclError> {
                for _x in xs {
                    spend_one(b)?;
                }
                Ok(())
            }
        ";
        let (findings, _) = lint_source("crates/refine/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unmetered_loop_is_flagged_and_non_governed_crates_pass() {
        let src = "
            pub fn runaway(xs: &[u8]) -> usize {
                let mut n = 0;
                for x in xs {
                    n += *x as usize;
                }
                n
            }
        ";
        let (findings, _) = lint_source("crates/core/src/x.rs", src);
        assert_eq!(findings.iter().filter(|f| f.rule == ID).count(), 1, "{findings:?}");
        let (findings, _) = lint_source("crates/graph/src/x.rs", src);
        assert!(findings.iter().all(|f| f.rule != ID), "{findings:?}");
    }

    #[test]
    fn recursion_is_flagged_without_a_budget_path() {
        let src = "
            pub fn descend(n: usize) -> usize {
                if n == 0 { 0 } else { descend(n - 1) }
            }
        ";
        let (findings, _) = lint_source("crates/canon/src/x.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("recursive"));
    }
}
