//! offline-guard: library crates must not reach for the network or
//! spawn processes.
//!
//! The reproduction is built to run hermetically (vendored shims, no
//! registry access); a `std::net` listener or `std::process::Command`
//! creeping into a library crate would break that and widen the attack
//! surface of a pipeline that already parses untrusted bytes. Only the
//! `cli` front-end and the `bench` harness may touch `std::process`
//! (exit codes, spawning the binary under test).

use super::{FileCtx, Finding, Severity, code_tok, is_ident, is_punct};
use crate::lexer::TokKind;

pub const ID: &str = "offline-guard";

pub fn check(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    for pos in 0..ctx.code.len() {
        let Some(tok) = code_tok(ctx, pos, 0) else {
            continue;
        };
        if tok.kind != TokKind::Ident || ctx.text(tok) != "std" {
            continue;
        }
        // `std :: net` or `std :: process`
        if !(is_punct(ctx, pos, 1, b':') && is_punct(ctx, pos, 2, b':')) {
            continue;
        }
        let Some(module) = code_tok(ctx, pos, 3) else {
            continue;
        };
        if module.kind != TokKind::Ident {
            continue;
        }
        let m = ctx.text(module);
        if m == "net" || m == "process" {
            // Keep the message specific for the common Command case.
            let detail = if m == "process" && is_punct(ctx, pos, 4, b':') && is_ident(ctx, pos, 6, "Command") {
                "spawns a subprocess"
            } else if m == "net" {
                "opens the network"
            } else {
                "touches process control"
            };
            out.push(ctx.finding(
                ID,
                Severity::Deny,
                tok,
                format!("`std::{m}` in a library crate {detail}; only `cli` and `bench` may"),
            ));
        }
    }
    out
}
