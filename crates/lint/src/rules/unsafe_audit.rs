//! unsafe-audit: every `unsafe` block or `unsafe impl` must be
//! immediately preceded by a `// SAFETY:` comment.
//!
//! `unsafe fn` *declarations* are not audited here — their dangerous
//! interior operations must sit in `unsafe { }` blocks anyway because
//! the workspace denies `unsafe_op_in_unsafe_fn`, and those blocks are
//! what this rule audits.
//!
//! "Immediately preceding" means: a trailing comment on the same line,
//! or the run of comment/attribute lines directly above the construct
//! (doc comments and `#[...]` lines may sit between the SAFETY comment
//! and the `unsafe` keyword, blank lines may not).

use super::{FileCtx, Finding, Severity, code_tok, is_punct};
use crate::lexer::TokKind;

pub const ID: &str = "unsafe-audit";

pub fn check(ctx: &FileCtx) -> Vec<Finding> {
    let lines: Vec<&str> = ctx.src.lines().collect();
    let mut out = Vec::new();
    for pos in 0..ctx.code.len() {
        let Some(tok) = code_tok(ctx, pos, 0) else {
            continue;
        };
        if tok.kind != TokKind::Ident || ctx.text(tok) != "unsafe" {
            continue;
        }
        // Audit `unsafe {` and `unsafe impl`; skip `unsafe fn`/`unsafe trait`.
        let what = if is_punct(ctx, pos, 1, b'{') {
            "unsafe block"
        } else if matches!(code_tok(ctx, pos, 1), Some(t) if t.kind == TokKind::Ident && ctx.text(t) == "impl")
        {
            "unsafe impl"
        } else {
            continue;
        };
        if !has_safety_comment(&lines, tok.line) {
            out.push(ctx.finding(
                ID,
                Severity::Deny,
                tok,
                format!("{what} without an immediately preceding `// SAFETY:` comment"),
            ));
        }
    }
    out
}

/// Looks for `SAFETY:` on the construct's own line (trailing comment)
/// or in the contiguous run of comment/attribute lines directly above.
fn has_safety_comment(lines: &[&str], line_1based: u32) -> bool {
    let idx = (line_1based as usize).saturating_sub(1);
    if line_has_safety(lines.get(idx).copied().unwrap_or("")) {
        return true;
    }
    let mut k = idx;
    while k > 0 {
        k -= 1;
        let t = lines[k].trim();
        let is_annotation = t.starts_with("//") || t.starts_with("#[") || t.starts_with("#![");
        if !is_annotation {
            return false;
        }
        if line_has_safety(t) {
            return true;
        }
    }
    false
}

fn line_has_safety(line: &str) -> bool {
    match line.find("//") {
        Some(i) => line[i..].contains("SAFETY:"),
        None => false,
    }
}
