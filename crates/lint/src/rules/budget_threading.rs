//! budget-threading: governed hot modules may not contain unmetered
//! loops or recursion.
//!
//! The refinement/search/build/SSM recursions are exactly where a graph
//! chosen by an adversary (or just a hard one) makes the pipeline run
//! away. PR 1 threads a [`Budget`] (deadline + work cap + cancel token)
//! through them; this rule keeps that property from rotting: inside the
//! governed modules, every function that loops or calls itself must
//! mention the budget machinery somewhere in its signature or body.
//!
//! The check is intentionally a *reference* check, not a data-flow
//! analysis: bounded helpers (an O(k) hash mix, a cell scan metered by
//! the caller) are expected to carry a suppression pragma stating who
//! meters them, which keeps the audit trail in the source.

use super::{FileCtx, Finding, Severity};
use crate::lexer::{Tok, TokKind};

pub const ID: &str = "budget-threading";

/// The governed modules (workspace-relative paths).
pub const GOVERNED_MODULES: [&str; 5] = [
    "crates/canon/src/search.rs",
    "crates/core/src/build.rs",
    "crates/core/src/ssm.rs",
    "crates/core/src/sm.rs",
    "crates/refine/src/partition.rs",
];

/// Identifiers that count as "references the budget machinery".
const BUDGET_IDENTS: [&str; 6] = ["Budget", "budget", "CancelToken", "cancel", "spend", "gov"];

/// Loop keywords.
const LOOP_KEYWORDS: [&str; 3] = ["for", "while", "loop"];

pub fn check(ctx: &FileCtx) -> Vec<Finding> {
    if !GOVERNED_MODULES.contains(&ctx.rel) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for func in functions(ctx) {
        if ctx.in_test(func.fn_tok.start) {
            continue;
        }
        let body = &ctx.toks[func.body_start..func.body_end];
        let loops = body.iter().any(|t| {
            t.kind == TokKind::Ident && LOOP_KEYWORDS.contains(&ctx.text(t))
        });
        let recurses = body.windows(2).any(|w| {
            w[0].kind == TokKind::Ident
                && ctx.text(&w[0]) == func.name
                && w[1].kind == TokKind::Punct(b'(')
        });
        if !loops && !recurses {
            continue;
        }
        // Signature + body both count: `budget: &Budget` in the
        // parameter list is the normal threading pattern.
        let sig_and_body = &ctx.toks[func.sig_start..func.body_end];
        let governed = sig_and_body.iter().any(|t| {
            t.kind == TokKind::Ident && BUDGET_IDENTS.contains(&ctx.text(t))
        });
        if !governed {
            let how = if recurses { "recursive" } else { "looping" };
            out.push(ctx.finding(
                ID,
                Severity::Deny,
                func.name_tok,
                format!(
                    "{how} function `{}` in a governed module neither takes nor spends a \
                     `Budget`; thread the budget through it or state who meters it in a pragma",
                    func.name
                ),
            ));
        }
    }
    out
}

/// A function item located in the token stream.
struct Func<'a> {
    name: String,
    /// Index (into `ctx.toks`) of the `fn` keyword.
    sig_start: usize,
    /// Index of the token *after* the body's opening `{`.
    body_start: usize,
    /// Index of the body's closing `}` (exclusive bound for slicing).
    body_end: usize,
    fn_tok: &'a Tok,
    name_tok: &'a Tok,
}

/// Scans the token stream for `fn name ... { body }` items (including
/// nested ones and methods in impls). The body is the first `{` after
/// the name at zero parenthesis depth — generics and where-clauses
/// cannot contain braces, so this is exact for real Rust code.
fn functions<'a>(ctx: &'a FileCtx) -> Vec<Func<'a>> {
    let toks = ctx.toks;
    let mut out = Vec::new();
    let mut cp = 0; // code position
    while cp < ctx.code.len() {
        let i = ctx.code[cp];
        let tok = &toks[i];
        if tok.kind == TokKind::Ident && ctx.text(tok) == "fn" {
            if let Some(func) = parse_fn(ctx, cp, i) {
                out.push(func);
            }
        }
        cp += 1;
    }
    out
}

fn parse_fn<'a>(ctx: &'a FileCtx, cp: usize, fn_idx: usize) -> Option<Func<'a>> {
    let toks = ctx.toks;
    let name_idx = *ctx.code.get(cp + 1)?;
    let name_tok = &toks[name_idx];
    if name_tok.kind != TokKind::Ident {
        return None; // `fn` in a type position such as `Fn(...)` patterns
    }
    // Find the body's opening brace: first `{` at paren depth 0. A `;`
    // at depth 0 first means a bodyless declaration (trait method).
    let mut depth = 0i32;
    let mut k = cp + 2;
    let body_open = loop {
        let idx = *ctx.code.get(k)?;
        match toks[idx].kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
            TokKind::Punct(b'{') if depth == 0 => break idx,
            TokKind::Punct(b';') if depth == 0 => return None,
            _ => {}
        }
        k += 1;
    };
    // Match braces to the end of the body.
    let mut braces = 1i32;
    let mut j = k + 1;
    let body_close = loop {
        let idx = *ctx.code.get(j)?;
        match toks[idx].kind {
            TokKind::Punct(b'{') => braces += 1,
            TokKind::Punct(b'}') => {
                braces -= 1;
                if braces == 0 {
                    break idx;
                }
            }
            _ => {}
        }
        j += 1;
    };
    Some(Func {
        name: ctx.text(name_tok).to_string(),
        sig_start: fn_idx,
        body_start: body_open + 1,
        body_end: body_close,
        fn_tok: &toks[fn_idx],
        name_tok,
    })
}
