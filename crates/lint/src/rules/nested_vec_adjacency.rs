//! nested-vec-adjacency: the build/refine hot path must stay flat.
//!
//! The arena refactor (DESIGN.md §10) replaced the per-subgraph
//! `Vec<Vec<u32>>` adjacency with CSR segments carved out of
//! [`SubArena`]'s pooled buffers — that is where the peak-heap win of
//! the AutoTree recursion comes from, and a single convenience
//! `Vec<Vec<_>>` reintroduced on the hot path silently gives it back
//! (one heap allocation per *row*, pointer-chasing per neighbor scan).
//!
//! This rule bans the *type* `Vec<Vec<...>>` in the hot-path modules:
//! any `Vec < Vec <` token sequence outside `#[cfg(test)]` items.
//! Cold-path containers (orbit cells in `aut.rs`, result sets in the
//! query API) live in modules this rule does not cover; a genuinely
//! justified nested vector on a covered file takes a suppression
//! pragma naming why it is not per-vertex adjacency.

use super::{code_tok, is_ident, is_punct, FileCtx, Finding, Severity};

pub const ID: &str = "nested-vec-adjacency";

/// The hot-path modules that must keep flat (CSR / arena) storage.
pub const FLAT_MODULES: [&str; 6] = [
    "crates/graph/src/graph.rs",
    "crates/refine/src/partition.rs",
    "crates/core/src/arena.rs",
    "crates/core/src/sub.rs",
    "crates/core/src/build.rs",
    "crates/canon/src/search.rs",
];

pub fn check(ctx: &FileCtx) -> Vec<Finding> {
    if !FLAT_MODULES.contains(&ctx.rel) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for pos in 0..ctx.code.len() {
        let Some(tok) = code_tok(ctx, pos, 0) else {
            continue;
        };
        if ctx.text(tok) != "Vec" {
            continue;
        }
        // `Vec < Vec <` — the lexer splits generics into punct tokens,
        // so the nested type reads as four code tokens in a row.
        if is_punct(ctx, pos, 1, b'<') && is_ident(ctx, pos, 2, "Vec") && is_punct(ctx, pos, 3, b'<')
        {
            out.push(ctx.finding(
                ID,
                Severity::Deny,
                tok,
                "nested `Vec<Vec<_>>` on the build/refine hot path — use a CSR segment \
                 (SubArena) or a flat offsets+members pair (Division) instead"
                    .to_string(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::ID;
    use crate::lint_source;

    fn run(rel: &str, src: &str) -> usize {
        let (findings, _) = lint_source(rel, src);
        findings.iter().filter(|f| f.rule == ID).count()
    }

    #[test]
    fn flags_nested_vec_on_hot_path() {
        assert_eq!(
            run(
                "crates/core/src/build.rs",
                "fn f() -> Vec<Vec<u32>> { Vec::new() }"
            ),
            1
        );
    }

    #[test]
    fn ignores_flat_vec_and_cold_files() {
        assert_eq!(
            run("crates/core/src/build.rs", "fn f() -> Vec<u32> { Vec::new() }"),
            0
        );
        assert_eq!(
            run(
                "crates/core/src/aut.rs",
                "fn f() -> Vec<Vec<u32>> { Vec::new() }"
            ),
            0
        );
    }

    #[test]
    fn comment_between_tokens_does_not_hide_match() {
        assert_eq!(
            run(
                "crates/core/src/arena.rs",
                "type T = Vec</* rows */ Vec<u32>>;"
            ),
            1
        );
    }
}
