//! arena-discipline: the static twin of the `govern::fault`
//! arena-discipline proptests. `SubArena` is a stack: `mark()` records
//! the pool ceilings, carves grow them, `release(mark)` rolls them
//! back. A path that exits a function between `mark` and `release`
//! leaks arena space for the rest of the enclosing build — exactly the
//! bug class that turns the upcoming per-worker arenas into a slow
//! memory bleed under work stealing.
//!
//! The check runs the [`crate::dataflow`] mark/release pass over every
//! function body that *mentions* `mark`/`release` as method calls, and
//! reports:
//!
//! - `?` / `return` (and loop exits for loop-local marks) while a mark
//!   is unreleased,
//! - a mark still open when its scope or the body ends,
//! - double releases and re-binds of an open mark.
//!
//! Functions that intentionally keep a carve alive past the return
//! (the `try_…` caller-owns-it shape) carry a pragma stating who
//! releases it — the audit trail stays in the source.

use super::{FileCtx, Finding, Severity};
use crate::dataflow::{self, IssueKind};
use crate::parse::ItemKind;

pub const ID: &str = "arena-discipline";

/// The method pair the pass tracks.
const OPEN: &str = "mark";
const CLOSE: &str = "release";

pub fn check(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    for item in ctx.items {
        if item.kind != ItemKind::Fn {
            continue;
        }
        let Some(body) = item.body else { continue };
        // Fast path: skip bodies that never call the pair.
        let mentions = (body.0..body.1).any(|cp| {
            matches!(super::code_tok(ctx, cp, 0), Some(t)
                if t.kind == crate::lexer::TokKind::Ident
                    && matches!(ctx.text(t), OPEN | CLOSE))
        });
        if !mentions {
            continue;
        }
        for issue in dataflow::scan_pairs(ctx.src, ctx.toks, ctx.code, body, OPEN, CLOSE) {
            // Scope-end leaks anchor at the mark's binding (that is
            // where a caller-owns-it pragma reads naturally); exits
            // and double releases anchor at the offending token.
            let anchor_cp = match issue.kind {
                IssueKind::OutOfScope => issue.opened_cp,
                _ => issue.at_cp,
            };
            let Some(at) = super::code_tok(ctx, anchor_cp, 0) else { continue };
            let what = match issue.kind {
                IssueKind::EarlyExit(exit) => format!(
                    "`{exit}` exits `{}` while arena mark `{}` is unreleased",
                    item.name, issue.var
                ),
                IssueKind::OutOfScope => format!(
                    "arena mark `{}` in `{}` is still open when its scope ends",
                    issue.var, item.name
                ),
                IssueKind::DoubleClose => format!(
                    "arena mark `{}` in `{}` is released twice on the same path",
                    issue.var, item.name
                ),
                IssueKind::ShadowedOpen => format!(
                    "arena mark `{}` in `{}` is re-bound while still open",
                    issue.var, item.name
                ),
            };
            out.push(ctx.finding(
                ID,
                Severity::Deny,
                at,
                format!(
                    "{what}; release it on this path or state who owns the carve in a pragma"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::ID;
    use crate::lint_source;

    #[test]
    fn early_try_exit_with_open_mark_is_flagged() {
        let src = "
            pub fn build(a: &mut SubArena) -> Result<usize, DviclError> {
                let mark = a.mark();
                let child = a.try_induced_child(0)?;
                a.release(mark);
                Ok(child)
            }
        ";
        let (findings, _) = lint_source("crates/core/src/x.rs", src);
        let rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&ID), "{findings:?}");
    }

    #[test]
    fn release_before_exit_is_clean() {
        let src = "
            pub fn build(a: &mut SubArena) -> Result<usize, DviclError> {
                let mark = a.mark();
                let child = a.try_induced_child(0);
                a.release(mark);
                Ok(child?)
            }
        ";
        let (findings, _) = lint_source("crates/core/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn pragma_documents_caller_owned_carves() {
        let src = "
            pub fn carve_for_caller(a: &mut SubArena) -> Child {
                // dvicl-lint: allow(arena-discipline) -- the carve survives on purpose; the caller releases it
                let mark = a.mark();
                a.induced_child(0)
            }
        ";
        let (findings, suppressed) = lint_source("crates/core/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(suppressed, 1);
    }
}
