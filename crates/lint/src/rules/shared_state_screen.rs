//! shared-state-screen: the Send-safety gate for the parallel build.
//!
//! ROADMAP item 1 moves `Sub`/`SubArena` values and the build/refine/
//! canon hot path onto worker threads. Two things would silently
//! poison that move:
//!
//! 1. **Process-global mutable state** — `static mut` anywhere, or a
//!    non-`thread_local` static whose type carries single-threaded
//!    interior mutability (`RefCell`, `Cell`, `Rc`, `UnsafeCell`).
//!    `thread_local!` statics are exempt: per-thread state is the
//!    *solution*, not the problem (obs spans already use it).
//! 2. **Single-threaded aliasing on the hot path** — `Rc`, `RefCell`,
//!    `Cell`, `UnsafeCell`, or raw pointers (`*const`/`*mut`) used by
//!    any function reachable, through the call graph, from the
//!    build/refine/canon roots. Those types make the values they touch
//!    `!Send`, so the parallel PR could not move the work.
//!
//! Atomics, `Mutex`/`RwLock`, and `OnceLock` pass: they are the
//! thread-safe idioms. The machine-readable Send-safety report for
//! `core::sub`/`core::arena` types (`--send-safety-report`) is built
//! on the same classification — see `crate::send_safety`.

use super::{Finding, Severity};
use crate::lexer::TokKind;
use crate::Workspace;

pub const ID: &str = "shared-state-screen";

/// Interior-mutability / aliasing markers that are `!Sync` (statics)
/// or `!Send` (hot-path values).
pub const UNSHAREABLE: [&str; 4] = ["RefCell", "Cell", "UnsafeCell", "Rc"];

/// Hot-path roots: every non-test function defined in these locations
/// seeds the reachability scan.
fn is_hot_root_file(rel: &str) -> bool {
    rel == "crates/core/src/build.rs"
        || rel.starts_with("crates/refine/src")
        || rel.starts_with("crates/canon/src")
        || rel.starts_with("crates/pool/src")
}

/// Whether `name` occurs in `type_text` as a whole identifier (so `Rc`
/// does not match `Arc`).
pub fn type_mentions(type_text: &str, name: &str) -> bool {
    type_text
        .split(|c: char| !c.is_alphanumeric() && c != '_')
        .any(|seg| seg == name)
}

pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();

    // 1. Statics, workspace-wide.
    for &r in &ws.symbols.statics {
        let file = &ws.files[r.file];
        let item = &file.items[r.item];
        if item.is_test {
            continue;
        }
        let name_tok = &file.toks[file.code[item.name_cp]];
        if item.is_mut {
            out.push(finding(
                file,
                name_tok,
                format!(
                    "`static mut {}` is unsynchronized global mutable state; use an atomic, \
                     a lock, or thread-local storage",
                    item.name
                ),
            ));
            continue;
        }
        if item.thread_local {
            continue;
        }
        if let Some(bad) = UNSHAREABLE
            .iter()
            .find(|m| type_mentions(&item.type_text, m))
        {
            out.push(finding(
                file,
                name_tok,
                format!(
                    "static `{}` carries `{bad}` ({}) — single-threaded interior mutability \
                     in a process-global; wrap it in thread_local! or use a Sync type",
                    item.name, item.type_text
                ),
            ));
        }
    }

    // 2. Functions reachable from the build/refine/canon hot path.
    let syms = &ws.symbols;
    let roots: Vec<bool> = (0..syms.fns.len())
        .map(|id| {
            let r = syms.fns[id];
            is_hot_root_file(&ws.files[r.file].rel) && !syms.fn_item(&ws.files, id).is_test
        })
        .collect();
    let hot = ws.calls.reachable_from(&roots);
    for (id, &is_hot) in hot.iter().enumerate() {
        if !is_hot {
            continue;
        }
        let r = syms.fns[id];
        let file = &ws.files[r.file];
        let item = &file.items[r.item];
        let Some((_, body_end)) = item.body else { continue };
        let mut seen: Vec<&str> = Vec::new();
        for cp in item.sig.0..body_end {
            let Some(&ti) = file.code.get(cp) else { break };
            let tok = &file.toks[ti];
            let marker = match tok.kind {
                TokKind::Ident => {
                    let t = tok.text(&file.src);
                    UNSHAREABLE.iter().copied().find(|&m| m == t)
                }
                TokKind::Punct(b'*') => {
                    // `*const` / `*mut`: a raw-pointer type.
                    match file.code.get(cp + 1) {
                        Some(&ni)
                            if file.toks[ni].kind == TokKind::Ident
                                && matches!(file.toks[ni].text(&file.src), "const" | "mut") =>
                        {
                            Some("raw pointer")
                        }
                        _ => None,
                    }
                }
                _ => None,
            };
            let Some(marker) = marker else { continue };
            if seen.contains(&marker) {
                continue;
            }
            seen.push(marker);
            out.push(finding(
                file,
                tok,
                format!(
                    "`{}` is reachable from the build/refine/canon hot path and uses \
                     {marker} — `!Send` aliasing the parallel build cannot move across \
                     threads; use owned/atomic/locked state or justify with a pragma",
                    item.name
                ),
            ));
        }
    }
    out
}

fn finding(file: &crate::FileData, tok: &crate::lexer::Tok, message: String) -> Finding {
    Finding {
        rule: ID,
        severity: Severity::Deny,
        file: file.rel.clone(),
        line: tok.line,
        col: tok.col,
        byte: tok.start,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::ID;
    use crate::lint_source;

    #[test]
    fn static_mut_and_global_refcell_are_flagged() {
        let src = "
            static mut HITS: usize = 0;
            static CACHE: RefCell<Vec<u8>> = RefCell::new(Vec::new());
            static OK: AtomicU64 = AtomicU64::new(0);
        ";
        let (findings, _) = lint_source("crates/obs/src/x.rs", src);
        assert_eq!(findings.iter().filter(|f| f.rule == ID).count(), 2, "{findings:?}");
    }

    #[test]
    fn thread_local_refcell_is_exempt() {
        let src = "
            thread_local! {
                static STACK: RefCell<Vec<u8>> = RefCell::new(Vec::new());
            }
        ";
        let (findings, _) = lint_source("crates/obs/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn rc_is_flagged_only_when_reachable_from_a_hot_root() {
        // Two files: the hot root calls `helper` in a cold module;
        // `cold` has the same Rc but no path from the hot roots.
        let build = "
            pub fn build_node(n: usize) -> usize {
                helper(n)
            }
        ";
        let util = "
            pub fn helper(n: usize) -> usize {
                let shared: Rc<Vec<u8>> = Rc::new(Vec::new());
                shared.len() + n
            }
            pub fn cold(n: usize) -> usize {
                let also: Rc<u8> = Rc::new(0);
                n + (*also as usize)
            }
        ";
        let ws = crate::Workspace::analyze(vec![
            ("crates/core/src/build.rs".to_string(), build.to_string()),
            ("crates/data/src/util.rs".to_string(), util.to_string()),
        ]);
        let report = ws.lint();
        let hits: Vec<_> = report.findings.iter().filter(|f| f.rule == ID).collect();
        assert_eq!(hits.len(), 1, "{:?}", report.findings);
        assert!(hits[0].message.contains("helper"), "{hits:?}");
    }

    #[test]
    fn arc_and_atomics_on_the_hot_path_pass() {
        let arc = "
            pub fn build_node(n: usize) -> usize {
                let shared: Arc<AtomicU64> = Arc::new(AtomicU64::new(0));
                shared.load(Ordering::Relaxed) as usize + n
            }
        ";
        let (findings, _) = lint_source("crates/core/src/build.rs", arc);
        assert!(findings.iter().all(|f| f.rule != ID), "{findings:?}");
    }
}
