//! End-to-end tests of the `dvicl-lint` binary: exit codes, JSON mode,
//! and the zero-findings acceptance gate over the real workspace.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dvicl-lint"))
}

fn fixture(group: &str, name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(group)
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn workspace_is_lint_clean() {
    let out = bin()
        .arg("--root")
        .arg(workspace_root())
        .output()
        .expect("run dvicl-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "workspace must have zero unsuppressed findings:\n{stdout}"
    );
    assert!(stdout.contains("0 finding(s)"), "{stdout}");
}

#[test]
fn tripping_fixture_exits_nonzero() {
    for (group, rel) in [
        ("panic_freedom", "crates/core/src/fixture.rs"),
        ("budget_reachability", "crates/refine/src/partition.rs"),
        ("arena_discipline", "crates/core/src/fixture.rs"),
        ("shared_state_screen", "crates/core/src/build.rs"),
        ("registry_coherence", "crates/core/src/fixture.rs"),
        ("unsafe_audit", "crates/core/src/fixture.rs"),
        ("error_taxonomy", "crates/core/src/fixture.rs"),
        ("narrowing_cast", "crates/core/src/fixture.rs"),
        ("offline_guard", "crates/core/src/fixture.rs"),
    ] {
        let out = bin()
            .arg("--root")
            .arg(workspace_root())
            .arg("--as")
            .arg(rel)
            .arg(fixture(group, "trip.rs"))
            .output()
            .expect("run dvicl-lint");
        assert_eq!(
            out.status.code(),
            Some(1),
            "{group}/trip.rs must exit 1:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn clean_fixture_exits_zero() {
    let out = bin()
        .arg("--root")
        .arg(workspace_root())
        .arg("--as")
        .arg("crates/core/src/fixture.rs")
        .arg(fixture("panic_freedom", "clean.rs"))
        .output()
        .expect("run dvicl-lint");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn json_mode_emits_structured_findings() {
    let out = bin()
        .arg("--root")
        .arg(workspace_root())
        .arg("--as")
        .arg("crates/core/src/fixture.rs")
        .arg("--json")
        .arg(fixture("panic_freedom", "trip.rs"))
        .output()
        .expect("run dvicl-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout.trim_start().starts_with("{\"findings\":["), "{stdout}");
    assert!(stdout.contains("\"rule\":\"panic-freedom\""), "{stdout}");
    assert!(stdout.contains("\"line\":"), "{stdout}");
}

#[test]
fn list_rules_covers_the_catalog() {
    let out = bin().arg("--list-rules").output().expect("run dvicl-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    for rule in [
        "panic-freedom",
        "arena-discipline",
        "budget-reachability",
        "shared-state-screen",
        "registry-coherence",
        "unsafe-audit",
        "error-taxonomy",
        "narrowing-cast",
        "offline-guard",
        "pragma-missing-reason",
        "pragma-unknown-rule",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

#[test]
fn github_format_emits_error_annotations() {
    let out = bin()
        .arg("--root")
        .arg(workspace_root())
        .arg("--as")
        .arg("crates/core/src/fixture.rs")
        .arg("--format")
        .arg("github")
        .arg(fixture("panic_freedom", "trip.rs"))
        .output()
        .expect("run dvicl-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stdout.contains("::error file=crates/core/src/fixture.rs,line="),
        "{stdout}"
    );
    assert!(stdout.contains("title=panic-freedom::"), "{stdout}");
    assert!(stdout.contains("::notice title=dvicl-lint::"), "{stdout}");
}

#[test]
fn send_safety_report_covers_the_arena_types() {
    let out = bin()
        .arg("--root")
        .arg(workspace_root())
        .arg("--send-safety-report")
        .arg("-")
        .output()
        .expect("run dvicl-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("\"schema\":\"dvicl-send-safety-v1\""), "{stdout}");
    for ty in ["Sub", "SubCell", "Division", "ArenaMark", "SubArena"] {
        assert!(stdout.contains(&format!("\"name\":\"{ty}\"")), "missing {ty}:\n{stdout}");
    }
    // The parallel-build gate: every covered type must be send-ready.
    assert!(!stdout.contains("\"status\":\"blocked\""), "{stdout}");
    // `-` owns stdout: the report must be pipeable JSON, with the lint
    // summary diverted to stderr.
    assert_eq!(stdout.trim().lines().count(), 1, "stdout must be pure JSON:\n{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("finding(s)"), "lint summary should move to stderr:\n{stderr}");
}

#[test]
fn unknown_flag_exits_two() {
    let out = bin().arg("--frobnicate").output().expect("run dvicl-lint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unreadable_file_exits_two() {
    let out = bin()
        .arg("--root")
        .arg(workspace_root())
        .arg("does/not/exist.rs")
        .output()
        .expect("run dvicl-lint");
    assert_eq!(out.status.code(), Some(2));
}
