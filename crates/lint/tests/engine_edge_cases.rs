//! Lexer/engine edge cases exercised through the full `lint_source`
//! pipeline: the rules must see through raw strings, nested comments,
//! char-vs-lifetime ticks, and `#[cfg(test)]` submodules.

use dvicl_lint::lint_source;

const REL: &str = "crates/core/src/fixture.rs";

fn rules_of(src: &str) -> Vec<&'static str> {
    lint_source(REL, src).0.iter().map(|f| f.rule).collect()
}

#[test]
fn raw_strings_do_not_trip_rules() {
    let src = r####"
pub fn f() -> &'static str {
    r#"this "raw" body says .unwrap() and panic!( and std::process::Command"#
}
"####;
    assert!(rules_of(src).is_empty(), "{:?}", rules_of(src));
}

#[test]
fn text_after_a_raw_string_is_still_linted() {
    let src = r####"
pub fn f() -> u32 {
    let _s = r#"benign "quoted" text"#;
    [1u32].first().unwrap().wrapping_add(0)
}
"####;
    assert_eq!(rules_of(src), vec!["panic-freedom"]);
}

#[test]
fn nested_block_comments_hide_violations_and_end_correctly() {
    let src = "
pub fn f() -> u32 {
    /* outer /* inner .unwrap() panic!( */ still outer */
    let x = 1u32; // after the comment, code is linted again
    x as u8;
    x
}
";
    assert_eq!(rules_of(src), vec!["narrowing-cast"]);
}

#[test]
fn char_literals_and_lifetimes_do_not_confuse_the_lexer() {
    // A lifetime tick must not swallow the rest of the line; the
    // violation after it must still be found.
    let src = "
pub fn f<'a>(xs: &'a [char]) -> char {
    let tick = '\\'';
    let check = 'x';
    if tick == check { return 'y'; }
    *xs.first().unwrap()
}
";
    assert_eq!(rules_of(src), vec!["panic-freedom"]);
}

#[test]
fn cfg_test_submodules_are_exempt_even_nested() {
    let src = "
pub fn shipped() -> u32 { 1 }

#[cfg(test)]
mod tests {
    use super::*;

    mod deeper {
        #[test]
        fn inner() {
            let xs: Vec<u32> = vec![1];
            xs.first().unwrap();
            let _ = *xs.first().expect(\"x\") as u8;
        }
    }

    #[test]
    fn outer() {
        shipped().to_string();
    }
}
";
    assert!(rules_of(src).is_empty(), "{:?}", rules_of(src));
}

#[test]
fn code_after_a_test_module_is_linted_again() {
    let src = "
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); }
}

pub fn shipped(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
";
    assert_eq!(rules_of(src), vec!["panic-freedom"]);
}

#[test]
fn test_fn_attribute_exempts_only_that_item() {
    let src = "
#[test]
fn a_test() { x.unwrap(); }

pub fn shipped(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
";
    assert_eq!(rules_of(src), vec!["panic-freedom"]);
}

#[test]
fn pragma_reason_is_required_for_suppression() {
    let with_reason = "pub fn f(x: usize) -> u32 {\n    x as u32 // dvicl-lint: allow(narrowing-cast) -- x < n <= V::MAX\n}\n";
    assert!(rules_of(with_reason).is_empty());

    let without = "pub fn f(x: usize) -> u32 {\n    x as u32 // dvicl-lint: allow(narrowing-cast)\n}\n";
    let rules = rules_of(without);
    assert!(rules.contains(&dvicl_lint::PRAGMA_MISSING_REASON), "{rules:?}");
    assert!(rules.contains(&"narrowing-cast"), "{rules:?}");
}
