//! Drives every fixture through the library API: each rule must fire on
//! its tripping sample and stay silent on its clean sample.

use dvicl_lint::lint_source;
use std::path::Path;

/// Reads a fixture and lints it as if it lived at `rel` inside the
/// workspace (rule applicability is path-driven).
fn lint_fixture(group: &str, name: &str, rel: &str) -> (Vec<&'static str>, usize) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(group)
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    let (findings, suppressed) = lint_source(rel, &src);
    (findings.iter().map(|f| f.rule).collect(), suppressed)
}

/// (fixture dir, rule id, rel path to lint under, findings expected in trip.rs)
const CASES: [(&str, &str, &str, usize); 11] = [
    ("panic_freedom", "panic-freedom", "crates/core/src/fixture.rs", 6),
    (
        "budget_reachability",
        "budget-reachability",
        "crates/refine/src/partition.rs",
        2,
    ),
    (
        "arena_discipline",
        "arena-discipline",
        "crates/core/src/fixture.rs",
        2,
    ),
    (
        "shared_state_screen",
        "shared-state-screen",
        "crates/core/src/build.rs",
        4,
    ),
    (
        "registry_coherence",
        "registry-coherence",
        "crates/core/src/fixture.rs",
        2,
    ),
    ("unsafe_audit", "unsafe-audit", "crates/core/src/fixture.rs", 2),
    ("error_taxonomy", "error-taxonomy", "crates/core/src/fixture.rs", 5),
    (
        "narrowing_cast",
        "narrowing-cast",
        "crates/core/src/fixture.rs",
        3,
    ),
    ("offline_guard", "offline-guard", "crates/core/src/fixture.rs", 2),
    (
        "obs_span_naming",
        "obs-span-naming",
        "crates/core/src/fixture.rs",
        5,
    ),
    (
        "fault_checkpoint_naming",
        "fault-checkpoint-naming",
        "crates/core/src/fixture.rs",
        6,
    ),
];

#[test]
fn every_rule_fires_on_its_tripping_fixture() {
    for (group, rule, rel, expected) in CASES {
        let (rules, _) = lint_fixture(group, "trip.rs", rel);
        let hits = rules.iter().filter(|r| **r == rule).count();
        assert_eq!(
            hits, expected,
            "{group}/trip.rs: expected {expected} `{rule}` findings, got {rules:?}"
        );
    }
}

#[test]
fn every_clean_fixture_is_fully_clean() {
    for (group, rule, rel, _) in CASES {
        let (rules, _) = lint_fixture(group, "clean.rs", rel);
        assert!(
            rules.is_empty(),
            "{group}/clean.rs: expected no findings at all (rule `{rule}`), got {rules:?}"
        );
    }
}

#[test]
fn clean_fixtures_record_their_suppressions() {
    // These clean fixtures each carry one well-formed pragma.
    for (group, rel, want) in [
        ("panic_freedom", "crates/core/src/fixture.rs", 1),
        ("budget_reachability", "crates/refine/src/partition.rs", 1),
        ("arena_discipline", "crates/core/src/fixture.rs", 1),
        ("narrowing_cast", "crates/core/src/fixture.rs", 1),
    ] {
        let (_, suppressed) = lint_fixture(group, "clean.rs", rel);
        assert_eq!(suppressed, want, "{group}/clean.rs suppression count");
    }
}

#[test]
fn missing_reason_pragma_is_a_finding_and_suppresses_nothing() {
    let (rules, suppressed) =
        lint_fixture("pragmas", "missing_reason.rs", "crates/core/src/fixture.rs");
    assert_eq!(suppressed, 0);
    assert!(
        rules.contains(&dvicl_lint::PRAGMA_MISSING_REASON),
        "{rules:?}"
    );
    assert!(rules.contains(&"panic-freedom"), "{rules:?}");
}

#[test]
fn unknown_rule_pragma_is_a_finding() {
    let (rules, _) = lint_fixture("pragmas", "unknown_rule.rs", "crates/core/src/fixture.rs");
    assert_eq!(rules, vec![dvicl_lint::PRAGMA_UNKNOWN_RULE]);
}

#[test]
fn well_formed_pragma_fixture_is_clean() {
    let (rules, suppressed) =
        lint_fixture("pragmas", "suppressed.rs", "crates/core/src/fixture.rs");
    assert!(rules.is_empty(), "{rules:?}");
    assert_eq!(suppressed, 1);
}

#[test]
fn budget_fixture_is_inert_outside_governed_crates() {
    // The same tripping source is fine in an ungoverned crate.
    let (rules, _) = lint_fixture("budget_reachability", "trip.rs", "crates/apps/src/other.rs");
    assert!(!rules.contains(&"budget-reachability"), "{rules:?}");
}

#[test]
fn shared_state_fixture_is_inert_off_the_hot_path() {
    // The Rc/raw-pointer functions are fine in a file no hot root
    // reaches; the global statics are flagged everywhere.
    let (rules, _) = lint_fixture("shared_state_screen", "trip.rs", "crates/apps/src/other.rs");
    assert_eq!(
        rules.iter().filter(|r| **r == "shared-state-screen").count(),
        2,
        "{rules:?}"
    );
}

#[test]
fn narrowing_allowlist_covers_biguint() {
    let src = "pub fn limb(x: u64) -> u32 { (x & 0xffff_ffff) as u32 }\n";
    let (findings, _) = lint_source("crates/group/src/biguint.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
    let (findings, _) = lint_source("crates/group/src/other.rs", src);
    assert_eq!(findings.len(), 1);
}

#[test]
fn offline_guard_exempts_cli_and_bench() {
    let src = "use std::process::Command;\n";
    for rel in ["crates/cli/src/main.rs", "crates/bench/src/runner.rs"] {
        let (findings, _) = lint_source(rel, src);
        assert!(findings.is_empty(), "{rel}: {findings:?}");
    }
    let (findings, _) = lint_source("crates/core/src/x.rs", src);
    assert_eq!(findings.len(), 1);
}
