//! Tripping fixture: all three stringly-error escape hatches.

use std::error::Error;

pub fn boxed() -> Result<(), Box<dyn Error>> {
    Ok(()) // finding above: Box<dyn Error>
}

pub fn stringly(flag: bool) -> Result<u32, String> {
    // finding above: Result<_, String>
    if flag {
        return Err(format!("flag was {flag}")); // finding: Err(format!)
    }
    Ok(7)
}

pub fn converted(x: Result<u32, std::num::ParseIntError>) -> Result<u32, String> {
    x.map_err(|e| e.to_string()) // finding: map_err(..to_string())
}
