//! Clean fixture: typed errors throughout. A `format!` nested inside a
//! typed constructor is the sanctioned way to carry detail text and
//! must not trip the rule (regression guard for the matcher).

pub fn typed(flag: bool) -> Result<u32, DviclError> {
    if flag {
        return Err(DviclError::invalid(format!("flag was {flag}")));
    }
    Ok(7)
}

pub fn mapped(x: Result<u32, ParseError>) -> Result<u32, DviclError> {
    x.map_err(|e| DviclError::Parse(e))
}

pub fn not_an_error_string(n: u32) -> String {
    // to_string outside an error position is fine.
    n.to_string()
}
