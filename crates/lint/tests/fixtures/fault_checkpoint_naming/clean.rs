//! Clean fixture: well-formed checkpoint sites, deeper paths,
//! non-literal sites (out of scope), and unrelated `checkpoint`
//! identifiers.

pub fn good_sites(dynamic: &'static str) -> Result<(), dvicl_govern::DviclError> {
    dvicl_govern::fault::checkpoint("core.build_node")?;
    dvicl_govern::fault::checkpoint("graph.edge_line")?;
    dvicl_govern::fault::checkpoint("refine.individualize")?;
    // A computed site cannot be checked statically; the rule skips it.
    dvicl_govern::fault::checkpoint(dynamic)?;
    Ok(())
}

pub struct Journal {
    pub checkpoint: u64,
}

pub fn unrelated(j: &Journal) -> u64 {
    // Field access and locals named `checkpoint` are not call sites.
    let checkpoint = j.checkpoint;
    checkpoint + 1
}
