//! Tripping fixture: every way a checkpoint site can break the
//! crate.place convention.

pub fn bad_sites() -> Result<(), dvicl_govern::DviclError> {
    dvicl_govern::fault::checkpoint("build_node")?; // finding: single segment
    dvicl_govern::fault::checkpoint("ssm.enumerate")?; // finding: unknown crate prefix
    dvicl_govern::fault::checkpoint("core.buildNode")?; // finding: camelCase segment
    dvicl_govern::fault::checkpoint("graph.edge-line")?; // finding: dash in segment
    dvicl_govern::fault::checkpoint("govern.")?; // finding: empty second segment
    dvicl_govern::fault::checkpoint("core.*")?; // finding: wildcard is spec-only syntax
    Ok(())
}
