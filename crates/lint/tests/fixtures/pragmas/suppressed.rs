//! A well-formed pragma: states its rule and reason, fully clean.

pub fn f(xs: &[u32]) -> &u32 {
    // dvicl-lint: allow(panic-freedom) -- xs is non-empty: built from a const array above
    xs.first().expect("non-empty")
}
