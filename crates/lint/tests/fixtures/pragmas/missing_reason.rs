//! A pragma without a reason: it must itself be a finding, and the
//! violation it names must stay active.

pub fn f(xs: &[u32]) -> u32 {
    xs.first().unwrap() // dvicl-lint: allow(panic-freedom)
}
