//! A pragma naming a rule that does not exist must be a finding.

pub fn f() -> u32 {
    // dvicl-lint: allow(no-such-rule) -- reason present but rule unknown
    7
}
