//! Clean fixture: non-panicking adapters, a pragma'd invariant, and a
//! test module that unwraps freely (as tests should).

pub fn lookup(xs: &[u32]) -> Option<u32> {
    let first = xs.first().copied().unwrap_or(0);
    let second = xs.get(1).copied().unwrap_or_default();
    // A string mentioning .unwrap() and panic!( must not trip the lexer.
    let _doc = "never call .unwrap() or panic!( in non-test code";
    let _raw = r#"raw .expect( body "with quotes" stays opaque"#;
    /* block comment: .unwrap() here is /* nested */ invisible */
    Some(first + second)
}

pub fn invariant_indexing(xs: &[u32]) -> u32 {
    // dvicl-lint: allow(panic-freedom) -- xs verified non-empty by the caller's constructor
    *xs.first().expect("non-empty by construction")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_unwrap_freely() {
        let xs = vec![1, 2];
        assert_eq!(*xs.first().unwrap(), 1);
    }
}
