//! Tripping fixture: every banned panicking construct in non-test code.

pub fn lookup(xs: &[u32]) -> u32 {
    let first = xs.first().unwrap(); // finding: .unwrap()
    let second = xs.get(1).expect("second element"); // finding: .expect()
    if *first > *second {
        panic!("boom"); // finding: panic!
    }
    match first {
        0 => todo!(), // finding: todo!
        1 => unimplemented!(), // finding: unimplemented!
        _ => unreachable!(), // finding: unreachable!
    }
}
