//! Clean fixture: every unsafe construct carries a SAFETY comment,
//! trailing or on the run of comment lines directly above.

pub fn peek(p: *const u8) -> u8 {
    // SAFETY: callers pass a pointer into a live, initialized buffer.
    unsafe { *p }
}

pub fn peek_trailing(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: p is validated non-null by the caller.
}

// SAFETY: Wrapper's pointer is only dereferenced on the owning thread;
// sending the handle is sound because access is externally fenced.
#[allow(dead_code)]
unsafe impl Send for Wrapper {}

pub struct Wrapper(*mut u8);
