//! Tripping fixture: undocumented unsafe block and unsafe impl.

pub fn peek(p: *const u8) -> u8 {
    unsafe { *p } // finding: no SAFETY comment
}

unsafe impl Send for Wrapper {} // finding: no SAFETY comment

pub struct Wrapper(*mut u8);
