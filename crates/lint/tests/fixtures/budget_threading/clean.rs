//! Clean fixture (linted as a governed module): the loop spends from a
//! budget, the bounded helper states who meters it, and a loop-free
//! function needs nothing.

pub fn metered_scan(xs: &[u32], budget: &Budget) -> Result<u32, DviclError> {
    let mut acc = 0;
    for &x in xs {
        budget.spend(1)?;
        acc += x;
    }
    Ok(acc)
}

// dvicl-lint: allow(budget-threading) -- O(1) helper; metered_scan spends one unit per element before calling it
pub fn bounded_helper(xs: &[u32]) -> u32 {
    let mut h = 0;
    for &x in xs.iter().take(4) {
        h ^= x;
    }
    h
}

pub fn no_loops(a: u32, b: u32) -> u32 {
    a.wrapping_mul(b)
}
