//! Tripping fixture: a checkpoint call the registry does not know, and
//! a registry entry no call site uses.

pub const CHECKPOINT_SITES: [&str; 2] = ["core.alpha", "core.orphan"];

pub fn run() -> Result<(), DviclError> {
    fault::checkpoint("core.alpha")?;
    fault::checkpoint("core.ghost")?; // finding: used but not registered
    Ok(())
    // second finding: `core.orphan` is registered but never used
}
