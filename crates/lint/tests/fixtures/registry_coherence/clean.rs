//! Clean fixture: every checkpoint call site appears in the registry
//! and every registry entry is exercised by a call site.

pub const CHECKPOINT_SITES: [&str; 2] = ["core.alpha", "core.beta"];

pub fn run() -> Result<(), DviclError> {
    fault::checkpoint("core.alpha")?;
    fault::checkpoint("core.beta")?;
    Ok(())
}
