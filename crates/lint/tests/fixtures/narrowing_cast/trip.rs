//! Tripping fixture: the three narrowing casts.

pub fn narrow(x: usize) -> (u8, u16, u32) {
    (x as u8, x as u16, x as u32) // three findings
}
