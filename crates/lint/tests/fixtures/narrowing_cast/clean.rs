//! Clean fixture: widening casts are free; a narrowing cast carries a
//! range-proving pragma; checked conversion is the fix of choice.

pub fn widen(x: u32) -> (u64, usize, f64) {
    (x as u64, x as usize, x as f64)
}

pub fn proven(x: usize, n: usize) -> u32 {
    debug_assert!(x < n && n <= u32::MAX as usize);
    x as u32 // dvicl-lint: allow(narrowing-cast) -- x < n and n is capped at u32::MAX by the parser
}

pub fn checked(x: usize) -> Option<u16> {
    u16::try_from(x).ok()
}
