//! Clean fixture (linted as the hot-path root file): atomics, locks,
//! `Arc`, and thread-local scratch are the thread-safe idioms the
//! screen exists to push work toward.

static TOTAL: AtomicU64 = AtomicU64::new(0);

static TABLE: OnceLock<Vec<u8>> = OnceLock::new();

thread_local! {
    static SCRATCH: RefCell<Vec<u8>> = RefCell::new(Vec::new());
}

pub fn build_shared(n: usize) -> usize {
    let shared: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    TOTAL.fetch_add(1, Ordering::Relaxed);
    drop(shared);
    n
}
