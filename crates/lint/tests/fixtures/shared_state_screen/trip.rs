//! Tripping fixture (linted as the hot-path root file
//! `crates/core/src/build.rs`): process-global mutable state and
//! `!Send` aliasing reachable from the build hot path.

static mut HITS: usize = 0; // finding: static mut

static CACHE: RefCell<Vec<u8>> = RefCell::new(Vec::new()); // finding: global interior mutability

pub fn build_with_rc(n: usize) -> usize {
    let shared: Rc<Vec<u8>> = Rc::new(Vec::new()); // finding: Rc on the hot path
    shared.len() + n
}

pub fn build_with_raw(p: *const u8) -> bool {
    !p.is_null() // finding (anchored at the `*const`): raw pointer on the hot path
}
