//! Clean fixture (linted as a governed module): a loop that spends
//! directly, a loop certified through a *callee* that spends (the
//! call-graph capability the old token-level rule lacked), a bounded
//! helper with a pragma, and a loop-free function.

pub fn metered_scan(xs: &[u32], budget: &Budget) -> Result<u32, DviclError> {
    let mut acc = 0;
    for &x in xs {
        budget.spend(1)?;
        acc += x;
    }
    Ok(acc)
}

fn tick(m: &Meter) -> Result<(), DviclError> {
    m.spend(1)
}

/// Never mentions the budget machinery itself; the call graph
/// certifies it because `tick` spends one unit per element.
pub fn walk(xs: &[u32], m: &Meter) -> Result<u32, DviclError> {
    let mut acc = 0;
    for &x in xs {
        tick(m)?;
        acc += x;
    }
    Ok(acc)
}

// dvicl-lint: allow(budget-reachability) -- O(1) helper; metered_scan spends one unit per element before calling it
pub fn bounded_helper(xs: &[u32]) -> u32 {
    let mut h = 0;
    for &x in xs.iter().take(4) {
        h ^= x;
    }
    h
}

pub fn no_loops(a: u32, b: u32) -> u32 {
    a.wrapping_mul(b)
}
