//! Tripping fixture (linted as a governed module): loops and
//! self-recursion with no path to the budget machinery anywhere in
//! the call graph.

pub fn unmetered_scan(xs: &[u32]) -> u32 {
    let mut acc = 0;
    for &x in xs {
        acc += x; // finding: loop, no budget reachable
    }
    acc
}

pub fn unmetered_descend(depth: u32) -> u32 {
    if depth == 0 {
        return 0;
    }
    1 + unmetered_descend(depth - 1) // finding: recursion, no budget reachable
}
