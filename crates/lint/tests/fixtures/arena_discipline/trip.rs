//! Tripping fixture: arena mark/release pairs broken on an early-exit
//! path and at scope end.

pub fn leaky_build(a: &mut SubArena, parent: &Sub) -> Result<Sub, DviclError> {
    let mark = a.mark();
    let child = a.try_induced_child(parent, &[0])?; // finding: `?` exits while `mark` is open
    a.release(mark);
    Ok(child)
}

pub fn forgets_release(a: &mut SubArena) -> usize {
    let mark = a.mark(); // finding: still open when the body ends
    a.bytes_now()
}
