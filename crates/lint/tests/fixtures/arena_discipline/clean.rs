//! Clean fixture: the fallible call lands *before* the release is
//! consulted via `?`, a loop-local pair balances every iteration, and
//! a caller-owned carve states who releases it.

pub fn balanced(a: &mut SubArena, parent: &Sub) -> Result<usize, DviclError> {
    let mark = a.mark();
    let child = a.try_induced_child(parent, &[0]);
    a.release(mark);
    Ok(child?.n())
}

pub fn per_iteration(
    a: &mut SubArena,
    parents: &[Sub],
    budget: &Budget,
) -> Result<usize, DviclError> {
    let mut total = 0;
    for p in parents {
        budget.spend(1)?;
        let mark = a.mark();
        total += p.n();
        a.release(mark);
    }
    Ok(total)
}

pub fn carve_for_caller(a: &mut SubArena, parent: &Sub) -> Sub {
    // dvicl-lint: allow(arena-discipline) -- the carve survives on purpose; the caller releases it with its own mark
    let mark = a.mark();
    a.induced_child(parent, &[0])
}
