//! Clean fixture: hermetic std usage only.

use std::time::Duration;

pub fn wait() -> Duration {
    Duration::from_millis(5)
}

pub fn processes_in_prose() {
    // The word process (and even std::net in a comment) is fine.
    let _ = "a string mentioning std::process::Command is data, not code";
}
