//! Tripping fixture: network and subprocess reach-outs.

use std::net::TcpStream; // finding: std::net

pub fn spawn_helper() {
    let _ = std::process::Command::new("curl"); // finding: std::process::Command
}

pub fn dial() -> Option<TcpStream> {
    None
}
