//! Clean fixture: well-formed labels, the macro form, deeper paths,
//! non-literal labels (out of scope), and unrelated `span` identifiers.

pub fn good_labels(dynamic: &'static str) {
    let _a = dvicl_obs::span("canon.search");
    let _b = dvicl_obs::span!("core.leaf_ir");
    let _c = dvicl_obs::span("apps.im.spread_estimate");
    // A computed label cannot be checked statically; the rule skips it.
    let _d = dvicl_obs::span(dynamic);
}

pub struct Token {
    pub span: (usize, usize),
}

pub fn unrelated(tok: &Token) -> usize {
    // Field access and locals named `span` are not span call sites.
    let span = tok.span;
    span.0
}
