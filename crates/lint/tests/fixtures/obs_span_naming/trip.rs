//! Tripping fixture: every way a span label can break the
//! crate.phase convention.

pub fn bad_labels() {
    let _a = dvicl_obs::span("search"); // finding: single segment
    let _b = dvicl_obs::span("nonsense.search"); // finding: unknown crate prefix
    let _c = dvicl_obs::span("canon.Search"); // finding: uppercase segment
    let _d = dvicl_obs::span!("core.leaf-ir"); // finding: dash in segment
    let _e = dvicl_obs::span("refine."); // finding: empty second segment
}
