//! The IR engines against the benchmark graph families at test scale:
//! every configuration must produce relabeling-invariant certificates and
//! find the full automorphism group, including on the refinement-defeating
//! CFI instances.

use dvicl_canon::{canonical_form, try_canonical_form, Budget, Config, KernelKind, TargetCell};
use dvicl_data::bench_graphs;
use dvicl_graph::{Coloring, Graph, Perm, V};
use dvicl_group::StabChain;

fn shuffle(n: usize, seed: u64) -> Perm {
    let mut image: Vec<V> = (0..n as V).collect();
    let mut state = seed | 1;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        image.swap(i, (state >> 33) as usize % (i + 1));
    }
    Perm::from_image(image).expect("bijection")
}

fn check_invariance(name: &str, g: &Graph, config: &Config) {
    let pi = Coloring::unit(g.n());
    let r1 = canonical_form(g, &pi, config);
    for round in 0..2 {
        let gamma = shuffle(g.n(), 0xfeed + round);
        let r2 = canonical_form(&g.permuted(&gamma), &pi, config);
        assert_eq!(r1.form, r2.form, "{name}: certificate not invariant");
        // Group order must be invariant too.
        assert_eq!(
            StabChain::new(g.n(), &r1.generators).order(),
            StabChain::new(g.n(), &r2.generators).order(),
            "{name}: group order not invariant"
        );
    }
}

#[test]
fn small_geometric_graphs_all_configs() {
    for (name, g) in [
        ("ag2-5", bench_graphs::ag2(5)),
        ("pg2-3", bench_graphs::pg2(3)),
        ("had-8", bench_graphs::hadamard(8)),
    ] {
        for config in [Config::bliss_like(), Config::nauty_like(), Config::traces_like()] {
            check_invariance(name, &g, &config);
        }
    }
}

#[test]
fn medium_geometric_graphs_traces() {
    // The traces-like engine must stay fast at these scales (Table 8).
    for (name, g) in [
        ("ag2-13", bench_graphs::ag2(13)),
        ("pg2-13", bench_graphs::pg2(13)),
        ("had-32", bench_graphs::hadamard(32)),
        ("grid-3x6", bench_graphs::wrapped_grid(&[6, 6, 6])),
    ] {
        check_invariance(name, &g, &Config::traces_like());
    }
}

#[test]
fn cfi_pairs_are_separated_by_all_configs() {
    let base = bench_graphs::cubic_circulant(8);
    let a = bench_graphs::cfi(&base, false);
    let b = bench_graphs::cfi(&base, true);
    let pi = Coloring::unit(a.n());
    for config in [Config::bliss_like(), Config::nauty_like(), Config::traces_like()] {
        let fa = canonical_form(&a, &pi, &config).form;
        let fb = canonical_form(&b, &pi, &config).form;
        assert_ne!(fa, fb, "{config:?} failed to separate the CFI pair");
    }
}

#[test]
fn cfi_selector_portfolio_changes_nodes_not_certificates() {
    // The target-cell selector steers *which* subtree the IR search
    // explores first. On this refinement-defeating CFI instance the
    // paper's first-non-singleton selector and the DSATUR-style
    // most-constrained selector land on the same canonical leaf — the
    // certificates are byte-identical — but reach it through different
    // trees: the node counts differ. Every selector still separates the
    // twisted pair, and swapping the refinement kernel changes neither
    // the certificate nor the search shape, node for node.
    let base = bench_graphs::cubic_circulant(12);
    let a = bench_graphs::cfi(&base, false);
    let b = bench_graphs::cfi(&base, true);
    let pi = Coloring::unit(a.n());
    let mut results = Vec::new();
    for tc in [TargetCell::FirstNonSingleton, TargetCell::MostConstrained] {
        let mut config = Config::bliss_like();
        config.target_cell = tc;
        let ra = canonical_form(&a, &pi, &config);
        let rb = canonical_form(&b, &pi, &config);
        assert_ne!(ra.form, rb.form, "{tc:?} failed to separate the CFI pair");
        // Kernel choice must not even change the *work*: node-for-node
        // identical search, byte-identical certificate.
        config.kernel = KernelKind::Bitset;
        let ra_bit = canonical_form(&a, &pi, &config);
        assert_eq!(ra.form, ra_bit.form, "{tc:?}: kernel changed the certificate");
        assert_eq!(
            ra.stats.nodes, ra_bit.stats.nodes,
            "{tc:?}: kernel changed the search shape"
        );
        results.push(ra);
    }
    assert_eq!(
        results[0].form, results[1].form,
        "both selectors must reach the same canonical leaf here"
    );
    assert_ne!(
        results[0].stats.nodes, results[1].stats.nodes,
        "the selectors must explore differently-shaped trees"
    );
}

#[test]
fn ag2_group_order_is_the_affine_group() {
    // |Aut(AG(2,q) incidence graph)| = |AGL(2,q)| = q²(q²−1)(q²−q)
    // for prime q > 2 (the plane's automorphisms; no duality for AG).
    let q = 5u64;
    let g = bench_graphs::ag2(q as usize);
    let r = canonical_form(&g, &Coloring::unit(g.n()), &Config::traces_like());
    let expected = q * q * (q * q - 1) * (q * q - q);
    assert_eq!(
        StabChain::new(g.n(), &r.generators).order().to_u64(),
        Some(expected)
    );
}

#[test]
fn pg2_group_order_is_pgl_with_duality() {
    // |Aut(PG(2,q) incidence graph)| = 2·|PGL(3,q)| (the factor 2 is
    // point–line duality). |PGL(3,q)| = q³(q³−1)(q²−1).
    let q = 3u64;
    let g = bench_graphs::pg2(q as usize);
    let r = canonical_form(&g, &Coloring::unit(g.n()), &Config::traces_like());
    let pgl = q.pow(3) * (q.pow(3) - 1) * (q.pow(2) - 1);
    assert_eq!(
        StabChain::new(g.n(), &r.generators).order().to_u64(),
        Some(2 * pgl)
    );
}

#[test]
fn budget_is_respected_quickly() {
    let g = bench_graphs::ag2(23);
    let t0 = std::time::Instant::now();
    let r = try_canonical_form(
        &g,
        &Coloring::unit(g.n()),
        &Config::nauty_like(),
        &Budget::with_deadline(std::time::Duration::from_millis(300)),
    );
    // Either it finished fast or it aborted close to the deadline.
    if r.is_err() {
        assert!(t0.elapsed() < std::time::Duration::from_secs(5));
    }
}

#[test]
fn group_only_mode_matches_full_search() {
    use dvicl_canon::automorphism_group;
    for g in [
        dvicl_graph::named::fig1_example(),
        dvicl_graph::named::petersen(),
        dvicl_graph::named::hypercube(3),
        bench_graphs::ag2(5),
    ] {
        let pi = Coloring::unit(g.n());
        let full = canonical_form(&g, &pi, &Config::bliss_like());
        let group = automorphism_group(&g, &pi, &Config::bliss_like(), &Budget::unlimited())
            .expect("no limits set");
        // Same group order (node counts can differ in either direction:
        // the full search also harvests automorphisms from best-certificate
        // matches, the group-only search prunes off-reference subtrees).
        assert_eq!(
            StabChain::new(g.n(), &group.generators).order(),
            StabChain::new(g.n(), &full.generators).order(),
        );
        // Generators really are automorphisms.
        for gen in &group.generators {
            assert_eq!(g.permuted(gen), g);
        }
    }
}

#[test]
fn group_only_on_geometric_graphs() {
    use dvicl_canon::automorphism_group;
    let g = bench_graphs::ag2(7);
    let pi = Coloring::unit(g.n());
    let full = canonical_form(&g, &pi, &Config::bliss_like());
    let group = automorphism_group(&g, &pi, &Config::bliss_like(), &Budget::unlimited())
        .expect("no limits");
    assert_eq!(
        StabChain::new(g.n(), &group.generators).order(),
        StabChain::new(g.n(), &full.generators).order(),
    );
    // Orbits agree with the full search's.
    let mut a = group.orbits;
    let mut b = full.orbits;
    assert_eq!(a.cells(), b.cells());
}
