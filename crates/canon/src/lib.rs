//! Individualization-refinement (IR) canonical labeling — the baseline.
//!
//! This crate is a from-scratch reimplementation of the search-tree scheme
//! shared by nauty, bliss and traces, exactly as reviewed in Section 4 of
//! the paper: a backtrack tree `T(G, π)` whose nodes are equitable colorings
//! obtained by a refinement function `R`, whose edges individualize vertices
//! of a cell chosen by a target cell selector `T`, and whose subtrees are
//! pruned with a node invariant `φ` (pruning rules `P_A`, `P_B`) and with
//! discovered automorphisms (`P_C`).
//!
//! The paper's baselines are the C implementations of nauty 2.6r10,
//! bliss 0.73 and traces 2.6r10; those cannot be linked here (the
//! reproduction builds every substrate from scratch), so this engine
//! provides three *configurations* that mirror the algorithmic distinctions
//! the paper attributes to them — primarily the target cell selector
//! (first non-singleton for bliss per \[18\], smallest non-singleton for
//! nauty per \[26\], largest for the traces stand-in) — see
//! [`Config::bliss_like`], [`Config::nauty_like`], [`Config::traces_like`].
//!
//! The same engine also serves as the leaf labeler that `DviCL` calls in
//! `CombineCL` (Algorithm 4).

#![warn(missing_docs)]

mod search;
pub mod tree;

pub use dvicl_govern::{Budget, CancelToken, DviclError};
pub use dvicl_refine::KernelKind;
pub use search::{
    automorphism_group, canonical_form, try_canonical_form, try_canonical_form_with, CanonResult,
    Config, GroupResult, SearchStats, TargetCell,
};
