//! The backtrack search over the individualization-refinement tree.

use crate::tree::{NodeRecord, SearchTree};
use dvicl_govern::{Budget, DviclError};
use dvicl_obs::{self as obs, Counter};
use dvicl_graph::{CanonForm, Coloring, Graph, Perm, V};
use dvicl_group::Orbits;
use dvicl_refine::{KernelKind, Refiner};
use std::cmp::Ordering;

/// Target cell selector `T` (Section 4): which non-singleton cell of the
/// node's coloring to individualize. All choices are functions of cell
/// *positions and sizes* only, hence isomorphism-invariant as required by
/// property (iii) of `T`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TargetCell {
    /// The first (lowest-position) non-singleton cell — the choice of \[18\],
    /// used by bliss and in the paper's Fig. 1(b).
    FirstNonSingleton,
    /// The first *smallest* non-singleton cell — nauty's classic choice
    /// \[26\].
    SmallestFirst,
    /// The first *largest* non-singleton cell — stands in for traces'
    /// preference for large cells in this reproduction.
    LargestFirst,
    /// The first most-constrained non-singleton cell: the one adjacent
    /// to the largest number of *distinct* cells — a DSATUR-style
    /// saturation choice. Individualizing inside a highly-saturated
    /// cell tends to split the most cells in the next refinement. In an
    /// equitable coloring every member of a cell sees the same multiset
    /// of neighbor colors, so one member's neighborhood determines the
    /// whole cell's saturation and the choice stays
    /// isomorphism-invariant.
    MostConstrained,
}

impl TargetCell {
    /// Applies the selector to an equitable coloring of `g`; `None` if
    /// discrete.
    pub fn select<'a>(&self, g: &Graph, pi: &'a Coloring) -> Option<&'a [V]> {
        let non_singleton = pi.cells().iter().filter(|c| c.len() > 1);
        match self {
            TargetCell::FirstNonSingleton => non_singleton.map(|c| c.as_slice()).next(),
            TargetCell::SmallestFirst => non_singleton
                .min_by_key(|c| c.len())
                .map(|c| c.as_slice()),
            TargetCell::LargestFirst => non_singleton
                .max_by_key(|c| c.len())
                .map(|c| c.as_slice()),
            TargetCell::MostConstrained => {
                let mut best: Option<(&'a [V], usize)> = None;
                let mut cols: Vec<u32> = Vec::new();
                for c in non_singleton {
                    cols.clear();
                    cols.extend(g.neighbors(c[0]).iter().map(|&w| pi.color_of(w)));
                    cols.sort_unstable();
                    cols.dedup();
                    // Strict > keeps the first cell on ties, matching the
                    // position-order tiebreak of the other selectors.
                    if best.is_none_or(|(_, sat)| cols.len() > sat) {
                        best = Some((c.as_slice(), cols.len()));
                    }
                }
                best.map(|(c, _)| c)
            }
        }
    }

    /// Parses a `--target-cell` argument value.
    pub fn parse(s: &str) -> Option<TargetCell> {
        match s {
            "first" => Some(TargetCell::FirstNonSingleton),
            "smallest" => Some(TargetCell::SmallestFirst),
            "largest" => Some(TargetCell::LargestFirst),
            "most-constrained" => Some(TargetCell::MostConstrained),
            _ => None,
        }
    }

    /// The stable flag-value name
    /// (`first`/`smallest`/`largest`/`most-constrained`).
    pub fn name(self) -> &'static str {
        match self {
            TargetCell::FirstNonSingleton => "first",
            TargetCell::SmallestFirst => "smallest",
            TargetCell::LargestFirst => "largest",
            TargetCell::MostConstrained => "most-constrained",
        }
    }
}

/// Engine configuration: the knobs the paper attributes to the three
/// baseline tools.
///
/// `PartialEq` exists so state keyed to a configuration (the
/// `core::Session` CombineCL memo) can detect a configuration change
/// and invalidate itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Config {
    /// Target cell selector.
    pub target_cell: TargetCell,
    /// Refinement kernel dispatch (`refine::KernelKind`): which
    /// [`Refiner`] backend every node refinement of the search uses.
    /// Part of the config — and hence of `PartialEq` — so state keyed
    /// to a configuration (the `core::Session` CombineCL memo) is
    /// invalidated when the kernel changes, even though both kernels
    /// produce identical certificates.
    pub kernel: KernelKind,
    /// Use refinement traces as the node invariant `φ` (pruning `P_A`,
    /// `P_B`). Without it only automorphism pruning `P_C` applies.
    pub use_invariant: bool,
    /// Record the search tree (for figures/examples; small graphs only).
    pub record_tree: bool,
    /// Search for the automorphism group only (the saucy mode): skip the
    /// canonical-candidate bookkeeping and prune every subtree that cannot
    /// map onto the reference path. The resulting `CanonResult::form` is
    /// the *reference* (first-leaf) certificate, which is NOT canonical.
    pub group_only: bool,
}

impl Config {
    /// The bliss-like configuration (first non-singleton cell, invariants
    /// on) — the default, and the labeler `DviCL+b` delegates to.
    pub fn bliss_like() -> Self {
        Config {
            target_cell: TargetCell::FirstNonSingleton,
            kernel: KernelKind::Auto,
            use_invariant: true,
            record_tree: false,
            group_only: false,
        }
    }

    /// The nauty-like configuration (smallest cell first, weaker pruning:
    /// no trace invariant).
    pub fn nauty_like() -> Self {
        Config {
            target_cell: TargetCell::SmallestFirst,
            kernel: KernelKind::Auto,
            use_invariant: false,
            record_tree: false,
            group_only: false,
        }
    }

    /// The traces-like configuration (largest cell first, invariants on).
    pub fn traces_like() -> Self {
        Config {
            target_cell: TargetCell::LargestFirst,
            kernel: KernelKind::Auto,
            use_invariant: true,
            record_tree: false,
            group_only: false,
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::bliss_like()
    }
}

/// Search statistics (tree size, pruning effectiveness).
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchStats {
    /// Tree nodes visited.
    pub nodes: u64,
    /// Leaves reached.
    pub leaves: u64,
    /// Subtrees pruned by the node invariant (`P_A`/`P_B`).
    pub pruned_invariant: u64,
    /// Branches skipped by discovered automorphisms (`P_C`).
    pub pruned_orbit: u64,
    /// Automorphism generators recorded.
    pub generators_found: u64,
    /// Maximum depth reached.
    pub max_depth: u32,
}

/// The output of a canonical labeling run.
pub struct CanonResult {
    /// The canonical labeling `γ*`: vertex → canonical position.
    pub labeling: Perm,
    /// The certificate `C(G, π) = (G, π)^{γ*}`.
    pub form: CanonForm,
    /// Generators of `Aut(G, π)` discovered during the search. Together
    /// they generate the full automorphism group (every automorphism maps
    /// the first leaf's path to some unpruned leaf with an equal
    /// certificate).
    pub generators: Vec<Perm>,
    /// Orbit partition of the generated group.
    pub orbits: Orbits,
    /// Statistics.
    pub stats: SearchStats,
    /// The recorded search tree, if `Config::record_tree` was set.
    pub tree: Option<SearchTree>,
}

#[inline]
fn mix(h: u64, x: u64) -> u64 {
    let mut z = h ^ x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Quotient-graph invariant: a commutative hash over the multiset of
/// color-pairs of all edges under the node's coloring. Two tree nodes with
/// different quotient multisets cannot lead to equal leaves, so this prunes
/// the "dead subtrees" (invariant-identical until the bottom) that plain
/// refinement traces miss on geometric graphs; at a *discrete* coloring it
/// hashes the full certificate, which is what makes the automorphism
/// jump-back reliable (bliss's certificate-hash idea).
fn quotient_hash(g: &Graph, pi: &Coloring) -> u64 {
    let mut acc: u64 = 0x900d_0a90_0000_0000;
    for u in 0..g.n() as V {
        let cu = pi.color_of(u) as u64;
        for &w in g.neighbors(u) {
            if w > u {
                let cw = pi.color_of(w) as u64;
                let key = if cu <= cw { cu << 32 | cw } else { cw << 32 | cu };
                // Commutative combination: edge enumeration order is not
                // isomorphism-invariant, a sum of strong per-edge hashes is.
                acc = acc.wrapping_add(mix(0x0ed9_e0ed_9e0e_d9e0, key));
            }
        }
    }
    acc
}

/// Canonically labels `(g, pi)` with the given configuration.
///
/// ```
/// use dvicl_graph::{named, Coloring, Perm};
/// use dvicl_canon::{canonical_form, Config};
/// let g = named::petersen();
/// let shuffled = g.permuted(&Perm::from_cycles(10, &[&[0, 6, 2]]).unwrap());
/// let pi = Coloring::unit(10);
/// let cfg = Config::bliss_like();
/// assert_eq!(
///     canonical_form(&g, &pi, &cfg).form,
///     canonical_form(&shuffled, &pi, &cfg).form,
/// );
/// ```
pub fn canonical_form(g: &Graph, pi: &Coloring, config: &Config) -> CanonResult {
    try_canonical_form(g, pi, config, &Budget::unlimited())
        // dvicl-lint: allow(panic-freedom) -- Budget::unlimited() never exhausts, so the Err arm is unreachable
        .expect("unlimited search cannot exceed its budget")
}

/// The automorphism group of `(g, pi)` — generators, orbits and search
/// statistics — *without* computing a canonical form.
///
/// This is the saucy mode the paper's Section 3 describes: subtrees whose
/// invariants diverge from the reference path cannot contain automorphisms
/// of the reference leaf and are pruned unconditionally, so the search is
/// strictly smaller than a canonical run.
pub fn automorphism_group(
    g: &Graph,
    pi: &Coloring,
    config: &Config,
    budget: &Budget,
) -> Result<GroupResult, DviclError> {
    let mut config = config.clone();
    config.group_only = true;
    let r = try_canonical_form(g, pi, &config, budget)?;
    Ok(GroupResult {
        generators: r.generators,
        orbits: r.orbits,
        stats: r.stats,
    })
}

/// Output of [`automorphism_group`].
pub struct GroupResult {
    /// Generators of `Aut(G, π)`.
    pub generators: Vec<Perm>,
    /// Orbit partition of the generated group.
    pub orbits: Orbits,
    /// Search statistics.
    pub stats: SearchStats,
}

/// Canonically labels `(g, pi)`, aborting with a typed error when the
/// budget runs out or its cancel token fires. One work unit is spent per
/// search-tree node and per refinement splitter, so short deadlines are
/// honoured even on graphs whose single refinement is expensive.
pub fn try_canonical_form(
    g: &Graph,
    pi: &Coloring,
    config: &Config,
    budget: &Budget,
) -> Result<CanonResult, DviclError> {
    let mut refiner = Refiner::with_kernel(config.kernel);
    try_canonical_form_with(g, pi, config, budget, &mut refiner)
}

/// [`try_canonical_form`] reusing a caller-owned [`Refiner`], so a
/// driver labeling many (sub)graphs — `core::Builder::combine_cl` runs
/// one per leaf — pays for the refiner's scratch allocations once per
/// worker instead of once per call. The refiner is retuned to
/// `config.kernel` on entry; its buffers are reused as-is.
pub fn try_canonical_form_with(
    g: &Graph,
    pi: &Coloring,
    config: &Config,
    budget: &Budget,
    refiner: &mut Refiner,
) -> Result<CanonResult, DviclError> {
    refiner.set_kernel(config.kernel);
    if g.n() != pi.n() {
        return Err(DviclError::invalid(format!(
            "graph has {} vertices but the coloring covers {}",
            g.n(),
            pi.n()
        )));
    }
    // An already-expired deadline or a pre-cancelled token must fail even
    // on graphs small enough to finish inside the first clock stride.
    budget.check()?;
    let _span = obs::span("canon.search");
    let mut s = Search {
        g,
        pi0: pi,
        config: config.clone(),
        budget,
        first_path: Vec::new(),
        first_leaf: None,
        first_seq: Vec::new(),
        best_path: Vec::new(),
        best_leaf: None,
        best_seq: Vec::new(),
        unwind_to: None,
        generators: Vec::new(),
        orbits: Orbits::identity(g.n()),
        stats: SearchStats::default(),
        tree: if config.record_tree {
            Some(SearchTree::default())
        } else {
            None
        },
        refiner,
    };
    if g.n() == 0 {
        return Ok(CanonResult {
            labeling: Perm::identity(0),
            form: CanonForm::new(g, &[], &[]),
            generators: Vec::new(),
            orbits: Orbits::identity(0),
            stats: s.stats,
            tree: s.tree,
        });
    }
    let root = s.refiner.try_refine(g, pi, budget)?;
    let root_inv = mix(root.trace, quotient_hash(g, &root.coloring));
    let mut fixed: Vec<V> = Vec::new();
    s.dfs(&root.coloring, root_inv, 0, true, Ordering::Equal, None, &mut fixed)?;
    // dvicl-lint: allow(panic-freedom) -- dfs reaches at least one leaf before returning Ok, and the first leaf seeds best_leaf
    let (form, labeling) = s.best_leaf.expect("search always reaches a leaf");
    Ok(CanonResult {
        labeling,
        form,
        generators: s.generators,
        orbits: s.orbits,
        stats: s.stats,
        tree: s.tree,
    })
}

struct Search<'a> {
    g: &'a Graph,
    pi0: &'a Coloring,
    config: Config,
    budget: &'a Budget,
    /// Invariant sequence along the leftmost path (the reference node).
    first_path: Vec<u64>,
    first_leaf: Option<(CanonForm, Perm)>,
    /// Individualized-vertex sequence of the first leaf.
    first_seq: Vec<V>,
    /// Invariant sequence along the current-best path.
    best_path: Vec<u64>,
    best_leaf: Option<(CanonForm, Perm)>,
    /// Individualized-vertex sequence of the best leaf.
    best_seq: Vec<V>,
    /// When set, unwind the DFS to this sequence length (McKay's jump-back
    /// after an automorphism discovery: the abandoned subtrees are images
    /// of already-explored ones under the discovered group).
    unwind_to: Option<usize>,
    generators: Vec<Perm>,
    orbits: Orbits,
    stats: SearchStats,
    tree: Option<SearchTree>,
    /// Reused refinement buffers: one refinement per DFS node, zero
    /// per-node [`dvicl_refine::Partition`] allocations. Borrowed from
    /// the caller ([`try_canonical_form_with`]) so the buffers also
    /// survive across searches.
    refiner: &'a mut Refiner,
}

impl<'a> Search<'a> {
    /// DFS over the IR tree.
    ///
    /// `inv` is the node invariant of this node (its refinement trace);
    /// `on_first` says whether the path so far matches the leftmost path's
    /// invariants; `best_cmp` is the lexicographic status of the current
    /// path against the best path (`Equal` while tracking, `Less` once this
    /// path has strictly beaten the recorded best prefix).
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &mut self,
        pi: &Coloring,
        inv: u64,
        depth: u32,
        mut on_first: bool,
        mut best_cmp: Ordering,
        parent_edge: Option<(usize, V)>,
        fixed: &mut Vec<V>,
    ) -> Result<(), DviclError> {
        self.stats.nodes += 1;
        obs::bump(Counter::SearchNodes);
        self.stats.max_depth = self.stats.max_depth.max(depth);
        dvicl_govern::fault::checkpoint("canon.dfs")?;
        self.budget.spend(1)?;
        let node_id = self.record_node(pi, depth, parent_edge);
        let d = depth as usize;

        // Maintain the first-path status.
        if self.first_path.len() == d {
            // We are extending the leftmost path.
            self.first_path.push(inv);
        } else if on_first {
            on_first = d < self.first_path.len() && self.first_path[d] == inv;
        }

        // Group-only mode: a node off the reference-invariant path cannot
        // produce automorphisms of the reference leaf — prune outright.
        if self.config.group_only && !on_first {
            self.stats.pruned_invariant += 1;
            obs::bump(Counter::PrunedInvariant);
            return Ok(());
        }
        // Maintain the best-path comparison (only meaningful once some best
        // exists; while the best is being *established* on the leftmost
        // descent, best_path mirrors first_path).
        if !self.config.group_only && self.config.use_invariant {
            if best_cmp == Ordering::Equal {
                if d < self.best_path.len() {
                    match inv.cmp(&self.best_path[d]) {
                        Ordering::Less => {
                            // Everything below beats the recorded best.
                            self.best_path.truncate(d);
                            self.best_path.push(inv);
                            self.best_leaf = None;
                            best_cmp = Ordering::Equal;
                        }
                        Ordering::Greater => best_cmp = Ordering::Greater,
                        Ordering::Equal => {}
                    }
                } else if self.best_leaf.is_some() {
                    // The best leaf lies at a shallower depth with an equal
                    // invariant prefix: by the shorter-prefix-wins rule this
                    // path is worse.
                    best_cmp = Ordering::Greater;
                } else {
                    self.best_path.push(inv);
                }
            }
            // Prune: cannot contain the canonical leaf and cannot contain an
            // automorphism image of the reference (first) leaf.
            if best_cmp == Ordering::Greater && !on_first {
                self.stats.pruned_invariant += 1;
                obs::bump(Counter::PrunedInvariant);
                return Ok(());
            }
        }

        let target = self.config.target_cell.select(self.g, pi).map(|c| c.to_vec());
        let Some(target) = target else {
            return self.visit_leaf(pi, d, on_first, best_cmp, fixed);
        };

        // P_C: two sibling branches individualizing vertices in one orbit
        // of the subgroup of discovered automorphisms that fixes the whole
        // individualized sequence `ν` lead to equivalent subtrees (the
        // stabilizer element maps one onto the other, preserving both the
        // certificate order and the automorphisms discoverable below).
        // The orbit structure for P_C is grown *incrementally* and
        // *lazily*: most nodes only ever explore their first candidate
        // (the jump-back abandons the rest), so no orbit work happens
        // until a second candidate is actually examined.
        let mut stab_orbits: Option<Orbits> = None;
        let mut gens_seen = 0usize;
        let mut processed: Vec<V> = Vec::with_capacity(4);
        for &v in &target {
            if !processed.is_empty() {
                let stab = stab_orbits.get_or_insert_with(|| Orbits::identity(self.g.n()));
                while gens_seen < self.generators.len() {
                    let gen = &self.generators[gens_seen];
                    if fixed.iter().all(|&x| gen.apply(x) == x) {
                        stab.absorb(gen);
                    }
                    gens_seen += 1;
                }
                if processed.iter().any(|&w| stab.same(v, w)) {
                    self.stats.pruned_orbit += 1;
                    obs::bump(Counter::PrunedOrbit);
                    continue;
                }
            }
            processed.push(v);
            let child = self.refiner.try_refine_individualized(self.g, pi, v, self.budget)?;
            let child_inv = mix(child.trace, quotient_hash(self.g, &child.coloring));
            fixed.push(v);
            let r = self.dfs(
                &child.coloring,
                child_inv,
                depth + 1,
                on_first,
                best_cmp,
                Some((node_id, v)),
                fixed,
            );
            fixed.pop();
            r?;
            // Jump-back: an automorphism discovered below proves the
            // remaining siblings' subtrees are images of explored ones.
            if let Some(t) = self.unwind_to {
                if t < d {
                    return Ok(());
                }
                self.unwind_to = None;
            }
        }
        Ok(())
    }

    fn visit_leaf(
        &mut self,
        pi: &Coloring,
        d: usize,
        on_first: bool,
        best_cmp: Ordering,
        fixed: &[V],
    ) -> Result<(), DviclError> {
        self.stats.leaves += 1;
        obs::bump(Counter::SearchLeaves);
        let lambda = pi
            .to_perm()
            // dvicl-lint: allow(panic-freedom) -- handle_leaf is only called when target_cell found no non-singleton cell, i.e. pi is discrete
            .expect("a node with no non-singleton cell is discrete");
        let cert = CanonForm::new(self.g, self.pi0.colors(), lambda.as_slice());

        if self.first_leaf.is_none() {
            // The reference leaf; it also seeds the best.
            self.first_leaf = Some((cert.clone(), lambda.clone()));
            self.best_leaf = Some((cert, lambda));
            self.first_seq = fixed.to_vec();
            self.best_seq = fixed.to_vec();
            debug_assert!(
                self.config.group_only
                    || !self.config.use_invariant
                    || self.best_path.len() == d + 1
            );
            return Ok(());
        }

        let mut found_auto = false;
        // Automorphism against the reference leaf (γ' γ₀⁻¹ in the paper).
        if on_first {
            // dvicl-lint: allow(panic-freedom) -- first_leaf is assigned a few lines above when None, so it is always Some here
            let (first_cert, first_lambda) = self.first_leaf.as_ref().expect("set above");
            if cert == *first_cert {
                let auto = lambda.then(&first_lambda.inverse());
                found_auto |= self.add_automorphism(auto);
            }
        }

        match if self.config.group_only { Ordering::Greater } else { best_cmp } {
            Ordering::Equal => match &self.best_leaf {
                None => {
                    // This subtree established a new best prefix; the first
                    // leaf reached under it becomes the candidate.
                    if self.best_path.len() > d + 1 {
                        self.best_path.truncate(d + 1);
                    }
                    self.best_leaf = Some((cert, lambda));
                    self.best_seq = fixed.to_vec();
                }
                Some((best_cert, best_lambda)) => match cert.cmp(best_cert) {
                    Ordering::Less => {
                        self.best_path.truncate(d + 1);
                        self.best_leaf = Some((cert, lambda));
                        self.best_seq = fixed.to_vec();
                    }
                    Ordering::Equal => {
                        let auto = lambda.then(&best_lambda.inverse());
                        found_auto |= self.add_automorphism(auto);
                    }
                    Ordering::Greater => {}
                },
            },
            Ordering::Greater => {}
            // dvicl-lint: allow(panic-freedom) -- dfs only ever passes Equal or Greater: a Less invariant resets best_path and keeps best_cmp = Equal
            Ordering::Less => unreachable!("Less is never propagated"),
        }
        if found_auto {
            // McKay's jump-back: return to the deepest ancestor shared with
            // the first or best path; everything between is an image of an
            // explored subtree under the (now extended) discovered group.
            let lcp = |a: &[V], b: &[V]| a.iter().zip(b).take_while(|(x, y)| x == y).count();
            let target = lcp(fixed, &self.first_seq).max(lcp(fixed, &self.best_seq));
            if target < fixed.len() {
                self.unwind_to = Some(target);
            }
        }
        Ok(())
    }

    /// Records a discovered automorphism; returns true if non-trivial.
    fn add_automorphism(&mut self, auto: Perm) -> bool {
        if auto.is_identity() {
            return false;
        }
        debug_assert_eq!(self.g.permuted(&auto), *self.g, "non-automorphism found");
        self.orbits.absorb(&auto);
        self.generators.push(auto);
        self.stats.generators_found += 1;
        obs::bump(Counter::AutFound);
        true
    }

    fn record_node(&mut self, pi: &Coloring, depth: u32, parent: Option<(usize, V)>) -> usize {
        match &mut self.tree {
            Some(tree) => tree.push(NodeRecord {
                coloring: pi.to_string(),
                depth,
                parent: parent.map(|(p, _)| p),
                individualized: parent.map(|(_, v)| v),
            }),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvicl_graph::named;
    use dvicl_group::{brute, BigUint, StabChain};

    fn check_graph(g: &Graph) {
        let pi = Coloring::unit(g.n());
        for config in [Config::bliss_like(), Config::nauty_like(), Config::traces_like()] {
            let r = canonical_form(g, &pi, &config);
            // Certificate invariance under relabeling.
            let gamma = pseudo_random_perm(g.n());
            let gg = g.permuted(&gamma);
            let r2 = canonical_form(&gg, &pi, &config);
            assert_eq!(r.form, r2.form, "{config:?} not relabeling-invariant");
            // The labeling actually produces the certificate.
            let direct = CanonForm::new(g, pi.colors(), r.labeling.as_slice());
            assert_eq!(direct, r.form);
            // Group order matches brute force (small graphs only).
            if g.n() <= 10 {
                let expected = brute::automorphism_count(g, &pi);
                let chain = StabChain::new(g.n(), &r.generators);
                assert_eq!(
                    chain.order(),
                    BigUint::from_u64(expected),
                    "{config:?} group order mismatch"
                );
            }
        }
    }

    /// A fixed "random-looking" permutation (deterministic tests).
    fn pseudo_random_perm(n: usize) -> Perm {
        let mut image: Vec<V> = (0..n as V).collect();
        let mut state = 0x243f6a8885a308d3u64 ^ n as u64;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            image.swap(i, j);
        }
        Perm::from_image(image).expect("shuffle is a bijection")
    }

    #[test]
    fn named_graphs_all_configs() {
        for g in [
            named::complete(5),
            named::cycle(6),
            named::path(5),
            named::star(5),
            named::complete_bipartite(3, 3),
            named::petersen(),
            named::hypercube(3),
            named::frucht(),
            named::fig1_example(),
            named::fig3_example(),
        ] {
            check_graph(&g);
        }
    }

    #[test]
    fn distinguishes_non_isomorphic_same_degree_sequence() {
        // C6 vs 2×C3: both 2-regular on 6 vertices.
        let c6 = named::cycle(6);
        let cc = named::cycle(3).disjoint_union(&named::cycle(3));
        let pi = Coloring::unit(6);
        let cfg = Config::bliss_like();
        assert_ne!(
            canonical_form(&c6, &pi, &cfg).form,
            canonical_form(&cc, &pi, &cfg).form
        );
        // K3,3 vs the prism (both 3-regular on 6 vertices).
        let k33 = named::complete_bipartite(3, 3);
        let prism = Graph::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3), (1, 4), (2, 5)],
        );
        assert_ne!(
            canonical_form(&k33, &pi, &cfg).form,
            canonical_form(&prism, &pi, &cfg).form
        );
    }

    #[test]
    fn respects_initial_coloring() {
        // A 4-cycle with one vertex pinned has |Aut| = 2, not 8.
        let g = named::cycle(4);
        let pi = Coloring::from_cells(vec![vec![1, 2, 3], vec![0]]).unwrap();
        let r = canonical_form(&g, &pi, &Config::bliss_like());
        let chain = StabChain::new(4, &r.generators);
        assert_eq!(chain.order().to_u64(), Some(2));
    }

    #[test]
    fn orbits_match_brute_force() {
        let g = named::fig1_example();
        let pi = Coloring::unit(8);
        let mut r = canonical_form(&g, &pi, &Config::bliss_like());
        let cells = r.orbits.cells();
        assert_eq!(cells, vec![vec![0, 1, 2, 3], vec![4, 5, 6], vec![7]]);
    }

    #[test]
    fn work_budget_aborts() {
        // The 4x4 rook's graph-ish torus has a big search tree relative to
        // a 2-unit work budget.
        let g = named::torus2(4, 4);
        let pi = Coloring::unit(g.n());
        let r = try_canonical_form(&g, &pi, &Config::bliss_like(), &Budget::with_max_work(2));
        assert!(matches!(
            r,
            Err(DviclError::BudgetExceeded {
                resource: dvicl_govern::Resource::WorkUnits,
                ..
            })
        ));
    }

    #[test]
    fn expired_deadline_aborts() {
        let g = named::torus2(4, 4);
        let pi = Coloring::unit(g.n());
        let budget = Budget::with_deadline(std::time::Duration::from_nanos(1));
        std::thread::sleep(std::time::Duration::from_millis(2));
        let r = try_canonical_form(&g, &pi, &Config::bliss_like(), &budget);
        assert!(matches!(
            r,
            Err(DviclError::BudgetExceeded {
                resource: dvicl_govern::Resource::WallClock,
                ..
            })
        ));
    }

    #[test]
    fn cancellation_aborts() {
        let g = named::torus2(4, 4);
        let pi = Coloring::unit(g.n());
        let budget = Budget::new(None, None);
        budget.cancel_token().cancel();
        let r = try_canonical_form(&g, &pi, &Config::bliss_like(), &budget);
        assert_eq!(r.err(), Some(DviclError::Cancelled));
    }

    #[test]
    fn search_tree_recording() {
        let g = named::fig1_example();
        let pi = Coloring::unit(8);
        let mut cfg = Config::bliss_like();
        cfg.record_tree = true;
        let r = canonical_form(&g, &pi, &cfg);
        let tree = r.tree.expect("recording requested");
        assert!(tree.len() as u64 == r.stats.nodes);
        assert_eq!(tree.node(0).depth, 0);
        assert!(tree.node(0).parent.is_none());
    }

    #[test]
    fn stats_reflect_pruning() {
        let g = named::complete(6);
        let pi = Coloring::unit(6);
        let r = canonical_form(&g, &pi, &Config::bliss_like());
        // K6: without P_C the tree would have 6! leaves; with orbit pruning
        // the leftmost path dominates.
        assert!(r.stats.leaves < 720);
        assert!(r.stats.pruned_orbit > 0);
        let chain = StabChain::new(6, &r.generators);
        assert_eq!(chain.order(), BigUint::factorial(6));
    }

    #[test]
    fn colored_graph_isomorphism_semantics() {
        // Same graph, different colorings that are NOT related by any
        // automorphism: certificates must differ.
        let g = named::path(3); // 0-1-2
        let pi_end = Coloring::from_cells(vec![vec![1, 2], vec![0]]).unwrap();
        let pi_mid = Coloring::from_cells(vec![vec![0, 2], vec![1]]).unwrap();
        let cfg = Config::bliss_like();
        assert_ne!(
            canonical_form(&g, &pi_end, &cfg).form,
            canonical_form(&g, &pi_mid, &cfg).form
        );
        // ...but pinning the other end gives an isomorphic colored graph.
        let pi_end2 = Coloring::from_cells(vec![vec![0, 1], vec![2]]).unwrap();
        assert_eq!(
            canonical_form(&g, &pi_end, &cfg).form,
            canonical_form(&g, &pi_end2, &cfg).form
        );
    }
}
