//! Recorded IR search trees, for the worked examples (paper Fig. 1(b)).

use dvicl_graph::V;
use std::fmt;

/// One recorded node of the backtrack search tree `T(G, π)`.
#[derive(Clone, Debug)]
pub struct NodeRecord {
    /// The node's (refined) coloring, rendered in the paper's notation.
    pub coloring: String,
    /// Depth in the tree (root = 0).
    pub depth: u32,
    /// Parent node index (`None` for the root).
    pub parent: Option<usize>,
    /// The edge label: the vertex individualized to reach this node.
    pub individualized: Option<V>,
}

/// A recorded search tree in visit (preorder) order; node identifiers are
/// exactly the traversal order, matching the paper's Fig. 1(b) labels.
#[derive(Clone, Debug, Default)]
pub struct SearchTree {
    nodes: Vec<NodeRecord>,
}

impl SearchTree {
    /// Appends a node; returns its identifier.
    pub fn push(&mut self, node: NodeRecord) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with identifier `id` (visit order).
    pub fn node(&self, id: usize) -> &NodeRecord {
        &self.nodes[id]
    }

    /// All recorded nodes in visit order.
    pub fn nodes(&self) -> &[NodeRecord] {
        &self.nodes
    }

    /// Children of `id`, in visit order.
    pub fn children(&self, id: usize) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.parent == Some(id))
            .map(|(i, _)| i)
            .collect()
    }

    /// Renders the tree as indented ASCII, one node per line:
    /// `node-id [individualized-vertex] coloring`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_rec(0, 0, &mut out);
        out
    }

    fn render_rec(&self, id: usize, indent: usize, out: &mut String) {
        use fmt::Write;
        let n = &self.nodes[id];
        let edge = match n.individualized {
            Some(v) => format!("--{v}--> "),
            None => String::new(),
        };
        writeln!(out, "{:indent$}{edge}({id}) {}", "", n.coloring, indent = indent)
            // dvicl-lint: allow(panic-freedom) -- fmt::Write for String is infallible; the Err arm cannot occur
            .expect("writing to String cannot fail");
        for c in self.children(id) {
            self.render_rec(c, indent + 2, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut t = SearchTree::default();
        let root = t.push(NodeRecord {
            coloring: "[0,1|2]".into(),
            depth: 0,
            parent: None,
            individualized: None,
        });
        let c1 = t.push(NodeRecord {
            coloring: "[0|1|2]".into(),
            depth: 1,
            parent: Some(root),
            individualized: Some(0),
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.children(root), vec![c1]);
        let rendered = t.render();
        assert!(rendered.contains("--0--> (1) [0|1|2]"));
    }
}
