//! Triangle listing in degree order (the classic compact-forward scheme):
//! each triangle is reported exactly once.

use dvicl_govern::{Budget, DviclError};
use dvicl_graph::{Graph, V};

/// Counts all triangles.
pub fn count_triangles(g: &Graph) -> u64 {
    let mut count = 0u64;
    for_each_triangle(g, |_, _, _| {
        count += 1;
        true
    });
    count
}

/// Budgeted [`count_triangles`]: spends one work unit per oriented edge
/// whose out-neighborhoods are intersected.
pub fn try_count_triangles(g: &Graph, budget: &Budget) -> Result<u64, DviclError> {
    let _span = dvicl_obs::span("apps.triangles");
    let mut count = 0u64;
    try_for_each_triangle(g, budget, |_, _, _| {
        count += 1;
        true
    })?;
    Ok(count)
}

/// Lists up to `limit` triangles as ascending triples.
pub fn list_triangles(g: &Graph, limit: usize) -> Vec<[V; 3]> {
    let mut out = Vec::new();
    for_each_triangle(g, |a, b, c| {
        out.push([a, b, c]);
        out.len() < limit
    });
    out
}

/// Budgeted [`list_triangles`].
pub fn try_list_triangles(
    g: &Graph,
    limit: usize,
    budget: &Budget,
) -> Result<Vec<[V; 3]>, DviclError> {
    let _span = dvicl_obs::span("apps.triangles");
    let mut out = Vec::new();
    try_for_each_triangle(g, budget, |a, b, c| {
        out.push([a, b, c]);
        out.len() < limit
    })?;
    Ok(out)
}

/// Visits each triangle `(a < b < c)` once; the callback returns `false`
/// to stop early.
pub fn for_each_triangle(g: &Graph, f: impl FnMut(V, V, V) -> bool) {
    // Infallible enumeration cannot exhaust the unlimited budget.
    let _ = try_for_each_triangle(g, &Budget::unlimited(), f);
}

/// Budgeted [`for_each_triangle`]: spends one work unit per oriented edge
/// `(u, v)` before intersecting the two out-neighborhoods — the unit of
/// work that dominates compact-forward's runtime.
pub fn try_for_each_triangle(
    g: &Graph,
    budget: &Budget,
    mut f: impl FnMut(V, V, V) -> bool,
) -> Result<(), DviclError> {
    budget.check()?;
    let n = g.n();
    // Rank by (degree, id): orienting edges toward higher rank makes every
    // vertex's out-neighborhood small (O(sqrt(m)) amortized).
    let mut rank: Vec<u32> = vec![0; n];
    let mut by_deg: Vec<V> = (0..n as V).collect();
    by_deg.sort_unstable_by_key(|&v| (g.degree(v), v));
    for (r, &v) in by_deg.iter().enumerate() {
        // dvicl-lint: allow(narrowing-cast) -- r < n and n fits in V = u32 by Graph's construction invariant
        rank[v as usize] = r as u32;
    }
    let higher = |u: V, v: V| rank[v as usize] > rank[u as usize];
    // out[u] = neighbors with higher rank, sorted by vertex id.
    let out: Vec<Vec<V>> = (0..n as V)
        .map(|u| {
            g.neighbors(u)
                .iter()
                .copied()
                .filter(|&w| higher(u, w))
                .collect()
        })
        .collect();
    for u in 0..n as V {
        let ou = &out[u as usize];
        for &v in ou {
            budget.spend(1)?;
            let ov = &out[v as usize];
            // Intersect out[u] ∩ out[v] (both sorted by id).
            let (mut i, mut j) = (0, 0);
            while i < ou.len() && j < ov.len() {
                match ou[i].cmp(&ov[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let w = ou[i];
                        let mut t = [u, v, w];
                        t.sort_unstable();
                        if !f(t[0], t[1], t[2]) {
                            return Ok(());
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvicl_graph::named;

    #[test]
    fn counts() {
        assert_eq!(count_triangles(&named::complete(5)), 10);
        assert_eq!(count_triangles(&named::cycle(3)), 1);
        assert_eq!(count_triangles(&named::cycle(5)), 0);
        assert_eq!(count_triangles(&named::petersen()), 0);
        assert_eq!(count_triangles(&named::complete_bipartite(3, 3)), 0);
        // Fig. 1(a): triangle {4,5,6} + three {i, i+, 7} from it + the
        // 4-cycle vertices with the hub: each cycle edge + 7 = 4 more.
        // Triangles: {4,5,6}, {4,5,7}, {4,6,7}, {5,6,7}, {0,1,7}, {1,2,7},
        // {2,3,7}, {0,3,7} = 8.
        assert_eq!(count_triangles(&named::fig1_example()), 8);
    }

    #[test]
    fn listing_matches_count_and_is_unique() {
        let g = named::fig1_example();
        let list = list_triangles(&g, usize::MAX);
        assert_eq!(list.len() as u64, count_triangles(&g));
        let mut sorted = list.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), list.len());
        for [a, b, c] in list {
            assert!(a < b && b < c);
            assert!(g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c));
        }
    }

    #[test]
    fn limit_stops_early() {
        let g = named::complete(10); // 120 triangles
        assert_eq!(list_triangles(&g, 7).len(), 7);
    }

    #[test]
    fn work_budget_aborts_listing() {
        let g = named::complete(10); // 45 edges to orient
        let err = try_count_triangles(&g, &Budget::with_max_work(4)).unwrap_err();
        assert!(err.is_exhaustion());
        assert_eq!(err.exit_code(), 3);
        let n = try_count_triangles(&g, &Budget::with_max_work(1_000_000)).unwrap();
        assert_eq!(n, 120);
    }
}
