//! Network quotients and symmetry-based structure entropy — the
//! "network simplification" and "network measurement" applications of the
//! paper's introduction (refs \[35\] and \[37\]).
//!
//! The *quotient* collapses every automorphism orbit to one vertex,
//! yielding the structural skeleton of the network; \[35\] shows quotients
//! preserve key functional properties while being substantially smaller.
//! The *structure entropy* of \[37\] is the Shannon entropy of the orbit
//! size distribution, normalized by `log n`: 1.0 for a fully asymmetric
//! (heterogeneous) graph, 0.0 for a vertex-transitive one.

use dvicl_core::{aut, AutoTree};
use dvicl_graph::{Graph, GraphBuilder, V};

/// The quotient of a graph under its automorphism orbits.
pub struct Quotient {
    /// The quotient graph: one vertex per orbit; orbits are adjacent iff
    /// any of their members are.
    pub graph: Graph,
    /// `orbit_of[v]` = quotient vertex of original vertex `v`.
    pub orbit_of: Vec<V>,
    /// Size of each orbit, indexed by quotient vertex.
    pub orbit_sizes: Vec<u32>,
}

/// Builds the quotient of `g` from its AutoTree.
pub fn quotient(g: &Graph, tree: &AutoTree) -> Quotient {
    let _span = dvicl_obs::span("apps.quotient");
    let n = g.n();
    let mut orbits = aut::orbits(tree);
    let cells = orbits.cells();
    let mut orbit_of = vec![0 as V; n];
    let mut orbit_sizes = Vec::with_capacity(cells.len());
    for (i, cell) in cells.iter().enumerate() {
        for &v in cell {
            orbit_of[v as usize] = i as V;
        }
        // dvicl-lint: allow(narrowing-cast) -- a cell holds at most n <= V::MAX vertices
        orbit_sizes.push(cell.len() as u32);
    }
    let mut b = GraphBuilder::new(cells.len());
    for (u, v) in g.edges() {
        let (qu, qv) = (orbit_of[u as usize], orbit_of[v as usize]);
        if qu != qv {
            b.add_edge(qu, qv);
        }
    }
    Quotient {
        graph: b.build(),
        orbit_of,
        orbit_sizes,
    }
}

/// The structure entropy of \[37\]: `−Σ (|orbit|/n) log₂(|orbit|/n) / log₂ n`,
/// in `\[0, 1\]`. Returns 0.0 for graphs with fewer than 2 vertices.
pub fn structure_entropy(g: &Graph, tree: &AutoTree) -> f64 {
    let n = g.n();
    if n < 2 {
        return 0.0;
    }
    let mut orbits = aut::orbits(tree);
    let mut h = 0.0f64;
    for cell in orbits.cells() {
        let p = cell.len() as f64 / n as f64;
        h -= p * p.log2();
    }
    h / (n as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvicl_core::Session;
    use dvicl_graph::{named, Coloring};

    fn tree_of(g: &Graph) -> AutoTree {
        // A fresh session per tree matches the one-shot build exactly;
        // the apps layer consumes trees from either source unchanged.
        Session::default().build(g, &Coloring::unit(g.n()))
    }

    #[test]
    fn vertex_transitive_quotient_is_one_vertex() {
        for g in [named::petersen(), named::cycle(7), named::complete(5)] {
            let t = tree_of(&g);
            let q = quotient(&g, &t);
            assert_eq!(q.graph.n(), 1);
            assert_eq!(q.orbit_sizes, vec![g.n() as u32]);
            assert_eq!(structure_entropy(&g, &t), 0.0);
        }
    }

    #[test]
    fn rigid_quotient_is_the_graph_itself() {
        let g = named::frucht();
        let t = tree_of(&g);
        let q = quotient(&g, &t);
        assert_eq!(q.graph.n(), 12);
        assert_eq!(q.graph.m(), 18);
        assert!((structure_entropy(&g, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_quotient_is_an_edge() {
        // K_{1,n}: orbits {center}, {leaves} → quotient = K2.
        let g = named::star(9);
        let t = tree_of(&g);
        let q = quotient(&g, &t);
        assert_eq!(q.graph.n(), 2);
        assert_eq!(q.graph.m(), 1);
        let mut sizes = q.orbit_sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 9]);
    }

    #[test]
    fn fig1_quotient() {
        // Orbits {0..3}, {4,5,6}, {7}: quotient is a path-with-edges:
        // cycle-orbit — hub — triangle-orbit, plus no cycle↔triangle edge.
        let g = named::fig1_example();
        let t = tree_of(&g);
        let q = quotient(&g, &t);
        assert_eq!(q.graph.n(), 3);
        assert_eq!(q.graph.m(), 2);
        let e = structure_entropy(&g, &t);
        assert!(e > 0.0 && e < 1.0, "entropy {e} out of expected range");
    }

    #[test]
    fn entropy_decreases_with_added_symmetry() {
        // Adding twin leaves to a rigid graph lowers normalized entropy.
        let g = named::frucht();
        let t = tree_of(&g);
        let e_rigid = structure_entropy(&g, &t);
        let mut edges: Vec<(V, V)> = g.edges().collect();
        for i in 0..6 {
            edges.push((0, 12 + i));
        }
        let g2 = Graph::from_edges(18, &edges);
        let t2 = tree_of(&g2);
        let e_sym = structure_entropy(&g2, &t2);
        assert!(e_sym < e_rigid);
    }
}
