//! Exact maximum clique — branch and bound with a greedy coloring bound
//! (the Tomita-style algorithm family; the paper uses its authors' own
//! solver \[22\] to produce the query cliques of Table 7).

use dvicl_govern::{Budget, DviclError};
use dvicl_graph::{Graph, V};

/// Finds one maximum clique (vertices ascending).
pub fn max_clique(g: &Graph) -> Vec<V> {
    try_max_clique(g, &Budget::unlimited())
        // dvicl-lint: allow(panic-freedom) -- Budget::unlimited() never exhausts, so the Err arm is unreachable
        .expect("unlimited clique search cannot exceed its budget")
}

/// Budgeted [`max_clique`]: spends one work unit per branch-and-bound node
/// and aborts with a typed error when the budget runs out — exact maximum
/// clique is NP-hard, so unbounded runtime is the default, not the
/// exception.
pub fn try_max_clique(g: &Graph, budget: &Budget) -> Result<Vec<V>, DviclError> {
    let _span = dvicl_obs::span("apps.clique");
    budget.check()?;
    let n = g.n();
    if n == 0 {
        return Ok(Vec::new());
    }
    // Order vertices by degeneracy (smallest-last); candidates explored in
    // that order shrink the branching early.
    let order = degeneracy_order(g);
    let mut best: Vec<V> = Vec::new();
    let mut current: Vec<V> = Vec::new();
    // Initial candidate set: all vertices, in degeneracy order.
    expand(g, &order, &mut current, &mut best, budget)?;
    best.sort_unstable();
    Ok(best)
}

/// Smallest-last (degeneracy) vertex order.
fn degeneracy_order(g: &Graph) -> Vec<V> {
    let n = g.n();
    let mut deg: Vec<usize> = (0..n as V).map(|v| g.degree(v)).collect();
    let maxd = deg.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<V>> = vec![Vec::new(); maxd + 1];
    for v in 0..n as V {
        buckets[deg[v as usize]].push(v);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut floor = 0usize;
    while order.len() < n {
        while floor <= maxd && buckets[floor].is_empty() {
            floor += 1;
        }
        if floor > maxd {
            break;
        }
        // dvicl-lint: allow(panic-freedom) -- `floor` is advanced past empty buckets by the loop above, so buckets[floor] is non-empty here
        let v = buckets[floor].pop().expect("non-empty bucket");
        if removed[v as usize] || deg[v as usize] != floor {
            // Stale entry: re-bucket if still alive.
            if !removed[v as usize] {
                buckets[deg[v as usize]].push(v);
            }
            continue;
        }
        removed[v as usize] = true;
        order.push(v);
        for &w in g.neighbors(v) {
            if !removed[w as usize] {
                deg[w as usize] -= 1;
                buckets[deg[w as usize]].push(w);
                if deg[w as usize] < floor {
                    floor = deg[w as usize];
                }
            }
        }
    }
    order.reverse(); // highest-core vertices first
    order
}

fn expand(
    g: &Graph,
    cands: &[V],
    current: &mut Vec<V>,
    best: &mut Vec<V>,
    budget: &Budget,
) -> Result<(), DviclError> {
    budget.spend(1)?;
    if cands.is_empty() {
        if current.len() > best.len() {
            *best = current.clone();
        }
        return Ok(());
    }
    // Greedy coloring bound: candidates are colored so adjacent ones get
    // different colors; current.len() + #colors bounds any clique below.
    let colors = greedy_color(g, cands);
    let maxcolor = colors.iter().copied().max().unwrap_or(0);
    if current.len() + (maxcolor as usize) < best.len() {
        return Ok(());
    }
    // Explore candidates in descending color (Tomita's order).
    let mut idx: Vec<usize> = (0..cands.len()).collect();
    idx.sort_unstable_by_key(|&i| std::cmp::Reverse(colors[i]));
    let mut remaining: Vec<V> = cands.to_vec();
    for i in idx {
        let v = cands[i];
        if current.len() + (colors[i] as usize) < best.len() {
            break; // all later candidates have smaller color bounds
        }
        let next: Vec<V> = remaining
            .iter()
            .copied()
            .filter(|&w| w != v && g.has_edge(v, w))
            .collect();
        current.push(v);
        expand(g, &next, current, best, budget)?;
        current.pop();
        remaining.retain(|&w| w != v);
    }
    Ok(())
}

/// Greedy proper coloring of the candidate set (induced), returning each
/// candidate's color index.
fn greedy_color(g: &Graph, cands: &[V]) -> Vec<u32> {
    let mut colors = vec![0u32; cands.len()];
    for (i, &v) in cands.iter().enumerate() {
        let mut used = 0u64;
        for (j, &w) in cands.iter().enumerate().take(i) {
            if g.has_edge(v, w) && colors[j] < 64 {
                used |= 1 << colors[j];
            }
        }
        colors[i] = (!used).trailing_zeros();
    }
    colors
}

/// All maximum cliques up to `limit`, given the maximum clique size is
/// already known (used for Table 7: clustering the maximum cliques).
pub fn all_max_cliques(g: &Graph, size: usize, limit: usize) -> Vec<Vec<V>> {
    try_all_max_cliques(g, size, limit, &Budget::unlimited())
        // dvicl-lint: allow(panic-freedom) -- Budget::unlimited() never exhausts, so the Err arm is unreachable
        .expect("unlimited clique enumeration cannot exceed its budget")
}

/// Budgeted [`all_max_cliques`]: spends one work unit per enumeration node.
pub fn try_all_max_cliques(
    g: &Graph,
    size: usize,
    limit: usize,
    budget: &Budget,
) -> Result<Vec<Vec<V>>, DviclError> {
    let _span = dvicl_obs::span("apps.clique");
    budget.check()?;
    let mut out = Vec::new();
    let order = degeneracy_order(g);
    let mut current = Vec::new();
    enumerate(g, &order, size, &mut current, &mut out, limit, budget)?;
    out.sort();
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn enumerate(
    g: &Graph,
    cands: &[V],
    size: usize,
    current: &mut Vec<V>,
    out: &mut Vec<Vec<V>>,
    limit: usize,
    budget: &Budget,
) -> Result<(), DviclError> {
    budget.spend(1)?;
    if out.len() >= limit {
        return Ok(());
    }
    if current.len() == size {
        let mut c = current.clone();
        c.sort_unstable();
        out.push(c);
        return Ok(());
    }
    if current.len() + cands.len() < size {
        return Ok(());
    }
    let colors = greedy_color(g, cands);
    let maxcolor = colors.iter().copied().max().unwrap_or(0);
    if current.len() + maxcolor as usize + 1 < size {
        return Ok(());
    }
    let mut remaining: Vec<V> = cands.to_vec();
    for &v in cands.iter() {
        let next: Vec<V> = remaining
            .iter()
            .copied()
            .filter(|&w| w != v && g.has_edge(v, w))
            .collect();
        current.push(v);
        enumerate(g, &next, size, current, out, limit, budget)?;
        current.pop();
        remaining.retain(|&w| w != v);
        if out.len() >= limit {
            return Ok(());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvicl_graph::named;

    #[test]
    fn complete_graph() {
        assert_eq!(max_clique(&named::complete(6)).len(), 6);
    }

    #[test]
    fn bipartite_max_clique_is_an_edge() {
        assert_eq!(max_clique(&named::complete_bipartite(4, 4)).len(), 2);
    }

    #[test]
    fn petersen_is_triangle_free() {
        assert_eq!(max_clique(&named::petersen()).len(), 2);
    }

    #[test]
    fn fig1_max_clique_is_the_triangle_plus_hub() {
        // {4,5,6,7} is a K4 in the Fig. 1(a) graph.
        let c = max_clique(&named::fig1_example());
        assert_eq!(c, vec![4, 5, 6, 7]);
    }

    #[test]
    fn result_is_a_clique() {
        let g = named::hypercube(4);
        let c = max_clique(&g);
        for (i, &u) in c.iter().enumerate() {
            for &v in &c[i + 1..] {
                assert!(g.has_edge(u, v));
            }
        }
        assert_eq!(c.len(), 2); // hypercubes are triangle-free
    }

    #[test]
    fn enumerate_all_triangles_of_k4() {
        let g = named::complete(4);
        let all = all_max_cliques(&g, 3, 100);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn enumerate_respects_limit() {
        let g = named::complete(8);
        let all = all_max_cliques(&g, 3, 5);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn work_budget_aborts_branch_and_bound() {
        use dvicl_govern::{DviclError, Resource};
        let g = named::complete(12);
        let err = try_max_clique(&g, &Budget::with_max_work(3)).unwrap_err();
        assert!(matches!(
            err,
            DviclError::BudgetExceeded {
                resource: Resource::WorkUnits,
                ..
            }
        ));
        assert_eq!(err.exit_code(), 3);
        // A generous budget gets the exact answer.
        let c = try_max_clique(&g, &Budget::with_max_work(1_000_000)).unwrap();
        assert_eq!(c.len(), 12);
        // Enumeration honors the budget too.
        let err = try_all_max_cliques(&g, 3, 1000, &Budget::with_max_work(3)).unwrap_err();
        assert!(err.is_exhaustion());
    }

    #[test]
    fn planted_clique_found() {
        // A cycle with a K5 planted on vertices 10..15.
        let mut edges: Vec<(V, V)> = (0..30).map(|v| (v, (v + 1) % 30)).collect();
        for a in 10..15 {
            for b in (a + 1)..15 {
                edges.push((a, b));
            }
        }
        let g = Graph::from_edges(30, &edges);
        assert_eq!(max_clique(&g), vec![10, 11, 12, 13, 14]);
    }
}
