//! Application algorithms from the paper's evaluation (Section 7):
//!
//! * [`im`] — influence maximization under the Independent Cascade model:
//!   Monte-Carlo spread estimation and CELF lazy-greedy seed selection (the
//!   stand-in for PMC \[28\]; the SSM experiment of Table 6 consumes only the
//!   resulting seed set, so the estimator choice does not affect it).
//! * [`clique`] — exact maximum clique (branch and bound with a greedy
//!   coloring bound, following the spirit of \[22\]).
//! * [`triangles`] — triangle listing in degeneracy order.
//! * [`cluster`] — clustering a family of vertex sets into symmetry classes
//!   via AutoTree keys (Table 7).
//! * [`quotient`] — network quotients and structure entropy (the network
//!   simplification/measurement applications of the introduction).

#![warn(missing_docs)]

pub mod clique;
pub mod cluster;
pub mod im;
pub mod quotient;
pub mod triangles;
