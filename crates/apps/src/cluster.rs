//! Subgraph clustering by symmetry (Table 7): given a family of vertex
//! sets (all maximum cliques, all triangles, …), group them into clusters
//! of mutually symmetric sets using AutoTree keys — two sets land in one
//! cluster iff some automorphism of `G` maps one onto the other.

use dvicl_core::ssm::{symmetric_key, try_symmetric_key, SsmIndex};
use dvicl_core::AutoTree;
use dvicl_govern::{Budget, DviclError};
use dvicl_graph::V;
use rustc_hash::FxHashMap;

/// Result of clustering a family of vertex sets by symmetry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clustering {
    /// Number of sets clustered.
    pub total: usize,
    /// Number of symmetry classes.
    pub clusters: usize,
    /// Size of the largest class.
    pub max_cluster: usize,
}

/// Clusters `sets` by their AutoTree symmetry keys.
pub fn cluster_by_symmetry<S: AsRef<[V]>>(
    tree: &AutoTree,
    index: &SsmIndex,
    sets: impl IntoIterator<Item = S>,
) -> Clustering {
    let mut by_key: FxHashMap<Vec<u8>, usize> = FxHashMap::default();
    let mut total = 0usize;
    for set in sets {
        total += 1;
        *by_key
            .entry(symmetric_key(tree, index, set.as_ref()))
            .or_default() += 1;
    }
    Clustering {
        total,
        clusters: by_key.len(),
        max_cluster: by_key.values().copied().max().unwrap_or(0),
    }
}

/// Budgeted [`cluster_by_symmetry`]: each set's key computation draws from
/// the shared budget (one unit per AutoTree node visited), so a huge family
/// on a deep tree aborts with a typed error instead of running away.
pub fn try_cluster_by_symmetry<S: AsRef<[V]>>(
    tree: &AutoTree,
    index: &SsmIndex,
    sets: impl IntoIterator<Item = S>,
    budget: &Budget,
) -> Result<Clustering, DviclError> {
    let _span = dvicl_obs::span("apps.cluster");
    budget.check()?;
    let mut by_key: FxHashMap<Vec<u8>, usize> = FxHashMap::default();
    let mut total = 0usize;
    for set in sets {
        total += 1;
        *by_key
            .entry(try_symmetric_key(tree, index, set.as_ref(), budget)?)
            .or_default() += 1;
    }
    Ok(Clustering {
        total,
        clusters: by_key.len(),
        max_cluster: by_key.values().copied().max().unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triangles::list_triangles;
    use dvicl_core::Session;
    use dvicl_graph::{named, Coloring, Graph};

    fn setup(g: &Graph) -> (AutoTree, SsmIndex) {
        // Session-built trees are byte-identical to one-shot builds, so
        // everything downstream (keys, clusters) is unchanged.
        let t = Session::default().build(g, &Coloring::unit(g.n()));
        let i = SsmIndex::new(&t);
        (t, i)
    }

    #[test]
    fn fig1_triangles_form_two_clusters() {
        // 8 triangles: 4 involve the K3 {4,5,6} side ({4,5,6} itself and
        // three edge+hub ones), 4 are cycle-edge+hub. Symmetry classes:
        // {4,5,6}; the three triangle-edge+hub; the four cycle-edge+hub.
        let g = named::fig1_example();
        let (t, i) = setup(&g);
        let tris = list_triangles(&g, usize::MAX);
        let c = cluster_by_symmetry(&t, &i, tris.iter().map(|t| t.as_slice()));
        assert_eq!(c.total, 8);
        assert_eq!(c.clusters, 3);
        assert_eq!(c.max_cluster, 4);
    }

    #[test]
    fn complete_graph_triangles_are_one_cluster() {
        let g = named::complete(6);
        let (t, i) = setup(&g);
        let tris = list_triangles(&g, usize::MAX);
        let c = cluster_by_symmetry(&t, &i, tris.iter().map(|t| t.as_slice()));
        assert_eq!(c.total, 20);
        assert_eq!(c.clusters, 1);
        assert_eq!(c.max_cluster, 20);
    }

    #[test]
    fn rigid_graph_every_set_is_its_own_cluster() {
        let g = named::frucht();
        let (t, i) = setup(&g);
        // All edges of the Frucht graph: rigid, so 18 clusters of 1.
        let edges: Vec<Vec<dvicl_graph::V>> = g.edges().map(|(a, b)| vec![a, b]).collect();
        let c = cluster_by_symmetry(&t, &i, edges);
        assert_eq!(c.total, 18);
        assert_eq!(c.clusters, 18);
        assert_eq!(c.max_cluster, 1);
    }

    #[test]
    fn budget_aborts_clustering_mid_family() {
        let g = named::fig1_example();
        let (t, i) = setup(&g);
        let tris = list_triangles(&g, usize::MAX);
        let err = try_cluster_by_symmetry(
            &t,
            &i,
            tris.iter().map(|t| t.as_slice()),
            &Budget::with_max_work(2),
        )
        .unwrap_err();
        assert!(err.is_exhaustion());
        // With room to breathe the result matches the infallible path.
        let ok = try_cluster_by_symmetry(
            &t,
            &i,
            tris.iter().map(|t| t.as_slice()),
            &Budget::with_max_work(1_000_000),
        )
        .unwrap();
        assert_eq!(ok, cluster_by_symmetry(&t, &i, tris.iter().map(|t| t.as_slice())));
    }

    #[test]
    fn empty_family() {
        let g = named::cycle(5);
        let (t, i) = setup(&g);
        let c = cluster_by_symmetry(&t, &i, Vec::<Vec<dvicl_graph::V>>::new());
        assert_eq!(c.total, 0);
        assert_eq!(c.clusters, 0);
        assert_eq!(c.max_cluster, 0);
    }
}
