//! Influence maximization under the Independent Cascade (IC) model.
//!
//! The paper selects seed sets with PMC \[28\] (pruned Monte-Carlo BFS) under
//! the IC model with a constant activation probability, following the
//! benchmarking setup of \[1\]. This module implements the same *semantics* —
//! IC spread estimated by Monte-Carlo simulation, greedy seed selection
//! accelerated with CELF's lazy evaluation — without PMC's sketch pruning
//! (a pure-speed device). Table 6 only consumes the selected seed set.

use dvicl_govern::{Budget, DviclError};
use dvicl_graph::{Graph, V};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters for IC-model simulations.
#[derive(Clone, Copy, Debug)]
pub struct IcConfig {
    /// Activation probability per edge (the paper treats it as constant).
    pub prob: f64,
    /// Monte-Carlo rounds per spread estimate.
    pub rounds: u32,
    /// RNG seed (simulations are deterministic given the seed).
    pub seed: u64,
}

impl Default for IcConfig {
    fn default() -> Self {
        IcConfig {
            prob: 0.1,
            rounds: 100,
            seed: 0x1C,
        }
    }
}

/// Estimates the expected spread `σ(S)` of a seed set by Monte-Carlo BFS.
pub fn spread(g: &Graph, seeds: &[V], cfg: &IcConfig) -> f64 {
    try_spread(g, seeds, cfg, &Budget::unlimited())
        // dvicl-lint: allow(panic-freedom) -- Budget::unlimited() never exhausts, so the Err arm is unreachable
        .expect("unlimited spread estimation cannot exceed its budget")
}

/// Budgeted [`spread`]: spends one work unit per activated vertex popped
/// from the BFS frontier, across all Monte-Carlo rounds.
pub fn try_spread(
    g: &Graph,
    seeds: &[V],
    cfg: &IcConfig,
    budget: &Budget,
) -> Result<f64, DviclError> {
    let _span = dvicl_obs::span("apps.im");
    budget.check()?;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n = g.n();
    let mut activated = vec![u32::MAX; n];
    let mut frontier: Vec<V> = Vec::new();
    let mut total = 0u64;
    for round in 0..cfg.rounds {
        frontier.clear();
        let mut count = 0u64;
        for &s in seeds {
            if activated[s as usize] != round {
                activated[s as usize] = round;
                frontier.push(s);
                count += 1;
            }
        }
        let mut head = 0;
        while head < frontier.len() {
            budget.spend(1)?;
            let v = frontier[head];
            head += 1;
            for &w in g.neighbors(v) {
                if activated[w as usize] != round && rng.gen_bool(cfg.prob) {
                    activated[w as usize] = round;
                    frontier.push(w);
                    count += 1;
                }
            }
        }
        total += count;
    }
    Ok(total as f64 / cfg.rounds as f64)
}

/// Greedy seed selection with CELF lazy evaluation: picks `k` seeds whose
/// marginal spread gains are maximal (the classic (1−1/e)-approximation of
/// \[17\], lazily re-evaluated as in CELF). Seeds are returned in selection
/// order, so the greedy choice for a smaller `k` is a prefix of the result
/// for a larger one.
///
/// Candidates are restricted to the `max_candidates` highest-degree
/// vertices (PMC-style pruning: under small constant probabilities a
/// low-degree vertex never beats the hubs).
pub fn select_seeds(g: &Graph, k: usize, cfg: &IcConfig) -> Vec<V> {
    select_seeds_pruned(g, k, cfg, 2000)
}

/// [`select_seeds`] with an explicit candidate-pool size.
pub fn select_seeds_pruned(g: &Graph, k: usize, cfg: &IcConfig, max_candidates: usize) -> Vec<V> {
    try_select_seeds_pruned(g, k, cfg, max_candidates, &Budget::unlimited())
        // dvicl-lint: allow(panic-freedom) -- Budget::unlimited() never exhausts, so the Err arm is unreachable
        .expect("unlimited seed selection cannot exceed its budget")
}

/// Budgeted [`select_seeds`].
pub fn try_select_seeds(
    g: &Graph,
    k: usize,
    cfg: &IcConfig,
    budget: &Budget,
) -> Result<Vec<V>, DviclError> {
    try_select_seeds_pruned(g, k, cfg, 2000, budget)
}

/// Budgeted [`select_seeds_pruned`]: every CELF re-evaluation draws its
/// Monte-Carlo BFS work from the shared budget, so the whole selection —
/// not each individual estimate — is bounded.
pub fn try_select_seeds_pruned(
    g: &Graph,
    k: usize,
    cfg: &IcConfig,
    max_candidates: usize,
    budget: &Budget,
) -> Result<Vec<V>, DviclError> {
    let _span = dvicl_obs::span("apps.im");
    budget.check()?;
    let n = g.n();
    if n == 0 || k == 0 {
        return Ok(Vec::new());
    }
    let k = k.min(n);
    let mut candidates: Vec<V> = (0..n as V).collect();
    candidates.sort_unstable_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    candidates.truncate(max_candidates.max(k));
    // Max-heap of (gain, vertex, round-evaluated).
    let mut heap: std::collections::BinaryHeap<(u64, V, u32)> = candidates
        .iter()
        .map(|&v| ((g.degree(v) as u64 + 1) << 20, v, u32::MAX))
        .collect();
    let mut seeds: Vec<V> = Vec::new();
    let mut base_spread = 0.0;
    let mut iteration = 0u32;
    let to_fixed = |x: f64| (x * 1048576.0) as u64;
    while seeds.len() < k {
        // dvicl-lint: allow(panic-freedom) -- the heap holds every non-seed vertex and seeds.len() < k <= n, so it is non-empty
        let (gain, v, evaluated) = heap.pop().expect("heap holds all non-seeds");
        if evaluated == iteration {
            seeds.push(v);
            base_spread += gain as f64 / 1048576.0;
            iteration += 1;
            continue;
        }
        // Re-evaluate the marginal gain of v against the current seeds.
        let mut with_v: Vec<V> = seeds.clone();
        with_v.push(v);
        let gain = to_fixed((try_spread(g, &with_v, cfg, budget)? - base_spread).max(0.0));
        heap.push((gain, v, iteration));
    }
    Ok(seeds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvicl_graph::named;

    #[test]
    fn spread_of_empty_and_full() {
        let g = named::star(10);
        let cfg = IcConfig::default();
        assert_eq!(spread(&g, &[], &cfg), 0.0);
        let all: Vec<V> = (0..11).collect();
        assert_eq!(spread(&g, &all, &cfg), 11.0);
    }

    #[test]
    fn spread_is_monotone() {
        let g = named::cycle(30);
        let cfg = IcConfig {
            prob: 0.3,
            rounds: 400,
            seed: 7,
        };
        let s1 = spread(&g, &[0], &cfg);
        let s2 = spread(&g, &[0, 15], &cfg);
        assert!(s1 >= 1.0);
        assert!(s2 > s1);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = named::petersen();
        let cfg = IcConfig::default();
        assert_eq!(spread(&g, &[3], &cfg), spread(&g, &[3], &cfg));
    }

    #[test]
    fn hub_is_selected_on_a_star() {
        // On a star with p=0.5, the center dominates any leaf.
        let g = named::star(20);
        let cfg = IcConfig {
            prob: 0.5,
            rounds: 200,
            seed: 3,
        };
        let seeds = select_seeds(&g, 1, &cfg);
        assert_eq!(seeds, vec![0]);
    }

    #[test]
    fn selects_k_distinct_seeds() {
        let g = named::cycle(12);
        let seeds = select_seeds(&g, 4, &IcConfig::default());
        assert_eq!(seeds.len(), 4);
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
    }

    #[test]
    fn greedy_prefix_property() {
        let g = named::star(12).disjoint_union(&named::star(8));
        let cfg = IcConfig::default();
        let s5 = select_seeds(&g, 5, &cfg);
        let s10 = select_seeds(&g, 10, &cfg);
        assert_eq!(s5.as_slice(), &s10[..5]);
    }

    #[test]
    fn work_budget_aborts_selection() {
        let g = named::star(20);
        let cfg = IcConfig {
            prob: 0.5,
            rounds: 200,
            seed: 3,
        };
        let err = try_select_seeds(&g, 2, &cfg, &Budget::with_max_work(5)).unwrap_err();
        assert!(err.is_exhaustion());
        let seeds = try_select_seeds(&g, 1, &cfg, &Budget::with_max_work(10_000_000)).unwrap();
        assert_eq!(seeds, vec![0]);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let g = named::complete(4);
        let seeds = select_seeds(&g, 10, &IcConfig::default());
        assert_eq!(seeds.len(), 4);
    }
}
