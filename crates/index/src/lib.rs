//! `dvicl-index` — the canonical-fingerprint index.
//!
//! The DviCL certificate turns isomorphism testing into equality
//! testing: two graphs are isomorphic iff their canonical forms are
//! equal. This crate exploits that at corpus scale. A
//! [`FingerprintIndex`] stores one [`IsoClass`] per distinct canonical
//! form, keyed by the form's 128-bit [`Fingerprint`]; testing a query
//! against N indexed graphs is then **one canonicalization plus one
//! hash probe** instead of N pairwise runs (ROADMAP item 2).
//!
//! Correctness does not rest on the hash: every probe that lands in a
//! fingerprint bucket is confirmed against the **stored canonical
//! form** byte for byte. A 2⁻¹²⁸ fingerprint collision therefore costs
//! one extra comparison (counted by `index_collisions`) and can never
//! produce a wrong answer.
//!
//! The index persists in the `DVIX1` binary format ([`disk`]): magic,
//! class count, then each class as varint-coded fingerprint, member
//! count, color runs and delta-coded edges. Loads are hardened the same
//! way the graph parsers are — typed [`DviclError::Parse`] errors,
//! declared counts validated against the remaining input before any
//! allocation — and both load and insert carry `govern::fault`
//! checkpoints (`index.load`, `index.insert`) so the fault sweep can
//! drive their error paths.
//!
//! Observability: `index_probes` counts every consulted probe,
//! `index_hits` the probes confirmed by an exact form match, and
//! `index_collisions` the stored-form comparisons that failed under an
//! equal fingerprint.

#![warn(missing_docs)]

pub mod disk;

use dvicl_govern::{fault, DviclError};
use dvicl_graph::{CanonForm, Fingerprint};
use dvicl_obs::{self as obs, Counter};
use rustc_hash::FxHashMap;

/// One isomorphism class of the indexed corpus: the canonical form all
/// members share, its fingerprint, and how many graphs were inserted
/// into the class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IsoClass {
    /// The class's 128-bit probe key, as supplied at insert time.
    pub fingerprint: Fingerprint,
    /// The canonical form every member of the class shares. Stored in
    /// full so probes are confirmed exactly, never by hash alone.
    pub form: CanonForm,
    /// How many graphs have been inserted into this class.
    pub members: u64,
}

/// The result of [`FingerprintIndex::insert`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InsertOutcome {
    /// The class the graph landed in (stable for the index's lifetime;
    /// save/load preserves class order).
    pub class: usize,
    /// The class's member count *after* this insert.
    pub members: u64,
    /// True when this insert created the class (no prior member of the
    /// corpus was isomorphic to the inserted graph).
    pub fresh: bool,
}

/// An in-memory fingerprint index over canonical forms. See the crate
/// docs for the probe/confirm contract and [`disk`] for persistence.
///
/// ```
/// use dvicl_graph::{named, Fingerprint};
/// use dvicl_index::FingerprintIndex;
/// # use dvicl_core::canonical_form;
/// let mut index = FingerprintIndex::new();
/// let form = canonical_form(&named::petersen());
/// let fp = Fingerprint::of_form(&form);
/// let out = index.insert(fp, form.clone(), false).unwrap();
/// assert!(out.fresh);
/// // A second isomorphic insert joins the class instead of growing the index.
/// assert_eq!(index.insert(fp, form.clone(), false).unwrap().members, 2);
/// assert_eq!(index.lookup(fp, &form), Some(0));
/// ```
#[derive(Debug, Default)]
pub struct FingerprintIndex {
    /// Classes in insertion order; `buckets` indexes into this.
    classes: Vec<IsoClass>,
    /// Fingerprint → classes carrying it. More than one entry means a
    /// fingerprint collision between non-isomorphic graphs (astronomically
    /// rare for the real hash, routine in collision-path tests).
    buckets: FxHashMap<Fingerprint, Vec<u32>>,
}

impl FingerprintIndex {
    /// An empty index.
    pub fn new() -> FingerprintIndex {
        FingerprintIndex::default()
    }

    /// Number of distinct isomorphism classes held.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when no class is held.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Total member count across all classes (= successful inserts).
    pub fn members_total(&self) -> u64 {
        self.classes.iter().map(|c| c.members).sum()
    }

    /// The classes in insertion order.
    pub fn classes(&self) -> &[IsoClass] {
        &self.classes
    }

    /// Inserts a graph by its `(fingerprint, canonical form)` pair. An
    /// exact-form match with an existing class increments that class's
    /// member count; otherwise a new class is appended — even when the
    /// fingerprint is already present (a collision, counted).
    ///
    /// The fingerprint is caller-supplied rather than recomputed so
    /// that the canonicalizing session computes it once per graph;
    /// `paranoid` re-derives it from `form` and rejects a mismatch with
    /// a typed [`DviclError::WitnessFailure`] — the witness check that
    /// catches corruption (or an injected fault) between
    /// canonicalization and insert.
    pub fn insert(
        &mut self,
        fingerprint: Fingerprint,
        form: CanonForm,
        paranoid: bool,
    ) -> Result<InsertOutcome, DviclError> {
        fault::checkpoint("index.insert")?;
        if paranoid {
            obs::bump(Counter::VerifyChecks);
            let recomputed = Fingerprint::of_form(&form);
            if recomputed != fingerprint {
                obs::bump(Counter::VerifyFailures);
                return Err(DviclError::witness(
                    "index_insert",
                    format!(
                        "fingerprint {fingerprint} does not match the form's {recomputed}"
                    ),
                ));
            }
        }
        if let Some(class) = self.probe(fingerprint, &form) {
            self.classes[class].members += 1;
            return Ok(InsertOutcome {
                class,
                members: self.classes[class].members,
                fresh: false,
            });
        }
        let class = self.classes.len();
        self.classes.push(IsoClass {
            fingerprint,
            form,
            members: 1,
        });
        self.buckets
            .entry(fingerprint)
            .or_default()
            // dvicl-lint: allow(narrowing-cast) -- class count is bounded by inserts, far below u32::MAX before the Vec itself exhausts memory
            .push(class as u32);
        Ok(InsertOutcome {
            class,
            members: 1,
            fresh: true,
        })
    }

    /// Finds the class whose stored form equals `form`, probing by
    /// fingerprint first. `None` means no indexed graph is isomorphic
    /// to the query. Counts `index_probes`, and `index_hits` /
    /// `index_collisions` per confirmed / refuted stored-form
    /// comparison.
    pub fn lookup(&self, fingerprint: Fingerprint, form: &CanonForm) -> Option<usize> {
        self.probe(fingerprint, form)
    }

    /// The member count of the query's isomorphism class, or `None`
    /// when no indexed graph is isomorphic to it. Same probe/confirm
    /// path (and counters) as [`FingerprintIndex::lookup`].
    pub fn group_size(&self, fingerprint: Fingerprint, form: &CanonForm) -> Option<u64> {
        self.probe(fingerprint, form)
            .map(|class| self.classes[class].members)
    }

    /// The shared probe: one `index_probes` bump, then the exact
    /// stored-form confirmation over every class in the fingerprint's
    /// bucket.
    fn probe(&self, fingerprint: Fingerprint, form: &CanonForm) -> Option<usize> {
        obs::bump(Counter::IndexProbes);
        let bucket = self.buckets.get(&fingerprint)?;
        for &class in bucket {
            let class = class as usize;
            if self.classes[class].form == *form {
                obs::bump(Counter::IndexHits);
                return Some(class);
            }
            // Equal fingerprint, unequal form: the collision path. The
            // exact check just prevented a wrong "isomorphic" answer.
            obs::bump(Counter::IndexCollisions);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvicl_core::canonical_form;
    use dvicl_graph::named;
    use std::sync::Mutex;

    /// Counters are process-global and `cargo test` runs tests in
    /// parallel: every test in this module probes the index (bumping
    /// the `index_*` counters), so the tests serialize on one lock to
    /// keep snapshot-diff assertions exact.
    static LOCK: Mutex<()> = Mutex::new(());

    fn keyed(g: &dvicl_graph::Graph) -> (Fingerprint, CanonForm) {
        let form = canonical_form(g);
        (Fingerprint::of_form(&form), form)
    }

    #[test]
    fn insert_groups_isomorphic_graphs() {
        let _serial = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut idx = FingerprintIndex::new();
        let (fp, form) = keyed(&named::petersen());
        // Petersen is the Kneser graph K(5,2): an isomorphic but
        // differently constructed copy must land in the same class.
        let (fp2, form2) = keyed(&named::kneser(5, 2));
        assert_eq!((fp, &form), (fp2, &form2));
        assert!(idx.insert(fp, form, false).expect("insert").fresh);
        let out = idx.insert(fp2, form2, false).expect("insert");
        assert!(!out.fresh);
        assert_eq!(out.members, 2);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.members_total(), 2);
    }

    #[test]
    fn lookup_and_group_size() {
        let _serial = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut idx = FingerprintIndex::new();
        let (fp_c, form_c) = keyed(&named::cycle(8));
        let (fp_p, form_p) = keyed(&named::path(8));
        idx.insert(fp_c, form_c.clone(), false).expect("insert");
        idx.insert(fp_c, form_c.clone(), false).expect("insert");
        assert_eq!(idx.lookup(fp_c, &form_c), Some(0));
        assert_eq!(idx.group_size(fp_c, &form_c), Some(2));
        assert_eq!(idx.lookup(fp_p, &form_p), None);
        assert_eq!(idx.group_size(fp_p, &form_p), None);
    }

    #[test]
    fn collision_resolved_by_stored_form() {
        let _serial = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Force two non-isomorphic forms under ONE fingerprint: the
        // exact check must keep them apart and count the collision.
        let mut idx = FingerprintIndex::new();
        let (fp, form_c) = keyed(&named::cycle(6));
        let (_, form_u) = keyed(&named::cycle(3).disjoint_union(&named::cycle(3)));
        assert_ne!(form_c, form_u);
        idx.insert(fp, form_c.clone(), false).expect("insert");
        let before = obs::snapshot();
        let out = idx.insert(fp, form_u.clone(), false).expect("insert");
        assert!(out.fresh, "non-isomorphic graph must get its own class");
        assert_eq!(idx.len(), 2);
        // Both lookups answer correctly despite the shared fingerprint.
        assert_eq!(idx.lookup(fp, &form_c), Some(0));
        assert_eq!(idx.lookup(fp, &form_u), Some(1));
        let d = obs::snapshot().diff(&before);
        assert!(
            d.get(Counter::IndexCollisions) >= 2,
            "collision path must be counted (got {})",
            d.get(Counter::IndexCollisions)
        );
    }

    #[test]
    fn paranoid_insert_rejects_mismatched_fingerprint() {
        let _serial = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut idx = FingerprintIndex::new();
        let (fp, form) = keyed(&named::frucht());
        let wrong = Fingerprint {
            hi: fp.hi ^ 1,
            lo: fp.lo,
        };
        let err = idx.insert(wrong, form.clone(), true).expect_err("mismatch");
        assert!(matches!(
            err,
            DviclError::WitnessFailure {
                stage: "index_insert",
                ..
            }
        ));
        assert!(idx.is_empty(), "rejected insert must not mutate the index");
        // The honest pair passes the same check.
        assert!(idx.insert(fp, form, true).expect("honest insert").fresh);
    }

    #[test]
    fn probe_counters_follow_the_contract() {
        let _serial = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut idx = FingerprintIndex::new();
        let (fp, form) = keyed(&named::petersen());
        idx.insert(fp, form.clone(), false).expect("insert");
        let before = obs::snapshot();
        idx.lookup(fp, &form);
        let (fp_m, form_m) = keyed(&named::complete(4));
        idx.lookup(fp_m, &form_m);
        let d = obs::snapshot().diff(&before);
        assert_eq!(d.get(Counter::IndexProbes), 2);
        assert_eq!(d.get(Counter::IndexHits), 1);
        assert_eq!(d.get(Counter::IndexCollisions), 0);
    }
}
