//! The `DVIX1` on-disk index format: save and load for
//! [`FingerprintIndex`].
//!
//! Layout (all integers LEB128 varints, so the format is
//! endianness-free and small graphs stay small on disk):
//!
//! ```text
//! "DVIX1\n"                                 magic, 6 bytes
//! varint class_count
//! class_count × {
//!     varint fingerprint.hi
//!     varint fingerprint.lo
//!     varint members                         >= 1
//!     varint color_run_count
//!     color_run_count × { varint color; varint multiplicity }
//!     varint edge_count
//!     edge_count × { varint du; varint v }   u delta-coded: u = prev_u + du
//! }
//! ```
//!
//! Nothing follows the last class — trailing bytes are a
//! [`ParseErrorKind::TrailingData`] error, exactly like the graph
//! parsers. The fingerprint is stored (not recomputed on load) because
//! it is the probe key existing clients hold; a paranoid load re-derives
//! it from the decoded form and rejects mismatches as witness failures,
//! which is how index-file corruption that varint decoding cannot see
//! is caught.
//!
//! **Hardening.** The loader never allocates from a declared count
//! alone: every count is first checked against the number of bytes
//! actually remaining (each color run and each edge costs at least two
//! bytes), so a 6-byte file claiming 2⁶⁴ classes fails with
//! [`ParseErrorKind::TooLarge`] instead of reserving memory — the same
//! header-bomb guard the graph6 reader uses.

use crate::{FingerprintIndex, IsoClass};
use dvicl_govern::{fault, DviclError, ParseError, ParseErrorKind};
use dvicl_graph::{CanonForm, Fingerprint, V};
use dvicl_obs::{self as obs, Counter};
use std::io::{Read, Write};
use std::path::Path;

/// The 6-byte magic every `DVIX1` file starts with.
pub const MAGIC: &[u8; 6] = b"DVIX1\n";

/// Appends `x` as a LEB128-style varint (self-delimiting, so a varint
/// sequence is a prefix code).
// dvicl-lint: allow(budget-reachability) -- at most ten iterations for a u64
fn push_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        // dvicl-lint: allow(narrowing-cast) -- masked to seven bits first
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A cursor over the loaded file body with typed-error decoding.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decodes one varint; `Truncated` if the input ends first,
    /// `Overflow` past 64 bits.
    // dvicl-lint: allow(budget-reachability) -- at most ten iterations for a u64
    fn varint(&mut self) -> Result<u64, ParseError> {
        let mut x: u64 = 0;
        let mut shift = 0u32;
        loop {
            let Some(&byte) = self.buf.get(self.pos) else {
                return Err(ParseError::new(
                    ParseErrorKind::Truncated,
                    format!("input ended inside a varint at byte {}", self.pos),
                ));
            };
            self.pos += 1;
            let low = u64::from(byte & 0x7f);
            if shift >= 64 || (shift == 63 && low > 1) {
                return Err(ParseError::new(
                    ParseErrorKind::Overflow,
                    format!("varint ending at byte {} exceeds 64 bits", self.pos),
                ));
            }
            x |= low << shift;
            if byte & 0x80 == 0 {
                return Ok(x);
            }
            shift += 7;
        }
    }

    /// A declared element count, validated against the bytes actually
    /// remaining (`min_bytes_each` per element) before the caller
    /// allocates anything.
    fn checked_count(&mut self, what: &str, min_bytes_each: usize) -> Result<usize, ParseError> {
        let declared = self.varint()?;
        let cap = (self.remaining() / min_bytes_each.max(1)) as u64;
        if declared > cap {
            return Err(ParseError::new(
                ParseErrorKind::TooLarge,
                format!(
                    "declared {declared} {what} but only {} bytes remain",
                    self.remaining()
                ),
            ));
        }
        // dvicl-lint: allow(narrowing-cast) -- declared <= remaining byte count, which is a usize
        Ok(declared as usize)
    }

    /// A vertex-sized field (`V` is u32 on every platform).
    fn vertex(&mut self, what: &str) -> Result<V, ParseError> {
        let x = self.varint()?;
        V::try_from(x).map_err(|_| {
            ParseError::new(
                ParseErrorKind::Overflow,
                format!("{what} {x} exceeds the vertex representation"),
            )
        })
    }
}

impl FingerprintIndex {
    /// Serializes the index in `DVIX1` format.
    pub fn save_to(&self, w: &mut impl Write) -> Result<(), DviclError> {
        let _span = obs::span("index.save");
        let mut buf: Vec<u8> = Vec::with_capacity(64 + 16 * self.classes().len());
        buf.extend_from_slice(MAGIC);
        push_varint(&mut buf, self.classes().len() as u64);
        for class in self.classes() {
            push_varint(&mut buf, class.fingerprint.hi);
            push_varint(&mut buf, class.fingerprint.lo);
            push_varint(&mut buf, class.members);
            push_varint(&mut buf, class.form.colors.len() as u64);
            for &(color, mult) in &class.form.colors {
                push_varint(&mut buf, u64::from(color));
                push_varint(&mut buf, u64::from(mult));
            }
            push_varint(&mut buf, class.form.edges.len() as u64);
            let mut prev_u = 0u64;
            for &(u, v) in &class.form.edges {
                push_varint(&mut buf, u64::from(u) - prev_u);
                push_varint(&mut buf, u64::from(v));
                prev_u = u64::from(u);
            }
        }
        w.write_all(&buf)
            .map_err(|e| DviclError::invalid(format!("cannot write index: {e}")))
    }

    /// Saves the index to `path` (see [`FingerprintIndex::save_to`]).
    pub fn save(&self, path: &Path) -> Result<(), DviclError> {
        let mut file = std::fs::File::create(path)
            .map_err(|e| DviclError::invalid(format!("cannot create {}: {e}", path.display())))?;
        self.save_to(&mut file)
    }

    /// Deserializes a `DVIX1` index. Format damage surfaces as typed
    /// [`DviclError::Parse`] errors (truncation, overflow, bad magic,
    /// trailing data); with `paranoid`, every class's fingerprint is
    /// re-derived from its decoded form and a mismatch is a
    /// [`DviclError::WitnessFailure`] — corrupted-but-well-formed files
    /// do not enter service.
    pub fn load_from(r: &mut impl Read, paranoid: bool) -> Result<FingerprintIndex, DviclError> {
        let _span = obs::span("index.load");
        fault::checkpoint("index.load")?;
        let mut buf = Vec::new();
        r.read_to_end(&mut buf)
            .map_err(|e| DviclError::invalid(format!("cannot read index: {e}")))?;
        if buf.is_empty() {
            return Err(ParseError::new(ParseErrorKind::Empty, "no index data").into());
        }
        if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
            let bad = buf
                .iter()
                .zip(MAGIC.iter())
                .find(|(got, want)| got != want)
                .map(|(&got, _)| got)
                .unwrap_or(0);
            return Err(ParseError::new(
                ParseErrorKind::BadByte(bad),
                "not a DVIX1 index (bad magic)",
            )
            .into());
        }
        let mut cur = Cursor {
            buf: &buf,
            pos: MAGIC.len(),
        };
        // A class costs at least 5 bytes (fp.hi, fp.lo, members, two
        // zero counts); runs and edges at least 2 each.
        let class_count = cur.checked_count("classes", 5)?;
        let mut index = FingerprintIndex::new();
        for c in 0..class_count {
            let hi = cur.varint()?;
            let lo = cur.varint()?;
            let fingerprint = Fingerprint { hi, lo };
            let members = cur.varint()?;
            if members == 0 {
                return Err(DviclError::invalid(format!(
                    "index class {c} declares zero members"
                )));
            }
            let run_count = cur.checked_count("color runs", 2)?;
            let mut colors: Vec<(V, V)> = Vec::with_capacity(run_count);
            for _ in 0..run_count {
                let color = cur.vertex("color")?;
                let mult = cur.vertex("multiplicity")?;
                colors.push((color, mult));
            }
            let edge_count = cur.checked_count("edges", 2)?;
            let mut edges: Vec<(V, V)> = Vec::with_capacity(edge_count);
            let mut prev_u = 0u64;
            for _ in 0..edge_count {
                let du = cur.varint()?;
                let u = prev_u.checked_add(du).ok_or_else(|| {
                    ParseError::new(ParseErrorKind::Overflow, "edge source delta overflows")
                })?;
                prev_u = u;
                let u = V::try_from(u).map_err(|_| {
                    ParseError::new(
                        ParseErrorKind::Overflow,
                        format!("edge source {u} exceeds the vertex representation"),
                    )
                })?;
                let v = cur.vertex("edge target")?;
                edges.push((u, v));
            }
            let form = CanonForm { colors, edges };
            if paranoid {
                obs::bump(Counter::VerifyChecks);
                let recomputed = Fingerprint::of_form(&form);
                if recomputed != fingerprint {
                    obs::bump(Counter::VerifyFailures);
                    return Err(DviclError::witness(
                        "index_load",
                        format!(
                            "class {c}: stored fingerprint {fingerprint} does not match \
                             the stored form's {recomputed}"
                        ),
                    ));
                }
            }
            index.push_loaded(IsoClass {
                fingerprint,
                form,
                members,
            });
        }
        if cur.remaining() > 0 {
            return Err(ParseError::new(
                ParseErrorKind::TrailingData,
                format!("{} bytes after the last class", cur.remaining()),
            )
            .into());
        }
        Ok(index)
    }

    /// Loads an index from `path` (see [`FingerprintIndex::load_from`]).
    pub fn load(path: &Path, paranoid: bool) -> Result<FingerprintIndex, DviclError> {
        let mut file = std::fs::File::open(path)
            .map_err(|e| DviclError::invalid(format!("cannot open {}: {e}", path.display())))?;
        FingerprintIndex::load_from(&mut file, paranoid)
    }

    /// Appends a deserialized class, rebuilding the probe bucket. Load
    /// path only — bypasses the insert counters and witness check.
    fn push_loaded(&mut self, class: IsoClass) {
        let fingerprint = class.fingerprint;
        let id = self.classes.len();
        self.classes.push(class);
        self.buckets
            .entry(fingerprint)
            .or_default()
            // dvicl-lint: allow(narrowing-cast) -- class count bounded by the checked_count guard against file size
            .push(id as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvicl_core::canonical_form;
    use dvicl_graph::named;

    fn sample_index() -> FingerprintIndex {
        let mut idx = FingerprintIndex::new();
        for g in [
            named::petersen(),
            named::cycle(8),
            named::path(8),
            named::complete_bipartite(3, 4),
            named::frucht(),
        ] {
            let form = canonical_form(&g);
            let fp = Fingerprint::of_form(&form);
            idx.insert(fp, form, false).expect("insert");
        }
        // One repeated member so member counts round-trip too.
        let form = canonical_form(&named::cycle(8));
        let fp = Fingerprint::of_form(&form);
        idx.insert(fp, form, false).expect("insert");
        idx
    }

    fn saved(idx: &FingerprintIndex) -> Vec<u8> {
        let mut buf = Vec::new();
        idx.save_to(&mut buf).expect("save");
        buf
    }

    #[test]
    fn round_trip_preserves_everything() {
        let idx = sample_index();
        let bytes = saved(&idx);
        let loaded =
            FingerprintIndex::load_from(&mut bytes.as_slice(), true).expect("load paranoid");
        assert_eq!(loaded.classes(), idx.classes());
        assert_eq!(loaded.members_total(), idx.members_total());
        // Lookups behave identically after the round trip.
        let form = canonical_form(&named::petersen());
        let fp = Fingerprint::of_form(&form);
        assert_eq!(loaded.lookup(fp, &form), idx.lookup(fp, &form));
    }

    #[test]
    fn empty_index_round_trips() {
        let bytes = saved(&FingerprintIndex::new());
        assert_eq!(bytes, [MAGIC.as_slice(), &[0x00]].concat());
        let loaded = FingerprintIndex::load_from(&mut bytes.as_slice(), true).expect("load");
        assert!(loaded.is_empty());
    }

    #[test]
    fn bad_magic_is_typed() {
        let err = FingerprintIndex::load_from(&mut b"DVIX2\nxxxx".as_slice(), false)
            .expect_err("bad magic");
        assert!(matches!(
            err,
            DviclError::Parse(ParseError {
                kind: ParseErrorKind::BadByte(b'2'),
                ..
            })
        ));
        let err = FingerprintIndex::load_from(&mut b"".as_slice(), false).expect_err("empty");
        assert!(matches!(
            err,
            DviclError::Parse(ParseError {
                kind: ParseErrorKind::Empty,
                ..
            })
        ));
    }

    #[test]
    fn truncation_is_typed_at_every_cut() {
        let bytes = saved(&sample_index());
        // Cutting the file anywhere strictly inside the body must fail
        // with a typed parse error, never a panic or a silent partial
        // index.
        for cut in MAGIC.len()..bytes.len() {
            let err = FingerprintIndex::load_from(&mut &bytes[..cut], false)
                .expect_err("truncated load");
            assert!(
                matches!(
                    err,
                    DviclError::Parse(ParseError {
                        kind: ParseErrorKind::Truncated | ParseErrorKind::TooLarge,
                        ..
                    })
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn trailing_data_is_typed() {
        let mut bytes = saved(&sample_index());
        bytes.push(0x00);
        let err = FingerprintIndex::load_from(&mut bytes.as_slice(), false).expect_err("trailing");
        assert!(matches!(
            err,
            DviclError::Parse(ParseError {
                kind: ParseErrorKind::TrailingData,
                ..
            })
        ));
    }

    #[test]
    fn header_bomb_is_rejected_before_allocation() {
        // Magic + a varint claiming u64::MAX classes, then nothing: the
        // checked_count guard must refuse without reserving.
        let mut bytes = MAGIC.to_vec();
        push_varint(&mut bytes, u64::MAX);
        let err = FingerprintIndex::load_from(&mut bytes.as_slice(), false).expect_err("bomb");
        assert!(matches!(
            err,
            DviclError::Parse(ParseError {
                kind: ParseErrorKind::TooLarge,
                ..
            })
        ));
    }

    #[test]
    fn corrupted_payload_fails_paranoid_witness_check() {
        let mut bytes = saved(&sample_index());
        // Flip a byte near the end of the body (inside some class's
        // edge list, past the counts) — varint decoding may still
        // succeed, but the paranoid fingerprint re-derivation must
        // reject the class.
        let target = bytes.len() - 2;
        bytes[target] ^= 0x01;
        match FingerprintIndex::load_from(&mut bytes.as_slice(), true) {
            Err(
                DviclError::WitnessFailure { .. }
                | DviclError::Parse(_)
                | DviclError::InvalidInput(_),
            ) => {}
            Ok(_) => panic!("corrupted index accepted under --paranoid"),
            Err(e) => panic!("unexpected error class: {e:?}"),
        }
    }

    #[test]
    fn zero_members_is_rejected() {
        let mut bytes = MAGIC.to_vec();
        push_varint(&mut bytes, 1); // one class
        push_varint(&mut bytes, 7); // fp.hi
        push_varint(&mut bytes, 9); // fp.lo
        push_varint(&mut bytes, 0); // members = 0 (invalid)
        push_varint(&mut bytes, 0); // no color runs
        push_varint(&mut bytes, 0); // no edges
        let err = FingerprintIndex::load_from(&mut bytes.as_slice(), false).expect_err("invalid");
        assert!(matches!(err, DviclError::InvalidInput(_)));
    }

    #[test]
    fn save_and_load_via_files() {
        let dir = std::env::temp_dir().join(format!("dvix-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("corpus.dvix");
        let idx = sample_index();
        idx.save(&path).expect("save to file");
        let loaded = FingerprintIndex::load(&path, true).expect("load from file");
        assert_eq!(loaded.classes(), idx.classes());
        let missing = FingerprintIndex::load(&dir.join("absent.dvix"), false);
        assert!(matches!(missing, Err(DviclError::InvalidInput(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
