//! Integration tests for the fingerprint index that need more than the
//! unit harness: a property test over the `DVIX1` round trip, and the
//! Cai–Fürer–Immerman collision-path test that proves a lookup can
//! never confuse non-isomorphic graphs — even when forced onto the
//! same fingerprint bucket.

use dvicl_core::Session;
use dvicl_data::bench_graphs::{cfi, cubic_circulant};
use dvicl_graph::{CanonForm, Fingerprint, V};
use dvicl_index::FingerprintIndex;
use dvicl_obs::{self as obs, Counter};
use proptest::prelude::*;
use std::sync::Mutex;

/// Counters are process-global and `cargo test` runs tests in parallel:
/// every test here probes an index, so they serialize on one lock to
/// keep the CFI test's snapshot-diff assertions exact.
static LOCK: Mutex<()> = Mutex::new(());

/// A strategy for `CanonForm`-shaped data: sorted color runs and
/// sorted, deduplicated `(u, v)` edges with `u <= v` nondecreasing —
/// the invariants the delta coder in `disk.rs` relies on, which every
/// real certificate satisfies by construction.
fn arb_form() -> impl Strategy<Value = CanonForm> {
    (
        proptest::collection::vec((0 as V..16, 1 as V..16), 0..6),
        proptest::collection::vec((0 as V..40, 0 as V..40), 0..24),
    )
        .prop_map(|(mut colors, edges)| {
            colors.sort_unstable();
            colors.dedup_by_key(|run| run.0);
            let mut edges: Vec<(V, V)> = edges
                .into_iter()
                .map(|(a, b)| (a.min(b), a.max(b)))
                .collect();
            edges.sort_unstable();
            edges.dedup();
            CanonForm { colors, edges }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any index — arbitrary forms, arbitrary member counts — survives
    /// `save_to` → `load_from` with every class intact, and the reload
    /// re-serializes to the identical byte string (the format is a
    /// canonical encoding, not merely a reversible one).
    #[test]
    fn dvix1_round_trip_preserves_any_index(
        specs in proptest::collection::vec((arb_form(), 1u64..5), 0..8),
    ) {
        let _guard = LOCK.lock().unwrap();
        let mut index = FingerprintIndex::new();
        for (form, members) in &specs {
            let fp = Fingerprint::of_form(form);
            for _ in 0..*members {
                index.insert(fp, form.clone(), true).expect("insert");
            }
        }

        let mut bytes = Vec::new();
        index.save_to(&mut bytes).expect("serialize");
        let loaded =
            FingerprintIndex::load_from(&mut bytes.as_slice(), true).expect("reload");
        prop_assert_eq!(loaded.classes(), index.classes());
        prop_assert_eq!(loaded.members_total(), index.members_total());

        let mut reserialized = Vec::new();
        loaded.save_to(&mut reserialized).expect("re-serialize");
        prop_assert_eq!(reserialized, bytes);
    }
}

/// The hard case for any fingerprint scheme: a CFI pair — two graphs
/// 1-WL cannot distinguish, non-isomorphic by a single twisted edge.
/// The canonical search must actually branch to tell them apart, their
/// certificates (and so fingerprints) must differ, and a lookup forced
/// into the wrong fingerprint bucket must be refuted by the stored-form
/// exact check rather than answering "isomorphic" by hash alone.
#[test]
fn cfi_pair_is_split_and_forced_collisions_are_refuted() {
    let _guard = LOCK.lock().unwrap();
    let base = cubic_circulant(8);
    let plain = cfi(&base, false);
    let twisted = cfi(&base, true);
    assert_eq!(plain.n(), twisted.n());
    assert_eq!(plain.m(), twisted.m());

    // Canonicalize both through one session; the pair's gadget symmetry
    // forces real DFS search, not refinement alone.
    let before = obs::snapshot();
    let mut session = Session::default();
    let (fp_plain, form_plain) = session.fingerprinted_form(&plain);
    let (fp_twisted, form_twisted) = session.fingerprinted_form(&twisted);
    let canon_delta = obs::snapshot().diff(&before);
    assert!(
        canon_delta.get(Counter::SearchNodes) > 0,
        "a CFI pair must drive the canonical DFS, not just refinement"
    );
    assert_ne!(form_plain, form_twisted, "the twist changes the certificate");
    assert_ne!(fp_plain, fp_twisted, "distinct certificates, distinct fingerprints");

    // Index the untwisted graph, then force the twisted query into its
    // bucket by probing with the *wrong* fingerprint. The stored-form
    // comparison must refuse the match: one probe, one collision, no hit.
    let mut index = FingerprintIndex::new();
    index
        .insert(fp_plain, form_plain.clone(), true)
        .expect("insert untwisted CFI graph");
    let before = obs::snapshot();
    assert_eq!(index.lookup(fp_plain, &form_twisted), None);
    let delta = obs::snapshot().diff(&before);
    assert_eq!(delta.get(Counter::IndexProbes), 1);
    assert_eq!(delta.get(Counter::IndexHits), 0);
    assert_eq!(delta.get(Counter::IndexCollisions), 1);

    // Honest probes still resolve: each graph finds exactly its own
    // class under its own fingerprint.
    assert_eq!(index.lookup(fp_plain, &form_plain), Some(0));
    assert_eq!(index.lookup(fp_twisted, &form_twisted), None);
    let out = index
        .insert(fp_twisted, form_twisted.clone(), true)
        .expect("insert twisted CFI graph");
    assert!(out.fresh, "the twisted twin must found its own class");
    assert_eq!(index.lookup(fp_twisted, &form_twisted), Some(1));
    assert_eq!(index.group_size(fp_plain, &form_plain), Some(1));
}
