//! Pluggable refinement kernels: the strategy that turns one splitter
//! into cell splits.
//!
//! [`Partition`] owns the worklist discipline (pop splitter → split
//! affected cells → enqueue fragments) and the *rewrite* half of every
//! split ([`Partition::rewrite_split`]: Hopcroft's largest-fragment
//! rule, span rewriting, singleton tracking, the trace hash). A
//! [`RefineKernel`] owns only the *counting and ordering* half: given a
//! splitter cell, produce for each affected cell its members as
//! `(neighbor-count, vertex)` pairs sorted ascending. Because both
//! kernels feed the same rewrite path with identically-ordered members,
//! their partitions, traces and downstream canonical certificates are
//! byte-identical by construction — the parity suites in
//! `crates/refine/tests/kernel_parity.rs` pin this.
//!
//! Two kernels exist:
//!
//! * [`GeneralKernel`] — the original sorting-based kernel: scatter
//!   neighbor counts over the splitter's adjacency lists, group touched
//!   vertices by cell, comparison-sort each affected cell by
//!   `(count, vertex)`. Allocates its scratch per splitter, exactly as
//!   the pre-kernel refiner did, so it doubles as the measurement
//!   baseline.
//! * [`BitsetKernel`] — the dense kernel: persistent scratch buffers, a
//!   u64-word *cell-membership bitmask* whose set-bit order enumerates
//!   cell members in ascending vertex id, and a degree-bucket radix
//!   (counting) split in place of the comparison sort. For graphs small
//!   enough that adjacency rows fit in a few words each
//!   ([`POPCOUNT_MAX_N`]), it additionally builds u64-word adjacency
//!   bitset rows and counts splitter neighbors with `popcount(row &
//!   splitter_mask)` instead of scattering — the word-parallel path
//!   that pays off on the dense local subgraphs `CombineCL` labels.
//!
//! [`KernelKind`] is the dispatch knob threaded from the CLI and bench
//! binaries through `canon::Config` and `core::Session` down to
//! [`crate::Refiner`].

use crate::partition::Partition;
use dvicl_graph::{Graph, V};
use dvicl_obs::{self as obs, Counter};

/// Kernel selection, as chosen on the command line (`--kernel`) and
/// carried by `canon::Config`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Pick per graph: the bitset kernel at or below [`AUTO_DENSE_MAX`]
    /// vertices (where its setup cost amortizes — the leaf subgraphs of
    /// the divide recursion), the general kernel above.
    #[default]
    Auto,
    /// Always the sorting-based [`GeneralKernel`].
    General,
    /// Always the dense [`BitsetKernel`].
    Bitset,
}

impl KernelKind {
    /// Parses a `--kernel` argument value.
    pub fn parse(s: &str) -> Option<KernelKind> {
        match s {
            "auto" => Some(KernelKind::Auto),
            "general" => Some(KernelKind::General),
            "bitset" => Some(KernelKind::Bitset),
            _ => None,
        }
    }

    /// The stable flag-value name (`auto`/`general`/`bitset`).
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Auto => "auto",
            KernelKind::General => "general",
            KernelKind::Bitset => "bitset",
        }
    }

    /// Whether this kind resolves to the dense kernel on an `n`-vertex
    /// graph.
    pub fn is_dense_for(self, n: usize) -> bool {
        match self {
            KernelKind::Auto => n <= AUTO_DENSE_MAX,
            KernelKind::General => false,
            KernelKind::Bitset => true,
        }
    }
}

/// `Auto` resolves to the bitset kernel at or below this vertex count.
///
/// The dense kernel's per-refinement setup is O(n/64) words of mask
/// scratch plus, under [`POPCOUNT_MAX_N`], an O(n·n/64) adjacency-row
/// build; 4096 keeps cell masks at ≤64 words, so the mask walk that
/// replaces per-cell sorting stays cheap on every affected cell
/// (DESIGN.md §15 records the dispatch rationale, EXPERIMENTS.md the
/// measured crossover).
pub const AUTO_DENSE_MAX: usize = 4096;

/// The bitset kernel builds full adjacency bitset rows — and counts
/// splitter neighbors by `popcount` — at or below this vertex count.
/// 256 vertices is 4 words per row (8 KiB of rows), small enough that
/// the whole structure stays cache-resident and the per-run rebuild is
/// cheaper than the scatter passes it replaces.
pub const POPCOUNT_MAX_N: usize = 256;

/// Cells shorter than this are split with a comparison sort even inside
/// the dense kernel: the radix path's O(n/64)-word mask walk only
/// amortizes once the sort it replaces is superlinear in practice.
const RADIX_MIN_LEN: usize = 32;

/// The per-splitter strategy behind [`crate::Refiner`]: how to count
/// splitter-neighbors and order cell members. Implementations must feed
/// [`Partition::rewrite_split`] members sorted ascending by
/// `(count, vertex)` — that contract is what makes kernels
/// interchangeable without disturbing traces or certificates.
pub trait RefineKernel {
    /// Prepares per-graph state. Called once per refinement run, before
    /// the worklist loop; `g` is the graph every subsequent
    /// [`RefineKernel::split_by`] of the run will see.
    fn reset(&mut self, g: &Graph);

    /// Uses the cell at start `s` as a splitter: counts each vertex's
    /// neighbors in that cell and splits every affected cell via
    /// [`Partition::rewrite_split`]. Returns the updated trace.
    fn split_by(&mut self, p: &mut Partition, g: &Graph, s: u32, trace: u64) -> u64;
}

/// The original sorting-based kernel (scatter counts, comparison sort
/// per affected cell). Stateless: its scratch is allocated per splitter,
/// as the pre-kernel refiner always did.
#[derive(Default)]
pub struct GeneralKernel;

impl RefineKernel for GeneralKernel {
    fn reset(&mut self, _g: &Graph) {}

    fn split_by(&mut self, p: &mut Partition, g: &Graph, s: u32, mut trace: u64) -> u64 {
        let len = p.cell_len[s as usize] as usize;
        let s = s as usize;
        // Snapshot the splitter's members (cells can move during splitting).
        let splitter: Vec<V> = p.lab[s..s + len].to_vec();
        // Count neighbors in the splitter.
        let mut touched: Vec<V> = Vec::new();
        for &u in &splitter {
            for &w in g.neighbors(u) {
                if p.cnt[w as usize] == 0 {
                    touched.push(w);
                }
                p.cnt[w as usize] += 1;
            }
        }
        if touched.is_empty() {
            return trace;
        }
        // Group the touched vertices by their cell (flag-array dedup).
        let mut affected_cells: Vec<u32> = Vec::new();
        for &w in &touched {
            let c = p.cell_start[w as usize];
            if p.cell_len[c as usize] > 1 && !p.in_affected[c as usize] {
                p.in_affected[c as usize] = true;
                affected_cells.push(c);
            }
        }
        affected_cells.sort_unstable();
        for &c in &affected_cells {
            p.in_affected[c as usize] = false;
        }
        for c in affected_cells {
            // Gather (count, vertex) and sort; ties on equal counts sort
            // by vertex id, fixing the output representation.
            let c = c as usize;
            let clen = p.cell_len[c] as usize;
            let mut members: Vec<(u32, V)> = p.lab[c..c + clen]
                .iter()
                .map(|&v| (p.cnt[v as usize], v))
                .collect();
            members.sort_unstable();
            trace = p.rewrite_split(c, &members, trace);
        }
        // Clear counts.
        for &w in &touched {
            p.cnt[w as usize] = 0;
        }
        trace
    }
}

/// Where [`BitsetKernel::split_cell`] reads a member's splitter-neighbor
/// count from.
#[derive(Clone, Copy)]
enum CountSource {
    /// `Partition::cnt`, filled by a scatter pass.
    Scatter,
    /// `popcount(adjacency row & splitter mask)`.
    Popcount,
}

/// The dense kernel: persistent scratch, cell-membership bitmasks for
/// ascending-vertex enumeration, degree-bucket radix splits, and — on
/// graphs of at most [`POPCOUNT_MAX_N`] vertices — u64-word adjacency
/// bitset rows with popcount-counted splits.
#[derive(Default)]
pub struct BitsetKernel {
    /// Words per n-bit row (`ceil(n / 64)`).
    words: usize,
    /// Vertex count of the current run's graph.
    n: usize,
    /// Adjacency bitset rows, `n * words` words; built lazily by the
    /// first popcount-eligible splitter of a run (at most
    /// [`POPCOUNT_MAX_N`] vertices), empty until then. Cleared by
    /// [`RefineKernel::reset`] on every run — rows are never cached
    /// across runs, so a stale graph-to-rows association cannot exist.
    adj: Vec<u64>,
    /// Splitter-membership mask (popcount path only).
    splitter_mask: Vec<u64>,
    /// Scratch mask of one cell's members; its set-bit walk enumerates
    /// them in ascending vertex id, which is what keeps the radix
    /// split's output ordered identically to the general kernel's full
    /// `(count, vertex)` sort. Always left all-zero between splits.
    cell_mask: Vec<u64>,
    /// Vertices with a nonzero scatter count (scatter path).
    touched: Vec<V>,
    /// Affected (or, on the popcount path, all non-singleton) cell
    /// starts, ascending.
    affected: Vec<u32>,
    /// One cell's `(count, vertex)` pairs in ascending vertex order.
    members: Vec<(u32, V)>,
    /// Radix-ordered copy of `members`.
    sorted: Vec<(u32, V)>,
    /// Count histogram for the radix split.
    hist: Vec<u32>,
    /// Per-cell aggregates over *touched* members (scatter path),
    /// indexed by cell start and reset through `affected` after every
    /// splitter: how many members were touched, and the min/max of
    /// their counts. A cell splits iff some member was untouched
    /// (`touched < len`, giving a zero-count fragment) or the touched
    /// counts differ — decidable in O(touched) without scanning the
    /// cell, which is what makes repeatedly-grazed hub cells cheap.
    touched_cnt: Vec<u32>,
    touched_min: Vec<u32>,
    touched_max: Vec<u32>,
}

impl BitsetKernel {
    /// A dense kernel with empty (unallocated) scratch.
    pub fn new() -> BitsetKernel {
        BitsetKernel::default()
    }

    /// A member's splitter-neighbor count under `src`.
    #[inline]
    fn count_of(&self, p: &Partition, src: CountSource, v: V) -> u32 {
        match src {
            CountSource::Scatter => p.cnt[v as usize],
            CountSource::Popcount => {
                let row = &self.adj[v as usize * self.words..(v as usize + 1) * self.words];
                let mut cnt = 0u32;
                for (a, b) in row.iter().zip(&self.splitter_mask) {
                    cnt += (a & b).count_ones();
                }
                cnt
            }
        }
    }

    /// Splits the cell `[c, c+len)`, feeding
    /// [`Partition::rewrite_split`] members ordered ascending by
    /// `(count, vertex)`. `range` is the count range `(min, max)` when
    /// the caller already knows it (the scatter path's touched
    /// aggregates); otherwise one gather pass computes it and exits
    /// early on uniform cells — which the general kernel fully sorts.
    ///
    /// Splitting cells go through the degree-bucket radix path (stable
    /// counting sort) when large enough, or a plain comparison sort when
    /// the cell is too small for a histogram to pay, or the counts too
    /// spread for one. The radix path's stability must run over members
    /// in ascending vertex id to reproduce the general kernel's
    /// `(count, vertex)` sort: cell spans are almost always already
    /// ascending (every fragment [`Partition::rewrite_split`] writes
    /// is), so the gather pass checks for that and sorts straight off
    /// the span; a non-ascending span (an individualization swap, an
    /// arbitrary seed coloring) falls back to the cell-membership mask
    /// walk, whose set-bit order restores ascending ids. Returns the
    /// updated trace.
    fn split_cell(
        &mut self,
        p: &mut Partition,
        c: usize,
        len: usize,
        src: CountSource,
        range: Option<(u32, u32)>,
        trace: u64,
    ) -> u64 {
        // Gather (count, vertex) in span order, tracking the count range
        // when unknown and whether the span is ascending by vertex id.
        let mut min_c = u32::MAX;
        let mut max_c = 0u32;
        let mut ascending = true;
        let mut prev = 0 as V;
        self.members.clear();
        for i in c..c + len {
            let v = p.lab[i];
            ascending &= i == c || v > prev;
            prev = v;
            let cv = self.count_of(p, src, v);
            min_c = min_c.min(cv);
            max_c = max_c.max(cv);
            self.members.push((cv, v));
        }
        if let Some((lo, hi)) = range {
            debug_assert_eq!((lo, hi), (min_c, max_c));
            (min_c, max_c) = (lo, hi);
        }
        if min_c == max_c {
            return trace; // uniform counts: no split
        }
        if matches!(src, CountSource::Popcount) {
            obs::bump(Counter::RefineSplitsPopcount);
        }
        let spread = (max_c - min_c) as usize;
        if len >= RADIX_MIN_LEN && spread <= 4 * len {
            // Degree-bucket radix split: histogram the counts, then
            // place each member stably into its count bucket.
            self.hist.clear();
            self.hist.resize(spread + 1, 0);
            for &(cv, _) in &self.members {
                self.hist[(cv - min_c) as usize] += 1;
            }
            let mut run = 0u32;
            for h in &mut self.hist {
                let start = run;
                run += *h;
                *h = start;
            }
            self.sorted.clear();
            self.sorted.resize(len, (0, 0));
            if ascending {
                // The span already enumerates members in ascending
                // vertex id: one stable sequential placement pass.
                for &(cv, v) in &self.members {
                    let slot = self.hist[(cv - min_c) as usize];
                    self.sorted[slot as usize] = (cv, v);
                    self.hist[(cv - min_c) as usize] = slot + 1;
                }
            } else {
                // Mask walk: set bits enumerate members in ascending
                // vertex id, restoring the order the span lost.
                for &(_, v) in &self.members {
                    self.cell_mask[(v >> 6) as usize] |= 1u64 << (v & 63);
                }
                for w in 0..self.words {
                    let mut bits = self.cell_mask[w];
                    // Clearing each word as it is read restores the
                    // mask's all-zero resting state without a second
                    // pass.
                    self.cell_mask[w] = 0;
                    while bits != 0 {
                        // dvicl-lint: allow(narrowing-cast) -- w*64 + bit index < n <= V::MAX
                        let v = ((w << 6) + bits.trailing_zeros() as usize) as V;
                        bits &= bits - 1;
                        let cv = self.count_of(p, src, v);
                        let slot = self.hist[(cv - min_c) as usize];
                        self.sorted[slot as usize] = (cv, v);
                        self.hist[(cv - min_c) as usize] = slot + 1;
                    }
                }
            }
            obs::bump(Counter::RadixSplits);
            let sorted = std::mem::take(&mut self.sorted);
            let trace = p.rewrite_split(c, &sorted, trace);
            self.sorted = sorted;
            trace
        } else {
            // Small cell or counts too spread out for a histogram:
            // comparison sort. Sorting by (count, vertex) lands in the
            // same shared order.
            self.members.sort_unstable();
            let members = std::mem::take(&mut self.members);
            let trace = p.rewrite_split(c, &members, trace);
            self.members = members;
            trace
        }
    }

    /// Word-parallel splitter pass: counts come from
    /// `popcount(adjacency row & splitter mask)` over every
    /// non-singleton cell (cells disjoint from the splitter's
    /// neighborhood count uniformly zero and split nothing, so skipping
    /// the scatter-based discovery is trace-neutral).
    fn split_by_popcount(&mut self, p: &mut Partition, g: &Graph, s: usize, len: usize, mut trace: u64) -> u64 {
        if self.adj.is_empty() {
            // Lazy row build: only runs that see a popcount-eligible
            // splitter pay for it.
            self.splitter_mask.clear();
            self.splitter_mask.resize(self.words, 0);
            self.adj.resize(self.n * self.words, 0);
            for u in 0..self.n {
                // dvicl-lint: allow(narrowing-cast) -- u < n <= V::MAX
                for &w in g.neighbors(u as V) {
                    self.adj[u * self.words + (w >> 6) as usize] |= 1u64 << (w & 63);
                }
            }
        }
        for w in &mut self.splitter_mask {
            *w = 0;
        }
        for &u in &p.lab[s..s + len] {
            self.splitter_mask[(u >> 6) as usize] |= 1u64 << (u & 63);
        }
        // Snapshot the non-singleton cell starts before any split moves
        // them — the same pre-split discovery discipline as the scatter
        // path (a split only subdivides a cell's own span, so the other
        // snapshot entries stay valid cell starts).
        self.affected.clear();
        let n = p.n();
        let mut c = 0usize;
        while c < n {
            let clen = p.cell_len[c] as usize;
            if clen > 1 {
                // dvicl-lint: allow(narrowing-cast) -- c < n <= V::MAX
                self.affected.push(c as u32);
            }
            c += clen;
        }
        for i in 0..self.affected.len() {
            let c = self.affected[i] as usize;
            let clen = p.cell_len[c] as usize;
            trace = self.split_cell(p, c, clen, CountSource::Popcount, None, trace);
        }
        trace
    }

    /// Scatter-counting splitter pass (same discovery order as the
    /// general kernel, persistent buffers) with the touched-aggregate
    /// uniformity test and radix splits. No splitter snapshot is taken:
    /// the scatter loop finishes before any split moves `lab`, so the
    /// splitter's span is stable while it is read.
    fn split_by_scatter(
        &mut self,
        p: &mut Partition,
        g: &Graph,
        s: usize,
        len: usize,
        mut trace: u64,
    ) -> u64 {
        self.touched.clear();
        for i in s..s + len {
            let u = p.lab[i];
            for &w in g.neighbors(u) {
                if p.cnt[w as usize] == 0 {
                    self.touched.push(w);
                }
                p.cnt[w as usize] += 1;
            }
        }
        if self.touched.is_empty() {
            return trace;
        }
        // Discover affected cells and aggregate their touched members
        // (counts are final once the scatter loop above completes).
        self.affected.clear();
        for i in 0..self.touched.len() {
            let w = self.touched[i];
            let c = p.cell_start[w as usize] as usize;
            if p.cell_len[c] <= 1 {
                continue;
            }
            if !p.in_affected[c] {
                p.in_affected[c] = true;
                // dvicl-lint: allow(narrowing-cast) -- c < n <= V::MAX
                self.affected.push(c as u32);
            }
            let cv = p.cnt[w as usize];
            self.touched_cnt[c] += 1;
            self.touched_min[c] = self.touched_min[c].min(cv);
            self.touched_max[c] = self.touched_max[c].max(cv);
        }
        self.affected.sort_unstable();
        for i in 0..self.affected.len() {
            let c = self.affected[i] as usize;
            p.in_affected[c] = false;
            let clen = p.cell_len[c] as usize;
            let tc = self.touched_cnt[c] as usize;
            let (lo, hi) = (self.touched_min[c], self.touched_max[c]);
            self.touched_cnt[c] = 0;
            self.touched_min[c] = u32::MAX;
            self.touched_max[c] = 0;
            // Uniform iff every member was touched and with the same
            // count (untouched members count zero, touched are >= 1) —
            // skip such cells without scanning them, matching the
            // general kernel's uniform no-op exactly.
            if tc == clen && lo == hi {
                continue;
            }
            // Untouched members (if any) count zero, below every touched
            // member's count of at least one.
            let min_c = if tc < clen { 0 } else { lo };
            trace = self.split_cell(p, c, clen, CountSource::Scatter, Some((min_c, hi)), trace);
        }
        for i in 0..self.touched.len() {
            p.cnt[self.touched[i] as usize] = 0;
        }
        trace
    }
}

impl RefineKernel for BitsetKernel {
    fn reset(&mut self, g: &Graph) {
        let n = g.n();
        self.n = n;
        self.words = n.div_ceil(64);
        self.cell_mask.clear();
        self.cell_mask.resize(self.words, 0);
        self.adj.clear();
        // Scatter-path aggregate arrays, at their resting state (no
        // touched members recorded); the per-splitter loop in
        // `split_by_scatter` restores this state after each use.
        self.touched_cnt.clear();
        self.touched_cnt.resize(n, 0);
        self.touched_min.clear();
        self.touched_min.resize(n, u32::MAX);
        self.touched_max.clear();
        self.touched_max.resize(n, 0);
    }

    fn split_by(&mut self, p: &mut Partition, g: &Graph, s: u32, trace: u64) -> u64 {
        let len = p.cell_len[s as usize] as usize;
        let s = s as usize;
        // Popcount pays when the splitter is large and the graph dense
        // enough: scatter costs the splitter's degree sum
        // (≈ len · 2m/n), popcount one masked row scan per vertex
        // (≈ n · words). Small (typically singleton) splitters — the
        // bulk of every run — stay on the scatter path even when rows
        // are available.
        if self.n <= POPCOUNT_MAX_N && 2 * len * g.m() >= self.n * self.n * self.words {
            self.split_by_popcount(p, g, s, len, trace)
        } else {
            self.split_by_scatter(p, g, s, len, trace)
        }
    }
}
