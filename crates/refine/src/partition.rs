//! Worklist partition refinement over an ordered partition.
//!
//! The representation follows nauty's: `lab` holds the vertices in partition
//! order, `pos` is its inverse, `cell_start[v]` is the start position of the
//! cell containing `v` (which *is* the vertex's color under the paper's
//! color definition), and `cell_len[s]` is the length of the cell starting
//! at position `s` (meaningful only at start positions).
//!
//! How a splitter's neighbor counts are computed and how affected cells
//! are ordered is delegated to a [`RefineKernel`]
//! (`crates/refine/src/kernel.rs`); the worklist discipline and the
//! rewrite half of every split ([`Partition::rewrite_split`]) live here,
//! shared by every kernel, so kernels cannot diverge on the parts that
//! determine traces and certificates.

use crate::kernel::RefineKernel;
use dvicl_govern::{Budget, DviclError};
use dvicl_graph::{Coloring, Graph, V};
use std::collections::VecDeque;

/// An ordered partition of `0..n` supporting splitter-based refinement.
pub struct Partition {
    pub(crate) lab: Vec<V>,
    pub(crate) pos: Vec<u32>,
    pub(crate) cell_start: Vec<u32>,
    pub(crate) cell_len: Vec<u32>,
    // Scratch: neighbor counts per vertex during a splitter pass (owned
    // here rather than by the kernels so scatter-counting kernels share
    // one zeroed array with the reset discipline).
    pub(crate) cnt: Vec<u32>,
    // Worklist of cell start positions + membership flags.
    queue: VecDeque<u32>,
    in_queue: Vec<bool>,
    // Scratch: dedup flags for cells touched by the current splitter.
    pub(crate) in_affected: Vec<bool>,
    // Vertices whose cells became singletons during the current run, in
    // creation order (isomorphism-invariant, since creation follows the
    // invariant queue discipline).
    new_singletons: Vec<V>,
}

impl Default for Partition {
    fn default() -> Self {
        Partition::new()
    }
}

#[inline]
fn mix(h: u64, x: u64) -> u64 {
    // A simple strong mixer (splitmix64 finalizer over h ^ x).
    let mut z = h ^ x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Partition {
    /// An empty partition over zero vertices: the starting state for
    /// [`Partition::reset_from_coloring`]-based reuse.
    pub fn new() -> Self {
        Partition {
            lab: Vec::new(),
            pos: Vec::new(),
            cell_start: Vec::new(),
            cell_len: Vec::new(),
            cnt: Vec::new(),
            queue: VecDeque::new(),
            in_queue: Vec::new(),
            in_affected: Vec::new(),
            new_singletons: Vec::new(),
        }
    }

    /// Builds the internal representation from a [`Coloring`].
    pub fn from_coloring(n: usize, pi: &Coloring) -> Self {
        let mut p = Partition::new();
        p.reset_from_coloring(n, pi);
        p
    }

    /// Re-initializes this partition from a [`Coloring`], reusing every
    /// internal buffer. State after this call is identical to a fresh
    /// [`Partition::from_coloring`] — only the allocations differ, which
    /// is what lets the IR search refine thousands of nodes without a
    /// single per-node `Vec` allocation.
    pub fn reset_from_coloring(&mut self, n: usize, pi: &Coloring) {
        assert_eq!(n, pi.n());
        self.lab.clear();
        self.lab.reserve(n);
        self.cell_len.clear();
        self.cell_len.resize(n, 0);
        for cell in pi.cells() {
            // dvicl-lint: allow(narrowing-cast) -- a cell holds at most n <= V::MAX vertices
            self.cell_len[self.lab.len()] = cell.len() as u32;
            self.lab.extend_from_slice(cell);
        }
        self.pos.clear();
        self.pos.resize(n, 0);
        for (i, &v) in self.lab.iter().enumerate() {
            // dvicl-lint: allow(narrowing-cast) -- i indexes lab, which has n <= V::MAX entries
            self.pos[v as usize] = i as u32;
        }
        self.cell_start.clear();
        self.cell_start.resize(n, 0);
        let mut s = 0usize;
        while s < n {
            let len = self.cell_len[s] as usize;
            for i in s..s + len {
                // dvicl-lint: allow(narrowing-cast) -- s < n <= V::MAX
                self.cell_start[self.lab[i] as usize] = s as u32;
            }
            s += len;
        }
        self.cnt.clear();
        self.cnt.resize(n, 0);
        self.queue.clear();
        self.in_queue.clear();
        self.in_queue.resize(n, false);
        self.in_affected.clear();
        self.in_affected.resize(n, false);
        self.new_singletons.clear();
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.lab.len()
    }

    /// The color (cell start position) of `v`.
    #[inline]
    pub fn color_of(&self, v: V) -> u32 {
        self.cell_start[v as usize]
    }

    /// The vertices whose cells became singletons during the last run, in
    /// creation order.
    pub fn new_singletons(&self) -> &[V] {
        &self.new_singletons
    }

    /// Converts back to a [`Coloring`].
    pub fn to_coloring(&self) -> Coloring {
        let n = self.n();
        let mut cells = Vec::new();
        let mut s = 0usize;
        while s < n {
            let len = self.cell_len[s] as usize;
            cells.push(self.lab[s..s + len].to_vec());
            s += len;
        }
        // dvicl-lint: allow(panic-freedom) -- lab is a permutation of 0..n and the cell spans tile it, so the cells partition 0..n
        Coloring::from_cells(cells).expect("partition is always a valid coloring")
    }

    fn enqueue(&mut self, s: u32) {
        if !self.in_queue[s as usize] {
            self.in_queue[s as usize] = true;
            self.queue.push_back(s);
        }
    }

    fn enqueue_all_cells(&mut self) {
        let n = self.n();
        let mut s = 0usize;
        while s < n {
            // dvicl-lint: allow(narrowing-cast) -- s < n <= V::MAX
            self.enqueue(s as u32);
            s += self.cell_len[s] as usize;
        }
    }

    /// Refines to the coarsest equitable partition using `k`, returning
    /// the trace hash. All current cells are used as initial splitters;
    /// every singleton cell of the *result* counts as newly created.
    pub fn refine(&mut self, g: &Graph, k: &mut dyn RefineKernel) -> u64 {
        self.seed_refine();
        self.run(g, k, 0x5ee2_c3a1_d00d_f00d, None)
            // dvicl-lint: allow(panic-freedom) -- run() only errs on budget exhaustion, and no budget is passed here
            .expect("un-budgeted refinement cannot fail")
    }

    /// Budgeted [`Partition::refine`]: spends one work unit per splitter
    /// processed, so a deadline interrupts refinement itself, not just
    /// the search loop around it.
    pub fn try_refine(
        &mut self,
        g: &Graph,
        k: &mut dyn RefineKernel,
        budget: &Budget,
    ) -> Result<u64, DviclError> {
        self.seed_refine();
        self.run(g, k, 0x5ee2_c3a1_d00d_f00d, Some(budget))
    }

    fn seed_refine(&mut self) {
        let n = self.n();
        let mut s = 0usize;
        while s < n {
            if self.cell_len[s] == 1 {
                self.new_singletons.push(self.lab[s]);
            }
            s += self.cell_len[s] as usize;
        }
        self.enqueue_all_cells();
    }

    /// Individualizes `v` (splitting it to the front of its cell) and
    /// refines with the two fragments as seeds, using `k`. Panics if `v`
    /// is already in a singleton cell. Returns the trace hash, seeded
    /// with `v`'s color — an isomorphism-invariant of the branching
    /// decision.
    pub fn individualize_and_refine(&mut self, g: &Graph, k: &mut dyn RefineKernel, v: V) -> u64 {
        let seed = self.seed_individualize(v);
        self.run(g, k, seed, None)
            // dvicl-lint: allow(panic-freedom) -- run() only errs on budget exhaustion, and no budget is passed here
            .expect("un-budgeted refinement cannot fail")
    }

    /// Budgeted [`Partition::individualize_and_refine`].
    pub fn try_individualize_and_refine(
        &mut self,
        g: &Graph,
        k: &mut dyn RefineKernel,
        v: V,
        budget: &Budget,
    ) -> Result<u64, DviclError> {
        let seed = self.seed_individualize(v);
        self.run(g, k, seed, Some(budget))
    }

    // dvicl-lint: allow(budget-reachability) -- O(cell length) splice of {v} to the cell front; run() meters the refinement that follows
    fn seed_individualize(&mut self, v: V) -> u64 {
        let s = self.cell_start[v as usize];
        let len = self.cell_len[s as usize];
        assert!(len > 1, "cannot individualize a singleton cell");
        // Swap v to the front of its cell and split off {v}.
        let pv = self.pos[v as usize];
        let first = self.lab[s as usize];
        self.lab[s as usize] = v;
        self.lab[pv as usize] = first;
        self.pos[v as usize] = s;
        self.pos[first as usize] = pv;
        self.cell_len[s as usize] = 1;
        self.cell_len[s as usize + 1] = len - 1;
        for i in (s + 1)..(s + len) {
            self.cell_start[self.lab[i as usize] as usize] = s + 1;
        }
        self.new_singletons.push(v);
        if len == 2 {
            self.new_singletons.push(self.lab[s as usize + 1]);
        }
        self.enqueue(s);
        self.enqueue(s + 1);
        mix(0x01d1_71da_71ba_5eed, s as u64)
    }

    /// Core worklist loop. `seed` initializes the trace hash; one work
    /// unit is spent per splitter when a budget is supplied. The kernel
    /// decides how each splitter's counts are computed; the loop, the
    /// budget metering and the trace-per-splitter mix are
    /// kernel-independent.
    fn run(
        &mut self,
        g: &Graph,
        k: &mut dyn RefineKernel,
        seed: u64,
        budget: Option<&Budget>,
    ) -> Result<u64, DviclError> {
        k.reset(g);
        let mut trace = seed;
        while let Some(s) = self.queue.pop_front() {
            dvicl_obs::bump(dvicl_obs::Counter::RefineRounds);
            if let Some(b) = budget {
                b.spend(1)?;
            }
            self.in_queue[s as usize] = false;
            trace = mix(trace, 0xA110 ^ (s as u64) << 16);
            trace = k.split_by(self, g, s, trace);
            // Early exit: a discrete partition cannot split further.
            // (Checked cheaply: every cell len 1 iff no queue progress can
            // help, but scanning is O(n); rely on natural termination.)
        }
        Ok(trace)
    }

    /// The kernel-shared rewrite half of one cell split: takes the cell
    /// at start `c` and its `members` as `(splitter-neighbor count,
    /// vertex)` pairs sorted ascending, and performs the split —
    /// Hopcroft's largest-fragment worklist exemption, the span/pos/cell
    /// rewrite, singleton tracking, the per-fragment trace mix and
    /// fragment enqueueing. Returns the updated trace (unchanged when
    /// the counts are uniform and nothing splits).
    ///
    /// Every [`RefineKernel`] funnels its splits through here, which is
    /// what pins their partitions and traces to each other: a kernel
    /// only chooses *how counts are computed*, never how a split is
    /// realized.
    // dvicl-lint: allow(budget-reachability) -- O(cell length) rewrite of one cell span; run() meters the worklist that drives it
    pub(crate) fn rewrite_split(&mut self, c: usize, members: &[(u32, V)], mut trace: u64) -> u64 {
        let len = members.len();
        debug_assert_eq!(len, self.cell_len[c] as usize);
        if members[0].0 == members[len - 1].0 {
            return trace; // no split
        }
        // Hopcroft rule: if the split cell is not itself pending as a
        // splitter, the largest fragment can stay off the worklist — the
        // other fragments subsume its splitting power. (If it IS pending,
        // every fragment must be queued to preserve its pending role.)
        let cell_was_queued = self.in_queue[c];
        let mut largest_start = u32::MAX;
        if !cell_was_queued {
            let mut largest_len = 0u32;
            let mut i = 0usize;
            while i < len {
                let count = members[i].0;
                let mut j = i;
                while j < len && members[j].0 == count {
                    j += 1;
                }
                // dvicl-lint: allow(narrowing-cast) -- fragment length and start are < n <= V::MAX
                if (j - i) as u32 > largest_len {
                    // dvicl-lint: allow(narrowing-cast) -- fragment length and start are < n <= V::MAX
                    largest_len = (j - i) as u32;
                    // dvicl-lint: allow(narrowing-cast) -- fragment length and start are < n <= V::MAX
                    largest_start = (c + i) as u32;
                }
                i = j;
            }
        }
        // Rewrite the span and fix up bookkeeping per fragment.
        let mut i = 0usize;
        while i < len {
            let count = members[i].0;
            let mut j = i;
            while j < len && members[j].0 == count {
                j += 1;
            }
            // dvicl-lint: allow(narrowing-cast) -- fragment length and start are < n <= V::MAX
            let frag_start = (c + i) as u32;
            // dvicl-lint: allow(narrowing-cast) -- fragment length and start are < n <= V::MAX
            let frag_len = (j - i) as u32;
            for (k, &(_, v)) in members[i..j].iter().enumerate() {
                let p = c + i + k;
                self.lab[p] = v;
                // dvicl-lint: allow(narrowing-cast) -- p < n <= V::MAX
                self.pos[v as usize] = p as u32;
                self.cell_start[v as usize] = frag_start;
            }
            self.cell_len[frag_start as usize] = frag_len;
            if frag_len == 1 {
                self.new_singletons.push(self.lab[frag_start as usize]);
            }
            trace = mix(
                trace,
                ((frag_start as u64) << 40) ^ ((frag_len as u64) << 20) ^ count as u64,
            );
            if frag_start != largest_start {
                self.enqueue(frag_start);
            }
            i = j;
        }
        trace
    }
}
