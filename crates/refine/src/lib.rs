//! Equitable coloring refinement — the paper's refinement function `R`.
//!
//! Given a colored graph `(G, π)` this crate computes the coarsest equitable
//! coloring finer than `π` (1-dimensional Weisfeiler–Lehman, \[33\] in the
//! paper), using the worklist partition-refinement scheme that nauty, bliss
//! and traces all build on: cells are used as *splitters*; every cell is
//! re-partitioned by the number of neighbors its vertices have in the
//! splitter, with fragments ordered by ascending count so that the result —
//! and the *trace* of the computation — is isomorphism-invariant
//! (property (iii) of `R` in Section 4: `R(G^γ, π^γ, ν^γ) = R(G, π, ν)^γ`).
//!
//! The trace (a running hash over cell positions, fragment sizes and count
//! values) doubles as the node invariant `φ` used by the
//! individualization-refinement search in `dvicl-canon`.
//!
//! *How* counts are computed is pluggable: a [`RefineKernel`] (see
//! `kernel.rs`) supplies the per-splitter counting strategy — the
//! sorting-based [`GeneralKernel`] or the word-parallel [`BitsetKernel`]
//! — selected per [`Refiner`] by a [`KernelKind`] and resolved per graph
//! at the dispatch point in this module. Every kernel produces the same
//! partitions and the same traces; the choice moves wall time only.

#![warn(missing_docs)]

use dvicl_govern::{Budget, DviclError};
use dvicl_graph::{Coloring, Graph, V};
use dvicl_obs::{self as obs, Counter};

mod kernel;
mod partition;

pub use kernel::{
    BitsetKernel, GeneralKernel, KernelKind, RefineKernel, AUTO_DENSE_MAX, POPCOUNT_MAX_N,
};
pub use partition::Partition;

/// The output of a refinement: the equitable coloring and the
/// isomorphism-invariant trace hash of how it was reached.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RefineResult {
    /// The coarsest equitable coloring finer than the input.
    pub coloring: Coloring,
    /// Hash of the refinement trace. Equal for isomorphic inputs; unequal
    /// traces certify that two search-tree nodes cannot be mapped onto each
    /// other (up to hash collisions, which only cost pruning power in the
    /// consumers, never correctness of certificates).
    pub trace: u64,
    /// Vertices whose cells became singletons during this refinement, in
    /// an isomorphism-invariant creation order — the material for the
    /// partial-certificate node invariant in `dvicl-canon`.
    pub new_singletons: Vec<V>,
}

/// A reusable refinement engine: one [`Partition`] worth of buffers
/// (labels, positions, cell tables, worklist, scratch counters) plus
/// both [`RefineKernel`] backends, recycled across calls.
///
/// The individualization-refinement search in `dvicl-canon` refines once
/// per search-tree node; with the one-shot free functions each of those
/// refinements paid seven `Vec` allocations for a fresh [`Partition`].
/// A `Refiner` re-seeds the same buffers instead
/// ([`Partition::reset_from_coloring`]), so a DFS over thousands of nodes
/// performs no per-node partition allocation. Results are bit-identical
/// to the free functions — reset state equals fresh state.
///
/// The `Refiner` is also the *kernel dispatch point*: every entry
/// resolves its [`KernelKind`] against the graph's size and routes the
/// run through the sorting-based [`GeneralKernel`] or the dense
/// [`BitsetKernel`]. Both kernels produce identical colorings, traces
/// and singleton orders (pinned by the parity suites), so the selection
/// is free to vary per call without disturbing downstream certificates.
#[derive(Default)]
pub struct Refiner {
    p: Partition,
    kernel: KernelKind,
    general: GeneralKernel,
    bitset: BitsetKernel,
}

impl Refiner {
    /// A refiner with empty (unallocated) buffers and [`KernelKind::Auto`]
    /// dispatch.
    pub fn new() -> Self {
        Refiner::default()
    }

    /// A refiner pinned to `kernel`.
    pub fn with_kernel(kernel: KernelKind) -> Self {
        Refiner {
            kernel,
            ..Refiner::default()
        }
    }

    /// The configured kernel selection.
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// Re-points the dispatcher without touching the buffers (a
    /// `core::Session` retunes its per-worker refiners this way when its
    /// options change).
    pub fn set_kernel(&mut self, kernel: KernelKind) {
        self.kernel = kernel;
    }

    /// Resolves the kernel for an `n`-vertex graph and bumps the
    /// dense-dispatch counter. Field-splitting helper: borrows only the
    /// kernel state, leaving `self.p` free.
    fn dispatch<'a>(
        kernel: KernelKind,
        general: &'a mut GeneralKernel,
        bitset: &'a mut BitsetKernel,
        n: usize,
    ) -> &'a mut dyn RefineKernel {
        if kernel.is_dense_for(n) {
            obs::bump(Counter::RefineKernelDense);
            bitset
        } else {
            general
        }
    }

    fn result(&self) -> RefineResult {
        RefineResult {
            trace: 0,
            new_singletons: self.p.new_singletons().to_vec(),
            coloring: self.p.to_coloring(),
        }
    }

    /// Reusable-buffer [`refine`].
    pub fn refine(&mut self, g: &Graph, pi: &Coloring) -> RefineResult {
        let _span = dvicl_obs::span("refine.refine");
        let Refiner { p, kernel, general, bitset } = self;
        let k = Refiner::dispatch(*kernel, general, bitset, g.n());
        p.reset_from_coloring(g.n(), pi);
        let trace = p.refine(g, k);
        RefineResult { trace, ..self.result() }
    }

    /// Reusable-buffer [`refine_individualized`].
    pub fn refine_individualized(&mut self, g: &Graph, pi: &Coloring, v: V) -> RefineResult {
        let _span = dvicl_obs::span("refine.individualize");
        let Refiner { p, kernel, general, bitset } = self;
        let k = Refiner::dispatch(*kernel, general, bitset, g.n());
        p.reset_from_coloring(g.n(), pi);
        let trace = p.individualize_and_refine(g, k, v);
        RefineResult { trace, ..self.result() }
    }

    /// Reusable-buffer [`try_refine`].
    pub fn try_refine(
        &mut self,
        g: &Graph,
        pi: &Coloring,
        budget: &Budget,
    ) -> Result<RefineResult, DviclError> {
        let _span = dvicl_obs::span("refine.refine");
        dvicl_govern::fault::checkpoint("refine.refine")?;
        dvicl_govern::fault::checkpoint("refine.kernel")?;
        let Refiner { p, kernel, general, bitset } = self;
        let k = Refiner::dispatch(*kernel, general, bitset, g.n());
        p.reset_from_coloring(g.n(), pi);
        let trace = p.try_refine(g, k, budget)?;
        Ok(RefineResult { trace, ..self.result() })
    }

    /// Reusable-buffer [`try_refine_individualized`].
    pub fn try_refine_individualized(
        &mut self,
        g: &Graph,
        pi: &Coloring,
        v: V,
        budget: &Budget,
    ) -> Result<RefineResult, DviclError> {
        let _span = dvicl_obs::span("refine.individualize");
        dvicl_govern::fault::checkpoint("refine.individualize")?;
        dvicl_govern::fault::checkpoint("refine.kernel")?;
        let Refiner { p, kernel, general, bitset } = self;
        let k = Refiner::dispatch(*kernel, general, bitset, g.n());
        p.reset_from_coloring(g.n(), pi);
        let trace = p.try_individualize_and_refine(g, k, v, budget)?;
        Ok(RefineResult { trace, ..self.result() })
    }
}

/// Refines `(g, pi)` to the coarsest equitable coloring finer than `pi`.
///
/// One-shot convenience over [`Refiner`] — loops that refine repeatedly
/// (one refinement per search-tree node) should hold a `Refiner` instead.
///
/// ```
/// use dvicl_graph::{named, Coloring};
/// // The Fig. 1(a) example refines from the unit coloring to the paper's
/// // [0,1,2,3,4,5,6|7]: the hub is forced into its own cell.
/// let g = named::fig1_example();
/// let r = dvicl_refine::refine(&g, &Coloring::unit(8));
/// assert_eq!(r.coloring.to_string(), "[0,1,2,3,4,5,6|7]");
/// assert!(r.coloring.is_equitable(&g));
/// ```
pub fn refine(g: &Graph, pi: &Coloring) -> RefineResult {
    Refiner::new().refine(g, pi)
}

/// Individualizes `v` in `pi` (which is typically already equitable) and
/// re-refines: the paper's child-node construction `R(G, π, ν·v)`.
///
/// The returned trace covers only the re-refinement, seeded with the color
/// of `v`'s cell (an invariant of the branching choice), so traces of
/// sibling nodes that individualize non-equivalent vertices differ.
///
/// Delegates to [`Refiner::refine_individualized`], so it shares the
/// kernel dispatcher with every other entry point (it previously
/// hard-wired the general kernel's splitting path).
pub fn refine_individualized(g: &Graph, pi: &Coloring, v: V) -> RefineResult {
    Refiner::new().refine_individualized(g, pi, v)
}

/// Budgeted [`refine`]: one work unit is spent per splitter processed,
/// so a wall-clock deadline or cancellation interrupts the refinement
/// loop itself rather than waiting for it to finish.
pub fn try_refine(g: &Graph, pi: &Coloring, budget: &Budget) -> Result<RefineResult, DviclError> {
    Refiner::new().try_refine(g, pi, budget)
}

/// Budgeted [`refine_individualized`].
pub fn try_refine_individualized(
    g: &Graph,
    pi: &Coloring,
    v: V,
    budget: &Budget,
) -> Result<RefineResult, DviclError> {
    Refiner::new().try_refine_individualized(g, pi, v, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvicl_graph::{named, Perm};

    #[test]
    fn fig1_unit_refines_to_paper_coloring() {
        let g = named::fig1_example();
        let r = refine(&g, &Coloring::unit(8));
        // Paper: the root of the search tree is [0,1,2,3,4,5,6 | 7].
        assert_eq!(r.coloring.to_string(), "[0,1,2,3,4,5,6|7]");
        assert!(r.coloring.is_equitable(&g));
    }

    #[test]
    fn fig1_individualize_0_matches_paper_cells() {
        let g = named::fig1_example();
        let base = refine(&g, &Coloring::unit(8)).coloring;
        let r = refine_individualized(&g, &base, 0);
        assert!(r.coloring.is_equitable(&g));
        // Paper node 1: cells {6,5,4}, {2}, {1,3}, {0}, {7} (bliss order).
        // Our convention orders cells differently but the *cells* agree.
        let mut cells: Vec<Vec<V>> = r.coloring.cells().to_vec();
        cells.sort();
        assert_eq!(
            cells,
            vec![vec![0], vec![1, 3], vec![2], vec![4, 5, 6], vec![7]]
        );
    }

    #[test]
    fn refinement_is_finer_and_equitable() {
        for g in [
            named::petersen(),
            named::frucht(),
            named::hypercube(4),
            named::rary_tree(3, 3),
            named::complete_bipartite(3, 5),
        ] {
            let pi = Coloring::unit(g.n());
            let r = refine(&g, &pi);
            assert!(r.coloring.is_finer_or_equal(&pi));
            assert!(r.coloring.is_equitable(&g));
        }
    }

    #[test]
    fn regular_graphs_stay_unit() {
        for g in [named::petersen(), named::cycle(9), named::hypercube(3)] {
            let r = refine(&g, &Coloring::unit(g.n()));
            assert!(r.coloring.is_unit());
        }
    }

    #[test]
    fn tree_refines_to_many_cells() {
        // A balanced binary tree of depth 3 splits into its 4 levels under
        // 1-WL (and no further).
        let g = named::rary_tree(2, 3);
        let r = refine(&g, &Coloring::unit(g.n()));
        assert_eq!(r.coloring.num_cells(), 4);
        assert_eq!(r.coloring.num_singletons(), 1);
    }

    #[test]
    fn respects_initial_coloring() {
        let g = named::cycle(6);
        // Pre-color vertex 0 differently: the cycle then fully splits by
        // distance from 0 ({1,5}, {2,4}, {3}).
        let pi = Coloring::from_cells(vec![vec![1, 2, 3, 4, 5], vec![0]]).unwrap();
        let r = refine(&g, &pi);
        assert!(r.coloring.is_finer_or_equal(&pi));
        let mut cells = r.coloring.cells().to_vec();
        cells.sort();
        assert_eq!(cells, vec![vec![0], vec![1, 5], vec![2, 4], vec![3]]);
    }

    #[test]
    fn invariant_under_relabeling() {
        // refine(G^γ, π^γ) must equal refine(G, π)^γ, and traces must match.
        let g = named::fig3_example();
        let n = g.n();
        let gamma = Perm::from_cycles(n, &[&[0, 5, 9], &[2, 4], &[10, 12], &[11, 13]]).unwrap();
        let gg = g.permuted(&gamma);
        let r1 = refine(&g, &Coloring::unit(n));
        let r2 = refine(&gg, &Coloring::unit(n));
        assert_eq!(r1.trace, r2.trace);
        assert_eq!(r2.coloring, r1.coloring.apply_perm(&gamma.inverse()));
    }

    #[test]
    fn invariant_under_relabeling_all_kernels() {
        // The relabeling invariance of refine() must hold per kernel,
        // not just for whatever Auto dispatches to.
        let g = named::fig3_example();
        let n = g.n();
        let gamma = Perm::from_cycles(n, &[&[0, 5, 9], &[2, 4], &[10, 12], &[11, 13]]).unwrap();
        let gg = g.permuted(&gamma);
        for kind in [KernelKind::General, KernelKind::Bitset] {
            let mut r = Refiner::with_kernel(kind);
            let r1 = r.refine(&g, &Coloring::unit(n));
            let r2 = r.refine(&gg, &Coloring::unit(n));
            assert_eq!(r1.trace, r2.trace, "{kind:?}");
            assert_eq!(r2.coloring, r1.coloring.apply_perm(&gamma.inverse()), "{kind:?}");
        }
    }

    #[test]
    fn kernels_agree_on_named_graphs() {
        // The cheap inline parity check (the proptest suite in
        // tests/kernel_parity.rs covers random colored graphs).
        for g in [
            named::fig1_example(),
            named::fig3_example(),
            named::petersen(),
            named::frucht(),
            named::hypercube(4),
            named::rary_tree(3, 3),
        ] {
            let pi = Coloring::unit(g.n());
            let a = Refiner::with_kernel(KernelKind::General).refine(&g, &pi);
            let b = Refiner::with_kernel(KernelKind::Bitset).refine(&g, &pi);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn individualized_traces_distinguish_orbits() {
        let g = named::fig1_example();
        let base = refine(&g, &Coloring::unit(8)).coloring;
        let r0 = refine_individualized(&g, &base, 0);
        let r2 = refine_individualized(&g, &base, 2);
        let r4 = refine_individualized(&g, &base, 4);
        // 0 and 2 are automorphic: same trace. 0 and 4 are not.
        assert_eq!(r0.trace, r2.trace);
        assert_ne!(r0.trace, r4.trace);
    }

    #[test]
    fn discrete_input_is_fixed_point() {
        let g = named::petersen();
        let pi = Coloring::discrete(10);
        let r = refine(&g, &pi);
        assert_eq!(r.coloring, pi);
    }

    #[test]
    fn kernel_kind_parses_flag_values() {
        assert_eq!(KernelKind::parse("auto"), Some(KernelKind::Auto));
        assert_eq!(KernelKind::parse("general"), Some(KernelKind::General));
        assert_eq!(KernelKind::parse("bitset"), Some(KernelKind::Bitset));
        assert_eq!(KernelKind::parse("dense"), None);
        for k in [KernelKind::Auto, KernelKind::General, KernelKind::Bitset] {
            assert_eq!(KernelKind::parse(k.name()), Some(k));
        }
    }
}
