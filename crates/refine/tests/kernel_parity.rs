//! Kernel parity: the sorting-based `GeneralKernel` and the dense
//! `BitsetKernel` must be observationally identical — same equitable
//! coloring *in the same cell order*, same trace hash, same
//! new-singleton creation order — on any colored graph. Everything
//! downstream (node invariants, certificates, orbit pruning) consumes
//! those three outputs, so this equality is exactly what makes
//! `--kernel` a pure wall-clock choice.
//!
//! The strategies deliberately straddle the bitset kernel's internal
//! thresholds: small dense graphs exercise the popcount counting path,
//! graphs with few colors and ≥32-vertex cells exercise the radix
//! (counting-sort) split, and sparse scatterings exercise the
//! adjacency-list path with the touched-aggregate uniformity test.

use dvicl_graph::{Coloring, Graph, V};
use dvicl_refine::{KernelKind, Refiner};
use proptest::prelude::*;

/// Random colored graphs around the scatter/popcount boundary.
fn arb_colored_graph() -> impl Strategy<Value = (Graph, Coloring)> {
    (2usize..40).prop_flat_map(|n| {
        (
            proptest::collection::vec((0..n as u32, 0..n as u32), 0..120),
            proptest::collection::vec(0u32..4, n),
        )
            .prop_map(move |(edges, labels)| {
                (Graph::from_edges(n, &edges), Coloring::from_labels(&labels))
            })
    })
}

/// Dense graphs (m ≈ n²/4) small enough for the popcount gate.
fn arb_dense_graph() -> impl Strategy<Value = (Graph, Coloring)> {
    (8usize..48).prop_flat_map(|n| {
        let m = n * n / 4;
        (
            proptest::collection::vec((0..n as u32, 0..n as u32), m..m + n),
            proptest::collection::vec(0u32..3, n),
        )
            .prop_map(move |(edges, labels)| {
                (Graph::from_edges(n, &edges), Coloring::from_labels(&labels))
            })
    })
}

/// Large near-monochrome graphs: the initial cells hold ≥32 vertices,
/// so splits take the radix (degree-bucket counting sort) path.
fn arb_big_cell_graph() -> impl Strategy<Value = (Graph, Coloring)> {
    (64usize..140).prop_flat_map(|n| {
        (
            proptest::collection::vec((0..n as u32, 0..n as u32), n..4 * n),
            proptest::collection::vec(0u32..2, n),
        )
            .prop_map(move |(edges, labels)| {
                (Graph::from_edges(n, &edges), Coloring::from_labels(&labels))
            })
    })
}

fn assert_parity(g: &Graph, pi: &Coloring) -> Result<(), String> {
    let a = Refiner::with_kernel(KernelKind::General).refine(g, pi);
    let b = Refiner::with_kernel(KernelKind::Bitset).refine(g, pi);
    // Full structural equality: coloring (cells AND their order), trace,
    // new-singleton order. `Coloring::to_string` is cell-order-sensitive,
    // so compare it too for a readable failure message.
    prop_assert_eq!(
        a.coloring.to_string(),
        b.coloring.to_string(),
        "cell order diverged"
    );
    prop_assert_eq!(&a, &b);
    // Individualize the first vertex of the first non-singleton cell and
    // re-refine: the seeded (swapped, non-ascending) cell layout and the
    // incremental splitter queue must also agree across kernels.
    if let Some(cell) = a.coloring.cells().iter().find(|c| c.len() > 1) {
        let v: V = cell[0];
        let ai = Refiner::with_kernel(KernelKind::General).refine_individualized(g, &a.coloring, v);
        let bi = Refiner::with_kernel(KernelKind::Bitset).refine_individualized(g, &b.coloring, v);
        prop_assert_eq!(&ai, &bi);
    }
    Ok(())
}

proptest! {
    /// Scalar vs bitset on random colored graphs: same partition, same
    /// cell order, same trace, same singleton order.
    #[test]
    fn kernels_agree_on_random_graphs((g, pi) in arb_colored_graph()) {
        assert_parity(&g, &pi)?;
    }

    /// Parity through the popcount counting path (dense, small n).
    #[test]
    fn kernels_agree_on_dense_graphs((g, pi) in arb_dense_graph()) {
        assert_parity(&g, &pi)?;
    }

    /// Parity through the radix split path (cells ≥ 32 vertices).
    #[test]
    fn kernels_agree_on_big_cells((g, pi) in arb_big_cell_graph()) {
        assert_parity(&g, &pi)?;
    }

    /// A refiner whose kernel is re-pointed mid-life (the `core::Session`
    /// retune path) behaves exactly like a freshly built one.
    #[test]
    fn kernel_switch_reuses_buffers_safely((g, pi) in arb_colored_graph()) {
        let mut r = Refiner::new();
        r.set_kernel(KernelKind::Bitset);
        let warm = r.refine(&g, &pi);
        r.set_kernel(KernelKind::General);
        let after_switch = r.refine(&g, &pi);
        prop_assert_eq!(&warm, &after_switch);
        let fresh = Refiner::with_kernel(KernelKind::General).refine(&g, &pi);
        prop_assert_eq!(&after_switch, &fresh);
    }
}

/// Auto dispatch is an implementation detail of *where* the work runs,
/// never of the result: whatever `Auto` picks must match both pins.
#[test]
fn auto_matches_both_pins_on_threshold_sizes() {
    // One graph under the dense ceiling and the named families the
    // engine actually refines; a mismatch here means the dispatcher
    // changed semantics, not just speed.
    for g in [
        dvicl_graph::named::petersen(),
        dvicl_graph::named::hypercube(5),
        dvicl_graph::named::complete_bipartite(7, 9),
        dvicl_graph::named::rary_tree(2, 6),
    ] {
        let pi = Coloring::unit(g.n());
        let auto = Refiner::with_kernel(KernelKind::Auto).refine(&g, &pi);
        let gen = Refiner::with_kernel(KernelKind::General).refine(&g, &pi);
        let bit = Refiner::with_kernel(KernelKind::Bitset).refine(&g, &pi);
        assert_eq!(auto, gen);
        assert_eq!(auto, bit);
    }
}
