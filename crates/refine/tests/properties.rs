//! Property-based tests for the refinement function `R`: the contract of
//! Section 4 — finer-or-equal, equitable, isomorphism-invariant — on
//! random graphs and colorings.

use dvicl_graph::{Coloring, Graph, Perm, V};
use dvicl_refine::{refine, refine_individualized};
use proptest::prelude::*;

fn arb_colored_graph() -> impl Strategy<Value = (Graph, Coloring)> {
    (2usize..25).prop_flat_map(|n| {
        (
            proptest::collection::vec((0..n as u32, 0..n as u32), 0..60),
            proptest::collection::vec(0u32..4, n),
        )
            .prop_map(move |(edges, labels)| {
                (Graph::from_edges(n, &edges), Coloring::from_labels(&labels))
            })
    })
}

fn shuffle(n: usize, seed: u64) -> Perm {
    let mut image: Vec<V> = (0..n as V).collect();
    let mut state = seed | 1;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        image.swap(i, (state >> 33) as usize % (i + 1));
    }
    Perm::from_image(image).expect("bijection")
}

proptest! {
    /// Property (i): R(G, π) ⪯ π, and the result is equitable.
    #[test]
    fn finer_and_equitable((g, pi) in arb_colored_graph()) {
        let r = refine(&g, &pi);
        prop_assert!(r.coloring.is_finer_or_equal(&pi));
        prop_assert!(r.coloring.is_equitable(&g));
    }

    /// Property (iii): R(G^γ, π^γ) = R(G, π)^(γ⁻¹-conjugate), with equal
    /// traces (the node-invariant requirement).
    #[test]
    fn isomorphism_invariance((g, pi) in arb_colored_graph(), seed in any::<u64>()) {
        let gamma = shuffle(g.n(), seed);
        let r1 = refine(&g, &pi);
        let r2 = refine(&g.permuted(&gamma), &pi.apply_perm(&gamma.inverse()));
        prop_assert_eq!(r1.trace, r2.trace);
        prop_assert_eq!(r2.coloring, r1.coloring.apply_perm(&gamma.inverse()));
    }

    /// Refinement is idempotent: refining an equitable coloring is a no-op.
    #[test]
    fn idempotent((g, pi) in arb_colored_graph()) {
        let once = refine(&g, &pi);
        let twice = refine(&g, &once.coloring);
        prop_assert_eq!(&twice.coloring, &once.coloring);
        // ... and reports no newly created singletons beyond the existing
        // ones (everything already singleton counts as "new" at entry).
        prop_assert_eq!(
            twice.new_singletons.len(),
            once.coloring.num_singletons()
        );
    }

    /// Individualization: v lands in a singleton cell; result is finer and
    /// equitable; automorphic choices give equal traces.
    #[test]
    fn individualization_contract((g, pi) in arb_colored_graph()) {
        let refined = refine(&g, &pi).coloring;
        let Some(cell) = refined.cells().iter().find(|c| c.len() > 1) else {
            return Ok(());
        };
        let v = cell[0];
        let r = refine_individualized(&g, &refined, v);
        prop_assert!(r.coloring.is_finer_or_equal(&refined));
        prop_assert!(r.coloring.is_equitable(&g));
        prop_assert_eq!(r.coloring.cell_len_of(v), 1);
    }

    /// The new-singleton report is exactly the difference between the
    /// input and output singleton sets.
    #[test]
    fn new_singletons_are_exact((g, pi) in arb_colored_graph()) {
        let refined = refine(&g, &pi).coloring;
        let Some(cell) = refined.cells().iter().find(|c| c.len() > 1) else {
            return Ok(());
        };
        let v = cell[1 % cell.len()];
        let r = refine_individualized(&g, &refined, v);
        let before: std::collections::HashSet<V> = refined
            .cells()
            .iter()
            .filter(|c| c.len() == 1)
            .map(|c| c[0])
            .collect();
        let after: std::collections::HashSet<V> = r
            .coloring
            .cells()
            .iter()
            .filter(|c| c.len() == 1)
            .map(|c| c[0])
            .collect();
        let reported: std::collections::HashSet<V> = r.new_singletons.iter().copied().collect();
        let expected: std::collections::HashSet<V> = after.difference(&before).copied().collect();
        prop_assert_eq!(reported, expected);
    }
}
