//! The [`Budget`] handle and cooperative [`CancelToken`].

use crate::error::{DviclError, Resource};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// How many work units pass between wall-clock checks in
/// [`Budget::spend`]. Work caps and cancellation are enforced on every
/// call; the clock is only consulted at stride boundaries because
/// `Instant::now` costs far more than an atomic add. Callers spend one
/// unit per refinement split or search node, both of which run in
/// microseconds, so deadline overshoot stays well under a millisecond.
pub const STRIDE: u64 = 256;

/// Reports a budget trip to the observability layer: bumps the
/// `budget_trips` counter and emits a `budget_trip` event carrying the
/// counter snapshot at trip time. Off the hot path by construction —
/// this only runs when the computation is already being aborted.
#[cold]
#[inline(never)]
fn report_trip(resource: &str, spent: u64) {
    dvicl_obs::emit_budget_trip(resource, spent);
}

/// Cooperative cancellation flag, cheaply cloneable and shareable
/// across threads. Cancelling is sticky: once triggered, every budget
/// holding the token fails its next check.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, untriggered token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation of every computation holding this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[derive(Debug)]
struct Inner {
    started: Instant,
    deadline: Option<Instant>,
    max_work: Option<u64>,
    work: AtomicU64,
    cancel: CancelToken,
}

/// A handle describing how much a computation may do: an optional
/// wall-clock deadline, an optional work cap, and a shared
/// [`CancelToken`]. Clones share the same counters, so one budget can
/// govern an entire pipeline (build + leaf searches + enumeration) as a
/// single global allowance.
#[derive(Clone, Debug)]
pub struct Budget {
    inner: Arc<Inner>,
}

impl Budget {
    /// Builds a budget with an optional timeout (measured from now), an
    /// optional work cap, and a caller-provided cancel token.
    pub fn with_cancel(
        timeout: Option<Duration>,
        max_work: Option<u64>,
        cancel: CancelToken,
    ) -> Budget {
        let started = Instant::now();
        Budget {
            inner: Arc::new(Inner {
                started,
                deadline: timeout.map(|t| started + t),
                max_work,
                work: AtomicU64::new(0),
                cancel,
            }),
        }
    }

    /// Builds a budget with an optional timeout and work cap.
    pub fn new(timeout: Option<Duration>, max_work: Option<u64>) -> Budget {
        Budget::with_cancel(timeout, max_work, CancelToken::new())
    }

    /// A shared budget with no limits at all. Cheap to obtain (a clone
    /// of a process-wide handle), so infallible wrappers can call this
    /// on every invocation.
    pub fn unlimited() -> Budget {
        static UNLIMITED: OnceLock<Budget> = OnceLock::new();
        UNLIMITED.get_or_init(|| Budget::new(None, None)).clone()
    }

    /// A budget with only a wall-clock deadline.
    pub fn with_deadline(timeout: Duration) -> Budget {
        Budget::new(Some(timeout), None)
    }

    /// A budget with only a work cap.
    pub fn with_max_work(max_work: u64) -> Budget {
        Budget::new(None, Some(max_work))
    }

    /// A sibling budget that keeps this budget's deadline and cancel
    /// token but drops the work cap (fresh counter). This is the
    /// degraded-mode allowance: after the work cap stops the
    /// divide-and-conquer build, the whole-graph fallback must still be
    /// abortable by time and by cancellation.
    pub fn without_work_limit(&self) -> Budget {
        Budget {
            inner: Arc::new(Inner {
                started: self.inner.started,
                deadline: self.inner.deadline,
                max_work: None,
                work: AtomicU64::new(0),
                cancel: self.inner.cancel.clone(),
            }),
        }
    }

    /// A clone of the cancel token, for handing to whoever may abort
    /// this computation from outside.
    pub fn cancel_token(&self) -> CancelToken {
        self.inner.cancel.clone()
    }

    /// True when neither a deadline nor a work cap is set (the token
    /// may still cancel it).
    pub fn is_unlimited(&self) -> bool {
        self.inner.deadline.is_none() && self.inner.max_work.is_none()
    }

    /// Total work units spent so far across all clones.
    pub fn work_spent(&self) -> u64 {
        self.inner.work.load(Ordering::Relaxed)
    }

    /// Records `n` units of work and fails if any limit is exhausted.
    /// The work cap and the cancel flag are enforced on every call; the
    /// wall clock is consulted every [`STRIDE`] units (and always when
    /// `n >= STRIDE`), because `Instant::now` costs far more than an
    /// atomic load.
    #[inline]
    pub fn spend(&self, n: u64) -> Result<(), DviclError> {
        crate::fault::checkpoint("govern.spend")?;
        if self.inner.cancel.is_cancelled() {
            report_trip("cancelled", self.work_spent());
            return Err(DviclError::Cancelled);
        }
        let before = self.inner.work.fetch_add(n, Ordering::Relaxed);
        let spent = before + n;
        if let Some(max) = self.inner.max_work {
            if spent > max {
                report_trip("work_units", spent);
                return Err(DviclError::BudgetExceeded {
                    resource: Resource::WorkUnits,
                    spent,
                });
            }
        }
        if before / STRIDE != spent / STRIDE {
            self.check()?;
        }
        Ok(())
    }

    /// Immediately checks the cancel flag and the deadline (not the
    /// work cap — spending is what moves that counter).
    pub fn check(&self) -> Result<(), DviclError> {
        if self.inner.cancel.is_cancelled() {
            report_trip("cancelled", self.work_spent());
            return Err(DviclError::Cancelled);
        }
        if let Some(deadline) = self.inner.deadline {
            let now = Instant::now();
            if now > deadline {
                let spent = now.duration_since(self.inner.started).as_millis() as u64;
                report_trip("wall_clock_ms", spent);
                return Err(DviclError::BudgetExceeded {
                    resource: Resource::WallClock,
                    spent,
                });
            }
        }
        Ok(())
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{DviclError, Resource};

    #[test]
    fn unlimited_budget_never_fails() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            b.spend(1).unwrap();
        }
        b.check().unwrap();
        assert!(b.is_unlimited());
    }

    #[test]
    fn work_cap_is_exact() {
        let b = Budget::with_max_work(5);
        for _ in 0..5 {
            b.spend(1).unwrap();
        }
        let err = b.spend(1).unwrap_err();
        assert_eq!(
            err,
            DviclError::BudgetExceeded {
                resource: Resource::WorkUnits,
                spent: 6
            }
        );
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn clones_share_one_allowance() {
        let a = Budget::with_max_work(10);
        let b = a.clone();
        for _ in 0..5 {
            a.spend(1).unwrap();
            b.spend(1).unwrap();
        }
        assert!(b.spend(1).is_err());
        assert_eq!(a.work_spent(), 11);
    }

    #[test]
    fn deadline_fires_even_mid_stride() {
        let b = Budget::with_deadline(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        // check() sees it immediately...
        assert!(matches!(
            b.check(),
            Err(DviclError::BudgetExceeded {
                resource: Resource::WallClock,
                ..
            })
        ));
        // ...and spend() sees it within one stride of work.
        let mut failed = false;
        for _ in 0..=STRIDE {
            if b.spend(1).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "deadline must fire within one stride");
    }

    #[test]
    fn large_spends_check_the_clock_immediately() {
        let b = Budget::with_deadline(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.spend(STRIDE).is_err());
    }

    #[test]
    fn cancellation_is_sticky_and_shared() {
        let b = Budget::new(None, None);
        let token = b.cancel_token();
        b.check().unwrap();
        token.cancel();
        assert_eq!(b.check(), Err(DviclError::Cancelled));
        assert_eq!(b.spend(STRIDE), Err(DviclError::Cancelled));
    }

    #[test]
    fn without_work_limit_keeps_deadline_and_token() {
        let strict = Budget::with_cancel(
            Some(Duration::from_secs(3600)),
            Some(1),
            CancelToken::new(),
        );
        strict.spend(1).unwrap();
        assert!(strict.spend(1).is_err());
        let relaxed = strict.without_work_limit();
        for _ in 0..1000 {
            relaxed.spend(1).unwrap();
        }
        assert!(!relaxed.is_unlimited(), "deadline must survive");
        strict.cancel_token().cancel();
        assert_eq!(relaxed.check(), Err(DviclError::Cancelled));
    }
}
