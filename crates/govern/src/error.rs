//! The unified error taxonomy for every fallible DviCL entry point.

use std::fmt;

/// What a parser choked on. Kept as data (not prose) so tests and
/// callers can match on the failure class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// A line ended before both edge endpoints were present.
    TruncatedLine,
    /// A token that should have been a vertex id was not a base-10 integer.
    NonNumeric,
    /// A vertex id or count overflowed the machine representation.
    Overflow,
    /// The input declared a graph too large to represent.
    TooLarge,
    /// A byte outside the printable graph6 alphabet (63..=126).
    BadByte(u8),
    /// The payload ended before the declared adjacency bits.
    Truncated,
    /// Well-formed data followed by unexpected trailing bytes.
    TrailingData,
    /// The input contained no graph at all.
    Empty,
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::TruncatedLine => write!(f, "truncated line"),
            ParseErrorKind::NonNumeric => write!(f, "non-numeric vertex id"),
            ParseErrorKind::Overflow => write!(f, "vertex id overflow"),
            ParseErrorKind::TooLarge => write!(f, "graph too large"),
            ParseErrorKind::BadByte(b) => write!(f, "invalid byte 0x{b:02x}"),
            ParseErrorKind::Truncated => write!(f, "truncated input"),
            ParseErrorKind::TrailingData => write!(f, "trailing data"),
            ParseErrorKind::Empty => write!(f, "empty input"),
        }
    }
}

/// A typed parse failure from the edge-list or graph6 readers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The failure class.
    pub kind: ParseErrorKind,
    /// 1-based line number, when the input format has lines.
    pub line: Option<usize>,
    /// Free-form context (the offending token, the declared size, ...).
    pub detail: String,
}

impl ParseError {
    /// Builds a parse error with no line attribution.
    pub fn new(kind: ParseErrorKind, detail: impl Into<String>) -> Self {
        ParseError {
            kind,
            line: None,
            detail: detail.into(),
        }
    }

    /// Attaches a 1-based line number.
    pub fn at_line(mut self, line: usize) -> Self {
        self.line = Some(line);
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.kind)?;
        if let Some(line) = self.line {
            write!(f, " on line {line}")?;
        }
        if !self.detail.is_empty() {
            write!(f, " ({})", self.detail)?;
        }
        Ok(())
    }
}

/// Which budgeted resource ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// The cooperative work counter (search-tree nodes, matcher states,
    /// refinement splits) hit its cap.
    WorkUnits,
    /// The wall-clock deadline passed.
    WallClock,
    /// A memory ceiling (subgraph-arena pool bytes) was reached.
    Memory,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::WorkUnits => write!(f, "work units"),
            Resource::WallClock => write!(f, "wall clock"),
            Resource::Memory => write!(f, "memory"),
        }
    }
}

/// The error type every fallible DviCL entry point returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DviclError {
    /// The input could not be parsed.
    Parse(ParseError),
    /// A [`crate::Budget`] limit was reached. `spent` is work units for
    /// [`Resource::WorkUnits`] and elapsed milliseconds for
    /// [`Resource::WallClock`].
    BudgetExceeded {
        /// Which limit was hit.
        resource: Resource,
        /// How much of it had been consumed when the check fired.
        spent: u64,
    },
    /// The computation's [`crate::CancelToken`] was triggered.
    Cancelled,
    /// The request itself was malformed (bad flag value, out-of-range
    /// vertex, k = 0, ...).
    InvalidInput(String),
    /// A paranoid witness check rejected an output: the claimed
    /// labeling, generator, or iso mapping did not actually hold on the
    /// graph. This is always a bug (or an injected fault), never a
    /// property of the input.
    WitnessFailure {
        /// Which verification stage rejected the witness
        /// (`"root_form"`, `"generator"`, `"iso_mapping"`, ...).
        stage: &'static str,
        /// What exactly did not hold.
        detail: String,
    },
}

impl DviclError {
    /// Shorthand for an [`DviclError::InvalidInput`] with a formatted message.
    pub fn invalid(msg: impl Into<String>) -> Self {
        DviclError::InvalidInput(msg.into())
    }

    /// Shorthand for a [`DviclError::WitnessFailure`].
    pub fn witness(stage: &'static str, detail: impl Into<String>) -> Self {
        DviclError::WitnessFailure {
            stage,
            detail: detail.into(),
        }
    }

    /// The CLI exit code for this error: 2 for bad input, 3 when a
    /// budget ran out or the run was cancelled, 4 when a paranoid
    /// witness check rejected an output.
    pub fn exit_code(&self) -> u8 {
        match self {
            DviclError::Parse(_) | DviclError::InvalidInput(_) => 2,
            DviclError::BudgetExceeded { .. } | DviclError::Cancelled => 3,
            DviclError::WitnessFailure { .. } => 4,
        }
    }

    /// True when the error means "ran out of budget", as opposed to a
    /// problem with the request itself.
    pub fn is_exhaustion(&self) -> bool {
        matches!(
            self,
            DviclError::BudgetExceeded { .. } | DviclError::Cancelled
        )
    }
}

impl fmt::Display for DviclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DviclError::Parse(e) => e.fmt(f),
            DviclError::BudgetExceeded { resource, spent } => match resource {
                Resource::WorkUnits => {
                    write!(f, "budget exceeded: {spent} work units spent")
                }
                Resource::WallClock => {
                    write!(f, "budget exceeded: deadline passed after {spent} ms")
                }
                Resource::Memory => {
                    write!(f, "budget exceeded: memory ceiling hit at {spent} bytes")
                }
            },
            DviclError::Cancelled => write!(f, "cancelled"),
            DviclError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            DviclError::WitnessFailure { stage, detail } => {
                write!(f, "witness check failed at {stage}: {detail}")
            }
        }
    }
}

impl std::error::Error for DviclError {}

impl From<ParseError> for DviclError {
    fn from(e: ParseError) -> Self {
        DviclError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_match_the_cli_contract() {
        assert_eq!(
            DviclError::Parse(ParseError::new(ParseErrorKind::Empty, "")).exit_code(),
            2
        );
        assert_eq!(DviclError::invalid("k must be >= 1").exit_code(), 2);
        assert_eq!(
            DviclError::BudgetExceeded {
                resource: Resource::WallClock,
                spent: 101
            }
            .exit_code(),
            3
        );
        assert_eq!(DviclError::Cancelled.exit_code(), 3);
        assert_eq!(DviclError::witness("root_form", "edge mismatch").exit_code(), 4);
    }

    #[test]
    fn display_is_informative() {
        let e = DviclError::Parse(
            ParseError::new(ParseErrorKind::NonNumeric, "token 'abc'").at_line(3),
        );
        let msg = e.to_string();
        assert!(msg.contains("line 3"), "{msg}");
        assert!(msg.contains("abc"), "{msg}");
        let b = DviclError::BudgetExceeded {
            resource: Resource::WorkUnits,
            spent: 512,
        };
        assert!(b.to_string().contains("512"));
        // The trait object form works (std::error::Error is implemented).
        let boxed: Box<dyn std::error::Error> = Box::new(b);
        assert!(boxed.to_string().contains("budget"));
    }

    #[test]
    fn exhaustion_classification() {
        assert!(DviclError::Cancelled.is_exhaustion());
        assert!(DviclError::BudgetExceeded {
            resource: Resource::WorkUnits,
            spent: 1
        }
        .is_exhaustion());
        assert!(!DviclError::invalid("nope").is_exhaustion());
        assert!(!DviclError::witness("generator", "not a bijection").is_exhaustion());
    }

    #[test]
    fn witness_and_memory_display_are_informative() {
        let w = DviclError::witness("iso_mapping", "edge (0,1) unmapped");
        let msg = w.to_string();
        assert!(msg.contains("iso_mapping"), "{msg}");
        assert!(msg.contains("(0,1)"), "{msg}");
        let m = DviclError::BudgetExceeded {
            resource: Resource::Memory,
            spent: 4096,
        };
        assert!(m.to_string().contains("4096"));
        assert!(m.is_exhaustion());
        assert_eq!(m.exit_code(), 3);
        assert_eq!(Resource::Memory.to_string(), "memory");
    }
}
