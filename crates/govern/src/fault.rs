//! Deterministic fault injection: the [`FaultPlan`] and its
//! process-wide [`checkpoint`] hooks.
//!
//! Every recovery path in the pipeline — budget trips, the whole-graph
//! fallback, arena unwinding, parser error returns — is code that only
//! runs when something goes wrong, which means it is exactly the code
//! ordinary tests never execute. A `FaultPlan` makes "something goes
//! wrong" reproducible: it names a checkpoint site and an ordinal, and
//! the `k`-th time execution reaches that site the plan injects a typed
//! failure ([`DviclError::BudgetExceeded`], [`DviclError::Cancelled`],
//! or a [`DviclError::Parse`]) precisely there.
//!
//! The plan is configured from a spec string (CLI `--fault-plan`, env
//! `DVICL_FAULT_PLAN`): a comma-separated list of arms, each
//! `<action>@<site>:<k>` —
//!
//! * `action` — `trip` (work-cap exhaustion), `cancel` (cooperative
//!   cancellation), `alloc` (arena memory-ceiling hit), or `parse`
//!   (truncated-input parser failure);
//! * `site` — a checkpoint name (`govern.spend`, `core.build_node`,
//!   ...; the full map lives in DESIGN.md §11) or `*` for "any
//!   checkpoint";
//! * `k` — the 1-based hit ordinal at which the arm fires, counted per
//!   site (or across all sites for `*`). Each arm fires exactly once.
//!
//! With no plan installed a [`checkpoint`] call is a single relaxed
//! atomic load — the hooks are free in production. With a plan
//! installed every hit is also *counted*, which is how the fault-sweep
//! harness discovers the checkpoint space: install an empty plan, run
//! the pipeline once, read [`hit_counts`], then enumerate `(site, k)`
//! injection points from the observed totals.

use crate::error::{DviclError, ParseError, ParseErrorKind, Resource};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError, RwLock};

/// Which typed failure an arm injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Work-cap exhaustion: `BudgetExceeded { resource: WorkUnits }`.
    Trip,
    /// Cooperative cancellation: `Cancelled`.
    Cancel,
    /// Arena memory-ceiling hit: `BudgetExceeded { resource: Memory }`.
    Alloc,
    /// Parser failure: `Parse` with [`ParseErrorKind::Truncated`].
    Parse,
}

impl FaultAction {
    /// The spec-string name of this action.
    pub fn name(self) -> &'static str {
        match self {
            FaultAction::Trip => "trip",
            FaultAction::Cancel => "cancel",
            FaultAction::Alloc => "alloc",
            FaultAction::Parse => "parse",
        }
    }

    fn to_error(self, site: &str, hit: u64) -> DviclError {
        match self {
            FaultAction::Trip => DviclError::BudgetExceeded {
                resource: Resource::WorkUnits,
                spent: hit,
            },
            FaultAction::Cancel => DviclError::Cancelled,
            FaultAction::Alloc => DviclError::BudgetExceeded {
                resource: Resource::Memory,
                spent: hit,
            },
            FaultAction::Parse => DviclError::Parse(ParseError::new(
                ParseErrorKind::Truncated,
                format!("injected fault at {site}"),
            )),
        }
    }
}

/// One arm of a plan: inject `action` at the `k`-th hit of `site`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultArm {
    /// The failure to inject.
    pub action: FaultAction,
    /// The checkpoint site this arm watches, or `"*"` for any site.
    pub site: String,
    /// The 1-based hit ordinal at which to fire.
    pub k: u64,
}

impl FaultArm {
    fn parse(spec: &str) -> Result<FaultArm, DviclError> {
        let bad = || {
            DviclError::invalid(format!(
                "invalid fault arm '{spec}' (expected <action>@<site>:<k>)"
            ))
        };
        let (action, rest) = spec.split_once('@').ok_or_else(bad)?;
        let (site, k) = rest.rsplit_once(':').ok_or_else(bad)?;
        let action = match action.trim() {
            "trip" => FaultAction::Trip,
            "cancel" => FaultAction::Cancel,
            "alloc" => FaultAction::Alloc,
            "parse" => FaultAction::Parse,
            other => {
                return Err(DviclError::invalid(format!(
                    "invalid fault action '{other}' (expected trip, cancel, alloc, or parse)"
                )))
            }
        };
        let site = site.trim();
        if site.is_empty() {
            return Err(bad());
        }
        let k: u64 = k.trim().parse().map_err(|_| bad())?;
        if k == 0 {
            return Err(DviclError::invalid(format!(
                "invalid fault arm '{spec}': hit ordinal is 1-based, k must be >= 1"
            )));
        }
        Ok(FaultArm {
            action,
            site: site.to_string(),
            k,
        })
    }
}

/// A parsed fault-injection plan: zero or more [`FaultArm`]s.
///
/// An empty plan injects nothing but still counts checkpoint hits —
/// that is probe mode, used by the sweep harness to discover how many
/// injection points a given workload exposes.
///
/// ```
/// use dvicl_govern::{FaultAction, FaultPlan};
/// let plan = FaultPlan::parse("trip@govern.spend:3, cancel@*:10").unwrap();
/// assert_eq!(plan.arms.len(), 2);
/// assert_eq!(plan.arms[0].action, FaultAction::Trip);
/// assert_eq!(plan.arms[1].site, "*");
/// assert!(FaultPlan::parse("explode@x:1").is_err());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The arms, in spec order. Earlier arms win when several match the
    /// same hit.
    pub arms: Vec<FaultArm>,
}

impl FaultPlan {
    /// An empty (probe-mode) plan: counts hits, injects nothing.
    pub fn probe() -> FaultPlan {
        FaultPlan::default()
    }

    /// A single-arm plan — the sweep harness builds these in a loop.
    pub fn one(action: FaultAction, site: impl Into<String>, k: u64) -> FaultPlan {
        FaultPlan {
            arms: vec![FaultArm {
                action,
                site: site.into(),
                k,
            }],
        }
    }

    /// Parses a spec string: comma-separated `<action>@<site>:<k>` arms.
    /// An empty (or all-whitespace) spec is the probe plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, DviclError> {
        let mut arms = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            arms.push(FaultArm::parse(part)?);
        }
        Ok(FaultPlan { arms })
    }
}

/// Mutable per-installation state, behind one mutex: hit counts per
/// site, the cross-site total (what `*` arms count against), and which
/// arms have already fired.
#[derive(Debug, Default)]
struct State {
    counts: BTreeMap<&'static str, u64>,
    total: u64,
    fired: Vec<bool>,
}

#[derive(Debug)]
struct Installed {
    plan: FaultPlan,
    state: Mutex<State>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static PLAN: RwLock<Option<Installed>> = RwLock::new(None);

/// Installs `plan` process-wide, replacing any previous plan and
/// resetting all hit counts. Checkpoints start counting (and possibly
/// injecting) immediately.
pub fn install(plan: FaultPlan) {
    let fired = vec![false; plan.arms.len()];
    let installed = Installed {
        plan,
        state: Mutex::new(State {
            fired,
            ..State::default()
        }),
    };
    *PLAN.write().unwrap_or_else(PoisonError::into_inner) = Some(installed);
    ACTIVE.store(true, Ordering::Release);
}

/// Removes the installed plan; checkpoints return to their free
/// fast path.
pub fn clear() {
    ACTIVE.store(false, Ordering::Release);
    *PLAN.write().unwrap_or_else(PoisonError::into_inner) = None;
}

/// Whether a plan is currently installed (probe or injecting).
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Installs a plan from the `DVICL_FAULT_PLAN` environment variable, if
/// set. Returns `Ok(true)` when a plan was installed, `Ok(false)` when
/// the variable is absent, and a typed error for a malformed spec.
pub fn install_from_env() -> Result<bool, DviclError> {
    match std::env::var("DVICL_FAULT_PLAN") {
        Ok(spec) => {
            install(FaultPlan::parse(&spec)?);
            Ok(true)
        }
        Err(_) => Ok(false),
    }
}

/// Per-site checkpoint hit counts since the last [`install`], in site
/// name order. Empty when no plan is installed.
pub fn hit_counts() -> Vec<(&'static str, u64)> {
    let guard = PLAN.read().unwrap_or_else(PoisonError::into_inner);
    match guard.as_ref() {
        Some(inst) => {
            let state = inst.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.counts.iter().map(|(&s, &c)| (s, c)).collect()
        }
        None => Vec::new(),
    }
}

/// Every checkpoint site in the workspace, sorted. This is the
/// authoritative registry: `dvicl-lint`'s registry-coherence rule
/// extracts the `checkpoint("…")` call sites from source and
/// cross-checks them against this list in both directions, and the
/// `checkpoint_registry` integration test asserts the fault sweep
/// replays exactly this set. Adding a checkpoint without registering
/// it here (or vice versa) fails CI.
pub const CHECKPOINT_SITES: [&str; 14] = [
    "canon.dfs",
    "core.arena_carve",
    "core.build_node",
    "core.leaf_ir",
    "core.ssm",
    "govern.spend",
    "graph.edge_line",
    "graph.graph6",
    "index.insert",
    "index.load",
    "pool.spawn",
    "refine.individualize",
    "refine.kernel",
    "refine.refine",
];

/// A named fault-injection point. Free (one relaxed atomic load) unless
/// a plan is installed; with a plan installed, counts the hit and
/// injects the matching arm's typed error, if any.
///
/// Site names follow the span naming convention (`crate.phase`
/// dot-paths, enforced by `dvicl-lint`); the checkpoint map lives in
/// DESIGN.md §11.
#[inline]
pub fn checkpoint(site: &'static str) -> Result<(), DviclError> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return Ok(());
    }
    checkpoint_slow(site)
}

#[cold]
#[inline(never)]
fn checkpoint_slow(site: &'static str) -> Result<(), DviclError> {
    let guard = PLAN.read().unwrap_or_else(PoisonError::into_inner);
    let Some(inst) = guard.as_ref() else {
        return Ok(());
    };
    let mut state = inst.state.lock().unwrap_or_else(PoisonError::into_inner);
    state.total += 1;
    let total = state.total;
    let site_hits = {
        let c = state.counts.entry(site).or_insert(0);
        *c += 1;
        *c
    };
    for (i, arm) in inst.plan.arms.iter().enumerate() {
        if state.fired[i] {
            continue;
        }
        let hit = if arm.site == "*" {
            total
        } else if arm.site == site {
            site_hits
        } else {
            continue;
        };
        if hit == arm.k {
            state.fired[i] = true;
            let action = arm.action;
            drop(state);
            drop(guard);
            report_injection(site, action, hit);
            return Err(action.to_error(site, hit));
        }
    }
    Ok(())
}

/// Reports an injected fault to the observability layer. Off the hot
/// path — this runs at most once per arm per installation.
#[cold]
#[inline(never)]
fn report_injection(site: &'static str, action: FaultAction, hit: u64) {
    dvicl_obs::bump(dvicl_obs::Counter::FaultInjections);
    dvicl_obs::emit(
        "fault_injected",
        &[
            ("site", dvicl_obs::Value::Str(site.to_string())),
            ("action", dvicl_obs::Value::Str(action.name().to_string())),
            ("hit", dvicl_obs::Value::U64(hit)),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fault state is process-global; these tests serialize on one lock
    /// (the same pattern the bench suite uses for its obs state).
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn parse_accepts_the_grammar_and_rejects_garbage() {
        let plan = FaultPlan::parse(" trip@core.build_node:2 ,parse@graph.edge_line:1").unwrap();
        assert_eq!(plan.arms.len(), 2);
        assert_eq!(plan.arms[0].k, 2);
        assert_eq!(plan.arms[1].action, FaultAction::Parse);
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::probe());
        for bad in [
            "trip",
            "trip@x",
            "trip@x:zero",
            "trip@:1",
            "trip@x:0",
            "explode@x:1",
            "trip@x:1,,oops",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{bad:?} gave {err:?}");
        }
    }

    #[test]
    fn checkpoint_is_free_without_a_plan() {
        let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        clear();
        assert!(!is_active());
        for _ in 0..1000 {
            checkpoint("govern.spend").unwrap();
        }
        assert!(hit_counts().is_empty());
    }

    #[test]
    fn probe_plan_counts_without_injecting() {
        let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        install(FaultPlan::probe());
        for _ in 0..3 {
            checkpoint("core.build_node").unwrap();
        }
        checkpoint("refine.refine").unwrap();
        assert_eq!(
            hit_counts(),
            vec![("core.build_node", 3), ("refine.refine", 1)]
        );
        clear();
    }

    #[test]
    fn arm_fires_at_exactly_the_kth_hit_and_only_once() {
        let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        install(FaultPlan::one(FaultAction::Trip, "canon.dfs", 3));
        checkpoint("canon.dfs").unwrap();
        checkpoint("core.leaf_ir").unwrap(); // other sites don't count
        checkpoint("canon.dfs").unwrap();
        let err = checkpoint("canon.dfs").unwrap_err();
        assert_eq!(
            err,
            DviclError::BudgetExceeded {
                resource: Resource::WorkUnits,
                spent: 3
            }
        );
        // One-shot: the 4th hit passes.
        checkpoint("canon.dfs").unwrap();
        clear();
    }

    #[test]
    fn wildcard_counts_across_sites_and_actions_map_to_errors() {
        let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        install(FaultPlan::parse("cancel@*:2").unwrap());
        checkpoint("refine.refine").unwrap();
        assert_eq!(checkpoint("canon.dfs"), Err(DviclError::Cancelled));
        clear();

        install(FaultPlan::one(FaultAction::Alloc, "core.arena_carve", 1));
        assert!(matches!(
            checkpoint("core.arena_carve"),
            Err(DviclError::BudgetExceeded {
                resource: Resource::Memory,
                ..
            })
        ));
        clear();

        install(FaultPlan::one(FaultAction::Parse, "graph.edge_line", 1));
        let err = checkpoint("graph.edge_line").unwrap_err();
        match &err {
            DviclError::Parse(p) => {
                assert_eq!(p.kind, ParseErrorKind::Truncated);
                assert!(p.detail.contains("graph.edge_line"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        clear();
    }

    #[test]
    fn install_resets_counts_and_fired_state() {
        let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        install(FaultPlan::one(FaultAction::Cancel, "core.ssm", 1));
        assert!(checkpoint("core.ssm").is_err());
        install(FaultPlan::one(FaultAction::Cancel, "core.ssm", 1));
        assert!(checkpoint("core.ssm").is_err(), "reinstall must rearm");
        assert_eq!(hit_counts(), vec![("core.ssm", 1)]);
        clear();
    }
}
