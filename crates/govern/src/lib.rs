//! Execution governance for the DviCL pipeline.
//!
//! The IR backtrack search at the heart of DviCL is worst-case
//! exponential, and the paper's own evaluation (Tables 2–5) runs every
//! engine under a per-run budget. This crate makes bounded, abortable
//! execution a first-class property of the whole pipeline instead of an
//! ad-hoc feature of one leaf labeler:
//!
//! - [`Budget`] — a cheaply-cloneable handle carrying an optional
//!   wall-clock deadline, an optional work cap (search-tree nodes,
//!   matcher states, refinement splits), and a shared [`CancelToken`].
//!   Hot loops call [`Budget::spend`], which counts work on every call
//!   but only consults the clock every [`STRIDE`] units.
//! - [`CancelToken`] — cooperative cancellation shared across threads;
//!   a request handler can abort an in-flight computation from outside.
//! - [`DviclError`] — the unified error taxonomy every fallible entry
//!   point returns, with a stable [`DviclError::exit_code`] mapping for
//!   the CLI (2 = bad input, 3 = budget exceeded / cancelled).
//!
//! Budget trips are observable: the error paths of [`Budget::spend`]
//! and [`Budget::check`] report through `dvicl-obs` (the `budget_trips`
//! counter and a `budget_trip` event carrying the counter snapshot at
//! trip time), so a truncated run still records how far it got. See
//! DESIGN.md §9.
//!
//! The [`fault`] module adds deterministic fault injection on top:
//! named [`fault::checkpoint`]s throughout the pipeline are free until
//! a [`FaultPlan`] is installed, after which the plan injects typed
//! errors at exact checkpoint ordinals — the machinery behind the
//! fault-sweep harness and the `DVICL_FAULT_PLAN` / `--fault-plan`
//! surfaces. See DESIGN.md §11.

#![deny(missing_docs)]

mod budget;
mod error;
pub mod fault;

pub use budget::{Budget, CancelToken, STRIDE};
pub use error::{DviclError, ParseError, ParseErrorKind, Resource};
pub use fault::{FaultAction, FaultArm, FaultPlan};

use std::time::Duration;

/// Parses a human-friendly duration: `100ms`, `5s`, `2m`, `1h`, or a
/// bare (possibly fractional) number of seconds.
pub fn parse_duration(s: &str) -> Result<Duration, DviclError> {
    let s = s.trim();
    let split = s
        .find(|c: char| c != '.' && !c.is_ascii_digit())
        .unwrap_or(s.len());
    let (num, unit) = s.split_at(split);
    let value: f64 = num
        .parse()
        .map_err(|_| DviclError::InvalidInput(format!("invalid duration '{s}'")))?;
    let scale = match unit.trim() {
        "ms" => 1e-3,
        "" | "s" => 1.0,
        "m" => 60.0,
        "h" => 3600.0,
        other => {
            return Err(DviclError::InvalidInput(format!(
                "invalid duration unit '{other}' (expected ms, s, m, or h)"
            )))
        }
    };
    let secs = value * scale;
    if !secs.is_finite() || secs < 0.0 {
        return Err(DviclError::InvalidInput(format!("invalid duration '{s}'")));
    }
    Ok(Duration::from_secs_f64(secs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_duration_accepts_the_common_forms() {
        assert_eq!(parse_duration("100ms").unwrap(), Duration::from_millis(100));
        assert_eq!(parse_duration("5s").unwrap(), Duration::from_secs(5));
        assert_eq!(parse_duration("5").unwrap(), Duration::from_secs(5));
        assert_eq!(parse_duration("1.5s").unwrap(), Duration::from_millis(1500));
        assert_eq!(parse_duration("2m").unwrap(), Duration::from_secs(120));
        assert_eq!(parse_duration("1h").unwrap(), Duration::from_secs(3600));
        assert_eq!(parse_duration(" 250ms ").unwrap(), Duration::from_millis(250));
    }

    #[test]
    fn parse_duration_rejects_garbage() {
        for bad in ["", "fast", "10q", "-3s", "1e999", "..", "ms"] {
            let err = parse_duration(bad).unwrap_err();
            assert!(
                matches!(err, DviclError::InvalidInput(_)),
                "{bad:?} gave {err:?}"
            );
            assert_eq!(err.exit_code(), 2);
        }
    }
}
