//! Benchmark harness support for the DviCL reproduction.
//!
//! * [`alloc::Meter`] — a counting global allocator measuring live and
//!   peak heap bytes, standing in for the paper's per-process peak-memory
//!   column (Table 5).
//! * [`suite`] — shared helpers: dataset loading, engine configurations
//!   (the paper's `X` and `DviCL+X` columns), time budgets and formatting.
//!
//! Each `tableN` binary in `src/bin/` regenerates one table of the paper's
//! evaluation; see EXPERIMENTS.md for the mapping and the measured output.

pub mod alloc;
pub mod suite;
