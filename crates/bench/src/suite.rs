//! Shared helpers for the table binaries.

use dvicl_canon::{try_canonical_form, Config};
use dvicl_core::{try_build_autotree, AutoTree, DviclOptions};
use dvicl_govern::Budget;
use dvicl_graph::{Coloring, Graph};
use std::time::{Duration, Instant};

/// The three baseline engines of the paper's evaluation and their
/// `DviCL+X` counterparts. The names mirror the paper's columns; see
/// `dvicl-canon` for what each configuration stands in for.
pub fn engines() -> Vec<(&'static str, Config)> {
    vec![
        ("nauty", Config::nauty_like()),
        ("traces", Config::traces_like()),
        ("bliss", Config::bliss_like()),
    ]
}

/// Wall-clock budget for one baseline run. The paper allowed 2 hours on
/// graphs two orders of magnitude larger; the scaled default is 20 s and
/// can be overridden with `DVICL_BUDGET_SECS`.
pub fn budget() -> Duration {
    let secs = std::env::var("DVICL_BUDGET_SECS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(20);
    Duration::from_secs(secs)
}

/// Outcome of one measured run.
pub struct Run {
    /// Wall-clock seconds, `None` if the budget was exceeded.
    pub secs: Option<f64>,
    /// Peak extra heap bytes during the run.
    pub peak_bytes: usize,
}

impl Run {
    /// Formats the time column the way the paper does (`-` = exceeded).
    pub fn fmt_time(&self) -> String {
        match self.secs {
            Some(s) if s < 0.01 => "<0.01".to_string(),
            Some(s) => format!("{s:.2}"),
            None => "-".to_string(),
        }
    }

    /// Formats the memory column (MB; `-` when the run did not finish).
    pub fn fmt_mem(&self) -> String {
        match self.secs {
            Some(_) => crate::alloc::fmt_mb(self.peak_bytes),
            None => "-".to_string(),
        }
    }
}

/// Runs a baseline engine `X` alone on `(g, unit)` under the budget.
pub fn run_baseline(g: &Graph, config: &Config) -> Run {
    crate::alloc::reset_peak();
    let before = crate::alloc::live_bytes();
    let t0 = Instant::now();
    let limits = Budget::with_deadline(budget());
    let result = try_canonical_form(g, &Coloring::unit(g.n()), config, &limits);
    let secs = t0.elapsed().as_secs_f64();
    Run {
        secs: result.ok().map(|_| secs),
        peak_bytes: crate::alloc::peak_bytes().saturating_sub(before),
    }
}

/// Runs `DviCL+X` (AutoTree construction with `X` as the leaf labeler),
/// under the same per-run budget as the baselines (a benchmark graph can
/// be one huge leaf).
pub fn run_dvicl(g: &Graph, config: &Config) -> (Run, Option<AutoTree>) {
    crate::alloc::reset_peak();
    let before = crate::alloc::live_bytes();
    let t0 = Instant::now();
    let opts = DviclOptions {
        leaf_config: config.clone(),
        ..DviclOptions::default()
    };
    let tree = try_build_autotree(g, &Coloring::unit(g.n()), &opts, &Budget::with_deadline(budget())).ok();
    let secs = t0.elapsed().as_secs_f64();
    (
        Run {
            secs: tree.is_some().then_some(secs),
            peak_bytes: crate::alloc::peak_bytes().saturating_sub(before),
        },
        tree,
    )
}

/// Prints a row of `|`-free aligned columns.
pub fn print_row(cols: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (i, c) in cols.iter().enumerate() {
        let w = widths.get(i).copied().unwrap_or(12);
        line.push_str(&format!("{c:>w$}  "));
    }
    println!("{}", line.trim_end());
}

/// Prints a left-aligned header row.
pub fn print_header(cols: &[&str], widths: &[usize]) {
    let strings: Vec<String> = cols.iter().map(|c| c.to_string()).collect();
    print_row(&strings, widths);
    let total: usize = widths.iter().map(|w| w + 2).sum();
    println!("{}", "-".repeat(total));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_formats_like_the_paper() {
        let finished = Run {
            secs: Some(1.234),
            peak_bytes: 3 * 1024 * 1024,
        };
        assert_eq!(finished.fmt_time(), "1.23");
        assert_eq!(finished.fmt_mem(), "3.00");
        let fast = Run {
            secs: Some(0.004),
            peak_bytes: 10,
        };
        assert_eq!(fast.fmt_time(), "<0.01");
        let failed = Run {
            secs: None,
            peak_bytes: 999,
        };
        assert_eq!(failed.fmt_time(), "-");
        assert_eq!(failed.fmt_mem(), "-");
    }

    #[test]
    fn engines_match_the_paper_columns() {
        let names: Vec<&str> = engines().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["nauty", "traces", "bliss"]);
    }

    #[test]
    fn baseline_and_dvicl_agree_on_a_small_graph() {
        let g = dvicl_graph::named::fig1_example();
        for (_, config) in engines() {
            let base = run_baseline(&g, &config);
            assert!(base.secs.is_some(), "tiny graph must finish");
            let (run, tree) = run_dvicl(&g, &config);
            assert!(run.secs.is_some());
            assert_eq!(tree.expect("built").stats().total_nodes, 7);
        }
    }

    #[test]
    fn budget_env_override() {
        // Whatever the ambient env, budget() is positive and finite.
        assert!(budget().as_secs() >= 1);
    }
}
