//! Shared helpers for the table binaries.
//!
//! Every binary funnels its measured work through [`measure`] (counter
//! deltas + peak heap + wall clock) and its AutoTree builds through
//! [`build_tree`] (so `DVICL_BUDGET_SECS` is enforced by
//! `govern::Budget` everywhere, never by a binary-private timer), and
//! appends machine-readable rows to a [`Recorder`], which writes the
//! `BENCH_<table>.json` document described in DESIGN.md §9.
//!
//! Builds go through a caller-owned [`Session`] ([`dvicl_session`] pins
//! one to an engine config): a table binary that labels its whole suite
//! reuses one session's arena pools and `CombineCL` memo across every
//! graph, exactly like the `dvicl batch` service. Certificates are
//! byte-identical to one-shot builds — reuse changes where the working
//! memory comes from, never the result.

use dvicl_canon::{try_canonical_form, Config, KernelKind, TargetCell};
use dvicl_core::{AutoTree, DviclOptions, Session};
use dvicl_govern::Budget;
use dvicl_graph::{Coloring, Graph};
use dvicl_obs::{self as obs, JsonArr, JsonObj, Snapshot, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Whether `--paranoid` / `DVICL_PARANOID` is in force: every AutoTree a
/// table binary builds is re-checked against its witness before its row
/// is recorded (DESIGN.md §11).
static PARANOID: AtomicBool = AtomicBool::new(false);

/// True when witness checking was requested for this benchmark process.
pub fn paranoid() -> bool {
    PARANOID.load(Ordering::Relaxed)
}

/// The `--threads` / `DVICL_THREADS` selection for every DviCL build in
/// this benchmark process (default 1; `0` = all cores). Baseline engines
/// ignore it — only AutoTree construction parallelizes — and the
/// certificates are byte-identical at any width, so the columns stay
/// comparable across widths.
static THREADS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(1);

/// The build width requested for this benchmark process.
pub fn threads() -> usize {
    THREADS.load(Ordering::Relaxed)
}

/// The `--kernel` / `DVICL_KERNEL` selection (default `auto`), stored as
/// the `KernelKind` discriminant. Both kernels produce byte-identical
/// certificates, so this only moves the wall-clock and kernel counters.
static KERNEL: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// The refinement kernel requested for this benchmark process.
pub fn kernel() -> KernelKind {
    match KERNEL.load(Ordering::Relaxed) {
        1 => KernelKind::General,
        2 => KernelKind::Bitset,
        _ => KernelKind::Auto,
    }
}

/// The `--target-cell` / `DVICL_TARGET_CELL` override; `usize::MAX`
/// means "not set" so every engine keeps its own selector (nauty-like
/// first, traces-like largest, ...).
static TARGET_CELL: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(usize::MAX);

/// The target-cell selector override, if one was requested.
pub fn target_cell() -> Option<TargetCell> {
    match TARGET_CELL.load(Ordering::Relaxed) {
        0 => Some(TargetCell::FirstNonSingleton),
        1 => Some(TargetCell::SmallestFirst),
        2 => Some(TargetCell::LargestFirst),
        3 => Some(TargetCell::MostConstrained),
        _ => None,
    }
}

/// Applies the process-wide `--kernel` / `--target-cell` overrides to an
/// engine configuration. Every baseline run and DviCL session in a table
/// binary goes through here, so one flag steers the whole table.
pub fn configured(mut config: Config) -> Config {
    config.kernel = kernel();
    if let Some(tc) = target_cell() {
        config.target_cell = tc;
    }
    config
}

/// The three baseline engines of the paper's evaluation and their
/// `DviCL+X` counterparts. The names mirror the paper's columns; see
/// `dvicl-canon` for what each configuration stands in for.
pub fn engines() -> Vec<(&'static str, Config)> {
    vec![
        ("nauty", Config::nauty_like()),
        ("traces", Config::traces_like()),
        ("bliss", Config::bliss_like()),
    ]
}

/// Wall-clock budget for one baseline run. The paper allowed 2 hours on
/// graphs two orders of magnitude larger; the scaled default is 20 s and
/// can be overridden with `DVICL_BUDGET_SECS`.
pub fn budget() -> Duration {
    let secs = std::env::var("DVICL_BUDGET_SECS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(20);
    Duration::from_secs(secs)
}

/// Parses the flags shared by every table binary (`--stats`,
/// `--paranoid`, `--threads <N>`, `--kernel <K>`, `--target-cell <T>`,
/// `--trace-json <path>`) and installs the matching sink.
/// `DVICL_PARANOID` / `DVICL_THREADS` / `DVICL_KERNEL` /
/// `DVICL_TARGET_CELL` are the environment equivalents (a flag wins over
/// its variable). Call first in `main`; [`Recorder::write`] flushes the
/// sink at the end via `dvicl_obs::finish`.
pub fn init_obs() {
    let args: Vec<String> = std::env::args().collect();
    let mut stats = false;
    let mut trace: Option<String> = None;
    if std::env::var("DVICL_PARANOID").map(|v| !v.is_empty() && v != "0") == Ok(true) {
        PARANOID.store(true, Ordering::Relaxed);
    }
    if let Ok(v) = std::env::var("DVICL_THREADS") {
        match v.parse::<usize>() {
            Ok(n) => THREADS.store(n, Ordering::Relaxed),
            Err(_) => {
                eprintln!("DVICL_THREADS: not a count: {v:?}");
                std::process::exit(2);
            }
        }
    }
    if let Ok(v) = std::env::var("DVICL_KERNEL") {
        match KernelKind::parse(&v) {
            Some(k) => KERNEL.store(k as usize, Ordering::Relaxed),
            None => {
                eprintln!("DVICL_KERNEL: unknown kernel: {v:?}");
                std::process::exit(2);
            }
        }
    }
    if let Ok(v) = std::env::var("DVICL_TARGET_CELL") {
        match TargetCell::parse(&v) {
            Some(t) => TARGET_CELL.store(t as usize, Ordering::Relaxed),
            None => {
                eprintln!("DVICL_TARGET_CELL: unknown selector: {v:?}");
                std::process::exit(2);
            }
        }
    }
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--stats" => stats = true,
            "--paranoid" => PARANOID.store(true, Ordering::Relaxed),
            "--threads" => {
                let Some(n) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--threads requires a count (0 = all cores)");
                    std::process::exit(2);
                };
                THREADS.store(n, Ordering::Relaxed);
                i += 1;
            }
            "--kernel" => {
                let Some(k) = args.get(i + 1).and_then(|v| KernelKind::parse(v)) else {
                    eprintln!("--kernel requires auto|general|bitset");
                    std::process::exit(2);
                };
                KERNEL.store(k as usize, Ordering::Relaxed);
                i += 1;
            }
            "--target-cell" => {
                let Some(t) = args.get(i + 1).and_then(|v| TargetCell::parse(v)) else {
                    eprintln!("--target-cell requires first|smallest|largest|most-constrained");
                    std::process::exit(2);
                };
                TARGET_CELL.store(t as usize, Ordering::Relaxed);
                i += 1;
            }
            "--trace-json" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("--trace-json requires a path");
                    std::process::exit(2);
                };
                trace = Some(p.clone());
                i += 1;
            }
            other => {
                eprintln!(
                    "unknown flag {other} (expected --stats, --paranoid, --threads <N>, \
                     --kernel <K>, --target-cell <T> or --trace-json <path>)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if let Some(path) = &trace {
        match obs::JsonSink::to_file(std::path::Path::new(path)) {
            Ok(sink) => {
                obs::install(Box::new(sink));
            }
            Err(e) => {
                eprintln!("--trace-json {path}: {e}");
                std::process::exit(2);
            }
        }
    } else if stats {
        obs::install(Box::new(obs::TextSink));
    }
    if stats || trace.is_some() {
        obs::set_timing(true);
    }
}

/// Outcome of one measured run.
pub struct Run {
    /// Wall-clock seconds, `None` if the budget was exceeded.
    pub secs: Option<f64>,
    /// Peak extra heap bytes during the run.
    pub peak_bytes: usize,
    /// Observability counter deltas attributable to this run. The
    /// pipeline is deterministic, so two runs on the same graph yield
    /// identical deltas (wall time is the only thing that varies).
    pub counters: Snapshot,
}

impl Run {
    /// Formats the time column the way the paper does (`-` = exceeded).
    pub fn fmt_time(&self) -> String {
        match self.secs {
            Some(s) if s < 0.01 => "<0.01".to_string(),
            Some(s) => format!("{s:.2}"),
            None => "-".to_string(),
        }
    }

    /// Formats the memory column (MB; `-` when the run did not finish).
    pub fn fmt_mem(&self) -> String {
        match self.secs {
            Some(_) => crate::alloc::fmt_mb(self.peak_bytes),
            None => "-".to_string(),
        }
    }
}

/// Runs `f` with the peak-allocation meter reset and a counter snapshot
/// taken around it. `None` from `f` means the budget was exceeded; the
/// [`Run`] then reports `-` columns but still carries the partial
/// counter deltas (useful for diagnosing *where* the budget went).
pub fn measure<T>(f: impl FnOnce() -> Option<T>) -> (Run, Option<T>) {
    crate::alloc::reset_peak();
    let before_bytes = crate::alloc::live_bytes();
    let before = obs::snapshot();
    let t0 = Instant::now();
    let out = f();
    let secs = t0.elapsed().as_secs_f64();
    (
        Run {
            secs: out.is_some().then_some(secs),
            peak_bytes: crate::alloc::peak_bytes().saturating_sub(before_bytes),
            counters: obs::snapshot().diff(&before),
        },
        out,
    )
}

/// Runs a baseline engine `X` alone on `(g, unit)` under the budget,
/// with the process-wide kernel/selector overrides applied.
pub fn run_baseline(g: &Graph, config: &Config) -> Run {
    let config = configured(config.clone());
    let limits = Budget::with_deadline(budget());
    measure(|| try_canonical_form(g, &Coloring::unit(g.n()), &config, &limits).ok()).0
}

/// A session for `DviCL+X` runs: AutoTree construction with `X` as the
/// leaf labeler. Hold it across a whole suite so arena pools and the
/// `CombineCL` memo amortize over every graph.
pub fn dvicl_session(config: &Config) -> Session {
    Session::new(DviclOptions {
        leaf_config: configured(config.clone()),
        threads: threads(),
        ..DviclOptions::default()
    })
}

/// Budgeted AutoTree construction. Every table binary builds its trees
/// through here so that `DVICL_BUDGET_SECS` is honored uniformly through
/// `govern::Budget` — a graph the budget cannot cover yields `None` and
/// `-` table cells instead of an unbounded build.
pub fn build_tree(session: &mut Session, g: &Graph) -> (Run, Option<AutoTree>) {
    let limits = Budget::with_deadline(budget());
    // Open-coded `measure` so that under `--paranoid` the witness checks
    // land inside the wall clock (overhead is the number being measured)
    // but *after* the peak-heap sample: verification scratch must not
    // shift the memory columns the CI ceilings watch.
    crate::alloc::reset_peak();
    let before_bytes = crate::alloc::live_bytes();
    let before = obs::snapshot();
    let t0 = Instant::now();
    let tree = session.try_build(g, &Coloring::unit(g.n()), &limits).ok();
    let peak_bytes = crate::alloc::peak_bytes().saturating_sub(before_bytes);
    if let (Some(t), true) = (&tree, paranoid()) {
        if let Err(e) = dvicl_core::verify::verify_tree(g, t) {
            eprintln!("error: {e}");
            std::process::exit(i32::from(e.exit_code()));
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    let run = Run {
        secs: tree.is_some().then_some(secs),
        peak_bytes,
        counters: obs::snapshot().diff(&before),
    };
    (run, tree)
}

/// Accumulates one table's machine-readable benchmark records and
/// writes them as `BENCH_<table>.json` (schema `dvicl-bench-v1`,
/// DESIGN.md §9) when the binary finishes.
pub struct Recorder {
    table: &'static str,
    records: JsonArr,
}

impl Recorder {
    /// Starts an empty recorder for `table` (e.g. `"table8"`).
    pub fn new(table: &'static str) -> Recorder {
        Recorder {
            table,
            records: JsonArr::new(),
        }
    }

    /// Appends one `{graph, algo, completed, wall_ms, peak_bytes,
    /// counters}` record and mirrors it as a `bench_record` event, so a
    /// `--trace-json` sink captures the rows as they are produced.
    pub fn record(&mut self, graph: &str, algo: &str, run: &Run) {
        let wall_ms = run.secs.map(|s| s * 1e3);
        let peak = u64::try_from(run.peak_bytes).unwrap_or(u64::MAX);
        let mut counters = JsonObj::new();
        for (name, v) in run.counters.iter() {
            counters = counters.u64(name, v);
        }
        let mut obj = JsonObj::new()
            .str("graph", graph)
            .str("algo", algo)
            .bool("completed", run.secs.is_some());
        obj = match wall_ms {
            Some(ms) => obj.f64("wall_ms", ms),
            None => obj.null("wall_ms"),
        };
        obj = obj.u64("peak_bytes", peak).obj("counters", counters);
        self.records = std::mem::take(&mut self.records).push_obj(obj);
        obs::emit(
            "bench_record",
            &[
                ("table", Value::Str(self.table.to_string())),
                ("graph", Value::Str(graph.to_string())),
                ("algo", Value::Str(algo.to_string())),
                ("completed", Value::Bool(run.secs.is_some())),
                // NaN serializes as null, matching the record's wall_ms.
                ("wall_ms", Value::F64(wall_ms.unwrap_or(f64::NAN))),
                ("peak_bytes", Value::U64(peak)),
            ],
        );
    }

    /// Writes `BENCH_<table>.json` into the current directory and
    /// flushes the installed observability sink. Returns the path
    /// written (best effort: an unwritable directory only warns).
    pub fn write(self) -> String {
        let path = format!("BENCH_{}.json", self.table);
        let doc = JsonObj::new()
            .str("schema", "dvicl-bench-v1")
            .str("table", self.table)
            .arr("records", self.records)
            .finish();
        if let Err(e) = std::fs::write(&path, doc + "\n") {
            eprintln!("warning: could not write {path}: {e}");
        }
        obs::finish();
        path
    }
}

/// Prints a row of `|`-free aligned columns.
pub fn print_row(cols: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (i, c) in cols.iter().enumerate() {
        let w = widths.get(i).copied().unwrap_or(12);
        line.push_str(&format!("{c:>w$}  "));
    }
    println!("{}", line.trim_end());
}

/// Prints a left-aligned header row.
pub fn print_header(cols: &[&str], widths: &[usize]) {
    let strings: Vec<String> = cols.iter().map(|c| c.to_string()).collect();
    print_row(&strings, widths);
    let total: usize = widths.iter().map(|w| w + 2).sum();
    println!("{}", "-".repeat(total));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Counters are process-global; tests that assert on deltas must
    /// not overlap with other counter-bumping tests in this binary.
    static OBS_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn run_formats_like_the_paper() {
        let finished = Run {
            secs: Some(1.234),
            peak_bytes: 3 * 1024 * 1024,
            counters: Snapshot::default(),
        };
        assert_eq!(finished.fmt_time(), "1.23");
        assert_eq!(finished.fmt_mem(), "3.00");
        let fast = Run {
            secs: Some(0.004),
            peak_bytes: 10,
            counters: Snapshot::default(),
        };
        assert_eq!(fast.fmt_time(), "<0.01");
        let failed = Run {
            secs: None,
            peak_bytes: 999,
            counters: Snapshot::default(),
        };
        assert_eq!(failed.fmt_time(), "-");
        assert_eq!(failed.fmt_mem(), "-");
    }

    #[test]
    fn engines_match_the_paper_columns() {
        let names: Vec<&str> = engines().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["nauty", "traces", "bliss"]);
    }

    #[test]
    fn baseline_and_dvicl_agree_on_a_small_graph() {
        let _serial = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let g = dvicl_graph::named::fig1_example();
        for (_, config) in engines() {
            let base = run_baseline(&g, &config);
            assert!(base.secs.is_some(), "tiny graph must finish");
            let mut session = dvicl_session(&config);
            let (run, tree) = build_tree(&mut session, &g);
            assert!(run.secs.is_some());
            assert_eq!(tree.expect("built").stats().total_nodes, 7);
        }
    }

    #[test]
    fn session_reuse_keeps_certificates_stable() {
        let _serial = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // The whole point of threading a Session through the tables:
        // later builds reuse arenas/memo yet certify identically.
        let mut session = dvicl_session(&Config::traces_like());
        let graphs = [
            dvicl_graph::named::petersen(),
            dvicl_graph::named::fig1_example(),
            dvicl_graph::named::petersen(),
        ];
        let mut forms = Vec::new();
        for g in &graphs {
            let (_, tree) = build_tree(&mut session, g);
            forms.push(tree.expect("built").canonical_form().to_form());
        }
        assert_eq!(forms[0], forms[2]);
        assert_ne!(forms[0], forms[1]);
        assert_eq!(session.builds(), 3);
    }

    #[test]
    fn counter_deltas_are_deterministic() {
        let _serial = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let g = dvicl_graph::named::petersen();
        let config = Config::bliss_like();
        let r1 = run_baseline(&g, &config);
        let r2 = run_baseline(&g, &config);
        assert_eq!(r1.counters, r2.counters, "reruns must agree exactly");
        #[cfg(not(feature = "obs-off"))]
        assert!(r1.counters.get(dvicl_obs::Counter::SearchNodes) > 0);
    }

    #[test]
    fn bench_records_round_trip_the_run() {
        let run = Run {
            secs: Some(0.5),
            peak_bytes: 1024,
            counters: Snapshot::default(),
        };
        let mut rec = Recorder::new("table_test");
        rec.record("k_5", "nauty", &run);
        let doc = JsonObj::new()
            .str("schema", "dvicl-bench-v1")
            .str("table", rec.table)
            .arr("records", std::mem::take(&mut rec.records))
            .finish();
        assert!(doc.contains(r#""schema":"dvicl-bench-v1""#));
        assert!(doc.contains(r#""graph":"k_5""#));
        assert!(doc.contains(r#""wall_ms":500"#));
        assert!(doc.contains(r#""counters":{"refine_rounds":0"#));
    }

    #[test]
    fn budget_env_override() {
        // Whatever the ambient env, budget() is positive and finite.
        assert!(budget().as_secs() >= 1);
    }
}
