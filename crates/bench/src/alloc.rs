//! Counting global allocator: live/peak heap bytes.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A `#[global_allocator]` wrapper over the system allocator that tracks
/// live and peak heap usage. Install it in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: dvicl_bench::alloc::Meter = dvicl_bench::alloc::Meter;
/// ```
pub struct Meter;

// SAFETY: Meter delegates every allocation verbatim to the system
// allocator and only adds relaxed atomic counter updates around the
// calls; it therefore upholds the GlobalAlloc contract exactly as
// `System` does (no allocation from within the allocator, no panics,
// layout passed through unchanged).
unsafe impl GlobalAlloc for Meter {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: `layout` is the caller's valid, non-zero-size layout,
        // forwarded unchanged to the system allocator.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was returned by `Meter::alloc` (i.e. by
        // `System.alloc`) with this same `layout`, per the GlobalAlloc
        // contract the caller upholds.
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

/// Currently live heap bytes.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Resets the peak to the current live value and returns a token; call
/// [`peak_bytes`] after the measured region.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Peak heap bytes since the last [`reset_peak`], minus the live bytes at
/// that reset — i.e. the extra memory the measured region needed.
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Formats a byte count the way the paper's tables do (MB with decimals).
pub fn fmt_mb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_mb_rounds_to_two_decimals() {
        assert_eq!(fmt_mb(0), "0.00");
        assert_eq!(fmt_mb(1024 * 1024), "1.00");
        assert_eq!(fmt_mb(1536 * 1024), "1.50");
        assert_eq!(fmt_mb(10 * 1024 * 1024 + 52429), "10.05");
    }

    #[test]
    fn counters_are_monotone_snapshots() {
        // Without the Meter installed as the global allocator these stay
        // zero; with it they only grow. Either way the API is total.
        let live = live_bytes();
        reset_peak();
        assert!(peak_bytes() >= live);
    }
}
