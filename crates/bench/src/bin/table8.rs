//! Table 8: time (s) of the baseline engines X and DviCL+X on the
//! benchmark graphs.
//!
//! Paper claims reproduced: the traces-like engine is the most robust on
//! benchmarks; DviCL+X ≈ X on these graphs (their AutoTrees are mostly a
//! single leaf, Table 4, so DviCL adds only a vanishing preprocessing
//! cost).

use dvicl_bench::suite::{self, engines, print_header, print_row, run_baseline, Recorder};

#[global_allocator]
static ALLOC: dvicl_bench::alloc::Meter = dvicl_bench::alloc::Meter;

fn main() {
    suite::init_obs();
    let mut rec = Recorder::new("table8");
    // One DviCL+X session per engine, reused across the suite.
    let mut sessions: Vec<_> = engines()
        .into_iter()
        .map(|(name, config)| (name, suite::dvicl_session(&config), config))
        .collect();
    let widths = [16, 9, 10, 9, 10, 9, 10];
    println!(
        "Table 8: performance on benchmark graphs (budget per baseline run: {:?})",
        suite::budget()
    );
    print_header(
        &["Graph", "nauty", "DviCL+n", "traces", "DviCL+t", "bliss", "DviCL+b"],
        &widths,
    );
    for d in dvicl_data::benchmark_suite() {
        let g = (d.build)();
        let mut cols = vec![d.name.to_string()];
        for (name, session, config) in &mut sessions {
            let base = run_baseline(&g, config);
            rec.record(d.name, name, &base);
            cols.push(base.fmt_time());
            let (dv, _) = suite::build_tree(session, &g);
            rec.record(d.name, &format!("dvicl+{name}"), &dv);
            cols.push(dv.fmt_time());
        }
        print_row(&cols, &widths);
    }
    rec.write();
}
