//! Table 3: the structure of the AutoTrees of the real-graph analogs —
//! |V(AT)|, singleton / non-singleton leaf counts, average non-singleton
//! leaf size and depth.
//!
//! Paper claims reproduced: (1) most analogs have only singleton leaves;
//! (2) the web-graph analogs have a few, small non-singleton leaves;
//! (3) AutoTrees are shallow.

use dvicl_bench::suite::{print_header, print_row};
use dvicl_core::{build_autotree, DviclOptions};
use dvicl_graph::Coloring;

#[global_allocator]
static ALLOC: dvicl_bench::alloc::Meter = dvicl_bench::alloc::Meter;

fn main() {
    let widths = [16, 10, 11, 14, 9, 6];
    println!("Table 3: AutoTree structure on real-graph analogs");
    print_header(
        &["Graph", "|V(AT)|", "singleton", "non-singleton", "avg size", "depth"],
        &widths,
    );
    for d in dvicl_data::social_suite() {
        let g = (d.build)();
        let tree = build_autotree(&g, &Coloring::unit(g.n()), &DviclOptions::default());
        let s = tree.stats();
        print_row(
            &[
                d.name.to_string(),
                s.total_nodes.to_string(),
                s.singleton_leaves.to_string(),
                s.non_singleton_leaves.to_string(),
                format!("{:.2}", s.avg_non_singleton_size),
                s.depth.to_string(),
            ],
            &widths,
        );
    }
}
