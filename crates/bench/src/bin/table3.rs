//! Table 3: the structure of the AutoTrees of the real-graph analogs —
//! |V(AT)|, singleton / non-singleton leaf counts, average non-singleton
//! leaf size and depth.
//!
//! Paper claims reproduced: (1) most analogs have only singleton leaves;
//! (2) the web-graph analogs have a few, small non-singleton leaves;
//! (3) AutoTrees are shallow.

use dvicl_bench::suite::{self, print_header, print_row, Recorder};
use dvicl_core::{DviclOptions, Session};

#[global_allocator]
static ALLOC: dvicl_bench::alloc::Meter = dvicl_bench::alloc::Meter;

fn main() {
    suite::init_obs();
    let mut rec = Recorder::new("table3");
    // One session for the whole suite: arena pools and the
    // CombineCL memo are reused across every graph below.
    let mut session = Session::new(DviclOptions::default());
    let widths = [16, 10, 11, 14, 9, 6];
    println!("Table 3: AutoTree structure on real-graph analogs");
    print_header(
        &["Graph", "|V(AT)|", "singleton", "non-singleton", "avg size", "depth"],
        &widths,
    );
    for d in dvicl_data::social_suite() {
        let g = (d.build)();
        let (run, tree) = suite::build_tree(&mut session, &g);
        rec.record(d.name, "dvicl", &run);
        let cols = match tree {
            Some(tree) => {
                let s = tree.stats();
                vec![
                    d.name.to_string(),
                    s.total_nodes.to_string(),
                    s.singleton_leaves.to_string(),
                    s.non_singleton_leaves.to_string(),
                    format!("{:.2}", s.avg_non_singleton_size),
                    s.depth.to_string(),
                ]
            }
            None => {
                let mut cols = vec![d.name.to_string()];
                cols.extend(std::iter::repeat_n("-".to_string(), 5));
                cols
            }
        };
        print_row(&cols, &widths);
    }
    rec.write();
}
