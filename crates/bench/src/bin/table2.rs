//! Table 2: summarization of the benchmark graphs.
//!
//! Paper claim reproduced: benchmark graphs are highly regular — most have
//! very few orbit cells and no singletons at all, the opposite profile of
//! the real graphs.

use dvicl_bench::suite::{self, print_header, print_row, Recorder};
use dvicl_canon::Config;
use dvicl_core::aut;

#[global_allocator]
static ALLOC: dvicl_bench::alloc::Meter = dvicl_bench::alloc::Meter;

fn main() {
    suite::init_obs();
    let mut rec = Recorder::new("table2");
    // The traces-like engine is the robust one on the regular
    // benchmark families (cf. Table 8); one session reuses its
    // arena pools and CombineCL memo across the whole suite.
    let mut session = suite::dvicl_session(&Config::traces_like());
    let widths = [16, 9, 10, 7, 7, 9, 10];
    println!("Table 2: summarization of benchmark graphs");
    print_header(
        &["Graph", "|V|", "|E|", "dmax", "davg", "cells", "singleton"],
        &widths,
    );
    for d in dvicl_data::benchmark_suite() {
        let g = (d.build)();
        let (run, tree) = suite::build_tree(&mut session, &g);
        rec.record(d.name, "dvicl+traces", &run);
        let (cells, singletons) = match tree {
            Some(tree) => {
                let mut orbits = aut::orbits(&tree);
                (
                    orbits.count().to_string(),
                    orbits.count_singletons().to_string(),
                )
            }
            None => ("-".to_string(), "-".to_string()),
        };
        print_row(
            &[
                d.name.to_string(),
                g.n().to_string(),
                g.m().to_string(),
                g.max_degree().to_string(),
                format!("{:.2}", g.avg_degree()),
                cells,
                singletons,
            ],
            &widths,
        );
    }
    rec.write();
}
