//! Table 1: summarization of the real-graph analogs — |V|, |E|, dmax,
//! davg, and the orbit coloring's cell/singleton counts.
//!
//! Paper claim reproduced: the overwhelming majority of orbit cells are
//! singletons, which is what makes DivideI/DivideS effective.
//!
//! With `--threads N` (N > 1) every graph is built a second time over
//! the work-stealing pool and a `dvicl-tN` record lands next to the
//! sequential one in `BENCH_table1.json`: same graph, same certificate
//! (asserted byte-identical here, witness-checked under `--paranoid`
//! with the *same* check count as the sequential build), different wall
//! clock. The `speedup` column then compares the two.
//!
//! Every graph is additionally built once per refinement kernel: the
//! sequential pass pins `--kernel general` (its record is `dvicl`) and a
//! third session pins `--kernel bitset` (`dvicl-bitset`). The kernels
//! must agree byte-for-byte — asserted here per graph — and the
//! `kernel` column reports the general/bitset wall-clock ratio.

use dvicl_bench::suite::{self, print_header, print_row, Recorder};
use dvicl_canon::KernelKind;
use dvicl_core::{aut, DviclOptions, Session};
use dvicl_obs::Counter;

#[global_allocator]
static ALLOC: dvicl_bench::alloc::Meter = dvicl_bench::alloc::Meter;

fn main() {
    suite::init_obs();
    let mut rec = Recorder::new("table1");
    // The kernel comparison pins its kernels explicitly (any ambient
    // --kernel flag still steers the other table binaries): the
    // sequential `dvicl` record is the general kernel, `dvicl-bitset`
    // the dense one, so the two rows stay a controlled A/B pair.
    let mut general_cfg = suite::configured(dvicl_canon::Config::bliss_like());
    general_cfg.kernel = KernelKind::General;
    let mut bitset_cfg = general_cfg.clone();
    bitset_cfg.kernel = KernelKind::Bitset;
    // One session per mode for the whole suite: arena pools and the
    // CombineCL memo are reused across every graph below.
    let mut session = Session::new(DviclOptions {
        leaf_config: general_cfg.clone(),
        ..DviclOptions::default()
    });
    let mut bit_session = Session::new(DviclOptions {
        leaf_config: bitset_cfg,
        ..DviclOptions::default()
    });
    let threads = suite::threads();
    // A suite-long session for the parallel pass, so both modes
    // amortize their working memory the same way.
    let mut par_session = (threads != 1).then(|| {
        Session::new(DviclOptions {
            leaf_config: general_cfg,
            threads,
            ..DviclOptions::default()
        })
    });
    let par_algo = format!("dvicl-t{threads}");
    let widths = [16, 9, 10, 7, 7, 9, 10, 9, 9];
    println!("Table 1: summarization of real-graph analogs");
    let mut header = vec![
        "Graph", "|V|", "|E|", "dmax", "davg", "cells", "singleton", "kernel",
    ];
    if par_session.is_some() {
        header.push("speedup");
    }
    print_header(&header, &widths);
    for d in dvicl_data::social_suite() {
        let g = (d.build)();
        let (run, tree) = suite::build_tree(&mut session, &g);
        rec.record(d.name, "dvicl", &run);
        let (bit_run, bit_tree) = suite::build_tree(&mut bit_session, &g);
        rec.record(d.name, "dvicl-bitset", &bit_run);
        // The kernel parity contract (DESIGN.md §15): kernel choice is a
        // wall-clock optimization only — same tree, byte for byte.
        match (&tree, &bit_tree) {
            (Some(gen), Some(bit)) => assert_eq!(
                gen.canonical_form(),
                bit.canonical_form(),
                "{}: bitset-kernel certificate differs from general",
                d.name
            ),
            _ => assert_eq!(
                tree.is_some(),
                bit_tree.is_some(),
                "{}: one kernel finished and the other did not",
                d.name
            ),
        }
        let kernel_col = match (run.secs, bit_run.secs) {
            (Some(s), Some(b)) if b > 0.0 => format!("{:.2}x", s / b),
            _ => "-".to_string(),
        };
        let speedup = match &mut par_session {
            None => None,
            Some(ps) => {
                let (par_run, par_tree) = suite::build_tree(ps, &g);
                rec.record(d.name, &par_algo, &par_run);
                // The deterministic-merge contract (DESIGN.md §14): the
                // parallel build is a wall-clock optimization only.
                match (&tree, &par_tree) {
                    (Some(seq), Some(par)) => {
                        assert_eq!(
                            seq.canonical_form(),
                            par.canonical_form(),
                            "{}: parallel certificate differs from sequential",
                            d.name
                        );
                        if suite::paranoid() {
                            assert_eq!(
                                run.counters.get(Counter::VerifyChecks),
                                par_run.counters.get(Counter::VerifyChecks),
                                "{}: parallel witness-check count differs",
                                d.name
                            );
                        }
                    }
                    _ => {
                        assert_eq!(
                            tree.is_some(),
                            par_tree.is_some(),
                            "{}: one mode finished and the other did not",
                            d.name
                        );
                    }
                }
                Some(match (run.secs, par_run.secs) {
                    (Some(s), Some(p)) if p > 0.0 => format!("{:.2}x", s / p),
                    _ => "-".to_string(),
                })
            }
        };
        let (cells, singletons) = match tree {
            Some(tree) => {
                let mut orbits = aut::orbits(&tree);
                (
                    orbits.count().to_string(),
                    orbits.count_singletons().to_string(),
                )
            }
            None => ("-".to_string(), "-".to_string()),
        };
        let mut cols = vec![
            d.name.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            g.max_degree().to_string(),
            format!("{:.2}", g.avg_degree()),
            cells,
            singletons,
            kernel_col,
        ];
        if let Some(s) = speedup {
            cols.push(s);
        }
        print_row(&cols, &widths);
    }
    rec.write();
}
