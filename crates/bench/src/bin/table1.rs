//! Table 1: summarization of the real-graph analogs — |V|, |E|, dmax,
//! davg, and the orbit coloring's cell/singleton counts.
//!
//! Paper claim reproduced: the overwhelming majority of orbit cells are
//! singletons, which is what makes DivideI/DivideS effective.

use dvicl_bench::suite::{self, print_header, print_row, Recorder};
use dvicl_core::{aut, DviclOptions, Session};

#[global_allocator]
static ALLOC: dvicl_bench::alloc::Meter = dvicl_bench::alloc::Meter;

fn main() {
    suite::init_obs();
    let mut rec = Recorder::new("table1");
    // One session for the whole suite: arena pools and the
    // CombineCL memo are reused across every graph below.
    let mut session = Session::new(DviclOptions::default());
    let widths = [16, 9, 10, 7, 7, 9, 10];
    println!("Table 1: summarization of real-graph analogs");
    print_header(
        &["Graph", "|V|", "|E|", "dmax", "davg", "cells", "singleton"],
        &widths,
    );
    for d in dvicl_data::social_suite() {
        let g = (d.build)();
        let (run, tree) = suite::build_tree(&mut session, &g);
        rec.record(d.name, "dvicl", &run);
        let (cells, singletons) = match tree {
            Some(tree) => {
                let mut orbits = aut::orbits(&tree);
                (
                    orbits.count().to_string(),
                    orbits.count_singletons().to_string(),
                )
            }
            None => ("-".to_string(), "-".to_string()),
        };
        print_row(
            &[
                d.name.to_string(),
                g.n().to_string(),
                g.m().to_string(),
                g.max_degree().to_string(),
                format!("{:.2}", g.avg_degree()),
                cells,
                singletons,
            ],
            &widths,
        );
    }
    rec.write();
}
