//! Table 1: summarization of the real-graph analogs — |V|, |E|, dmax,
//! davg, and the orbit coloring's cell/singleton counts.
//!
//! Paper claim reproduced: the overwhelming majority of orbit cells are
//! singletons, which is what makes DivideI/DivideS effective.

use dvicl_bench::suite::{print_header, print_row};
use dvicl_core::{aut, build_autotree, DviclOptions};
use dvicl_graph::Coloring;

#[global_allocator]
static ALLOC: dvicl_bench::alloc::Meter = dvicl_bench::alloc::Meter;

fn main() {
    let widths = [16, 9, 10, 7, 7, 9, 10];
    println!("Table 1: summarization of real-graph analogs");
    print_header(
        &["Graph", "|V|", "|E|", "dmax", "davg", "cells", "singleton"],
        &widths,
    );
    for d in dvicl_data::social_suite() {
        let g = (d.build)();
        let tree = build_autotree(&g, &Coloring::unit(g.n()), &DviclOptions::default());
        let mut orbits = aut::orbits(&tree);
        print_row(
            &[
                d.name.to_string(),
                g.n().to_string(),
                g.m().to_string(),
                g.max_degree().to_string(),
                format!("{:.2}", g.avg_degree()),
                orbits.count().to_string(),
                orbits.count_singletons().to_string(),
            ],
            &widths,
        );
    }
}
