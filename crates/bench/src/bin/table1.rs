//! Table 1: summarization of the real-graph analogs — |V|, |E|, dmax,
//! davg, and the orbit coloring's cell/singleton counts.
//!
//! Paper claim reproduced: the overwhelming majority of orbit cells are
//! singletons, which is what makes DivideI/DivideS effective.
//!
//! With `--threads N` (N > 1) every graph is built a second time over
//! the work-stealing pool and a `dvicl-tN` record lands next to the
//! sequential one in `BENCH_table1.json`: same graph, same certificate
//! (asserted byte-identical here, witness-checked under `--paranoid`
//! with the *same* check count as the sequential build), different wall
//! clock. The `speedup` column then compares the two.

use dvicl_bench::suite::{self, print_header, print_row, Recorder};
use dvicl_core::{aut, DviclOptions, Session};
use dvicl_obs::Counter;

#[global_allocator]
static ALLOC: dvicl_bench::alloc::Meter = dvicl_bench::alloc::Meter;

fn main() {
    suite::init_obs();
    let mut rec = Recorder::new("table1");
    // One session for the whole suite: arena pools and the
    // CombineCL memo are reused across every graph below.
    let mut session = Session::new(DviclOptions::default());
    let threads = suite::threads();
    // A second suite-long session for the parallel pass, so both modes
    // amortize their working memory the same way.
    let mut par_session = (threads != 1).then(|| {
        Session::new(DviclOptions {
            threads,
            ..DviclOptions::default()
        })
    });
    let par_algo = format!("dvicl-t{threads}");
    let widths = [16, 9, 10, 7, 7, 9, 10, 9];
    println!("Table 1: summarization of real-graph analogs");
    let mut header = vec!["Graph", "|V|", "|E|", "dmax", "davg", "cells", "singleton"];
    if par_session.is_some() {
        header.push("speedup");
    }
    print_header(&header, &widths);
    for d in dvicl_data::social_suite() {
        let g = (d.build)();
        let (run, tree) = suite::build_tree(&mut session, &g);
        rec.record(d.name, "dvicl", &run);
        let speedup = match &mut par_session {
            None => None,
            Some(ps) => {
                let (par_run, par_tree) = suite::build_tree(ps, &g);
                rec.record(d.name, &par_algo, &par_run);
                // The deterministic-merge contract (DESIGN.md §14): the
                // parallel build is a wall-clock optimization only.
                match (&tree, &par_tree) {
                    (Some(seq), Some(par)) => {
                        assert_eq!(
                            seq.canonical_form(),
                            par.canonical_form(),
                            "{}: parallel certificate differs from sequential",
                            d.name
                        );
                        if suite::paranoid() {
                            assert_eq!(
                                run.counters.get(Counter::VerifyChecks),
                                par_run.counters.get(Counter::VerifyChecks),
                                "{}: parallel witness-check count differs",
                                d.name
                            );
                        }
                    }
                    _ => {
                        assert_eq!(
                            tree.is_some(),
                            par_tree.is_some(),
                            "{}: one mode finished and the other did not",
                            d.name
                        );
                    }
                }
                Some(match (run.secs, par_run.secs) {
                    (Some(s), Some(p)) if p > 0.0 => format!("{:.2}x", s / p),
                    _ => "-".to_string(),
                })
            }
        };
        let (cells, singletons) = match tree {
            Some(tree) => {
                let mut orbits = aut::orbits(&tree);
                (
                    orbits.count().to_string(),
                    orbits.count_singletons().to_string(),
                )
            }
            None => ("-".to_string(), "-".to_string()),
        };
        let mut cols = vec![
            d.name.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            g.max_degree().to_string(),
            format!("{:.2}", g.avg_degree()),
            cells,
            singletons,
        ];
        if let Some(s) = speedup {
            cols.push(s);
        }
        print_row(&cols, &widths);
    }
    rec.write();
}
