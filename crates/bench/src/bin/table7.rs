//! Table 7: subgraph clustering by SSM — all maximum cliques and all
//! triangles of each analog, clustered into symmetry classes via AutoTree
//! keys: total count, number of clusters, size of the largest cluster.
//!
//! Paper claims reproduced: cliques/triangles are diverse (clusters ≈
//! total) yet some have symmetric copies (max cluster > 1 on many
//! graphs).

use dvicl_apps::clique::{all_max_cliques, max_clique};
use dvicl_apps::cluster::cluster_by_symmetry;
use dvicl_apps::triangles::list_triangles;
use dvicl_bench::suite::{self, print_header, print_row, Recorder};
use dvicl_core::ssm::SsmIndex;
use dvicl_core::{DviclOptions, Session};

#[global_allocator]
static ALLOC: dvicl_bench::alloc::Meter = dvicl_bench::alloc::Meter;

const CLIQUE_LIMIT: usize = 20_000;
const TRIANGLE_LIMIT: usize = 200_000;

fn main() {
    suite::init_obs();
    let mut rec = Recorder::new("table7");
    // One session for the whole suite: arena pools and the
    // CombineCL memo are reused across every graph below.
    let mut session = Session::new(DviclOptions::default());
    let widths = [16, 9, 9, 6, 10, 10, 8];
    println!("Table 7: subgraph clustering by SSM (maximum cliques | triangles)");
    print_header(
        &["Graph", "mc#", "mc-clst", "mc-max", "tri#", "tri-clst", "tri-max"],
        &widths,
    );
    for d in dvicl_data::social_suite() {
        let g = (d.build)();
        let (build_run, tree) = suite::build_tree(&mut session, &g);
        rec.record(d.name, "dvicl", &build_run);
        let Some(tree) = tree else {
            let mut cols = vec![d.name.to_string()];
            cols.extend(std::iter::repeat_n("-".to_string(), 6));
            print_row(&cols, &widths);
            continue;
        };
        let index = SsmIndex::new(&tree);
        let (clique_run, cc) = suite::measure(|| {
            let mc = max_clique(&g);
            let cliques = all_max_cliques(&g, mc.len(), CLIQUE_LIMIT);
            Some(cluster_by_symmetry(
                &tree,
                &index,
                cliques.iter().map(|c| c.as_slice()),
            ))
        });
        rec.record(d.name, "ssm_cliques", &clique_run);
        let (tri_run, tc) = suite::measure(|| {
            let tris = list_triangles(&g, TRIANGLE_LIMIT);
            Some(cluster_by_symmetry(
                &tree,
                &index,
                tris.iter().map(|t| t.as_slice()),
            ))
        });
        rec.record(d.name, "ssm_triangles", &tri_run);
        let (cc, tc) = match (cc, tc) {
            (Some(cc), Some(tc)) => (cc, tc),
            // measure() closures above always return Some; this arm is
            // unreachable but keeps the binary panic-free.
            _ => continue,
        };
        print_row(
            &[
                d.name.to_string(),
                cc.total.to_string(),
                cc.clusters.to_string(),
                cc.max_cluster.to_string(),
                tc.total.to_string(),
                tc.clusters.to_string(),
                tc.max_cluster.to_string(),
            ],
            &widths,
        );
    }
    rec.write();
}
