//! Table 7: subgraph clustering by SSM — all maximum cliques and all
//! triangles of each analog, clustered into symmetry classes via AutoTree
//! keys: total count, number of clusters, size of the largest cluster.
//!
//! Paper claims reproduced: cliques/triangles are diverse (clusters ≈
//! total) yet some have symmetric copies (max cluster > 1 on many
//! graphs).

use dvicl_apps::clique::{all_max_cliques, max_clique};
use dvicl_apps::cluster::cluster_by_symmetry;
use dvicl_apps::triangles::list_triangles;
use dvicl_bench::suite::{print_header, print_row};
use dvicl_core::ssm::SsmIndex;
use dvicl_core::{build_autotree, DviclOptions};
use dvicl_graph::Coloring;

#[global_allocator]
static ALLOC: dvicl_bench::alloc::Meter = dvicl_bench::alloc::Meter;

const CLIQUE_LIMIT: usize = 20_000;
const TRIANGLE_LIMIT: usize = 200_000;

fn main() {
    let widths = [16, 9, 9, 6, 10, 10, 8];
    println!("Table 7: subgraph clustering by SSM (maximum cliques | triangles)");
    print_header(
        &["Graph", "mc#", "mc-clst", "mc-max", "tri#", "tri-clst", "tri-max"],
        &widths,
    );
    for d in dvicl_data::social_suite() {
        let g = (d.build)();
        let tree = build_autotree(&g, &Coloring::unit(g.n()), &DviclOptions::default());
        let index = SsmIndex::new(&tree);
        let mc = max_clique(&g);
        let cliques = all_max_cliques(&g, mc.len(), CLIQUE_LIMIT);
        let cc = cluster_by_symmetry(&tree, &index, cliques.iter().map(|c| c.as_slice()));
        let tris = list_triangles(&g, TRIANGLE_LIMIT);
        let tc = cluster_by_symmetry(&tree, &index, tris.iter().map(|t| t.as_slice()));
        print_row(
            &[
                d.name.to_string(),
                cc.total.to_string(),
                cc.clusters.to_string(),
                cc.max_cluster.to_string(),
                tc.total.to_string(),
                tc.clusters.to_string(),
                tc.max_cluster.to_string(),
            ],
            &widths,
        );
    }
}
