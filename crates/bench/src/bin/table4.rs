//! Table 4: the structure of the AutoTrees of the benchmark graphs.
//!
//! Paper claim reproduced: most benchmark AutoTrees are a single root node
//! (the whole graph is one non-singleton leaf), so DviCL cannot help there
//! — the exceptions being the SAT-circuit graphs.

use dvicl_bench::suite::{self, print_header, print_row, Recorder};
use dvicl_canon::Config;

#[global_allocator]
static ALLOC: dvicl_bench::alloc::Meter = dvicl_bench::alloc::Meter;

fn main() {
    suite::init_obs();
    let mut rec = Recorder::new("table4");
    // The traces-like engine is the robust one on the regular
    // benchmark families (cf. Table 8); one session reuses its
    // arena pools and CombineCL memo across the whole suite.
    let mut session = suite::dvicl_session(&Config::traces_like());
    let widths = [16, 10, 11, 14, 9, 6];
    println!("Table 4: AutoTree structure on benchmark graphs");
    print_header(
        &["Graph", "|V(AT)|", "singleton", "non-singleton", "avg size", "depth"],
        &widths,
    );
    for d in dvicl_data::benchmark_suite() {
        let g = (d.build)();
        let (run, tree) = suite::build_tree(&mut session, &g);
        rec.record(d.name, "dvicl+traces", &run);
        let cols = match tree {
            Some(tree) => {
                let s = tree.stats();
                vec![
                    d.name.to_string(),
                    s.total_nodes.to_string(),
                    s.singleton_leaves.to_string(),
                    s.non_singleton_leaves.to_string(),
                    format!("{:.2}", s.avg_non_singleton_size),
                    s.depth.to_string(),
                ]
            }
            None => {
                let mut cols = vec![d.name.to_string()];
                cols.extend(std::iter::repeat_n("-".to_string(), 5));
                cols
            }
        };
        print_row(&cols, &widths);
    }
    rec.write();
}
