//! Batch amortization benchmark (ROADMAP item 2): answering M
//! isomorphism queries against an N-graph corpus via the
//! canonical-fingerprint index versus M×N pairwise tests.
//!
//! The index path canonicalizes each query exactly once through one
//! reusable [`Session`] and probes by 128-bit fingerprint; the pairwise
//! baseline runs `are_isomorphic(query, candidate)` over the full
//! corpus, the way a system without certificates must. Both phases are
//! counter-proven, not just timed: the lookup phase asserts exactly
//! M session builds and M index probes, and the binary fails (exit 1)
//! unless the index path is at least 10× faster.
//!
//! Records land in `BENCH_batch.json` (schema `dvicl-bench-v1`): one
//! `index-build` record for corpus ingestion, one `batch-lookup` for the
//! M amortized queries, one `pairwise` for the M×N baseline.

use dvicl_bench::suite::{self, print_header, print_row, Recorder};
use dvicl_canon::Config;
use dvicl_core::are_isomorphic;
use dvicl_graph::{named, Graph, Perm, V};
use dvicl_index::FingerprintIndex;
use dvicl_obs::Counter;

#[global_allocator]
static ALLOC: dvicl_bench::alloc::Meter = dvicl_bench::alloc::Meter;

/// A deterministic relabeling so queries never arrive in corpus vertex
/// order (splitmix-fed Fisher–Yates).
fn shuffled(g: &Graph, salt: u64) -> Graph {
    let n = g.n();
    let mut image: Vec<V> = (0..n as V).collect();
    let mut state = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        image.swap(i, j);
    }
    // dvicl-lint: allow(panic-freedom) -- Fisher–Yates swaps keep `image` a bijection of 0..n
    g.permuted(&Perm::from_image(image).expect("shuffle is a bijection"))
}

/// A double broom: a spine path with `a` extra leaves on one end and
/// `b` on the other. Distinct `(a, b)` with `a <= b` give pairwise
/// non-isomorphic trees on `n` vertices.
fn double_broom(n: usize, a: usize, b: usize) -> Graph {
    let p = n - a - b; // spine length, >= 2
    let mut edges: Vec<(V, V)> = Vec::with_capacity(n - 1);
    for i in 0..p - 1 {
        edges.push((i as V, (i + 1) as V));
    }
    for l in 0..a {
        edges.push((0, (p + l) as V));
    }
    for l in 0..b {
        edges.push(((p - 1) as V, (p + a + l) as V));
    }
    Graph::from_edges(n, &edges)
}

/// The benchmark corpus: N pairwise non-isomorphic graphs, all on 20
/// vertices. Same-size corpora are the realistic hard case (chemical
/// datasets are full of equal-size molecules) — the pairwise baseline
/// cannot sieve candidates by vertex count, it must actually test.
fn corpus() -> Vec<Graph> {
    const N: usize = 20;
    let mut graphs = Vec::new();
    // 64 trees (m = 19): double brooms, a <= b.
    for a in 2..=9 {
        for b in a..=(18 - a) {
            graphs.push(double_broom(N, a, b));
        }
    }
    // 9 disjoint cycle pairs plus the single cycle (m = 20).
    for k in 3..=10 {
        graphs.push(named::cycle(k).disjoint_union(&named::cycle(N - k)));
    }
    graphs.push(named::cycle(N));
    // 22 4-regular graphs (m = 40): circulants and the 4x5 torus.
    for j in 2..=9 {
        graphs.push(named::circulant(N, &[1, j]));
    }
    for j in 3..=9 {
        graphs.push(named::circulant(N, &[2, j]));
    }
    for j in 4..=9 {
        graphs.push(named::circulant(N, &[3, j]));
    }
    graphs.push(named::torus2(4, 5));
    // 5 6-regular circulants (m = 60).
    for j in 3..=7 {
        graphs.push(named::circulant(N, &[1, 2, j]));
    }
    assert_eq!(graphs.len(), 100, "corpus size drifted");
    graphs
}

fn main() {
    suite::init_obs();
    let mut rec = Recorder::new("batch");
    let graphs = corpus();
    let n = graphs.len();
    // Every 5th corpus graph, relabeled: M = 20 queries that are
    // isomorphic to an indexed graph but arrive in scrambled order.
    let queries: Vec<Graph> = graphs
        .iter()
        .step_by(5)
        .enumerate()
        .map(|(i, g)| shuffled(g, i as u64 + 1))
        .collect();
    let m = queries.len();
    assert_eq!(m, 20);

    println!("Batch amortization: M = {m} queries against an N = {n} graph corpus");
    let widths = [14, 10, 12, 14, 12];
    print_header(&["phase", "wall ms", "canon runs", "index probes", "answers"], &widths);

    // Phase 1 — ingest the corpus: one canonicalization per graph, one
    // session for all of them.
    let mut index = FingerprintIndex::new();
    let mut session = suite::dvicl_session(&Config::traces_like());
    let (build_run, _) = suite::measure(|| {
        for g in &graphs {
            let (fp, form) = session.fingerprinted_form(g);
            if let Err(e) = index.insert(fp, form, suite::paranoid()) {
                eprintln!("error: {e}");
                std::process::exit(4);
            }
        }
        Some(())
    });
    rec.record("corpus_100", "index-build", &build_run);
    print_row(
        &[
            "index-build".to_string(),
            format!("{:.2}", build_run.secs.unwrap_or(f64::NAN) * 1e3),
            session.builds().to_string(),
            build_run.counters.get(Counter::IndexProbes).to_string(),
            index.len().to_string(),
        ],
        &widths,
    );

    // Phase 2 — the amortized path: one canonicalization + one probe
    // per query, arena pools and CombineCL memo warm across all M.
    let mut query_session = suite::dvicl_session(&Config::traces_like());
    let mut hits = 0usize;
    // Per-query class sizes, for the exact cross-check against the
    // pairwise baseline below (a few corpus circulants are isomorphic
    // to each other, so classes can hold more than one member).
    let mut class_sizes: Vec<u64> = Vec::with_capacity(queries.len());
    let (batch_run, _) = suite::measure(|| {
        for q in &queries {
            let (fp, form) = query_session.fingerprinted_form(q);
            let members = index.group_size(fp, &form).unwrap_or(0);
            class_sizes.push(members);
            if members > 0 {
                hits += 1;
            }
        }
        Some(())
    });
    rec.record("corpus_100", "batch-lookup", &batch_run);
    // The counter proof: exactly M canonicalizations, exactly M probes.
    assert_eq!(
        query_session.builds(),
        m as u64,
        "amortized lookups must canonicalize each query exactly once"
    );
    assert_eq!(
        batch_run.counters.get(Counter::IndexProbes),
        m as u64,
        "amortized lookups must probe exactly once per query"
    );
    assert_eq!(hits, m, "every relabeled query is isomorphic to its source");
    print_row(
        &[
            "batch-lookup".to_string(),
            format!("{:.2}", batch_run.secs.unwrap_or(f64::NAN) * 1e3),
            query_session.builds().to_string(),
            batch_run.counters.get(Counter::IndexProbes).to_string(),
            hits.to_string(),
        ],
        &widths,
    );

    // Phase 3 — the baseline a certificate-free system is stuck with:
    // M×N pairwise isomorphism tests (no early exit; a miss costs the
    // full scan, and misses dominate real workloads).
    let mut pairwise_matches: Vec<u64> = Vec::with_capacity(queries.len());
    let (pairwise_run, _) = suite::measure(|| {
        for q in &queries {
            let mut matches = 0u64;
            for g in &graphs {
                if are_isomorphic(q, g) {
                    matches += 1;
                }
            }
            pairwise_matches.push(matches);
        }
        Some(())
    });
    rec.record("corpus_100", "pairwise", &pairwise_run);
    // The two paths must agree query by query: the baseline's match
    // count is exactly the index class's member count.
    assert_eq!(pairwise_matches, class_sizes, "baseline must agree with the index answers");
    let pairwise_hits: usize = pairwise_matches.iter().filter(|&&c| c > 0).count();
    print_row(
        &[
            "pairwise".to_string(),
            format!("{:.2}", pairwise_run.secs.unwrap_or(f64::NAN) * 1e3),
            format!("{}", 2 * m * n),
            "-".to_string(),
            pairwise_hits.to_string(),
        ],
        &widths,
    );

    let batch_secs = batch_run.secs.unwrap_or(f64::NAN);
    let pairwise_secs = pairwise_run.secs.unwrap_or(f64::NAN);
    let speedup = pairwise_secs / batch_secs;
    println!(
        "speedup: {speedup:.1}x (pairwise {:.2} ms / batch {:.2} ms)",
        pairwise_secs * 1e3,
        batch_secs * 1e3
    );
    rec.write();
    if speedup < 10.0 {
        eprintln!("error: amortized lookup is only {speedup:.1}x faster (needs >= 10x)");
        std::process::exit(1);
    }
}
