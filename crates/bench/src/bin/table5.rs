//! Table 5: time (s) and peak memory (MB) of the three baseline engines X
//! and of DviCL+X on the real-graph analogs. `-` = wall-clock budget
//! exceeded (the paper's 2-hour limit, scaled; override with
//! DVICL_BUDGET_SECS).
//!
//! Paper claims reproduced: DviCL+X finishes fast on every dataset; plain
//! X is slow or fails on most; the three DviCL+X variants take essentially
//! the same time and memory (the AutoTree dominates, the leaf labeler is
//! marginal).

use dvicl_bench::suite::{self, engines, print_header, print_row, run_baseline, Recorder};

#[global_allocator]
static ALLOC: dvicl_bench::alloc::Meter = dvicl_bench::alloc::Meter;

fn main() {
    suite::init_obs();
    let mut rec = Recorder::new("table5");
    // One DviCL+X session per engine, reused across the suite.
    let mut sessions: Vec<_> = engines()
        .into_iter()
        .map(|(name, config)| (name, suite::dvicl_session(&config), config))
        .collect();
    let widths = [16, 8, 9, 9, 10, 8, 9, 9, 10, 8, 9, 9, 10];
    println!(
        "Table 5: performance on real-graph analogs (budget per baseline run: {:?})",
        suite::budget()
    );
    print_header(
        &[
            "Graph", "nauty", "mem", "DviCL+n", "mem", "traces", "mem", "DviCL+t", "mem",
            "bliss", "mem", "DviCL+b", "mem",
        ],
        &widths,
    );
    for d in dvicl_data::social_suite() {
        let g = (d.build)();
        let mut cols = vec![d.name.to_string()];
        for (name, session, config) in &mut sessions {
            let base = run_baseline(&g, config);
            rec.record(d.name, name, &base);
            cols.push(base.fmt_time());
            cols.push(base.fmt_mem());
            let (dv, _) = suite::build_tree(session, &g);
            rec.record(d.name, &format!("dvicl+{name}"), &dv);
            cols.push(dv.fmt_time());
            cols.push(dv.fmt_mem());
        }
        print_row(&cols, &widths);
    }
    rec.write();
}
