//! Table 6: symmetric subgraph matching on influence-maximization seed
//! sets — the number of candidate seed sets with the same influence as the
//! selected set S (|S| = 10 and |S| = 100), and the counting time.
//!
//! Paper claims reproduced: many graphs admit astronomically many
//! symmetric seed sets (up to 10^88 in the paper; the analogs reach
//! similar magnitudes on twin-rich graphs), and counting them via the
//! AutoTree is fast.

use dvicl_apps::im::{select_seeds, IcConfig};
use dvicl_bench::suite::{print_header, print_row};
use dvicl_core::ssm::{count_images, SsmIndex};
use dvicl_core::{build_autotree, DviclOptions};
use dvicl_graph::Coloring;
use std::time::Instant;

#[global_allocator]
static ALLOC: dvicl_bench::alloc::Meter = dvicl_bench::alloc::Meter;

fn main() {
    let widths = [16, 14, 9, 14, 9];
    println!("Table 6: SSM on seed sets S selected by influence maximization");
    print_header(
        &["Graph", "#sets |S|=10", "time", "#sets |S|=100", "time"],
        &widths,
    );
    // Sub-critical constant activation probability: the cascade stays
    // local so CELF's Monte-Carlo evaluations are cheap, matching the
    // paper's constant-probability setup of [1].
    let ic = IcConfig {
        prob: 0.005,
        rounds: 30,
        seed: 0x1C,
    };
    for d in dvicl_data::social_suite() {
        let g = (d.build)();
        let tree = build_autotree(&g, &Coloring::unit(g.n()), &DviclOptions::default());
        let index = SsmIndex::new(&tree);
        let mut cols = vec![d.name.to_string()];
        // Greedy seeds are prefix-nested: one k=100 run serves both rows.
        let seeds100 = select_seeds(&g, 100, &ic);
        for k in [10usize, 100] {
            let seeds = &seeds100[..k];
            let t0 = Instant::now();
            let count = count_images(&tree, &index, seeds);
            let secs = t0.elapsed().as_secs_f64();
            cols.push(count.to_scientific());
            cols.push(if secs < 0.01 {
                "<0.01".into()
            } else {
                format!("{secs:.2}")
            });
        }
        print_row(&cols, &widths);
    }
}
