//! Table 6: symmetric subgraph matching on influence-maximization seed
//! sets — the number of candidate seed sets with the same influence as the
//! selected set S (|S| = 10 and |S| = 100), and the counting time.
//!
//! Paper claims reproduced: many graphs admit astronomically many
//! symmetric seed sets (up to 10^88 in the paper; the analogs reach
//! similar magnitudes on twin-rich graphs), and counting them via the
//! AutoTree is fast.

use dvicl_apps::im::{select_seeds, IcConfig};
use dvicl_bench::suite::{self, print_header, print_row, Recorder};
use dvicl_core::ssm::{try_count_images, SsmIndex};
use dvicl_core::{DviclOptions, Session};
use dvicl_govern::Budget;

#[global_allocator]
static ALLOC: dvicl_bench::alloc::Meter = dvicl_bench::alloc::Meter;

fn main() {
    suite::init_obs();
    let mut rec = Recorder::new("table6");
    // One session for the whole suite: arena pools and the
    // CombineCL memo are reused across every graph below.
    let mut session = Session::new(DviclOptions::default());
    let widths = [16, 14, 9, 14, 9];
    println!("Table 6: SSM on seed sets S selected by influence maximization");
    print_header(
        &["Graph", "#sets |S|=10", "time", "#sets |S|=100", "time"],
        &widths,
    );
    // Sub-critical constant activation probability: the cascade stays
    // local so CELF's Monte-Carlo evaluations are cheap, matching the
    // paper's constant-probability setup of [1].
    let ic = IcConfig {
        prob: 0.005,
        rounds: 30,
        seed: 0x1C,
    };
    for d in dvicl_data::social_suite() {
        let g = (d.build)();
        let (build_run, tree) = suite::build_tree(&mut session, &g);
        rec.record(d.name, "dvicl", &build_run);
        let Some(tree) = tree else {
            print_row(
                &[
                    d.name.to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ],
                &widths,
            );
            continue;
        };
        let index = SsmIndex::new(&tree);
        let mut cols = vec![d.name.to_string()];
        // Greedy seeds are prefix-nested: one k=100 run serves both rows.
        let seeds100 = select_seeds(&g, 100, &ic);
        for k in [10usize, 100] {
            let seeds = &seeds100[..k];
            // Counting honors the same wall-clock budget as the builds.
            let limits = Budget::with_deadline(suite::budget());
            let (run, count) =
                suite::measure(|| try_count_images(&tree, &index, seeds, &limits).ok());
            rec.record(d.name, &format!("ssm_count_k{k}"), &run);
            cols.push(count.map_or_else(|| "-".to_string(), |c| c.to_scientific()));
            cols.push(run.fmt_time());
        }
        print_row(&cols, &widths);
    }
    rec.write();
}
