//! SSM microbenchmarks (the Table 6/7 workloads): key computation, exact
//! counting and enumeration via the AutoTree, against the SM (VF2)
//! baseline of Section 6.4.

use criterion::{criterion_group, criterion_main, Criterion};
use dvicl_apps::triangles::list_triangles;
use dvicl_core::ssm::{count_images, enumerate_images, symmetric_key, SsmIndex};
use dvicl_core::{build_autotree, sm, DviclOptions};
use dvicl_graph::Coloring;

fn bench_ssm(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssm");
    group.sample_size(10);
    let g = (dvicl_data::social_suite()
        .into_iter()
        .find(|d| d.name == "wikivote")
        .expect("registered")
        .build)();
    let tree = build_autotree(&g, &Coloring::unit(g.n()), &DviclOptions::default());
    let index = SsmIndex::new(&tree);
    let tris = list_triangles(&g, 500);
    let query = tris[0].to_vec();

    group.bench_function("symmetric-key-per-triangle", |b| {
        b.iter(|| {
            tris.iter()
                .map(|t| symmetric_key(&tree, &index, t).len())
                .sum::<usize>()
        });
    });
    group.bench_function("count-images", |b| {
        b.iter(|| count_images(&tree, &index, &query));
    });
    group.bench_function("enumerate-ssm-at", |b| {
        b.iter(|| enumerate_images(&tree, &index, &query, 1000).matches.len());
    });
    group.bench_function("enumerate-sm-baseline", |b| {
        b.iter(|| sm::ssm_via_sm(&g, &tree, &index, &query, 1000).len());
    });
    group.finish();
}

criterion_group!(benches, bench_ssm);
criterion_main!(benches);
