//! Microbenchmarks for the refinement function `R` — the inner loop of
//! both the IR baseline and DviCL.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvicl_graph::Coloring;
use dvicl_refine::{refine, refine_individualized};

fn bench_refine(c: &mut Criterion) {
    let mut group = c.benchmark_group("refine");
    group.sample_size(20);
    let cases = vec![
        ("social-5k", dvicl_data::social::generate(&dvicl_data::social::SocialConfig::default())),
        ("grid-12", dvicl_data::bench_graphs::wrapped_grid(&[12, 12, 12])),
        ("pg2-23", dvicl_data::bench_graphs::pg2(23)),
        ("cfi-100", dvicl_data::bench_graphs::cfi(&dvicl_data::bench_graphs::cubic_circulant(100), false)),
    ];
    for (name, g) in &cases {
        group.bench_with_input(BenchmarkId::new("unit", name), g, |b, g| {
            let pi = Coloring::unit(g.n());
            b.iter(|| refine(g, &pi));
        });
        group.bench_with_input(BenchmarkId::new("individualize", name), g, |b, g| {
            let pi = refine(g, &Coloring::unit(g.n())).coloring;
            // Individualize the first vertex of the first non-singleton
            // cell (or vertex 0 on discrete colorings).
            let v = pi
                .cells()
                .iter()
                .find(|c| c.len() > 1)
                .map(|c| c[0])
                .unwrap_or(0);
            if pi.cell_len_of(v) > 1 {
                b.iter(|| refine_individualized(g, &pi, v));
            } else {
                b.iter(|| refine(g, &pi));
            }
        });
    }
    group.finish();
}

criterion_group!(benches, bench_refine);
criterion_main!(benches);
