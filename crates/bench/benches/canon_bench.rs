//! The headline comparison (Tables 5/8 in micro form): baseline engine X
//! versus DviCL+X on representative datasets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvicl_canon::{try_canonical_form, Config};
use dvicl_core::{build_autotree, DviclOptions};
use dvicl_govern::Budget;
use dvicl_graph::{Coloring, Graph};
use std::time::Duration;

fn datasets() -> Vec<(&'static str, Graph)> {
    vec![
        (
            "wikivote-analog",
            (dvicl_data::social_suite()
                .into_iter()
                .find(|d| d.name == "wikivote")
                .expect("registered")
                .build)(),
        ),
        ("grid-w-3-12", dvicl_data::bench_graphs::wrapped_grid(&[12, 12, 12])),
        ("mz-aug-20", dvicl_data::bench_graphs::mz_aug(20)),
    ]
}

fn bench_canon(c: &mut Criterion) {
    let mut group = c.benchmark_group("canonical-labeling");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    for (name, g) in datasets() {
        let pi = Coloring::unit(g.n());
        // Run the baseline only where it terminates at bench-friendly
        // speed (Table 5 shows it exceeding any budget on the social
        // analogs — benchmarking a timeout is meaningless).
        let baseline_feasible = matches!(name, "grid-w-3-12" | "mz-aug-20");
        if baseline_feasible {
            group.bench_with_input(BenchmarkId::new("baseline-bliss", name), &g, |b, g| {
                b.iter(|| {
                    try_canonical_form(
                        g,
                        &pi,
                        &Config::bliss_like(),
                        &Budget::with_deadline(Duration::from_secs(30)),
                    )
                    .map(|r| r.form)
                    .ok()
                });
            });
        }
        group.bench_with_input(BenchmarkId::new("dvicl+b", name), &g, |b, g| {
            b.iter(|| build_autotree(g, &pi, &DviclOptions::default()).canonical_form().to_form());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_canon);
criterion_main!(benches);
