//! Ablations of the design choices DESIGN.md calls out:
//! with/without `DivideS`, with/without structural-equivalence
//! simplification (§6.1), and the baseline's node invariant on/off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvicl_canon::{canonical_form, Config, TargetCell};
use dvicl_core::{build_autotree, simplify, DviclOptions};
use dvicl_graph::{Coloring, Graph};

fn twin_heavy() -> Graph {
    dvicl_data::social::generate(&dvicl_data::social::SocialConfig {
        core_n: 3000,
        twin_fans: 400,
        fan_size: 6,
        ..Default::default()
    })
}

fn bench_divide_s(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-divide-s");
    group.sample_size(10);
    // A graph full of clique cells: DivideS matters; without it the IR
    // engine labels every clique leaf.
    let g = (dvicl_data::social_suite()
        .into_iter()
        .find(|d| d.name == "NotreDame")
        .expect("registered")
        .build)();
    let pi = Coloring::unit(g.n());
    for (label, use_divide_s) in [("with-divide-s", true), ("without-divide-s", false)] {
        group.bench_with_input(BenchmarkId::new(label, "NotreDame"), &g, |b, g| {
            let opts = DviclOptions {
                use_divide_s,
                ..DviclOptions::default()
            };
            b.iter(|| build_autotree(g, &pi, &opts).canonical_form().to_form());
        });
    }
    group.finish();
}

fn bench_simplification(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-twin-simplification");
    group.sample_size(10);
    let g = twin_heavy();
    let pi = Coloring::unit(g.n());
    group.bench_function("plain-dvicl", |b| {
        b.iter(|| build_autotree(&g, &pi, &DviclOptions::default()).canonical_form().to_form());
    });
    group.bench_function("simplified-dvicl", |b| {
        b.iter(|| {
            simplify::dvicl_simplified(&g, &pi, &DviclOptions::default())
                .certificate
                .clone()
        });
    });
    group.finish();
}

fn bench_invariant(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-node-invariant");
    group.sample_size(10);
    let g = dvicl_data::bench_graphs::mz_aug(12);
    let pi = Coloring::unit(g.n());
    for (label, use_invariant) in [("with-invariant", true), ("without-invariant", false)] {
        group.bench_with_input(BenchmarkId::new(label, "mz-aug-12"), &g, |b, g| {
            let config = Config {
                target_cell: TargetCell::FirstNonSingleton,
                use_invariant,
                record_tree: false,
                group_only: false,
            };
            b.iter(|| canonical_form(g, &pi, &config).form);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_divide_s, bench_simplification, bench_invariant);
criterion_main!(benches);
