//! `dvicl-core` — the paper's primary contribution.
//!
//! This crate implements **DviCL**, the divide-and-conquer canonical
//! labeling algorithm of *"Graph Iso/Auto-morphism: A Divide-&-Conquer
//! Approach"* (SIGMOD 2021), together with the **AutoTree** index it
//! constructs and everything the paper builds on top of it:
//!
//! * [`build_autotree`] — Algorithm 1 (`DviCL`) with `DivideI`/`DivideS`
//!   (Algorithms 2–3) and `CombineCL`/`CombineST` (Algorithms 4–5).
//! * [`AutoTree`] — the tree index: canonical form, canonical labeling,
//!   sibling classes of symmetric subgraphs, structural statistics.
//! * [`aut`] — the automorphism group from the tree: generators, orbits,
//!   exact group order.
//! * [`ssm`] — symmetric subgraph matching (`SSM-AT`, Algorithm 6),
//!   symmetric-set keys, and exact counting of symmetric images.
//! * [`sm`] — a VF2-style induced subgraph matcher (the `SM` subroutine
//!   and the paper's SSM baseline).
//! * [`simplify`] — the structural-equivalence optimization of §6.1.
//! * [`iso`] — explicit isomorphism-mapping extraction between graphs.
//! * [`ksym`] — the k-symmetry anonymization application.
//! * [`verify`] — witness checking: near-linear runtime proofs that the
//!   labelings, generators and iso mappings above actually hold on the
//!   input graph (the `--paranoid` machinery, DESIGN.md §11).
//! * [`Session`] — a reusable build context (arena pools + `CombineCL`
//!   memo) that amortizes working memory and memoized leaf labelings
//!   across many graphs, the substrate of the `dvicl-index` batch
//!   isomorphism service.
//! * convenience wrappers: [`canonical_form`], [`are_isomorphic`].

#![warn(missing_docs)]

mod arena;
pub mod aut;
mod build;
pub mod iso;
pub mod ksym;
mod session;
pub mod simplify;
pub mod sm;
pub mod ssm;
mod sub;
mod tree;
pub mod verify;

pub use build::{
    build_autotree, build_autotree_resilient, build_autotree_whole_leaf, try_build_autotree,
    BuildOutcome, DviclOptions,
};
pub use arena::{ArenaMark, SubArena};
pub use session::Session;
pub use sub::{Division, Sub, SubCell};
pub use tree::{AutoTree, Node, NodeId, NodeKind, NodeRef, TreeStats};

/// Execution governance (re-export of `dvicl-govern`): [`govern::Budget`],
/// [`govern::CancelToken`], [`govern::DviclError`].
pub use dvicl_govern as govern;
pub use dvicl_govern::{Budget, CancelToken, DviclError};

use dvicl_graph::{CanonForm, Coloring, Graph};

pub use dvicl_graph::FormRef;

/// Canonically labels `g` (unit coloring, default options) and returns the
/// certificate.
pub fn canonical_form(g: &Graph) -> CanonForm {
    build_autotree(g, &Coloring::unit(g.n()), &DviclOptions::default())
        .canonical_form()
        .to_form()
}

/// True iff the two graphs are isomorphic (unit colorings).
pub fn are_isomorphic(g1: &Graph, g2: &Graph) -> bool {
    g1.n() == g2.n() && g1.m() == g2.m() && canonical_form(g1) == canonical_form(g2)
}

/// True iff the two *colored* graphs are isomorphic.
pub fn are_isomorphic_colored(g1: &Graph, pi1: &Coloring, g2: &Graph, pi2: &Coloring) -> bool {
    let opts = DviclOptions::default();
    g1.n() == g2.n()
        && g1.m() == g2.m()
        && build_autotree(g1, pi1, &opts).canonical_form()
            == build_autotree(g2, pi2, &opts).canonical_form()
}

/// Budgeted [`are_isomorphic`] with graceful degradation: when the
/// divide-and-conquer builds exhaust the budget's work cap, both sides
/// fall back to whole-graph IR labeling. A degraded (single-leaf)
/// certificate is not comparable with a divided-tree certificate of the
/// same graph, so if only one side degrades the other is rebuilt in
/// degraded mode too — the answer stays correct under any work budget.
pub fn try_are_isomorphic(g1: &Graph, g2: &Graph, budget: &Budget) -> Result<bool, DviclError> {
    if g1.n() != g2.n() || g1.m() != g2.m() {
        return Ok(false);
    }
    let opts = DviclOptions::default();
    let unit1 = Coloring::unit(g1.n());
    let unit2 = Coloring::unit(g2.n());
    let mut t1 = build_autotree_resilient(g1, &unit1, &opts, budget)?;
    let mut t2 = build_autotree_resilient(g2, &unit2, &opts, budget)?;
    if t1.degraded != t2.degraded {
        // Rebuild the non-degraded side as a whole-graph leaf so the
        // certificates are comparable (same labeling mode on both sides).
        let relaxed = budget.without_work_limit();
        if t1.degraded {
            t2 = BuildOutcome {
                tree: build_autotree_whole_leaf(g2, &unit2, &opts, &relaxed)?,
                degraded: true,
            };
        } else {
            t1 = BuildOutcome {
                tree: build_autotree_whole_leaf(g1, &unit1, &opts, &relaxed)?,
                degraded: true,
            };
        }
    }
    Ok(t1.tree.canonical_form() == t2.tree.canonical_form())
}
