//! `dvicl-core` — the paper's primary contribution.
//!
//! This crate implements **DviCL**, the divide-and-conquer canonical
//! labeling algorithm of *"Graph Iso/Auto-morphism: A Divide-&-Conquer
//! Approach"* (SIGMOD 2021), together with the **AutoTree** index it
//! constructs and everything the paper builds on top of it:
//!
//! * [`build_autotree`] — Algorithm 1 (`DviCL`) with `DivideI`/`DivideS`
//!   (Algorithms 2–3) and `CombineCL`/`CombineST` (Algorithms 4–5).
//! * [`AutoTree`] — the tree index: canonical form, canonical labeling,
//!   sibling classes of symmetric subgraphs, structural statistics.
//! * [`aut`] — the automorphism group from the tree: generators, orbits,
//!   exact group order.
//! * [`ssm`] — symmetric subgraph matching (`SSM-AT`, Algorithm 6),
//!   symmetric-set keys, and exact counting of symmetric images.
//! * [`sm`] — a VF2-style induced subgraph matcher (the `SM` subroutine
//!   and the paper's SSM baseline).
//! * [`simplify`] — the structural-equivalence optimization of §6.1.
//! * [`iso`] — explicit isomorphism-mapping extraction between graphs.
//! * [`ksym`] — the k-symmetry anonymization application.
//! * convenience wrappers: [`canonical_form`], [`are_isomorphic`].

#![warn(missing_docs)]

pub mod aut;
mod build;
pub mod iso;
pub mod ksym;
pub mod simplify;
pub mod sm;
pub mod ssm;
mod sub;
mod tree;

pub use build::{build_autotree, try_build_autotree, DviclOptions};
pub use sub::{Division, Sub, SubCell};
pub use tree::{AutoTree, Node, NodeId, NodeKind, TreeStats};

use dvicl_graph::{CanonForm, Coloring, Graph};

/// Canonically labels `g` (unit coloring, default options) and returns the
/// certificate.
pub fn canonical_form(g: &Graph) -> CanonForm {
    build_autotree(g, &Coloring::unit(g.n()), &DviclOptions::default())
        .canonical_form()
        .clone()
}

/// True iff the two graphs are isomorphic (unit colorings).
pub fn are_isomorphic(g1: &Graph, g2: &Graph) -> bool {
    g1.n() == g2.n() && g1.m() == g2.m() && canonical_form(g1) == canonical_form(g2)
}

/// True iff the two *colored* graphs are isomorphic.
pub fn are_isomorphic_colored(g1: &Graph, pi1: &Coloring, g2: &Graph, pi2: &Coloring) -> bool {
    let opts = DviclOptions::default();
    g1.n() == g2.n()
        && g1.m() == g2.m()
        && build_autotree(g1, pi1, &opts).canonical_form()
            == build_autotree(g2, pi2, &opts).canonical_form()
}
