//! Working subgraph representation for the DviCL recursion, plus the
//! divide rules `DivideI` (Algorithm 2) and `DivideS` (Algorithm 3).
//!
//! A [`Sub`] is a colored subgraph `(g, π_g)` of the input graph: vertices
//! keep their *global* identities and their *global* colors (the paper's
//! `π_g` is the projection of `π` onto `V(g)`, Theorem 6.1); adjacency is
//! stored over local indices for compactness. Children of a node are always
//! the **induced** subgraphs of `G` on their vertex sets (the paper defines
//! tree nodes that way in Section 5) — the edges deleted by the divide
//! rules only decide the component structure, they reappear inside any
//! child that retains both endpoints.

use dvicl_graph::{Coloring, Graph, V};
use dvicl_obs::{self as obs, Counter};
use rustc_hash::FxHashMap;

/// A colored subgraph `(g, π_g)` with global vertex identities.
#[derive(Clone, Debug)]
pub struct Sub {
    /// Global vertex ids, ascending.
    pub verts: Vec<V>,
    /// Local adjacency: `adj[i]` lists local indices adjacent to `verts[i]`.
    pub adj: Vec<Vec<u32>>,
}

/// One color cell of `π_g`: the global color plus the local members.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubCell {
    /// The global color (cell-start offset in the root coloring).
    pub color: V,
    /// Local indices of members, ascending.
    pub members: Vec<u32>,
}

/// Result of a divide attempt: the child vertex sets (as local index
/// lists), in an order that puts isolated axis singletons first.
pub struct Division {
    /// Local-index vertex sets of the children.
    pub parts: Vec<Vec<u32>>,
}

impl Sub {
    /// The whole graph as a subgraph (the AutoTree root).
    pub fn whole(g: &Graph) -> Sub {
        let verts: Vec<V> = (0..g.n() as V).collect();
        let adj = (0..g.n() as V)
            .map(|v| g.neighbors(v).to_vec())
            .collect();
        Sub { verts, adj }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.verts.len()
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    /// The cells of `π_g`, ordered by global color.
    pub fn cells(&self, pi: &Coloring) -> Vec<SubCell> {
        let mut pairs: Vec<(V, u32)> = self
            .verts
            .iter()
            .enumerate()
            // dvicl-lint: allow(narrowing-cast) -- i indexes the subgraph's vertices, at most n <= V::MAX
            .map(|(i, &v)| (pi.color_of(v), i as u32))
            .collect();
        pairs.sort_unstable();
        let mut out: Vec<SubCell> = Vec::new();
        for (color, i) in pairs {
            match out.last_mut() {
                Some(c) if c.color == color => c.members.push(i),
                _ => out.push(SubCell {
                    color,
                    members: vec![i],
                }),
            }
        }
        out
    }

    /// The induced child subgraph on the given local indices.
    pub fn induced_child(&self, locals: &[u32]) -> Sub {
        let mut sorted: Vec<u32> = locals.to_vec();
        sorted.sort_unstable_by_key(|&i| self.verts[i as usize]);
        let mut remap: FxHashMap<u32, u32> = FxHashMap::default();
        for (new, &old) in sorted.iter().enumerate() {
            // dvicl-lint: allow(narrowing-cast) -- new < locals.len() <= n <= V::MAX
            remap.insert(old, new as u32);
        }
        let verts: Vec<V> = sorted.iter().map(|&i| self.verts[i as usize]).collect();
        let adj: Vec<Vec<u32>> = sorted
            .iter()
            .map(|&old| {
                let mut row: Vec<u32> = self.adj[old as usize]
                    .iter()
                    .filter_map(|w| remap.get(w).copied())
                    .collect();
                row.sort_unstable();
                row
            })
            .collect();
        Sub { verts, adj }
    }

    /// Connected components over local indices, with `banned[i]` vertices
    /// and `dead` edges excluded. Components are ordered by minimum local
    /// index; each is ascending.
    fn components_excluding(
        &self,
        banned: &[bool],
        edge_alive: impl Fn(u32, u32) -> bool,
    ) -> Vec<Vec<u32>> {
        let n = self.n();
        let mut comp = vec![u32::MAX; n];
        let mut out = Vec::new();
        let mut stack = Vec::new();
        // dvicl-lint: allow(narrowing-cast) -- n = self.n() <= V::MAX by Graph's construction invariant
        for s in 0..n as u32 {
            if banned[s as usize] || comp[s as usize] != u32::MAX {
                continue;
            }
            // dvicl-lint: allow(narrowing-cast) -- at most n <= V::MAX components
            let id = out.len() as u32;
            comp[s as usize] = id;
            stack.push(s);
            let mut members = Vec::new();
            while let Some(v) = stack.pop() {
                members.push(v);
                for &w in &self.adj[v as usize] {
                    if banned[w as usize] || comp[w as usize] != u32::MAX || !edge_alive(v, w) {
                        continue;
                    }
                    comp[w as usize] = id;
                    stack.push(w);
                }
            }
            members.sort_unstable();
            out.push(members);
        }
        out
    }

    /// Plain component division: if `g` is disconnected, its components are
    /// the children (the trivially automorphism-preserving divide the paper
    /// leaves implicit). Returns `None` when connected.
    pub fn divide_components(&self) -> Option<Division> {
        let banned = vec![false; self.n()];
        let parts = self.components_excluding(&banned, |_, _| true);
        if parts.len() > 1 {
            obs::bump(Counter::DivideComponents);
            Some(Division { parts })
        } else {
            None
        }
    }

    /// `DivideI` (Algorithm 2): isolate every singleton cell of `π_g` as a
    /// one-vertex child; the connected components of the remainder are the
    /// other children. Returns `None` if `π_g` has no singleton cell.
    pub fn divide_i(&self, pi: &Coloring) -> Option<Division> {
        let cells = self.cells(pi);
        let singles: Vec<u32> = cells
            .iter()
            .filter(|c| c.members.len() == 1)
            .map(|c| c.members[0])
            .collect();
        if singles.is_empty() || singles.len() == self.n() && self.n() == 1 {
            return None;
        }
        let mut banned = vec![false; self.n()];
        for &s in &singles {
            banned[s as usize] = true;
        }
        let mut parts: Vec<Vec<u32>> = singles.iter().map(|&s| vec![s]).collect();
        parts.extend(self.components_excluding(&banned, |_, _| true));
        if parts.len() > 1 {
            obs::bump(Counter::DivideIApplied);
            Some(Division { parts })
        } else {
            None
        }
    }

    /// `DivideS` (Algorithm 3): delete the edges inside every cell that
    /// induces a clique and between every pair of cells joined completely
    /// bipartitely (Theorem 6.4 shows `Aut(g, π_g)` is unaffected); if the
    /// remainder is disconnected, its components are the children.
    ///
    /// Relies on `π_g` being equitable with respect to `g` (Theorem 6.1):
    /// one member per cell is probed, the rest are guaranteed to agree.
    pub fn divide_s(&self, pi: &Coloring) -> Option<Division> {
        let cells = self.cells(pi);
        let ncells = cells.len();
        // cell_of[local] = index into `cells`.
        let mut cell_of = vec![0u32; self.n()];
        for (ci, cell) in cells.iter().enumerate() {
            for &i in &cell.members {
                // dvicl-lint: allow(narrowing-cast) -- ci < ncells <= n <= V::MAX
                cell_of[i as usize] = ci as u32;
            }
        }
        // For one probe vertex per cell, count neighbors per cell.
        let mut full: Vec<Vec<bool>> = vec![Vec::new(); ncells];
        let mut any_removal = false;
        for (ci, cell) in cells.iter().enumerate() {
            let probe = cell.members[0];
            let mut counts = vec![0u32; ncells];
            for &w in &self.adj[probe as usize] {
                counts[cell_of[w as usize] as usize] += 1;
            }
            // full[ci][cj] = the probe sees ALL of cell cj (clique when
            // ci == cj, complete bipartite otherwise).
            full[ci] = (0..ncells)
                .map(|cj| {
                    let need = if cj == ci {
                        // dvicl-lint: allow(narrowing-cast) -- a cell holds at most n <= V::MAX vertices
                        cells[cj].members.len() as u32 - 1
                    } else {
                        // dvicl-lint: allow(narrowing-cast) -- a cell holds at most n <= V::MAX vertices
                        cells[cj].members.len() as u32
                    };
                    need > 0 && counts[cj] == need
                })
                .collect();
            if full[ci].iter().any(|&b| b) {
                any_removal = true;
            }
            debug_assert!(
                cell.members.iter().all(|&i| {
                    let mut c2 = vec![0u32; ncells];
                    for &w in &self.adj[i as usize] {
                        c2[cell_of[w as usize] as usize] += 1;
                    }
                    c2 == counts
                }),
                "π_g not equitable w.r.t. g — Theorem 6.1 violated"
            );
        }
        if !any_removal {
            return None;
        }
        // An edge (v, w) is dead iff its cell pair is fully joined. Note
        // full[ci][cj] must equal full[cj][ci] (both count the same
        // biclique), so probing one side suffices.
        let banned = vec![false; self.n()];
        let parts = self.components_excluding(&banned, |v, w| {
            let (cv, cw) = (cell_of[v as usize] as usize, cell_of[w as usize] as usize);
            !full[cv][cw]
        });
        if parts.len() > 1 {
            obs::bump(Counter::DivideSApplied);
            let mut deleted: u64 = 0;
            for (i, row) in self.adj.iter().enumerate() {
                for &j in row {
                    // dvicl-lint: allow(narrowing-cast) -- i indexes the subgraph's adjacency rows, at most n <= V::MAX
                    if (i as u32) < j {
                        let (ci, cj) = (cell_of[i] as usize, cell_of[j as usize] as usize);
                        if full[ci][cj] {
                            deleted += 1;
                        }
                    }
                }
            }
            obs::add(Counter::DivideSEdgesDeleted, deleted);
            Some(Division { parts })
        } else {
            None
        }
    }

    /// Builds a standalone [`Graph`] over the local indices, plus the local
    /// projection of the coloring — the inputs `CombineCL` feeds to the IR
    /// labeler.
    pub fn to_local_graph(&self, pi: &Coloring) -> (Graph, Coloring) {
        let mut edges = Vec::with_capacity(self.m());
        for (i, row) in self.adj.iter().enumerate() {
            for &j in row {
                // dvicl-lint: allow(narrowing-cast) -- i indexes the subgraph's adjacency rows, at most n <= V::MAX
                if (i as u32) < j {
                    // dvicl-lint: allow(narrowing-cast) -- i indexes the subgraph's adjacency rows, at most n <= V::MAX
                    edges.push((i as u32, j));
                }
            }
        }
        let g = Graph::from_edges(self.n(), &edges);
        let pi_local = pi.project(&self.verts);
        (g, pi_local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvicl_graph::named;
    use dvicl_refine::refine;

    fn refined(g: &Graph) -> Coloring {
        refine(g, &Coloring::unit(g.n())).coloring
    }

    #[test]
    fn whole_preserves_structure() {
        let g = named::fig1_example();
        let s = Sub::whole(&g);
        assert_eq!(s.n(), 8);
        assert_eq!(s.m(), 14);
        let (local, _) = s.to_local_graph(&refined(&g));
        assert_eq!(local, g);
    }

    #[test]
    fn cells_group_by_global_color() {
        let g = named::fig1_example();
        let pi = refined(&g); // [0..6 | 7]
        let s = Sub::whole(&g);
        let cells = s.cells(&pi);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].members.len(), 7);
        assert_eq!(cells[1].members, vec![7]);
    }

    #[test]
    fn divide_i_isolates_hub() {
        // Fig. 1(a): cell {7} is singleton; removing 7 leaves the 4-cycle
        // and the triangle as two components.
        let g = named::fig1_example();
        let pi = refined(&g);
        let s = Sub::whole(&g);
        let d = s.divide_i(&pi).expect("hub is a singleton cell");
        assert_eq!(d.parts.len(), 3);
        assert_eq!(d.parts[0], vec![7]); // the axis
        let mut rest: Vec<Vec<u32>> = d.parts[1..].to_vec();
        rest.sort();
        assert_eq!(rest, vec![vec![0, 1, 2, 3], vec![4, 5, 6]]);
    }

    #[test]
    fn divide_i_requires_singletons() {
        let g = named::petersen();
        let pi = refined(&g);
        assert!(Sub::whole(&g).divide_i(&pi).is_none());
    }

    #[test]
    fn divide_s_splits_clique_cell() {
        // Two triangles sharing... take K3 with a pendant on each vertex:
        // cells: {pendants}, {triangle}; triangle cell is a clique →
        // removing it splits into 3 components of 2 vertices each.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (0, 3), (1, 4), (2, 5)]);
        let pi = refined(&g);
        let s = Sub::whole(&g);
        assert!(s.divide_i(&pi).is_none());
        let d = s.divide_s(&pi).expect("clique cell splits");
        assert_eq!(d.parts.len(), 3);
        for p in &d.parts {
            assert_eq!(p.len(), 2);
        }
    }

    #[test]
    fn divide_s_complete_bipartite_between_cells() {
        // K_{2,2} with a pendant on each left vertex. Cells: left {0,1},
        // right {2,3}, pendants {4,5}. Left–right is complete bipartite →
        // removal separates {2},{3} from the left+pendant pairs.
        let g = Graph::from_edges(6, &[(0, 2), (0, 3), (1, 2), (1, 3), (0, 4), (1, 5)]);
        let pi = refined(&g);
        let s = Sub::whole(&g);
        let d = s.divide_s(&pi).expect("biclique edges removable");
        assert_eq!(d.parts.len(), 4);
    }

    #[test]
    fn divide_s_none_when_not_fully_joined() {
        let g = named::cycle(6);
        let pi = refined(&g);
        assert!(Sub::whole(&g).divide_s(&pi).is_none());
        let p = named::petersen();
        assert!(Sub::whole(&p).divide_s(&refined(&p)).is_none());
    }

    #[test]
    fn complete_graph_divides_to_singletons() {
        let g = named::complete(4);
        let pi = refined(&g);
        let d = Sub::whole(&g).divide_s(&pi).expect("K4 is one clique cell");
        assert_eq!(d.parts.len(), 4);
    }

    #[test]
    fn induced_child_keeps_removed_edges() {
        // The paper's nodes are induced subgraphs: a child containing two
        // members of a removed clique cell gets that edge back.
        let g = named::complete(4);
        let s = Sub::whole(&g);
        let child = s.induced_child(&[1, 3]);
        assert_eq!(child.verts, vec![1, 3]);
        assert_eq!(child.m(), 1);
    }

    #[test]
    fn components_divide() {
        let g = named::cycle(3).disjoint_union(&named::cycle(3));
        let s = Sub::whole(&g);
        let d = s.divide_components().expect("disconnected");
        assert_eq!(d.parts.len(), 2);
        assert!(Sub::whole(&named::petersen()).divide_components().is_none());
    }
}
