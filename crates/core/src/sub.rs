//! Working subgraph representation for the DviCL recursion.
//!
//! A [`Sub`] is a colored subgraph `(g, π_g)` of the input graph: vertices
//! keep their *global* identities and their *global* colors (the paper's
//! `π_g` is the projection of `π` onto `V(g)`, Theorem 6.1); adjacency is
//! stored over local indices for compactness. Children of a node are always
//! the **induced** subgraphs of `G` on their vertex sets (the paper defines
//! tree nodes that way in Section 5) — the edges deleted by the divide
//! rules only decide the component structure, they reappear inside any
//! child that retains both endpoints.
//!
//! Storage lives in a [`SubArena`](crate::SubArena): a `Sub` is a plain
//! `Copy` handle (offset ranges into the arena's flat vertex/CSR pools)
//! rather than an owner of nested `Vec`s, so carving a child costs one
//! bump of three stack tops and releasing it costs a truncate. All data
//! access and the divide rules `DivideI`/`DivideS` are methods on the
//! arena — see `crate::arena`.

use dvicl_graph::V;

/// A colored subgraph `(g, π_g)` with global vertex identities: a compact
/// handle into a [`SubArena`](crate::SubArena).
///
/// The handle is `Copy` and holds no pointers — only offsets — so it is
/// trivially `Send`: a future parallel divide can ship handles (plus a
/// shared read-only view of the parent segment) across threads without
/// touching the storage layout.
#[derive(Clone, Copy, Debug)]
pub struct Sub {
    /// Start of this subgraph's span in the arena's vertex pool.
    pub(crate) verts_start: usize,
    /// Start of this subgraph's `n + 1` offsets in the arena's offset
    /// pool. Offset values are relative to `adj_start`.
    pub(crate) offs_start: usize,
    /// Start of this subgraph's adjacency span in the arena's CSR pool.
    pub(crate) adj_start: usize,
    /// Number of vertices.
    pub(crate) n: usize,
    /// Number of (undirected) edges, cached at construction — `m()` is a
    /// field read, not a sum over adjacency rows.
    pub(crate) m: usize,
}

impl Sub {
    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges. Cached when the subgraph is carved — O(1).
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }
}

/// One color cell of `π_g`: the global color plus the local members.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubCell {
    /// The global color (cell-start offset in the root coloring).
    pub color: V,
    /// Local indices of members, ascending.
    pub members: Vec<u32>,
}

/// Result of a divide attempt: the child vertex sets (as local index
/// lists), in an order that puts isolated axis singletons first.
///
/// Parts are stored flat (CSR-style `offs`/`members`) — a division never
/// allocates per part.
#[derive(Clone, Debug, Default)]
pub struct Division {
    /// Part boundaries: part `i` is `members[offs[i] as usize..offs[i + 1] as usize]`.
    pub(crate) offs: Vec<u32>,
    /// Concatenated local-index lists, each part ascending.
    pub(crate) members: Vec<u32>,
}

impl Division {
    pub(crate) fn new() -> Self {
        Division {
            offs: vec![0],
            members: Vec::new(),
        }
    }

    /// Number of parts.
    pub fn len(&self) -> usize {
        self.offs.len() - 1
    }

    /// True iff the division has no parts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The local-index list of part `i`, ascending.
    pub fn part(&self, i: usize) -> &[u32] {
        &self.members[self.offs[i] as usize..self.offs[i + 1] as usize]
    }

    /// Iterator over the parts, in child order.
    pub fn parts(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.len()).map(move |i| self.part(i))
    }

    /// Appends a one-vertex part.
    pub(crate) fn push_singleton(&mut self, local: u32) {
        self.members.push(local);
        // dvicl-lint: allow(narrowing-cast) -- members holds at most n <= V::MAX local indices
        self.offs.push(self.members.len() as u32);
    }
}

#[cfg(test)]
mod tests {
    use crate::arena::SubArena;
    use dvicl_graph::{named, Coloring, Graph};
    use dvicl_refine::refine;

    fn refined(g: &Graph) -> Coloring {
        refine(g, &Coloring::unit(g.n())).coloring
    }

    fn parts_of(d: &super::Division) -> Vec<Vec<u32>> {
        d.parts().map(|p| p.to_vec()).collect()
    }

    #[test]
    fn whole_preserves_structure() {
        let g = named::fig1_example();
        let mut a = SubArena::new();
        let s = a.whole(&g);
        assert_eq!(s.n(), 8);
        assert_eq!(s.m(), 14);
        let (local, _) = a.to_local_graph(&s, &refined(&g));
        assert_eq!(local, g);
    }

    #[test]
    fn cells_group_by_global_color() {
        let g = named::fig1_example();
        let pi = refined(&g); // [0..6 | 7]
        let mut a = SubArena::new();
        let s = a.whole(&g);
        let cells = a.cells(&s, &pi);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].members.len(), 7);
        assert_eq!(cells[1].members, vec![7]);
    }

    #[test]
    fn divide_i_isolates_hub() {
        // Fig. 1(a): cell {7} is singleton; removing 7 leaves the 4-cycle
        // and the triangle as two components.
        let g = named::fig1_example();
        let pi = refined(&g);
        let mut a = SubArena::new();
        let s = a.whole(&g);
        let d = a.divide_i(&s, &pi).expect("hub is a singleton cell");
        assert_eq!(d.len(), 3);
        assert_eq!(d.part(0), &[7]); // the axis
        let mut rest: Vec<Vec<u32>> = parts_of(&d)[1..].to_vec();
        rest.sort();
        assert_eq!(rest, vec![vec![0, 1, 2, 3], vec![4, 5, 6]]);
    }

    #[test]
    fn divide_i_requires_singletons() {
        let g = named::petersen();
        let pi = refined(&g);
        let mut a = SubArena::new();
        let s = a.whole(&g);
        assert!(a.divide_i(&s, &pi).is_none());
    }

    #[test]
    fn divide_s_splits_clique_cell() {
        // K3 with a pendant on each vertex: cells: {pendants}, {triangle};
        // the triangle cell is a clique → removing it splits into 3
        // components of 2 vertices each.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (0, 3), (1, 4), (2, 5)]);
        let pi = refined(&g);
        let mut a = SubArena::new();
        let s = a.whole(&g);
        assert!(a.divide_i(&s, &pi).is_none());
        let d = a.divide_s(&s, &pi).expect("clique cell splits");
        assert_eq!(d.len(), 3);
        for p in d.parts() {
            assert_eq!(p.len(), 2);
        }
    }

    #[test]
    fn divide_s_complete_bipartite_between_cells() {
        // K_{2,2} with a pendant on each left vertex. Cells: left {0,1},
        // right {2,3}, pendants {4,5}. Left–right is complete bipartite →
        // removal separates {2},{3} from the left+pendant pairs.
        let g = Graph::from_edges(6, &[(0, 2), (0, 3), (1, 2), (1, 3), (0, 4), (1, 5)]);
        let pi = refined(&g);
        let mut a = SubArena::new();
        let s = a.whole(&g);
        let d = a.divide_s(&s, &pi).expect("biclique edges removable");
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn divide_s_none_when_not_fully_joined() {
        let g = named::cycle(6);
        let pi = refined(&g);
        let mut a = SubArena::new();
        let s = a.whole(&g);
        assert!(a.divide_s(&s, &pi).is_none());
        let p = named::petersen();
        let pp = refined(&p);
        let mut a2 = SubArena::new();
        let s2 = a2.whole(&p);
        assert!(a2.divide_s(&s2, &pp).is_none());
    }

    #[test]
    fn complete_graph_divides_to_singletons() {
        let g = named::complete(4);
        let pi = refined(&g);
        let mut a = SubArena::new();
        let s = a.whole(&g);
        let d = a.divide_s(&s, &pi).expect("K4 is one clique cell");
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn induced_child_keeps_removed_edges() {
        // The paper's nodes are induced subgraphs: a child containing two
        // members of a removed clique cell gets that edge back.
        let g = named::complete(4);
        let mut a = SubArena::new();
        let s = a.whole(&g);
        let child = a.induced_child(&s, &[1, 3]);
        assert_eq!(a.verts(&child), &[1, 3]);
        assert_eq!(child.m(), 1);
    }

    #[test]
    fn components_divide() {
        let g = named::cycle(3).disjoint_union(&named::cycle(3));
        let mut a = SubArena::new();
        let s = a.whole(&g);
        let d = a.divide_components(&s).expect("disconnected");
        assert_eq!(d.len(), 2);
        let p = named::petersen();
        let mut a2 = SubArena::new();
        let s2 = a2.whole(&p);
        assert!(a2.divide_components(&s2).is_none());
    }
}
