//! k-symmetry anonymization via the AutoTree (the application sketched in
//! Section 1 after \[34\]): duplicate subtrees of the root until every
//! sibling class has at least `k` members, so that *every vertex* of the
//! resulting graph has at least `k-1` automorphic counterparts and is
//! protected against structural re-identification.
//!
//! Cross-child edges in an AutoTree node are always *cell-complete* (that
//! is what the divide rules remove), so the extension reconstructs them
//! from the cell-pair "joined" relation: a cloned vertex attaches to every
//! vertex — original or clone — of a joined cell in another child. This is
//! what keeps the clones genuinely symmetric to their templates.

use crate::tree::AutoTree;
use dvicl_govern::{Budget, DviclError};
use dvicl_graph::{Graph, GraphBuilder, V};
use rustc_hash::{FxHashMap, FxHashSet};

/// Statistics of a k-symmetry extension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KSymStats {
    /// Vertices added to the original graph.
    pub added_vertices: usize,
    /// Edges added to the original graph.
    pub added_edges: usize,
    /// Root sibling classes that needed duplication.
    pub duplicated_classes: usize,
}

/// Builds the k-symmetric extension of `g`.
///
/// Panics when `k == 0`; [`try_k_symmetric_extension`] is the fallible,
/// budget-aware form.
pub fn k_symmetric_extension(g: &Graph, tree: &AutoTree, k: usize) -> (Graph, KSymStats) {
    try_k_symmetric_extension(g, tree, k, &Budget::unlimited())
        // dvicl-lint: allow(panic-freedom) -- documented panicking wrapper: only k == 0 can reach the Err arm, as stated in the doc comment
        .unwrap_or_else(|e| panic!("k-symmetry extension failed: {e}"))
}

/// Budgeted [`k_symmetric_extension`]: rejects `k == 0` as
/// [`DviclError::InvalidInput`] and spends one work unit per cloned vertex
/// (clone volume is the quantity that blows up when a class of size 1
/// must reach a large `k`).
pub fn try_k_symmetric_extension(
    g: &Graph,
    tree: &AutoTree,
    k: usize,
    budget: &Budget,
) -> Result<(Graph, KSymStats), DviclError> {
    if k == 0 {
        return Err(DviclError::invalid(
            "k-symmetry requires k >= 1 (every vertex needs k-1 counterparts)",
        ));
    }
    budget.check()?;
    let root = tree.node(tree.root());
    let n0 = g.n();

    // Special case: the root is itself a leaf (e.g. a rigid regular
    // graph). The only duplicable unit is the whole graph; clones are
    // disjoint copies.
    if root.children().is_empty() {
        if k == 1 || n0 == 0 {
            return Ok((
                g.clone(),
                KSymStats {
                    added_vertices: 0,
                    added_edges: 0,
                    duplicated_classes: 0,
                },
            ));
        }
        let mut out = g.clone();
        for _ in 1..k {
            budget.spend(n0 as u64)?;
            out = out.disjoint_union(g);
        }
        return Ok((
            out,
            KSymStats {
                added_vertices: (k - 1) * n0,
                added_edges: (k - 1) * g.m(),
                duplicated_classes: 1,
            },
        ));
    }

    // Which root child each original vertex belongs to.
    let mut child_of = vec![u32::MAX; n0];
    for (idx, &c) in root.children().iter().enumerate() {
        for &v in tree.node(c).verts() {
            // dvicl-lint: allow(narrowing-cast) -- idx indexes root.children, and the tree has at most n <= V::MAX root children
            child_of[v as usize] = idx as u32;
        }
    }
    // The joined relation over cell colors: a cross-child edge certifies
    // its cell pair is completely joined (divide-rule invariant).
    let mut joined: FxHashSet<(V, V)> = FxHashSet::default();
    for (u, v) in g.edges() {
        if child_of[u as usize] != child_of[v as usize] {
            let (a, b) = (tree.pi.color_of(u), tree.pi.color_of(v));
            joined.insert((a.min(b), a.max(b)));
        }
    }

    // Clone jobs: (template child node, fresh child index).
    let mut jobs: Vec<crate::tree::NodeId> = Vec::new();
    let mut duplicated_classes = 0;
    for &(start, end) in root.sibling_classes() {
        let c = (end - start) as usize;
        if c < k {
            duplicated_classes += 1;
            for _ in 0..(k - c) {
                jobs.push(root.children()[start as usize]);
            }
        }
    }
    if jobs.is_empty() {
        return Ok((
            g.clone(),
            KSymStats {
                added_vertices: 0,
                added_edges: 0,
                duplicated_classes,
            },
        ));
    }

    // Allocate clone vertex ids and record every vertex's (cell, child).
    let mut clone_ids: Vec<Vec<V>> = Vec::new(); // per job, parallel to template verts
    let mut next = n0 as V;
    let mut cell_members: FxHashMap<V, Vec<(V, u32)>> = FxHashMap::default();
    for v in 0..n0 as V {
        cell_members
            .entry(tree.pi.color_of(v))
            .or_default()
            .push((v, child_of[v as usize]));
    }
    // dvicl-lint: allow(narrowing-cast) -- the root has at most n <= V::MAX children
    let num_children = root.children().len() as u32;
    for (j, &template) in jobs.iter().enumerate() {
        let t = tree.node(template);
        budget.spend(t.n() as u64)?;
        // dvicl-lint: allow(narrowing-cast) -- j < jobs.len() <= (k - 1) * n clones, bounded well below u32::MAX by the budget
        let child_idx = num_children + j as u32;
        let ids: Vec<V> = (0..t.n()).map(|i| next + i as V).collect();
        next += t.n() as V;
        for (i, &orig) in t.verts().iter().enumerate() {
            cell_members
                .entry(tree.pi.color_of(orig))
                .or_default()
                .push((ids[i], child_idx));
        }
        clone_ids.push(ids);
    }
    let total = next as usize;
    // Cell color of every vertex (originals + clones).
    let mut color_of = vec![0 as V; total];
    for v in 0..n0 as V {
        color_of[v as usize] = tree.pi.color_of(v);
    }
    let mut child_of_all = vec![u32::MAX; total];
    child_of_all[..n0].copy_from_slice(&child_of[..n0]);
    for (j, &template) in jobs.iter().enumerate() {
        let t = tree.node(template);
        for (i, &orig) in t.verts().iter().enumerate() {
            let cv = clone_ids[j][i] as usize;
            color_of[cv] = tree.pi.color_of(orig);
            // dvicl-lint: allow(narrowing-cast) -- j < jobs.len() <= (k - 1) * n clones, bounded well below u32::MAX by the budget
            child_of_all[cv] = num_children + j as u32;
        }
    }

    let mut b = GraphBuilder::with_capacity(total, g.m() * (1 + jobs.len()));
    // Original edges.
    for (u, v) in g.edges() {
        b.add_edge(u, v);
    }
    // Internal clone edges: mirror the template's internal edges.
    for (j, &template) in jobs.iter().enumerate() {
        let t = tree.node(template);
        let local: FxHashMap<V, usize> = t
            .verts()
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        for (i, &orig) in t.verts().iter().enumerate() {
            for &w in g.neighbors(orig) {
                if let Some(&lw) = local.get(&w) {
                    if lw > i {
                        b.add_edge(clone_ids[j][i], clone_ids[j][lw]);
                    }
                }
            }
        }
    }
    // Cross-child edges involving clones: cell-complete per the joined
    // relation.
    for (j, _) in jobs.iter().enumerate() {
        for &cv in &clone_ids[j] {
            let cx = color_of[cv as usize];
            let my_child = child_of_all[cv as usize];
            for &(ca, cb) in joined.iter() {
                let other = if ca == cx {
                    cb
                } else if cb == cx {
                    ca
                } else {
                    continue;
                };
                if let Some(members) = cell_members.get(&other) {
                    for &(y, ychild) in members {
                        if ychild != my_child {
                            b.add_edge(cv, y);
                        }
                    }
                }
                // Same-cell joins (clique cells spanning children).
                if ca == cb && ca == cx {
                    if let Some(members) = cell_members.get(&cx) {
                        for &(y, ychild) in members {
                            if ychild != my_child {
                                b.add_edge(cv, y);
                            }
                        }
                    }
                }
            }
        }
    }
    let out = b.build();
    let added_edges = out.m() - g.m();
    Ok((
        out,
        KSymStats {
            added_vertices: total - n0,
            added_edges,
            duplicated_classes,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{aut, build_autotree, DviclOptions};
    use dvicl_graph::{named, Coloring};

    fn tree_of(g: &Graph) -> AutoTree {
        build_autotree(g, &Coloring::unit(g.n()), &DviclOptions::default())
    }

    /// Every vertex of `g` must have at least `k-1` automorphic
    /// counterparts: no orbit of size < k.
    fn assert_k_symmetric(g: &Graph, k: usize) {
        let t = tree_of(g);
        let mut orbits = aut::orbits(&t);
        for cell in orbits.cells() {
            assert!(
                cell.len() >= k,
                "orbit {cell:?} smaller than k={k} in extension"
            );
        }
    }

    #[test]
    fn fig1_becomes_2_symmetric() {
        let g = named::fig1_example();
        let t = tree_of(&g);
        let (g2, stats) = k_symmetric_extension(&g, &t, 2);
        assert!(stats.added_vertices > 0);
        assert!(stats.duplicated_classes >= 1);
        assert_k_symmetric(&g2, 2);
    }

    #[test]
    fn fig1_becomes_3_symmetric() {
        let g = named::fig1_example();
        let t = tree_of(&g);
        let (g2, _) = k_symmetric_extension(&g, &t, 3);
        assert_k_symmetric(&g2, 3);
    }

    #[test]
    fn path_becomes_3_symmetric() {
        let g = named::path(5);
        let t = tree_of(&g);
        let (g2, _) = k_symmetric_extension(&g, &t, 3);
        assert_k_symmetric(&g2, 3);
    }

    #[test]
    fn already_symmetric_classes_untouched() {
        let tri = named::cycle(3);
        let g = tri.disjoint_union(&tri).disjoint_union(&tri);
        let t = tree_of(&g);
        let (g2, stats) = k_symmetric_extension(&g, &t, 3);
        assert_eq!(stats.added_vertices, 0);
        assert_eq!(g2.n(), g.n());
        assert_k_symmetric(&g2, 3);
    }

    #[test]
    fn k1_is_identity() {
        let g = named::frucht();
        let t = tree_of(&g);
        let (g2, stats) = k_symmetric_extension(&g, &t, 1);
        assert_eq!(g2, g);
        assert_eq!(stats.added_vertices, 0);
    }

    #[test]
    fn rigid_regular_graph_gets_disjoint_copies() {
        let g = named::frucht(); // root is a single leaf
        let t = tree_of(&g);
        let (g2, stats) = k_symmetric_extension(&g, &t, 2);
        assert_eq!(stats.added_vertices, 12);
        assert_eq!(g2.n(), 24);
        assert_k_symmetric(&g2, 2);
    }

    #[test]
    fn k0_is_a_typed_error() {
        let g = named::path(3);
        let t = tree_of(&g);
        assert!(matches!(
            try_k_symmetric_extension(&g, &t, 0, &Budget::unlimited()),
            Err(DviclError::InvalidInput(_))
        ));
    }

    #[test]
    fn clone_volume_is_budgeted() {
        use dvicl_govern::Resource;
        let g = named::path(5);
        let t = tree_of(&g);
        let err = try_k_symmetric_extension(&g, &t, 50, &Budget::with_max_work(3)).unwrap_err();
        assert!(matches!(
            err,
            DviclError::BudgetExceeded {
                resource: Resource::WorkUnits,
                ..
            }
        ));
    }

    #[test]
    fn star_becomes_heavily_symmetric() {
        let g = named::star(4);
        let t = tree_of(&g);
        let (g2, _) = k_symmetric_extension(&g, &t, 4);
        assert_k_symmetric(&g2, 4);
    }
}
