//! Structural-equivalence simplification (Section 6.1).
//!
//! Vertices with identical neighbor sets (`N(u) = N(v)`, the paper's
//! *structural equivalence*; such vertices are necessarily non-adjacent and
//! automorphic) are collapsed to one representative before running DviCL.
//! The original graph is exactly the "blow-up" of the simplified graph by
//! the class sizes, so the pair *(certificate of the simplified colored
//! graph, class sizes in canonical order)* is a valid certificate of the
//! original graph — see [`SimplifiedCertificate`]. This is the optimization
//! that makes twin-heavy graphs (the paper's WikiTalk, Youtube, …) cheap.
//!
//! Note the paper's caveat (Fig. 4 vs Fig. 8): different DviCL variants
//! produce *different* canonical labelings; certificates from the
//! simplified path are only comparable with other simplified-path
//! certificates.

use crate::aut;
use crate::build::{build_autotree, DviclOptions};
use crate::tree::AutoTree;
use dvicl_graph::{CanonForm, Coloring, Graph, V};
use dvicl_group::{BigUint, Orbits};
use rustc_hash::FxHashMap;

/// The structural-equivalence (false twin) classes of a colored graph.
#[derive(Clone, Debug)]
pub struct TwinClasses {
    /// Class representative (the minimum member) per vertex.
    pub rep_of: Vec<V>,
    /// The classes with at least two members, each ascending, ordered by
    /// representative.
    pub non_singleton: Vec<Vec<V>>,
}

/// Groups vertices by `(color, N(v))`. Two vertices are twins iff they
/// share the user color and the exact neighbor set.
pub fn twin_classes(g: &Graph, pi0: &Coloring) -> TwinClasses {
    let n = g.n();
    let mut buckets: FxHashMap<u64, Vec<V>> = FxHashMap::default();
    for v in 0..n as V {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ pi0.color_of(v) as u64;
        for &w in g.neighbors(v) {
            h = (h ^ w as u64).wrapping_mul(0x1000_0000_01b3);
        }
        buckets.entry(h).or_default().push(v);
    }
    let mut rep_of: Vec<V> = (0..n as V).collect();
    let mut non_singleton: Vec<Vec<V>> = Vec::new();
    for (_, bucket) in buckets {
        if bucket.len() < 2 {
            continue;
        }
        // Verify exactly within the bucket (hash collisions possible).
        let mut groups: Vec<Vec<V>> = Vec::new();
        'outer: for &v in &bucket {
            for grp in &mut groups {
                let r = grp[0];
                if pi0.color_of(r) == pi0.color_of(v) && g.neighbors(r) == g.neighbors(v) {
                    grp.push(v);
                    continue 'outer;
                }
            }
            groups.push(vec![v]);
        }
        for mut grp in groups {
            if grp.len() < 2 {
                continue;
            }
            grp.sort_unstable();
            for &v in &grp {
                rep_of[v as usize] = grp[0];
            }
            non_singleton.push(grp);
        }
    }
    non_singleton.sort();
    TwinClasses {
        rep_of,
        non_singleton,
    }
}

/// A certificate of `G` produced through the simplified path: the
/// certificate of the collapsed colored graph plus the twin-class sizes in
/// canonical-label order. Two graphs are isomorphic iff their simplified
/// certificates are equal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimplifiedCertificate {
    /// Certificate of `(G_s, π_s)` where `π_s` folds user colors and class
    /// sizes together.
    pub form: CanonForm,
    /// `multiplicities[p]` = twin-class size of the representative whose
    /// canonical label is `p`.
    pub multiplicities: Vec<u32>,
}

/// The full output of the simplified DviCL run.
pub struct SimplifiedDvicl {
    /// The AutoTree of the *simplified* graph (its vertex ids are
    /// `reps[i]`-indexed locals, not original ids).
    pub tree: AutoTree,
    /// Original vertex id of each simplified vertex.
    pub reps: Vec<V>,
    /// Class size per simplified vertex.
    pub class_size: Vec<u32>,
    /// The certificate of the original graph.
    pub certificate: SimplifiedCertificate,
    /// The twin classes that were collapsed.
    pub twins: TwinClasses,
}

/// Runs DviCL through the structural-equivalence optimization.
pub fn dvicl_simplified(g: &Graph, pi0: &Coloring, opts: &DviclOptions) -> SimplifiedDvicl {
    let twins = twin_classes(g, pi0);
    dvicl_obs::add(
        dvicl_obs::Counter::TwinClassesCollapsed,
        twins.non_singleton.len() as u64,
    );
    // Representatives, ascending; class size per rep.
    let n = g.n();
    let reps: Vec<V> = (0..n as V).filter(|&v| twins.rep_of[v as usize] == v).collect();
    let mut size_of_rep: FxHashMap<V, u32> = reps.iter().map(|&r| (r, 1)).collect();
    for class in &twins.non_singleton {
        // dvicl-lint: allow(narrowing-cast) -- a twin class holds at most n <= V::MAX vertices
        size_of_rep.insert(class[0], class.len() as u32);
    }
    let class_size: Vec<u32> = reps.iter().map(|&r| size_of_rep[&r]).collect();
    let gs = g.induced(&reps);
    // Fold (user color, class size) into the initial coloring of G_s.
    let mut pairs: Vec<(V, u32)> = reps
        .iter()
        .zip(&class_size)
        .map(|(&r, &s)| (pi0.color_of(r), s))
        .collect();
    let mut sorted = pairs.clone();
    sorted.sort_unstable();
    sorted.dedup();
    let rank: FxHashMap<(V, u32), V> = sorted
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as V))
        .collect();
    let labels: Vec<V> = pairs.drain(..).map(|p| rank[&p]).collect();
    let pis = Coloring::from_labels(&labels);
    let tree = build_autotree(&gs, &pis, opts);
    // Multiplicities in canonical-label order.
    let labeling = tree.canonical_labeling();
    let mut multiplicities = vec![0u32; reps.len()];
    for (local, &s) in class_size.iter().enumerate() {
        multiplicities[labeling.apply(local as V) as usize] = s;
    }
    let certificate = SimplifiedCertificate {
        form: tree.canonical_form().to_form(),
        multiplicities,
    };
    SimplifiedDvicl {
        tree,
        reps,
        class_size,
        certificate,
        twins,
    }
}

impl SimplifiedDvicl {
    /// Orbits of the *original* graph: twins join their representative's
    /// orbit; representatives follow the simplified tree's orbits.
    pub fn original_orbits(&self, n: usize) -> Orbits {
        let mut o = Orbits::identity(n);
        for class in &self.twins.non_singleton {
            for w in class.windows(2) {
                o.union(w[0], w[1]);
            }
        }
        let mut simplified = aut::orbits(&self.tree);
        for cell in simplified.cells() {
            for w in cell.windows(2) {
                o.union(self.reps[w[0] as usize], self.reps[w[1] as usize]);
            }
        }
        o
    }

    /// `|Aut(G, π)|` of the original graph:
    /// `|Aut(G_s, π_s)| · ∏ (class size)!`.
    pub fn original_group_order(&self) -> BigUint {
        let mut acc = aut::group_order(&self.tree);
        for class in &self.twins.non_singleton {
            acc *= &BigUint::factorial(class.len() as u64);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvicl_graph::{named, Perm};
    use dvicl_group::brute;

    fn simplified(g: &Graph) -> SimplifiedDvicl {
        dvicl_simplified(g, &Coloring::unit(g.n()), &DviclOptions::default())
    }

    #[test]
    fn fig1_twins_match_paper_fig7() {
        // Section 6.1: the non-singleton classes of Fig. 1(a) are {0,2}
        // and {1,3}; the simplified graph G_s drops vertices 2 and 3.
        let g = named::fig1_example();
        let twins = twin_classes(&g, &Coloring::unit(8));
        assert_eq!(twins.non_singleton, vec![vec![0, 2], vec![1, 3]]);
        let s = simplified(&g);
        assert_eq!(s.reps.len(), 6);
        assert!(!s.reps.contains(&2));
        assert!(!s.reps.contains(&3));
    }

    #[test]
    fn certificate_invariant_under_relabeling() {
        for g in [
            named::fig1_example(),
            named::star(7),
            named::rary_tree(3, 2),
            named::fig3_example(),
        ] {
            let n = g.n();
            let c1 = simplified(&g).certificate;
            let gamma = Perm::from_cycles(n, &[&[0, (n - 1) as V], &[1, (n / 2) as V]]).unwrap();
            let c2 = simplified(&g.permuted(&gamma)).certificate;
            assert_eq!(c1, c2);
        }
    }

    #[test]
    fn multiplicities_distinguish_blowups() {
        // star(2) and star(3) both simplify to K2; only the class sizes
        // tell them apart.
        let c2 = simplified(&named::star(2)).certificate;
        let c3 = simplified(&named::star(3)).certificate;
        assert_eq!(c2.form, c3.form);
        assert_ne!(c2, c3);
    }

    #[test]
    fn group_orders_match_brute_force() {
        for g in [
            named::fig1_example(), // 48
            named::star(5),        // 120
            named::complete_bipartite(2, 3),
            named::rary_tree(2, 2),
            named::path(4), // no twins at all
        ] {
            let pi = Coloring::unit(g.n());
            let expected = brute::automorphism_count(&g, &pi);
            let s = simplified(&g);
            assert_eq!(
                s.original_group_order().to_u64(),
                Some(expected),
                "{g:?}"
            );
        }
    }

    #[test]
    fn orbits_match_plain_path() {
        for g in [named::fig1_example(), named::star(6), named::rary_tree(2, 3)] {
            let s = simplified(&g);
            let mut simplified_orbits = s.original_orbits(g.n());
            let t = build_autotree(&g, &Coloring::unit(g.n()), &DviclOptions::default());
            let mut plain = aut::orbits(&t);
            assert_eq!(simplified_orbits.cells(), plain.cells(), "{g:?}");
        }
    }

    #[test]
    fn twinless_graph_is_unchanged() {
        let g = named::petersen();
        let s = simplified(&g);
        assert_eq!(s.reps.len(), 10);
        assert!(s.twins.non_singleton.is_empty());
        assert_eq!(s.class_size, vec![1; 10]);
    }

    #[test]
    fn respects_user_colors() {
        // Two star leaves with different colors are NOT twins.
        let g = named::star(2);
        let pi = Coloring::from_cells(vec![vec![0, 1], vec![2]]).unwrap();
        let twins = twin_classes(&g, &pi);
        assert!(twins.non_singleton.is_empty());
    }
}
