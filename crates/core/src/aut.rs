//! The automorphism group `Aut(G, π)` from an AutoTree.
//!
//! The paper (Section 5) shows the tree preserves a *generating set* of the
//! automorphism group: (a) the automorphisms inside every non-singleton
//! leaf, and (b) one isomorphism between each pair of adjacent symmetric
//! siblings. Because every automorphism of a node must permute the node's
//! children within their sibling classes (the divide rules delete only
//! cell-complete edge sets, so the component structure is
//! automorphism-invariant), the group of a node is exactly the direct
//! product over sibling classes of the wreath products
//! `Aut(child) ≀ S_k` — giving the closed-form order
//! `∏_classes |Aut(child)|^k · k!` used by [`group_order`].

use crate::tree::{AutoTree, NodeId, NodeKind};
use dvicl_graph::{Perm, V};
use dvicl_group::{BigUint, Orbits, StabChain};

/// A generating set of `Aut(G, π)` as dense permutations of the full
/// vertex set: leaf generators plus adjacent sibling swaps.
pub fn generators(tree: &AutoTree) -> Vec<Perm> {
    let n = tree.pi.n();
    let mut out = Vec::new();
    for node in tree.nodes() {
        // (a) automorphisms of non-singleton leaves, extended by identity.
        for sparse in node.leaf_generators() {
            let mut image: Vec<V> = (0..n as V).collect();
            for &(v, w) in sparse {
                image[v as usize] = w;
            }
            // dvicl-lint: allow(panic-freedom) -- sparse entries come from a stored automorphism, so the patched identity stays a bijection
            out.push(Perm::from_image(image).expect("leaf generator is a bijection"));
        }
        // (b) swaps of adjacent symmetric siblings.
        for &(start, end) in node.sibling_classes() {
            for k in start as usize..(end as usize).saturating_sub(1) {
                let a = node.children()[k];
                let b = node.children()[k + 1];
                let matched = tree.sibling_isomorphism(a, b);
                let mut image: Vec<V> = (0..n as V).collect();
                for (va, vb) in matched {
                    image[va as usize] = vb;
                    image[vb as usize] = va;
                }
                // dvicl-lint: allow(panic-freedom) -- sibling_isomorphism returns a perfect matching, so the pairwise swap is a bijection
                out.push(Perm::from_image(image).expect("sibling swap is an involution"));
            }
        }
    }
    out
}

/// The vertex orbits of `Aut(G, π)`, computed by union-find closure over
/// the tree (no dense permutations are materialized, so this scales to the
/// large-graph statistics of Table 1).
pub fn orbits(tree: &AutoTree) -> Orbits {
    let n = tree.pi.n();
    let mut o = Orbits::identity(n);
    for node in tree.nodes() {
        for sparse in node.leaf_generators() {
            for &(v, w) in sparse {
                o.union(v, w);
            }
        }
        for &(start, end) in node.sibling_classes() {
            for k in start as usize..(end as usize).saturating_sub(1) {
                for (va, vb) in tree.sibling_isomorphism(node.children()[k], node.children()[k + 1])
                {
                    o.union(va, vb);
                }
            }
        }
    }
    o
}

/// The exact order `|Aut(G, π)|`, computed structurally:
/// singleton leaves contribute 1; a non-singleton leaf contributes the
/// order of its IR-discovered group (via Schreier–Sims); an internal node
/// contributes `∏_classes |Aut(child)|^k · k!`.
pub fn group_order(tree: &AutoTree) -> BigUint {
    order_of(tree, tree.root())
}

fn order_of(tree: &AutoTree, id: NodeId) -> BigUint {
    let node = tree.node(id);
    match node.kind() {
        NodeKind::SingletonLeaf => BigUint::one(),
        NodeKind::NonSingletonLeaf => leaf_order(tree, id),
        NodeKind::Internal => {
            let mut acc = BigUint::one();
            for &(start, end) in node.sibling_classes() {
                let k = (end - start) as u64;
                let child_order = order_of(tree, node.children()[start as usize]);
                for _ in 0..k {
                    acc *= &child_order;
                }
                acc *= &BigUint::factorial(k);
            }
            acc
        }
    }
}

/// Order of a non-singleton leaf's group: rebuild its generators over
/// local indices and run Schreier–Sims.
fn leaf_order(tree: &AutoTree, id: NodeId) -> BigUint {
    let node = tree.node(id);
    let nl = node.n();
    let local_of = |v: V| -> u32 {
        node.verts()
            .binary_search(&v)
            // dvicl-lint: allow(panic-freedom, narrowing-cast) -- leaf generators only move the leaf's own vertices, and the index is < node.n() <= V::MAX
            .expect("leaf generator stays inside the leaf") as u32
    };
    let gens: Vec<Perm> = node
        .leaf_generators()
        .map(|sparse| {
            let mut image: Vec<V> = (0..nl as V).collect();
            for &(v, w) in sparse {
                image[local_of(v) as usize] = local_of(w);
            }
            // dvicl-lint: allow(panic-freedom) -- relabeling a stored automorphism through the bijective local_of keeps it a bijection
            Perm::from_image(image).expect("local leaf generator is a bijection")
        })
        .collect();
    StabChain::new(nl, &gens).order()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_autotree, DviclOptions};
    use dvicl_graph::{named, Coloring, Graph};
    use dvicl_group::brute;

    fn tree_of(g: &Graph) -> AutoTree {
        build_autotree(g, &Coloring::unit(g.n()), &DviclOptions::default())
    }

    #[test]
    fn group_orders_match_brute_force() {
        for g in [
            named::fig1_example(), // 48
            named::complete(5),    // 120
            named::cycle(6),       // 12
            named::path(5),        // 2
            named::star(5),        // 120
            named::complete_bipartite(3, 3),
            named::petersen(),  // 120
            named::hypercube(3), // 48
            named::frucht(),    // 1
            named::rary_tree(2, 2),
            named::cycle(3).disjoint_union(&named::cycle(3)),
        ] {
            let pi = Coloring::unit(g.n());
            let expected = brute::automorphism_count(&g, &pi);
            let t = tree_of(&g);
            assert_eq!(
                group_order(&t).to_u64(),
                Some(expected),
                "order mismatch for {g:?}"
            );
        }
    }

    #[test]
    fn generators_generate_the_full_group() {
        for g in [
            named::fig1_example(),
            named::rary_tree(2, 2),
            named::star(4),
            named::hypercube(3),
        ] {
            let t = tree_of(&g);
            let gens = generators(&t);
            // Every generator is a genuine automorphism...
            for gen in &gens {
                assert_eq!(g.permuted(gen), g);
            }
            // ...and they generate a group of the structural order.
            let chain = StabChain::new(g.n(), &gens);
            assert_eq!(chain.order(), group_order(&t));
        }
    }

    #[test]
    fn orbits_match_brute_force() {
        for g in [
            named::fig1_example(),
            named::rary_tree(2, 3),
            named::petersen(),
            named::frucht(),
            named::path(6),
        ] {
            let pi = Coloring::unit(g.n());
            let t = tree_of(&g);
            let mut ours = orbits(&t);
            let mut truth = Orbits::identity(g.n());
            for gamma in brute::automorphisms(&g, &pi) {
                truth.absorb(&gamma);
            }
            assert_eq!(ours.cells(), truth.cells(), "orbits differ for {g:?}");
        }
    }

    #[test]
    fn fig1_orbit_structure() {
        let g = named::fig1_example();
        let t = tree_of(&g);
        let mut o = orbits(&t);
        assert_eq!(o.cells(), vec![vec![0, 1, 2, 3], vec![4, 5, 6], vec![7]]);
        assert_eq!(o.count(), 3);
        assert_eq!(o.count_singletons(), 1);
    }

    #[test]
    fn wreath_product_order_for_forest_of_stars() {
        // 3 disjoint copies of K_{1,2}: |Aut| = (2!)³ · 3! = 48.
        let star = named::star(2);
        let g = star.disjoint_union(&star).disjoint_union(&star);
        let t = tree_of(&g);
        assert_eq!(group_order(&t).to_u64(), Some(48));
    }

    #[test]
    fn colored_restriction() {
        let g = named::fig1_example();
        let pi = Coloring::from_cells(vec![vec![1, 2, 3, 4, 5, 6, 7], vec![0]]).unwrap();
        let t = build_autotree(&g, &pi, &DviclOptions::default());
        assert_eq!(
            group_order(&t).to_u64(),
            Some(brute::automorphism_count(&g, &pi))
        );
    }
}

/// An explicit automorphism `γ ∈ Aut(G, π)` with `u^γ = v`, or `None` if
/// `u` and `v` are not automorphic.
///
/// The witness is composed structurally, the way Section 5 describes
/// symmetry detection on the AutoTree: walk up from the two leaves to the
/// lowest common ancestor; there the carriers are symmetric siblings, so
/// the label-matching sibling swap maps `u` into `v`'s subtree; recurse
/// until both sides meet inside one leaf, where a BFS over the leaf's
/// generators (tracking group elements) finishes the job.
pub fn automorphism_witness(tree: &AutoTree, u: V, v: V) -> Option<Perm> {
    let n = tree.pi.n();
    if u == v {
        return Some(Perm::identity(n));
    }
    // Leaf path of a vertex, root-first.
    let path_of = |x: V| -> Vec<NodeId> {
        let mut path = Vec::new();
        let mut cur = tree.root();
        path.push(cur);
        'descend: loop {
            for &c in tree.node(cur).children() {
                if tree.node(c).contains(x) {
                    cur = c;
                    path.push(cur);
                    continue 'descend;
                }
            }
            return path;
        }
    };
    let (pu, pv) = (path_of(u), path_of(v));
    // Lowest common ancestor depth.
    let mut d = 0;
    while d + 1 < pu.len() && d + 1 < pv.len() && pu[d + 1] == pv[d + 1] {
        d += 1;
    }
    if pu[d] != pv[d] {
        return None;
    }
    let lca = pu[d];
    if pu.len() == d + 1 || pv.len() == d + 1 {
        // One vertex's leaf IS the lca: both must be in that leaf.
        debug_assert_eq!(pu.last(), pv.last());
        // dvicl-lint: allow(panic-freedom) -- pu has at least d + 1 elements (indexed as pu[d] above), so last() is Some
        return leaf_witness(tree, *pu.last().expect("non-empty path"), u, v);
    }
    let (a, b) = (pu[d + 1], pv[d + 1]);
    // The carriers must be symmetric siblings of one class.
    let (_, start, end) = tree.class_of(a)?;
    let parent = tree.node(lca);
    let pos_b = parent.children().iter().position(|&c| c == b)?;
    if !(start <= pos_b && pos_b < end) || tree.node(a).form() != tree.node(b).form() {
        return None;
    }
    // Swap a↔b by label matching, identity elsewhere.
    let mut image: Vec<V> = (0..n as V).collect();
    for (x, y) in tree.sibling_isomorphism(a, b) {
        image[x as usize] = y;
        image[y as usize] = x;
    }
    // dvicl-lint: allow(panic-freedom) -- sibling_isomorphism returns a perfect matching, so the pairwise swap is a bijection
    let swap = Perm::from_image(image).expect("sibling swap is a bijection");
    let u_in_b = swap.apply(u);
    // Continue inside b.
    let rest = automorphism_witness(tree, u_in_b, v)?;
    Some(swap.then(&rest))
}

/// Witness inside a single leaf: BFS over the leaf's generator group,
/// tracking the composed element.
fn leaf_witness(tree: &AutoTree, leaf: NodeId, u: V, v: V) -> Option<Perm> {
    let n = tree.pi.n();
    let node = tree.node(leaf);
    let gens: Vec<Perm> = node
        .leaf_generators()
        .map(|sparse| {
            let mut image: Vec<V> = (0..n as V).collect();
            for &(a, b) in sparse {
                image[a as usize] = b;
            }
            // dvicl-lint: allow(panic-freedom) -- sparse entries come from a stored automorphism, so the patched identity stays a bijection
            Perm::from_image(image).expect("leaf generator is a bijection")
        })
        .collect();
    let mut frontier = vec![(u, Perm::identity(n))];
    let mut seen = rustc_hash::FxHashSet::default();
    seen.insert(u);
    let mut head = 0;
    while head < frontier.len() {
        let (x, elem) = frontier[head].clone();
        head += 1;
        if x == v {
            return Some(elem);
        }
        for g in &gens {
            let y = g.apply(x);
            if seen.insert(y) {
                frontier.push((y, elem.then(g)));
            }
        }
    }
    None
}

#[cfg(test)]
mod witness_tests {
    use super::*;
    use crate::{build_autotree, DviclOptions};
    use dvicl_graph::{named, Coloring, Graph};
    use dvicl_group::brute;

    fn tree_of(g: &Graph) -> AutoTree {
        build_autotree(g, &Coloring::unit(g.n()), &DviclOptions::default())
    }

    #[test]
    fn witnesses_for_all_orbit_pairs() {
        for g in [
            named::fig1_example(),
            named::fig3_example(),
            named::rary_tree(2, 3),
            named::petersen(),
            named::star(5),
            named::frucht(),
        ] {
            let tree = tree_of(&g);
            let pi = Coloring::unit(g.n());
            let autos = brute::automorphisms(&g, &pi);
            for u in 0..g.n() as V {
                for v in 0..g.n() as V {
                    let truly = autos.iter().any(|a| a.apply(u) == v);
                    match automorphism_witness(&tree, u, v) {
                        Some(w) => {
                            assert!(truly, "spurious witness {u}→{v} in {g:?}");
                            assert_eq!(w.apply(u), v, "witness maps wrong");
                            assert_eq!(g.permuted(&w), g, "witness not an automorphism");
                        }
                        None => assert!(!truly, "missing witness {u}→{v} in {g:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn identity_witness() {
        let g = named::petersen();
        let tree = tree_of(&g);
        assert!(automorphism_witness(&tree, 3, 3).unwrap().is_identity());
    }
}
