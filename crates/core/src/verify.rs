//! Witness checking: cheap runtime proofs that DviCL's outputs are
//! what they claim to be.
//!
//! Every answer the pipeline emits is backed by an explicit witness —
//! the root canonical labeling, the leaf automorphism generators, the
//! composed isomorphism mapping — and each witness can be checked
//! against the *input graph* in near-linear time, independently of the
//! exponential search that produced it:
//!
//! * [`verify_tree`] re-derives the root certificate from the labeling
//!   witness (`C(G, π) = (G, π)^{γ}` must reproduce the stored form
//!   edge-for-edge) and checks every emitted leaf generator is a true
//!   color- and adjacency-preserving automorphism of its subgraph.
//! * [`verify_iso`] / [`verify_iso_colored`] check a claimed mapping
//!   `γ` actually satisfies `g1^γ = g2` (and maps cells onto
//!   equally-colored cells).
//!
//! Degraded results (whole-graph fallback, SSM truncation) carry the
//! same witnesses and pass the same checks — degradation trades divide
//! savings, never correctness.
//!
//! A failed check is [`DviclError::WitnessFailure`] (CLI exit code 4):
//! always a pipeline bug or an injected fault, never a property of the
//! input. Checks and failures are counted through the `verify_checks` /
//! `verify_failures` obs counters; the CLI and bench `--paranoid` flags
//! run these after every build. See DESIGN.md §11.
//!
//! Soundness note for generators: a non-singleton leaf's working
//! subgraph may have had edges deleted by `DivideS` on an ancestor, but
//! those deletions only remove edges inside fully-joined color-cell
//! pairs (cliques / complete bicliques, Theorem 6.4). A color-preserving
//! bijection maps every such pair onto itself and a full join is
//! preserved by any bijection of its sides, so a generator of the
//! worked subgraph is an automorphism of the *induced* subgraph too —
//! which is what these checks test, directly against `G`.

use crate::tree::{AutoTree, NodeKind};
use dvicl_govern::DviclError;
use dvicl_graph::{CanonForm, Coloring, Graph, Perm, V};
use dvicl_obs::{self as obs, Counter};

/// Bumps the failure counter and builds the typed error. `#[cold]`: the
/// verifier's hot path is the all-checks-pass path.
#[cold]
#[inline(never)]
fn fail(stage: &'static str, detail: String) -> DviclError {
    obs::bump(Counter::VerifyFailures);
    DviclError::WitnessFailure { stage, detail }
}

fn check_done() {
    obs::bump(Counter::VerifyChecks);
}

/// Verifies the root labeling witness of `tree` against `g`: the root
/// labels must form a permutation of `0..n`, and relabeling `(g, π)` by
/// that permutation must reproduce the stored root certificate exactly
/// (colors and edges). O(n + m log m).
pub fn verify_root_form(g: &Graph, tree: &AutoTree) -> Result<(), DviclError> {
    let root = tree.node(tree.root());
    if root.n() != g.n() {
        return Err(fail(
            "root_form",
            format!("root covers {} vertices, graph has {}", root.n(), g.n()),
        ));
    }
    if g.n() == 0 {
        check_done();
        return Ok(());
    }
    // Rebuild the labeling vertex → canonical position, checking
    // bijectivity instead of trusting it.
    let mut image = vec![V::MAX; g.n()];
    for (i, &v) in root.verts().iter().enumerate() {
        let l = root.labels()[i];
        if (v as usize) >= g.n() || (l as usize) >= g.n() {
            return Err(fail(
                "root_form",
                format!("root entry ({v}, {l}) out of range for n = {}", g.n()),
            ));
        }
        image[v as usize] = l;
    }
    let Some(labeling) = Perm::from_image(image) else {
        return Err(fail(
            "root_form",
            "root labels are not a permutation".to_string(),
        ));
    };
    // The certificate identity C(G, π) = (G, π)^γ, recomputed from the
    // witness and compared against what the combine phase stored.
    let direct = CanonForm::new(g, tree.pi.colors(), labeling.as_slice());
    if direct.view() != tree.canonical_form() {
        return Err(fail(
            "root_form",
            format!(
                "relabeling the input by the witness gives a different certificate \
                 ({} vs {} edges)",
                direct.m(),
                tree.canonical_form().m()
            ),
        ));
    }
    check_done();
    Ok(())
}

/// Verifies every leaf generator of `tree` is a true automorphism of
/// its induced colored subgraph of `g`: bijective on the leaf's
/// vertices, color-preserving under `tree.pi`, and edge-preserving on
/// `g`'s induced adjacency. O(Σ_leaf |gens| · (n_leaf + m_leaf)).
pub fn verify_generators(g: &Graph, tree: &AutoTree) -> Result<(), DviclError> {
    // image[v] = v^γ for the generator under check; sentinel elsewhere.
    // Allocations reused across all leaves and generators.
    let mut image = vec![V::MAX; g.n()];
    let mut seen = vec![false; g.n()];
    for node in tree.nodes() {
        if node.kind() != NodeKind::NonSingletonLeaf {
            continue;
        }
        let verts = node.verts();
        for pairs in node.leaf_generators() {
            // Extend the sparse (v, v^γ) pairs to identity on the rest
            // of the leaf.
            for &v in verts {
                image[v as usize] = v;
            }
            for &(v, w) in pairs {
                if !node.contains(v) || !node.contains(w) {
                    return Err(fail(
                        "generator",
                        format!("generator pair ({v}, {w}) leaves its leaf's vertex set"),
                    ));
                }
                image[v as usize] = w;
            }
            // Bijectivity of the moved part: targets must be pairwise
            // distinct and every target must itself be a moved source
            // (`image[w] != w` after the extension above iff some pair
            // has source `w`). Distinct targets drawn entirely from the
            // source set force, by counting, distinct sources and
            // target-set = source-set — so the extended map is a
            // bijection on the leaf. Sound in O(|pairs|).
            let mut result = Ok(());
            for &(v, w) in pairs {
                if v == w {
                    result = Err(fail(
                        "generator",
                        format!("generator pair ({v}, {w}) is a fixed point stored as moved"),
                    ));
                    break;
                }
                if seen[w as usize] {
                    result = Err(fail(
                        "generator",
                        format!("generator maps two vertices to {w}"),
                    ));
                    break;
                }
                seen[w as usize] = true;
                if image[w as usize] == w {
                    result = Err(fail(
                        "generator",
                        format!("generator target {w} is not itself moved — not a bijection"),
                    ));
                    break;
                }
                // Colors: γ must fix every cell of π setwise.
                if tree.pi.color_of(v) != tree.pi.color_of(w) {
                    result = Err(fail(
                        "generator",
                        format!(
                            "generator maps {v} (color {}) to {w} (color {})",
                            tree.pi.color_of(v),
                            tree.pi.color_of(w)
                        ),
                    ));
                    break;
                }
            }
            for &(_, w) in pairs {
                seen[w as usize] = false;
            }
            result?;
            // Adjacency on g's induced subgraph: for every induced edge
            // (v, u), (v^γ, u^γ) must also be a g-edge. γ⁻¹ being the
            // same kind of map, preserving all edges one way on a
            // finite set implies preserving them both ways.
            for &v in verts {
                let gv = image[v as usize];
                for &u in g.neighbors(v) {
                    if v < u && node.contains(u) && !g.has_edge(gv, image[u as usize]) {
                        return Err(fail(
                            "generator",
                            format!(
                                "generator breaks adjacency: ({v}, {u}) is an edge but \
                                 ({gv}, {}) is not",
                                image[u as usize]
                            ),
                        ));
                    }
                }
            }
            check_done();
        }
        // Restore the sentinel for the next leaf.
        for &v in verts {
            image[v as usize] = V::MAX;
        }
    }
    Ok(())
}

/// Runs every tree-level witness check: [`verify_root_form`] then
/// [`verify_generators`]. This is what `--paranoid` runs after each
/// build, degraded or not.
pub fn verify_tree(g: &Graph, tree: &AutoTree) -> Result<(), DviclError> {
    let _span = obs::span("core.verify");
    verify_root_form(g, tree)?;
    verify_generators(g, tree)
}

/// Verifies a claimed isomorphism mapping: `γ` must be a bijection on
/// `0..n` with `g1^γ = g2` edge-for-edge. O(n + m log Δ).
pub fn verify_iso(g1: &Graph, g2: &Graph, gamma: &Perm) -> Result<(), DviclError> {
    let _span = obs::span("core.verify");
    if g1.n() != g2.n() || gamma.len() != g1.n() {
        return Err(fail(
            "iso_mapping",
            format!(
                "size mismatch: |g1| = {}, |g2| = {}, |γ| = {}",
                g1.n(),
                g2.n(),
                gamma.len()
            ),
        ));
    }
    if g1.m() != g2.m() {
        return Err(fail(
            "iso_mapping",
            format!("edge-count mismatch: {} vs {}", g1.m(), g2.m()),
        ));
    }
    // Equal edge counts + every g1-edge mapping to a g2-edge under a
    // bijection = the edge sets correspond exactly.
    for (u, v) in g1.edges() {
        let (gu, gv) = (gamma.apply(u), gamma.apply(v));
        if !g2.has_edge(gu, gv) {
            return Err(fail(
                "iso_mapping",
                format!("edge ({u}, {v}) maps to non-edge ({gu}, {gv})"),
            ));
        }
    }
    check_done();
    Ok(())
}

/// Colored [`verify_iso`]: additionally, `γ` must map every vertex onto
/// one of the same color (`π₁(v) = π₂(v^γ)`).
pub fn verify_iso_colored(
    g1: &Graph,
    pi1: &Coloring,
    g2: &Graph,
    pi2: &Coloring,
    gamma: &Perm,
) -> Result<(), DviclError> {
    verify_iso(g1, g2, gamma)?;
    // dvicl-lint: allow(narrowing-cast) -- v < n <= V::MAX
    for v in 0..g1.n() as V {
        let w = gamma.apply(v);
        if pi1.color_of(v) != pi2.color_of(w) {
            return Err(fail(
                "iso_mapping",
                format!(
                    "mapping breaks colors: π₁({v}) = {} but π₂({w}) = {}",
                    pi1.color_of(v),
                    pi2.color_of(w)
                ),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{
        build_autotree, build_autotree_resilient, build_autotree_whole_leaf, DviclOptions,
    };
    use crate::iso::find_isomorphism;
    use dvicl_govern::Budget;
    use dvicl_graph::named;

    fn tree_of(g: &Graph) -> AutoTree {
        build_autotree(g, &Coloring::unit(g.n()), &DviclOptions::default())
    }

    #[test]
    fn healthy_trees_verify() {
        for g in [
            named::fig1_example(),
            named::fig3_example(),
            named::petersen(),
            named::hypercube(4),
            named::rary_tree(3, 3),
            named::complete_bipartite(3, 5),
            named::frucht(),
            Graph::empty(0),
            Graph::empty(5),
        ] {
            let t = tree_of(&g);
            verify_tree(&g, &t).expect("healthy build must verify");
        }
    }

    #[test]
    fn degraded_trees_verify_identically() {
        for g in [named::fig1_example(), named::petersen(), named::frucht()] {
            let pi = Coloring::unit(g.n());
            let out =
                build_autotree_resilient(&g, &pi, &DviclOptions::default(), &Budget::with_max_work(3))
                    .expect("work exhaustion degrades");
            assert!(out.degraded);
            verify_tree(&g, &out.tree).expect("degraded build must verify");
        }
    }

    #[test]
    fn root_form_rejects_a_tampered_tree() {
        let g = named::petersen();
        let mut t = tree_of(&g);
        // Swap two root labels: still a permutation, but no longer THE
        // canonical labeling — the recomputed form diverges.
        t.labels.swap(0, 5);
        let err = verify_root_form(&g, &t).unwrap_err();
        assert!(matches!(err, DviclError::WitnessFailure { stage: "root_form", .. }));
        assert_eq!(err.exit_code(), 4);
    }

    #[test]
    fn root_form_rejects_non_bijective_labels() {
        let g = named::fig1_example();
        let mut t = tree_of(&g);
        let root_start = t.nodes[t.root].verts.0 as usize;
        t.labels[root_start] = t.labels[root_start + 1];
        let err = verify_root_form(&g, &t).unwrap_err();
        assert!(err.to_string().contains("not a permutation"), "{err}");
    }

    #[test]
    fn generators_reject_tampering() {
        // Petersen is one IR leaf with non-trivial generators.
        let g = named::petersen();
        let mut t = tree_of(&g);
        assert!(
            t.gen_pairs.len() >= 2,
            "test needs a leaf with a sparse generator"
        );
        // Redirect one pair's target to its own source: breaks bijectivity
        // (or adjacency) without leaving the vertex set.
        let (v, _) = t.gen_pairs[0];
        t.gen_pairs[0] = (v, v);
        let err = verify_generators(&g, &t).unwrap_err();
        assert!(matches!(err, DviclError::WitnessFailure { stage: "generator", .. }));
    }

    #[test]
    fn generators_reject_color_breaking_maps() {
        // A star's tree: hub and leaves have different colors. Forge a
        // generator pair mapping a leaf onto the hub.
        let g = named::star(4);
        let mut t = build_autotree_whole_leaf(
            &g,
            &Coloring::unit(g.n()),
            &DviclOptions::default(),
            &Budget::unlimited(),
        )
        .unwrap();
        // The whole-leaf tree's root is one non-singleton leaf; append a
        // forged generator mapping vertex 1 (spoke) to 0 (hub).
        let pstart = t.gen_pairs.len() as u32;
        t.gen_pairs.push((1, 0));
        t.gen_pairs.push((0, 1));
        t.gen_ranges.push((pstart, 2));
        let root = t.root;
        t.nodes[root].gens = (0, t.gen_ranges.len() as u32);
        let err = verify_generators(&g, &t).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("color") || msg.contains("adjacency"), "{msg}");
    }

    #[test]
    fn iso_mapping_checks_accept_real_and_reject_fake() {
        let g = named::frucht();
        let gamma = Perm::from_cycles(12, &[&[0, 5], &[3, 8, 11]]).unwrap();
        let h = g.permuted(&gamma);
        let found = find_isomorphism(&g, &h).unwrap();
        verify_iso(&g, &h, &found).expect("a real mapping verifies");
        // The identity is NOT an isomorphism g → h here (Frucht is rigid
        // and γ ≠ id), so it must be rejected.
        let err = verify_iso(&g, &h, &Perm::identity(12)).unwrap_err();
        assert!(matches!(err, DviclError::WitnessFailure { stage: "iso_mapping", .. }));
        // Size mismatches are witness failures too, not panics.
        assert!(verify_iso(&g, &named::cycle(5), &Perm::identity(12)).is_err());
    }

    #[test]
    fn colored_iso_checks_colors() {
        let g = named::path(3);
        let pin_end = Coloring::from_cells(vec![vec![1, 2], vec![0]]).unwrap();
        let pin_other = Coloring::from_cells(vec![vec![0, 1], vec![2]]).unwrap();
        // 0 ↔ 2 reversal: a valid colored iso from pin_end to pin_other.
        let rev = Perm::from_image(vec![2, 1, 0]).unwrap();
        verify_iso_colored(&g, &pin_end, &g, &pin_other, &rev).expect("reversal respects colors");
        // The identity preserves edges but maps the pinned end wrong.
        let err = verify_iso_colored(&g, &pin_end, &g, &pin_other, &Perm::identity(3)).unwrap_err();
        assert!(err.to_string().contains("color"), "{err}");
    }

    #[test]
    fn counters_track_checks_and_failures() {
        let g = named::petersen();
        let t = tree_of(&g);
        let before = obs::snapshot();
        verify_tree(&g, &t).unwrap();
        let after = obs::snapshot().diff(&before);
        assert!(after.get(Counter::VerifyChecks) >= 1);
        assert_eq!(after.get(Counter::VerifyFailures), 0);
        let mut bad = tree_of(&g);
        bad.labels.swap(0, 3);
        let before = obs::snapshot();
        let _ = verify_tree(&g, &bad);
        let after = obs::snapshot().diff(&before);
        assert_eq!(after.get(Counter::VerifyFailures), 1);
    }
}
