//! The AutoTree `𝒜𝒯(G, π)`: the paper's tree index over a colored graph.
//!
//! Every node represents an induced colored subgraph `(g, π_g)` of `G` and
//! carries its canonical labeling `γ_g` (as per-vertex labels) and its
//! certificate `C(g, π_g)`. Children of an internal node are sorted by
//! certificate, and runs of equal certificates form *sibling classes*:
//! subgraphs that are symmetric in `G` (Lemmas 6.7/6.8).
//!
//! # Storage (DESIGN.md §10)
//!
//! The tree is column-oriented: a [`Node`] is a fixed-size record of
//! `(start, len)` ranges into pools owned by the [`AutoTree`] — vertex
//! ids, canonical labels, certificate color runs and edges, child ids,
//! sibling-class runs, and leaf generators all live in eight shared
//! flat arrays. A tree over a social-scale graph has tens of thousands
//! of nodes, most of them singleton leaves; per-node `Vec`s spent more
//! bytes on headers and allocator churn than on payload. Access goes
//! through [`NodeRef`], a copyable `(tree, id)` handle.

use dvicl_graph::{Coloring, FormRef, Perm, V};
use std::fmt;

/// Index of a node in an [`AutoTree`].
pub type NodeId = usize;

/// A `(start, len)` range into one of the tree's pools.
pub(crate) type PoolRange = (u32, u32);

/// Sentinel for "no parent" (the root).
pub(crate) const NO_PARENT: u32 = u32::MAX;

/// The empty pool range.
pub(crate) const EMPTY: PoolRange = (0, 0);

fn slice<T>(pool: &[T], r: PoolRange) -> &[T] {
    &pool[r.0 as usize..(r.0 + r.1) as usize]
}

/// What kind of node: the paper's three cases of Algorithm 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// A one-vertex subgraph (`g = {v}`).
    SingletonLeaf,
    /// A subgraph neither `DivideI` nor `DivideS` could disconnect; its
    /// labeling came from the IR engine via `CombineCL`.
    NonSingletonLeaf,
    /// A divided node; its labeling came from `CombineST`.
    Internal,
}

/// One node of the AutoTree: a compact record of ranges into the tree's
/// pools (see the module docs). Read it through [`NodeRef`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Node {
    /// `V(g)` and `γ_g`, as one shared range into the parallel
    /// `verts`/`labels` pools.
    pub(crate) verts: PoolRange,
    /// Certificate color runs, into `form_colors`.
    pub(crate) fcolors: PoolRange,
    /// Certificate edges, into `form_edges`.
    pub(crate) fedges: PoolRange,
    /// Children (certificate-sorted), into `children`.
    pub(crate) children: PoolRange,
    /// Sibling-class runs, into `classes`.
    pub(crate) classes: PoolRange,
    /// Leaf generators, into `gen_ranges` (which points into `gen_pairs`).
    pub(crate) gens: PoolRange,
    /// Node kind.
    pub(crate) kind: NodeKind,
    /// Depth (root = 0).
    pub(crate) depth: u32,
    /// Parent id, or [`NO_PARENT`] for the root.
    pub(crate) parent: u32,
}

/// Structural statistics of an AutoTree — the rows of Tables 3 and 4.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TreeStats {
    /// Total tree nodes `|V(𝒜𝒯)|`.
    pub total_nodes: usize,
    /// Singleton leaf count.
    pub singleton_leaves: usize,
    /// Non-singleton leaf count.
    pub non_singleton_leaves: usize,
    /// Average vertex count of non-singleton leaves (0 when none).
    pub avg_non_singleton_size: f64,
    /// Largest non-singleton leaf.
    pub max_non_singleton_size: usize,
    /// Tree depth (root-only tree has depth 0).
    pub depth: u32,
}

/// The AutoTree `𝒜𝒯(G, π)` produced by `DviCL`.
pub struct AutoTree {
    /// The equitable root coloring `π` (after the refinement in
    /// Algorithm 1 line 1), over global vertices.
    pub pi: Coloring,
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: NodeId,
    /// Global vertex ids of every node, ascending within each node.
    pub(crate) verts: Vec<V>,
    /// Canonical labels, parallel to `verts`.
    pub(crate) labels: Vec<V>,
    /// Certificate color runs of every node.
    pub(crate) form_colors: Vec<(V, V)>,
    /// Certificate edges of every node.
    pub(crate) form_edges: Vec<(V, V)>,
    /// Child ids of every internal node, certificate-sorted.
    pub(crate) children: Vec<NodeId>,
    /// Sibling-class `[start, end)` runs into each node's child range.
    pub(crate) classes: Vec<(u32, u32)>,
    /// Per-generator ranges into `gen_pairs`.
    pub(crate) gen_ranges: Vec<PoolRange>,
    /// Sparse `(v, v^γ)` mappings of the non-singleton leaf generators.
    pub(crate) gen_pairs: Vec<(V, V)>,
}

/// A borrowed node: `Copy`, so it can be held across further tree reads.
/// All accessors return data with the *tree's* lifetime, not the
/// handle's.
#[derive(Clone, Copy)]
pub struct NodeRef<'a> {
    tree: &'a AutoTree,
    id: NodeId,
}

impl<'a> NodeRef<'a> {
    fn rec(self) -> &'a Node {
        &self.tree.nodes[self.id]
    }

    /// This node's id.
    pub fn id(self) -> NodeId {
        self.id
    }

    /// Global vertex ids of `V(g)`, ascending.
    pub fn verts(self) -> &'a [V] {
        slice(&self.tree.verts, self.rec().verts)
    }

    /// Canonical labels `γ_g(v)`, parallel to [`NodeRef::verts`].
    pub fn labels(self) -> &'a [V] {
        slice(&self.tree.labels, self.rec().verts)
    }

    /// The certificate `C(g, π_g) = (g, π_g)^{γ_g}`.
    pub fn form(self) -> FormRef<'a> {
        let n = self.rec();
        FormRef {
            colors: slice(&self.tree.form_colors, n.fcolors),
            edges: slice(&self.tree.form_edges, n.fedges),
        }
    }

    /// Children, sorted by certificate (empty for leaves).
    pub fn children(self) -> &'a [NodeId] {
        slice(&self.tree.children, self.rec().children)
    }

    /// Runs of equal-certificate children, as `[start, end)` ranges into
    /// [`NodeRef::children`]: each run is one class of mutually symmetric
    /// siblings.
    pub fn sibling_classes(self) -> &'a [(u32, u32)] {
        slice(&self.tree.classes, self.rec().classes)
    }

    /// For non-singleton leaves: automorphism generators of the leaf's
    /// colored subgraph, as sparse global `(v, v^γ)` mappings.
    pub fn leaf_generators(self) -> impl ExactSizeIterator<Item = &'a [(V, V)]> {
        let tree = self.tree;
        slice(&tree.gen_ranges, self.rec().gens)
            .iter()
            .map(move |&r| slice(&tree.gen_pairs, r))
    }

    /// Node kind.
    pub fn kind(self) -> NodeKind {
        self.rec().kind
    }

    /// Depth (root = 0).
    pub fn depth(self) -> u32 {
        self.rec().depth
    }

    /// Parent (`None` for the root).
    pub fn parent(self) -> Option<NodeId> {
        let p = self.rec().parent;
        (p != NO_PARENT).then_some(p as usize)
    }

    /// The canonical label of global vertex `v` in this node, if present.
    pub fn label_of(self, v: V) -> Option<V> {
        self.verts()
            .binary_search(&v)
            .ok()
            .map(|i| self.labels()[i])
    }

    /// True iff `v ∈ V(g)`.
    pub fn contains(self, v: V) -> bool {
        self.verts().binary_search(&v).is_ok()
    }

    /// Number of vertices.
    pub fn n(self) -> usize {
        self.rec().verts.1 as usize
    }
}

impl AutoTree {
    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> NodeRef<'_> {
        debug_assert!(id < self.nodes.len());
        NodeRef { tree: self, id }
    }

    /// All nodes (tree order is construction order: parents precede their
    /// children).
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeRef<'_>> {
        (0..self.nodes.len()).map(move |id| NodeRef { tree: self, id })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the tree is empty (zero-vertex graph).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The certificate of the whole graph: `C(G, π)` at the root.
    pub fn canonical_form(&self) -> FormRef<'_> {
        self.node(self.root).form()
    }

    /// The canonical labeling of the whole graph as a permutation
    /// (vertex → canonical position).
    pub fn canonical_labeling(&self) -> Perm {
        let node = self.node(self.root);
        let mut image = vec![0 as V; node.n()];
        for (i, &v) in node.verts().iter().enumerate() {
            image[v as usize] = node.labels()[i];
        }
        // dvicl-lint: allow(panic-freedom) -- CombineST assigns the root a bijective labeling by construction
        Perm::from_image(image).expect("root labels form a permutation")
    }

    /// Structural statistics (Tables 3/4).
    pub fn stats(&self) -> TreeStats {
        let mut s = TreeStats {
            total_nodes: self.nodes.len(),
            ..TreeStats::default()
        };
        let mut ns_size_sum = 0usize;
        for node in &self.nodes {
            s.depth = s.depth.max(node.depth);
            let n = node.verts.1 as usize;
            match node.kind {
                NodeKind::SingletonLeaf => s.singleton_leaves += 1,
                NodeKind::NonSingletonLeaf => {
                    s.non_singleton_leaves += 1;
                    ns_size_sum += n;
                    s.max_non_singleton_size = s.max_non_singleton_size.max(n);
                }
                NodeKind::Internal => {}
            }
        }
        if s.non_singleton_leaves > 0 {
            s.avg_non_singleton_size = ns_size_sum as f64 / s.non_singleton_leaves as f64;
        }
        s
    }

    /// The deepest node whose subgraph contains all of `set`
    /// (SSM-AT line 1). `set` must be non-empty and within range.
    pub fn deepest_containing(&self, set: &[V]) -> NodeId {
        assert!(!set.is_empty(), "empty vertex set");
        let mut cur = self.root;
        'descend: loop {
            for &c in self.node(cur).children() {
                if set.iter().all(|&v| self.node(c).contains(v)) {
                    cur = c;
                    continue 'descend;
                }
            }
            return cur;
        }
    }

    /// Leaf node containing vertex `v`.
    pub fn leaf_of(&self, v: V) -> NodeId {
        let mut cur = self.root;
        'descend: loop {
            for &c in self.node(cur).children() {
                if self.node(c).contains(v) {
                    cur = c;
                    continue 'descend;
                }
            }
            return cur;
        }
    }

    /// The sibling class (parent id, class range) containing child `id`;
    /// `None` for the root.
    pub fn class_of(&self, id: NodeId) -> Option<(NodeId, usize, usize)> {
        let parent = self.node(id).parent()?;
        let p = self.node(parent);
        let pos = p
            .children()
            .iter()
            .position(|&c| c == id)
            // dvicl-lint: allow(panic-freedom) -- id's parent pointer and the parent's child list are kept consistent by the builder
            .expect("child listed in parent");
        let &(s, e) = p
            .sibling_classes()
            .iter()
            .find(|&&(s, e)| s as usize <= pos && pos < e as usize)
            // dvicl-lint: allow(panic-freedom) -- sibling_classes is a partition of 0..children.len(), so every position is covered
            .expect("classes cover children");
        Some((parent, s as usize, e as usize))
    }

    /// The isomorphism between two *symmetric sibling* nodes `a → b`
    /// (equal certificates under the same parent), as the sparse map
    /// matching equal canonical labels (`γ_{ij}` in SSM-AT).
    pub fn sibling_isomorphism(&self, a: NodeId, b: NodeId) -> Vec<(V, V)> {
        let (na, nb) = (self.node(a), self.node(b));
        assert_eq!(na.form(), nb.form(), "siblings are not symmetric");
        let mut pa: Vec<(V, V)> = na
            .labels()
            .iter()
            .zip(na.verts())
            .map(|(&l, &v)| (l, v))
            .collect();
        let mut pb: Vec<(V, V)> = nb
            .labels()
            .iter()
            .zip(nb.verts())
            .map(|(&l, &v)| (l, v))
            .collect();
        pa.sort_unstable();
        pb.sort_unstable();
        pa.iter()
            .zip(&pb)
            .map(|(&(la, va), &(lb, vb))| {
                debug_assert_eq!(la, lb, "label multisets of symmetric siblings agree");
                (va, vb)
            })
            .collect()
    }

    /// Renders the tree as indented ASCII (for the figure examples).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_rec(self.root, 0, &mut out);
        out
    }

    fn render_rec(&self, id: NodeId, indent: usize, out: &mut String) {
        use fmt::Write;
        let n = self.node(id);
        let kind = match n.kind() {
            NodeKind::SingletonLeaf => "·",
            NodeKind::NonSingletonLeaf => "▣",
            NodeKind::Internal => "○",
        };
        writeln!(
            out,
            "{:indent$}{kind} {:?} γ={:?}",
            "",
            n.verts(),
            n.labels(),
            indent = indent
        )
        // dvicl-lint: allow(panic-freedom) -- fmt::Write for String is infallible; the Err arm cannot occur
        .expect("writing to String cannot fail");
        for &c in n.children() {
            self.render_rec(c, indent + 2, out);
        }
    }
}
