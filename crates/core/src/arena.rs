//! Arena-backed CSR storage for the AutoTree recursion's working
//! subgraphs, plus the divide rules `DivideI` (Algorithm 2) and `DivideS`
//! (Algorithm 3).
//!
//! The recursion of Algorithm 1 is strictly depth-first: a node's child
//! subgraphs are carved, recursed into and abandoned one after the other,
//! and a child's storage is never needed once its subtree has combined.
//! The arena exploits that with **stack discipline** over three flat
//! pools — `verts` (global ids), `offs` (per-subgraph CSR offsets) and
//! `adj` (local neighbor indices):
//!
//! * [`SubArena::whole`] / [`SubArena::induced_child`] push a segment on
//!   top of all three pools and hand back a [`Sub`] handle of offsets;
//! * [`SubArena::release`] truncates back to a [`ArenaMark`], freeing a
//!   finished child's segment while its parent (lower in the stack) stays
//!   valid — the buffers keep their capacity, so the next child reuses
//!   the same allocation instead of growing fresh `Vec`s.
//!
//! Peak residency is therefore one root-to-leaf chain of segments
//! (O(depth · n + m) worst case, O(n + m) on balanced divides) instead of
//! the nested-vec representation's per-node `Vec<Vec<u32>>` churn, and
//! the hot loop never chases row pointers. The high-water mark and the
//! number of segment reuses are exported through the `sub_bytes_peak` /
//! `arena_reuses` counters (DESIGN.md §9).
//!
//! Ownership rules: the arena is owned by the `Builder` in `core::build`
//! and lives for one `DviCL` run. Handles never outlive the build (the
//! AutoTree's `Node`s copy the vertex lists they need), and a handle is
//! only dereferenced through the arena that carved it.

use crate::sub::{Division, Sub, SubCell};
use dvicl_graph::{Coloring, Graph, V};
use dvicl_obs::{self as obs, Counter};

/// Rollback point for [`SubArena::release`]: the three pool tops at the
/// time of [`SubArena::mark`]. Marks compare equal iff they denote the
/// same pool state, which is how the fault-sweep tests assert stack
/// discipline (`arena.mark() == pre_call_mark` after an early return).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArenaMark {
    verts: usize,
    offs: usize,
    adj: usize,
}

/// The flat pools behind every [`Sub`] of one `DviCL` run, plus the
/// scratch buffers the divide rules reuse across nodes. See the module
/// docs for the stack discipline.
#[derive(Debug, Default)]
pub struct SubArena {
    /// Global vertex ids, ascending within each segment.
    verts: Vec<V>,
    /// Concatenated per-subgraph offset arrays (`n + 1` entries each),
    /// relative to the owning segment's `adj_start`.
    offs: Vec<u32>,
    /// Concatenated adjacency rows of local indices, each row ascending.
    adj: Vec<u32>,
    /// Scratch: parent-local → child-local remap for `induced_child`.
    remap: Vec<u32>,
    /// Scratch: component ids for the divide rules.
    comp: Vec<u32>,
    /// Scratch: DFS stack for the divide rules.
    stack: Vec<u32>,
    /// Scratch: per-component sizes / write cursors.
    sizes: Vec<u32>,
    /// High-water mark of pool bytes (`sub_bytes_peak`).
    bytes_peak: usize,
    /// Segment releases that handed buffer space back for reuse
    /// (`arena_reuses`).
    reuses: u64,
    /// Optional ceiling on pool bytes: [`SubArena::try_induced_child`]
    /// fails (and rolls back) instead of carving past it.
    ceiling_bytes: Option<usize>,
}

impl SubArena {
    /// An empty arena.
    pub fn new() -> Self {
        SubArena::default()
    }

    /// The whole graph as a subgraph (the AutoTree root): one wholesale
    /// copy of `g`'s CSR arrays into the pools.
    pub fn whole(&mut self, g: &Graph) -> Sub {
        let n = g.n();
        let (g_offs, g_adj) = g.csr();
        let sub = Sub {
            verts_start: self.verts.len(),
            offs_start: self.offs.len(),
            adj_start: self.adj.len(),
            n,
            m: g.m(),
        };
        // dvicl-lint: allow(narrowing-cast) -- v < n <= V::MAX
        self.verts.extend((0..n).map(|v| v as V));
        // dvicl-lint: allow(narrowing-cast) -- a segment's adjacency holds 2m < u32::MAX entries (m <= n^2, n <= V::MAX)
        self.offs.extend(g_offs.iter().map(|&o| o as u32));
        self.adj.extend_from_slice(g_adj);
        self.note_high_water();
        sub
    }

    /// The current pool tops, for a later [`SubArena::release`].
    pub fn mark(&self) -> ArenaMark {
        ArenaMark {
            verts: self.verts.len(),
            offs: self.offs.len(),
            adj: self.adj.len(),
        }
    }

    /// Truncates the pools back to `mark`, releasing every segment pushed
    /// since — their capacity stays with the buffers for the next child.
    pub fn release(&mut self, mark: ArenaMark) {
        if self.verts.len() > mark.verts || self.offs.len() > mark.offs {
            self.reuses += 1;
        }
        self.verts.truncate(mark.verts);
        self.offs.truncate(mark.offs);
        self.adj.truncate(mark.adj);
    }

    /// The global vertex ids of `s`, ascending.
    #[inline]
    pub fn verts(&self, s: &Sub) -> &[V] {
        &self.verts[s.verts_start..s.verts_start + s.n]
    }

    /// The sorted local neighbor row of local vertex `i` in `s`.
    #[inline]
    pub fn neighbors(&self, s: &Sub, i: u32) -> &[u32] {
        let lo = s.adj_start + self.offs[s.offs_start + i as usize] as usize;
        let hi = s.adj_start + self.offs[s.offs_start + i as usize + 1] as usize;
        &self.adj[lo..hi]
    }

    /// High-water mark of pool bytes over the arena's lifetime.
    pub fn bytes_peak(&self) -> usize {
        self.bytes_peak
    }

    /// Sets (or clears) the allocation ceiling consulted by
    /// [`SubArena::try_induced_child`].
    pub fn set_ceiling_bytes(&mut self, ceiling: Option<usize>) {
        self.ceiling_bytes = ceiling;
    }

    /// Current pool bytes (not the peak).
    pub fn bytes_now(&self) -> usize {
        (self.verts.len() + self.offs.len() + self.adj.len()) * std::mem::size_of::<u32>()
    }

    /// Ceiling-checked [`SubArena::induced_child`]: carves the child,
    /// then fails with `BudgetExceeded { resource: Memory }` — rolling
    /// the carve back, pools exactly as before — if the pools now
    /// exceed the configured ceiling. Infallible when no ceiling is set.
    pub fn try_induced_child(
        &mut self,
        parent: &Sub,
        locals: &[u32],
    ) -> Result<Sub, dvicl_govern::DviclError> {
        // dvicl-lint: allow(arena-discipline) -- on success the carve survives by design: the mark exists only to roll back the over-ceiling path, and the caller releases the child with its own mark
        let mark = self.mark();
        let sub = self.induced_child(parent, locals);
        if let Some(ceil) = self.ceiling_bytes {
            let bytes = self.bytes_now();
            if bytes > ceil {
                self.release(mark);
                return Err(dvicl_govern::DviclError::BudgetExceeded {
                    resource: dvicl_govern::Resource::Memory,
                    spent: bytes as u64,
                });
            }
        }
        Ok(sub)
    }

    /// How many [`SubArena::release`] calls actually freed a segment.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Empties the arena for a fresh build while keeping every buffer's
    /// capacity — the reuse primitive behind `core::Session`. The
    /// high-water mark and reuse count restart at zero so the
    /// `sub_bytes_peak` / `arena_reuses` counters keep their per-build
    /// meaning when one arena serves many builds; the ceiling is kept
    /// (it is configured per build by the builder anyway).
    pub fn reset(&mut self) {
        self.verts.clear();
        self.offs.clear();
        self.adj.clear();
        self.bytes_peak = 0;
        self.reuses = 0;
    }

    fn note_high_water(&mut self) {
        let bytes =
            (self.verts.len() + self.offs.len() + self.adj.len()) * std::mem::size_of::<u32>();
        if bytes > self.bytes_peak {
            self.bytes_peak = bytes;
        }
    }

    /// Carves the induced child of `parent` on the given local indices
    /// (ascending) as a new top segment. Adjacency is emitted in one
    /// counting pass: the remap is monotone, so filtering each parent row
    /// in order yields sorted child rows with no per-row sort or rehash.
    pub fn induced_child(&mut self, parent: &Sub, locals: &[u32]) -> Sub {
        debug_assert!(locals.windows(2).all(|w| w[0] < w[1]), "locals not ascending");
        // `remap` is kept all-MAX between calls (entries are restored
        // below), so preparing a carve costs O(|locals|), not O(parent.n)
        // — the latter is quadratic when a hub node divides into
        // thousands of singleton parts.
        if self.remap.len() < parent.n {
            self.remap.resize(parent.n, u32::MAX);
        }
        for (new, &old) in locals.iter().enumerate() {
            // dvicl-lint: allow(narrowing-cast) -- new < locals.len() <= n <= V::MAX
            self.remap[old as usize] = new as u32;
        }
        let verts_start = self.verts.len();
        let offs_start = self.offs.len();
        let adj_start = self.adj.len();
        for &old in locals {
            let gv = self.verts[parent.verts_start + old as usize];
            self.verts.push(gv);
        }
        self.offs.push(0);
        let mut written = 0u32;
        for &old in locals {
            let lo = parent.adj_start + self.offs[parent.offs_start + old as usize] as usize;
            let hi = parent.adj_start + self.offs[parent.offs_start + old as usize + 1] as usize;
            for k in lo..hi {
                let w = self.adj[k];
                let nw = self.remap[w as usize];
                if nw != u32::MAX {
                    self.adj.push(nw);
                    written += 1;
                }
            }
            self.offs.push(written);
        }
        // Restore the all-MAX invariant for the next carve.
        for &old in locals {
            self.remap[old as usize] = u32::MAX;
        }
        self.note_high_water();
        Sub {
            verts_start,
            offs_start,
            adj_start,
            n: locals.len(),
            m: written as usize / 2,
        }
    }

    /// The cells of `π_g`, ordered by global color.
    pub fn cells(&self, s: &Sub, pi: &Coloring) -> Vec<SubCell> {
        let mut pairs: Vec<(V, u32)> = self
            .verts(s)
            .iter()
            .enumerate()
            // dvicl-lint: allow(narrowing-cast) -- i indexes the subgraph's vertices, at most n <= V::MAX
            .map(|(i, &v)| (pi.color_of(v), i as u32))
            .collect();
        pairs.sort_unstable();
        let mut out: Vec<SubCell> = Vec::new();
        for (color, i) in pairs {
            match out.last_mut() {
                Some(c) if c.color == color => c.members.push(i),
                _ => out.push(SubCell {
                    color,
                    members: vec![i],
                }),
            }
        }
        out
    }

    /// Appends the connected components of `s` — with `banned` vertices
    /// and dead edges excluded — to `div`, in one counting-sort pass:
    /// a DFS labels each vertex with a component id (ids ordered by the
    /// component's minimum local index), sizes become offsets, and one
    /// ascending sweep scatters the members, so every part comes out
    /// ascending with no per-part `Vec` or sort.
    fn components_into(
        &mut self,
        s: &Sub,
        banned: impl Fn(u32) -> bool,
        edge_alive: impl Fn(u32, u32) -> bool,
        div: &mut Division,
    ) -> usize {
        let n = s.n;
        let mut comp = std::mem::take(&mut self.comp);
        let mut stack = std::mem::take(&mut self.stack);
        let mut sizes = std::mem::take(&mut self.sizes);
        comp.clear();
        comp.resize(n, u32::MAX);
        stack.clear();
        sizes.clear();
        let mut ncomps = 0u32;
        // dvicl-lint: allow(narrowing-cast) -- n = s.n() <= V::MAX by Graph's construction invariant
        for start in 0..n as u32 {
            if banned(start) || comp[start as usize] != u32::MAX {
                continue;
            }
            let id = ncomps;
            ncomps += 1;
            sizes.push(0);
            comp[start as usize] = id;
            stack.push(start);
            while let Some(v) = stack.pop() {
                sizes[id as usize] += 1;
                let lo = s.adj_start + self.offs[s.offs_start + v as usize] as usize;
                let hi = s.adj_start + self.offs[s.offs_start + v as usize + 1] as usize;
                for k in lo..hi {
                    let w = self.adj[k];
                    if banned(w) || comp[w as usize] != u32::MAX || !edge_alive(v, w) {
                        continue;
                    }
                    comp[w as usize] = id;
                    stack.push(w);
                }
            }
        }
        // Sizes → member-array write cursors (prefix sums over the new
        // parts only), then scatter the vertices in ascending local order.
        // dvicl-lint: allow(narrowing-cast) -- members holds at most n <= V::MAX local indices
        let base = div.members.len() as u32;
        let mut acc = base;
        for sz in sizes.iter_mut() {
            let start = acc;
            acc += *sz;
            div.offs.push(acc);
            *sz = start;
        }
        div.members.resize(acc as usize, 0);
        // dvicl-lint: allow(narrowing-cast) -- n = s.n() <= V::MAX by Graph's construction invariant
        for v in 0..n as u32 {
            let id = comp[v as usize];
            if id != u32::MAX {
                let cursor = &mut sizes[id as usize];
                div.members[*cursor as usize] = v;
                *cursor += 1;
            }
        }
        self.comp = comp;
        self.stack = stack;
        self.sizes = sizes;
        ncomps as usize
    }

    /// Plain component division: if `g` is disconnected, its components
    /// are the children (the trivially automorphism-preserving divide the
    /// paper leaves implicit). Returns `None` when connected.
    pub fn divide_components(&mut self, s: &Sub) -> Option<Division> {
        let mut div = Division::new();
        let nparts = self.components_into(s, |_| false, |_, _| true, &mut div);
        if nparts > 1 {
            obs::bump(Counter::DivideComponents);
            Some(div)
        } else {
            None
        }
    }

    /// `DivideI` (Algorithm 2): isolate every singleton cell of `π_g` as a
    /// one-vertex child; the connected components of the remainder are the
    /// other children. Returns `None` if `π_g` has no singleton cell.
    pub fn divide_i(&mut self, s: &Sub, pi: &Coloring) -> Option<Division> {
        let cells = self.cells(s, pi);
        let singles: Vec<u32> = cells
            .iter()
            .filter(|c| c.members.len() == 1)
            .map(|c| c.members[0])
            .collect();
        if singles.is_empty() || singles.len() == s.n() && s.n() == 1 {
            return None;
        }
        let mut banned = vec![false; s.n()];
        for &x in &singles {
            banned[x as usize] = true;
        }
        let mut div = Division::new();
        for &x in &singles {
            div.push_singleton(x);
        }
        self.components_into(s, |v| banned[v as usize], |_, _| true, &mut div);
        if div.len() > 1 {
            obs::bump(Counter::DivideIApplied);
            Some(div)
        } else {
            None
        }
    }

    /// `DivideS` (Algorithm 3): delete the edges inside every cell that
    /// induces a clique and between every pair of cells joined completely
    /// bipartitely (Theorem 6.4 shows `Aut(g, π_g)` is unaffected); if the
    /// remainder is disconnected, its components are the children.
    ///
    /// Relies on `π_g` being equitable with respect to `g` (Theorem 6.1):
    /// one member per cell is probed, the rest are guaranteed to agree.
    pub fn divide_s(&mut self, s: &Sub, pi: &Coloring) -> Option<Division> {
        let cells = self.cells(s, pi);
        let ncells = cells.len();
        // cell_of[local] = index into `cells`.
        let mut cell_of = vec![0u32; s.n()];
        for (ci, cell) in cells.iter().enumerate() {
            for &i in &cell.members {
                // dvicl-lint: allow(narrowing-cast) -- ci < ncells <= n <= V::MAX
                cell_of[i as usize] = ci as u32;
            }
        }
        // For one probe vertex per cell, count neighbors per cell.
        // full[ci * ncells + cj] = the probe of ci sees ALL of cell cj
        // (clique when ci == cj, complete bipartite otherwise).
        let mut full = vec![false; ncells * ncells];
        let mut any_removal = false;
        let mut counts = vec![0u32; ncells];
        for (ci, cell) in cells.iter().enumerate() {
            let probe = cell.members[0];
            counts.iter_mut().for_each(|c| *c = 0);
            for &w in self.neighbors(s, probe) {
                counts[cell_of[w as usize] as usize] += 1;
            }
            for cj in 0..ncells {
                let need = if cj == ci {
                    // dvicl-lint: allow(narrowing-cast) -- a cell holds at most n <= V::MAX vertices
                    cells[cj].members.len() as u32 - 1
                } else {
                    // dvicl-lint: allow(narrowing-cast) -- a cell holds at most n <= V::MAX vertices
                    cells[cj].members.len() as u32
                };
                if need > 0 && counts[cj] == need {
                    full[ci * ncells + cj] = true;
                    any_removal = true;
                }
            }
            debug_assert!(
                cell.members.iter().all(|&i| {
                    let mut c2 = vec![0u32; ncells];
                    for &w in self.neighbors(s, i) {
                        c2[cell_of[w as usize] as usize] += 1;
                    }
                    c2 == counts
                }),
                "π_g not equitable w.r.t. g — Theorem 6.1 violated"
            );
        }
        if !any_removal {
            return None;
        }
        // An edge (v, w) is dead iff its cell pair is fully joined. Note
        // full[ci][cj] must equal full[cj][ci] (both count the same
        // biclique), so probing one side suffices.
        let mut div = Division::new();
        let nparts = self.components_into(
            s,
            |_| false,
            |v, w| {
                let (cv, cw) = (cell_of[v as usize] as usize, cell_of[w as usize] as usize);
                !full[cv * ncells + cw]
            },
            &mut div,
        );
        if nparts > 1 {
            obs::bump(Counter::DivideSApplied);
            let mut deleted: u64 = 0;
            // dvicl-lint: allow(narrowing-cast) -- n = s.n() <= V::MAX by Graph's construction invariant
            for i in 0..s.n() as u32 {
                for &j in self.neighbors(s, i) {
                    if i < j {
                        let (ci, cj) = (cell_of[i as usize] as usize, cell_of[j as usize] as usize);
                        if full[ci * ncells + cj] {
                            deleted += 1;
                        }
                    }
                }
            }
            obs::add(Counter::DivideSEdgesDeleted, deleted);
            Some(div)
        } else {
            None
        }
    }

    /// Copies segment `s` out of the pools into an owned [`SubSeed`] —
    /// the hand-off primitive of the parallel build (DESIGN.md §14): a
    /// parent exports the child subgraph it wants built elsewhere, the
    /// seed moves to a worker (it owns its buffers, so it is `Send` —
    /// see the `dvicl-send-safety-v1` report), and the worker adopts it
    /// into its *own* arena as a root segment. The offsets are rebased
    /// to start at zero, so the seed is self-contained.
    pub fn export(&self, s: &Sub) -> SubSeed {
        let base = self.offs[s.offs_start];
        SubSeed {
            verts: self.verts[s.verts_start..s.verts_start + s.n].to_vec(),
            offs: self.offs[s.offs_start..s.offs_start + s.n + 1]
                .iter()
                .map(|&o| o - base)
                .collect(),
            adj: self.adj[s.adj_start..s.adj_start + 2 * s.m].to_vec(),
        }
    }

    /// Pushes an exported [`SubSeed`] as a new top segment of *this*
    /// arena (the receiving side of [`SubArena::export`]). Ceiling-
    /// checked like [`SubArena::try_induced_child`]: on an over-ceiling
    /// adopt the segment is rolled back and the pools are exactly as
    /// before.
    pub fn try_adopt(&mut self, seed: &SubSeed) -> Result<Sub, dvicl_govern::DviclError> {
        // dvicl-lint: allow(arena-discipline) -- on success the adopted segment survives by design: the mark exists only to roll back the over-ceiling path, and the caller releases the segment with its own mark
        let mark = self.mark();
        let sub = Sub {
            verts_start: self.verts.len(),
            offs_start: self.offs.len(),
            adj_start: self.adj.len(),
            n: seed.verts.len(),
            m: seed.adj.len() / 2,
        };
        self.verts.extend_from_slice(&seed.verts);
        self.offs.extend_from_slice(&seed.offs);
        self.adj.extend_from_slice(&seed.adj);
        self.note_high_water();
        if let Some(ceil) = self.ceiling_bytes {
            let bytes = self.bytes_now();
            if bytes > ceil {
                self.release(mark);
                return Err(dvicl_govern::DviclError::BudgetExceeded {
                    resource: dvicl_govern::Resource::Memory,
                    spent: bytes as u64,
                });
            }
        }
        Ok(sub)
    }

    /// Builds a standalone [`Graph`] over the local indices, plus the
    /// local projection of the coloring — the inputs `CombineCL` feeds to
    /// the IR labeler. The segment already *is* clean CSR, so this is a
    /// straight copy through [`Graph::from_csr`] — no edge-list rebuild.
    pub fn to_local_graph(&self, s: &Sub, pi: &Coloring) -> (Graph, Coloring) {
        let base = self.offs[s.offs_start] as usize;
        let offsets: Vec<usize> = self.offs[s.offs_start..s.offs_start + s.n + 1]
            .iter()
            .map(|&o| o as usize - base)
            .collect();
        let adj: Vec<V> = self.adj[s.adj_start..s.adj_start + 2 * s.m].to_vec();
        let g = Graph::from_csr(offsets, adj);
        let pi_local = pi.project(self.verts(s));
        (g, pi_local)
    }
}

/// An owned, self-contained copy of one arena segment: the courier that
/// carries a child subgraph from the exporting arena (the spawning
/// worker's) to the adopting arena (the executing worker's) in the
/// parallel build. Owns plain `Vec`s — no borrows, no interior
/// mutability — so moving it across threads is trivially sound.
#[derive(Clone, Debug, Default)]
pub struct SubSeed {
    /// Global vertex ids, ascending (as in [`SubArena::verts`]).
    verts: Vec<V>,
    /// CSR offsets rebased to start at zero (`n + 1` entries).
    offs: Vec<u32>,
    /// Adjacency rows of local indices (`2m` entries).
    adj: Vec<u32>,
}

impl SubSeed {
    /// Number of vertices in the seeded subgraph.
    pub fn n(&self) -> usize {
        self.verts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvicl_graph::named;

    #[test]
    fn stack_discipline_release_reuses_capacity() {
        let g = named::fig1_example();
        let mut a = SubArena::new();
        let root = a.whole(&g);
        let mark = a.mark();
        let c1 = a.induced_child(&root, &[0, 1, 2, 3]);
        assert_eq!(a.verts(&c1), &[0, 1, 2, 3]);
        assert_eq!(c1.m(), 4);
        let cap_before = a.adj.capacity();
        a.release(mark);
        assert_eq!(a.reuses(), 1);
        // The parent segment survives the release untouched...
        assert_eq!(a.verts(&root).len(), 8);
        assert_eq!(a.neighbors(&root, 7).len(), 7);
        // ...and the next child reuses the freed space.
        let c2 = a.induced_child(&root, &[4, 5, 6]);
        assert_eq!(a.verts(&c2), &[4, 5, 6]);
        assert_eq!(c2.m(), 3);
        assert_eq!(a.adj.capacity(), cap_before);
    }

    #[test]
    fn ceiling_rolls_back_and_marks_compare() {
        let g = named::petersen();
        let mut a = SubArena::new();
        let root = a.whole(&g);
        let mark = a.mark();
        assert_eq!(mark, a.mark(), "marks of the same state are equal");
        // A ceiling just under the current footprint: any carve must fail
        // and leave the pools exactly where they were.
        a.set_ceiling_bytes(Some(a.bytes_now()));
        let err = a.try_induced_child(&root, &[0, 1, 2, 3, 4]).unwrap_err();
        assert!(matches!(
            err,
            dvicl_govern::DviclError::BudgetExceeded {
                resource: dvicl_govern::Resource::Memory,
                ..
            }
        ));
        assert_eq!(a.mark(), mark, "failed carve must roll back fully");
        // With the ceiling lifted the same carve succeeds.
        a.set_ceiling_bytes(None);
        let c = a.try_induced_child(&root, &[0, 1, 2, 3, 4]).unwrap();
        assert_eq!(a.verts(&c), &[0, 1, 2, 3, 4]);
        assert_ne!(a.mark(), mark);
    }

    #[test]
    fn nested_children_match_direct_carve() {
        // Carving {4,5} out of the triangle {4,5,6} must equal carving
        // {4,5} straight out of the root.
        let g = named::fig1_example();
        let mut a = SubArena::new();
        let root = a.whole(&g);
        let tri = a.induced_child(&root, &[4, 5, 6]);
        let pair_nested = a.induced_child(&tri, &[0, 1]); // locals of {4,5} in tri
        assert_eq!(a.verts(&pair_nested), &[4, 5]);
        assert_eq!(pair_nested.m(), 1);
        let mut b = SubArena::new();
        let root_b = b.whole(&g);
        let pair_direct = b.induced_child(&root_b, &[4, 5]);
        assert_eq!(a.verts(&pair_nested), b.verts(&pair_direct));
        assert_eq!(pair_nested.m(), pair_direct.m());
    }

    #[test]
    fn bytes_peak_tracks_high_water() {
        let g = named::petersen();
        let mut a = SubArena::new();
        let root = a.whole(&g);
        let after_root = a.bytes_peak();
        assert!(after_root > 0);
        let mark = a.mark();
        let _c = a.induced_child(&root, &[0, 1, 2, 3, 4]);
        let after_child = a.bytes_peak();
        assert!(after_child > after_root);
        a.release(mark);
        // Peak is a high-water mark: release does not lower it.
        assert_eq!(a.bytes_peak(), after_child);
    }

    #[test]
    fn export_adopt_round_trips_a_segment() {
        let g = named::fig1_example();
        let mut a = SubArena::new();
        let root = a.whole(&g);
        let child = a.induced_child(&root, &[4, 5, 6]);
        let seed = a.export(&child);
        assert_eq!(seed.n(), 3);
        // Adopt into a fresh arena (the worker side) and compare the
        // segment contents against the original.
        let mut b = SubArena::new();
        let adopted = b.try_adopt(&seed).unwrap();
        assert_eq!(b.verts(&adopted), a.verts(&child));
        assert_eq!(adopted.m(), child.m());
        // dvicl-lint: allow(narrowing-cast) -- child has at most n <= V::MAX vertices
        for i in 0..adopted.n() as u32 {
            assert_eq!(b.neighbors(&adopted, i), a.neighbors(&child, i));
        }
        // The local graphs (what CombineCL consumes) must agree too.
        let pi = Coloring::unit(g.n());
        let (ga, pa) = a.to_local_graph(&child, &pi);
        let (gb, pb) = b.to_local_graph(&adopted, &pi);
        assert_eq!(ga.csr(), gb.csr());
        assert_eq!(pa, pb);
    }

    #[test]
    fn adopt_respects_the_ceiling() {
        let g = named::petersen();
        let mut a = SubArena::new();
        let root = a.whole(&g);
        let seed = a.export(&root);
        let mut b = SubArena::new();
        b.set_ceiling_bytes(Some(8));
        let mark = b.mark();
        let err = b.try_adopt(&seed).unwrap_err();
        assert!(matches!(
            err,
            dvicl_govern::DviclError::BudgetExceeded {
                resource: dvicl_govern::Resource::Memory,
                ..
            }
        ));
        assert_eq!(b.mark(), mark, "failed adopt must roll back fully");
        b.set_ceiling_bytes(None);
        let s = b.try_adopt(&seed).unwrap();
        assert_eq!(s.n(), g.n());
    }

    #[test]
    fn rows_stay_sorted_through_nested_carves() {
        let g = named::hypercube(3);
        let mut a = SubArena::new();
        let root = a.whole(&g);
        let child = a.induced_child(&root, &[0, 2, 3, 5, 6, 7]);
        // dvicl-lint: allow(narrowing-cast) -- child has at most n <= V::MAX vertices
        for i in 0..child.n() as u32 {
            let row = a.neighbors(&child, i);
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row {i} not sorted");
        }
    }
}
