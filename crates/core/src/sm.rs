//! A VF2-style induced subgraph isomorphism enumerator — the `SM`
//! subroutine of Algorithm 6 and the baseline the paper compares SSM-AT
//! against (Section 6.4 lists its drawbacks: unbounded time, candidate
//! over-generation, non-trivial symmetry verification).

use crate::ssm::{try_symmetric_key, SsmIndex};
use crate::tree::AutoTree;
use dvicl_govern::{Budget, DviclError};
use dvicl_graph::{Graph, V};
use rustc_hash::FxHashSet;

/// All induced subgraph isomorphisms from `q` into `g`, as image vertex
/// *sets* (deduplicated — two matchings onto the same vertex set count
/// once, matching SSM semantics), up to `limit` results.
pub fn enumerate_induced(g: &Graph, q: &Graph, limit: usize) -> Vec<Vec<V>> {
    try_enumerate_induced(g, q, limit, &Budget::unlimited())
        // dvicl-lint: allow(panic-freedom) -- Budget::unlimited() never exhausts, so the Err arm is unreachable
        .expect("unlimited SM enumeration cannot exceed its budget")
}

/// Budgeted [`enumerate_induced`]: spends one work unit per VF2 search
/// node and aborts with a typed error on exhaustion or cancellation. VF2
/// is the paper's worst-case-unbounded baseline, which is exactly where a
/// deadline matters most.
pub fn try_enumerate_induced(
    g: &Graph,
    q: &Graph,
    limit: usize,
    budget: &Budget,
) -> Result<Vec<Vec<V>>, DviclError> {
    budget.check()?;
    let mut out: FxHashSet<Vec<V>> = FxHashSet::default();
    if q.n() == 0 || q.n() > g.n() {
        return Ok(Vec::new());
    }
    // Match query vertices in descending-degree order (classic VF2-ish
    // candidate reduction).
    let mut order: Vec<V> = (0..q.n() as V).collect();
    order.sort_unstable_by_key(|&v| std::cmp::Reverse(q.degree(v)));
    // Prefer orders that keep the matched part connected.
    let order = connectivity_order(q, &order);
    let mut image = vec![V::MAX; q.n()];
    let mut used = vec![false; g.n()];
    sm_rec(g, q, &order, 0, &mut image, &mut used, &mut out, limit, budget)?;
    let mut v: Vec<Vec<V>> = out.into_iter().collect();
    v.sort();
    Ok(v)
}

/// Reorders so each vertex (after the first) is adjacent to an earlier one
/// when possible.
fn connectivity_order(q: &Graph, pref: &[V]) -> Vec<V> {
    let mut order = Vec::with_capacity(pref.len());
    let mut placed = vec![false; q.n()];
    for &seed in pref {
        if placed[seed as usize] {
            continue;
        }
        order.push(seed);
        placed[seed as usize] = true;
        loop {
            // Highest-preference unplaced vertex adjacent to placed ones.
            let next = pref.iter().copied().find(|&v| {
                !placed[v as usize] && q.neighbors(v).iter().any(|&w| placed[w as usize])
            });
            match next {
                Some(v) => {
                    order.push(v);
                    placed[v as usize] = true;
                }
                None => break,
            }
        }
    }
    order
}

#[allow(clippy::too_many_arguments)]
fn sm_rec(
    g: &Graph,
    q: &Graph,
    order: &[V],
    k: usize,
    image: &mut Vec<V>,
    used: &mut Vec<bool>,
    out: &mut FxHashSet<Vec<V>>,
    limit: usize,
    budget: &Budget,
) -> Result<(), DviclError> {
    budget.spend(1)?;
    if out.len() >= limit {
        return Ok(());
    }
    if k == order.len() {
        let mut set: Vec<V> = image.to_vec();
        set.sort_unstable();
        out.insert(set);
        return Ok(());
    }
    let qv = order[k];
    // Candidates: neighbors of an already-matched neighbor when one
    // exists, otherwise all vertices. Iterated straight off the CSR row
    // (or the index range) — no per-search-node candidate `Vec`.
    let anchor = q.neighbors(qv).iter().find_map(|&w| {
        let img = image[w as usize];
        (img != V::MAX).then_some(img)
    });
    match anchor {
        Some(a) => {
            for &w in g.neighbors(a) {
                sm_try(g, q, order, k, w, image, used, out, limit, budget)?;
            }
        }
        None => {
            // dvicl-lint: allow(narrowing-cast) -- g.n() <= V::MAX by Graph's construction invariant
            for w in 0..g.n() as V {
                sm_try(g, q, order, k, w, image, used, out, limit, budget)?;
            }
        }
    }
    Ok(())
}

/// Tries `w` as the image of `order[k]` and recurses on consistency.
#[allow(clippy::too_many_arguments)]
fn sm_try(
    g: &Graph,
    q: &Graph,
    order: &[V],
    k: usize,
    w: V,
    image: &mut Vec<V>,
    used: &mut Vec<bool>,
    out: &mut FxHashSet<Vec<V>>,
    limit: usize,
    budget: &Budget,
) -> Result<(), DviclError> {
    let qv = order[k];
    if used[w as usize] || g.degree(w) < q.degree(qv) {
        return Ok(());
    }
    // Induced consistency with every matched query vertex.
    let ok = order[..k].iter().all(|&u| {
        let gu = image[u as usize];
        q.has_edge(u, qv) == g.has_edge(gu, w)
    });
    if !ok {
        return Ok(());
    }
    image[qv as usize] = w;
    used[w as usize] = true;
    sm_rec(g, q, order, k + 1, image, used, out, limit, budget)?;
    used[w as usize] = false;
    image[qv as usize] = V::MAX;
    Ok(())
}

/// The SSM baseline of Section 6.4: enumerate induced matches of
/// `G[query]` with `SM`, then keep only the truly *symmetric* ones by
/// comparing AutoTree keys. Returns the verified matches.
pub fn ssm_via_sm(
    g: &Graph,
    tree: &AutoTree,
    index: &SsmIndex,
    query: &[V],
    limit: usize,
) -> Vec<Vec<V>> {
    try_ssm_via_sm(g, tree, index, query, limit, &Budget::unlimited())
        // dvicl-lint: allow(panic-freedom) -- with an unlimited budget only an invalid query set can reach the Err arm of this convenience wrapper
        .unwrap_or_else(|e| panic!("SSM-via-SM query failed: {e}"))
}

/// Budgeted [`ssm_via_sm`]: one budget governs both the VF2 enumeration
/// and the per-match symmetry verification.
pub fn try_ssm_via_sm(
    g: &Graph,
    tree: &AutoTree,
    index: &SsmIndex,
    query: &[V],
    limit: usize,
    budget: &Budget,
) -> Result<Vec<Vec<V>>, DviclError> {
    let mut q_sorted: Vec<V> = query.to_vec();
    q_sorted.sort_unstable();
    let q_graph = g.induced(&q_sorted);
    let key = try_symmetric_key(tree, index, &q_sorted, budget)?;
    let mut out = Vec::new();
    for m in try_enumerate_induced(g, &q_graph, limit, budget)? {
        if try_symmetric_key(tree, index, &m, budget)? == key {
            out.push(m);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_autotree, DviclOptions};
    use dvicl_graph::{named, Coloring};

    #[test]
    fn triangle_matches_in_k4() {
        let g = named::complete(4);
        let q = named::complete(3);
        let m = enumerate_induced(&g, &q, 1000);
        assert_eq!(m.len(), 4); // C(4,3) triangles
    }

    #[test]
    fn path_matches_in_cycle() {
        let g = named::cycle(5);
        let q = named::path(3);
        // Induced P3s in C5: one per center vertex = 5.
        let m = enumerate_induced(&g, &q, 1000);
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn no_induced_triangle_in_bipartite() {
        let g = named::complete_bipartite(3, 3);
        assert!(enumerate_induced(&g, &named::complete(3), 10).is_empty());
    }

    #[test]
    fn limit_respected() {
        let g = named::complete(8);
        let m = enumerate_induced(&g, &named::complete(3), 5);
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn disconnected_query() {
        // Two isolated vertices as query in P3: induced non-adjacent pairs.
        let g = named::path(3); // 0-1-2: non-adjacent pairs: {0,2}
        let q = dvicl_graph::Graph::empty(2);
        let m = enumerate_induced(&g, &q, 100);
        assert_eq!(m, vec![vec![0, 2]]);
    }

    #[test]
    fn sm_baseline_agrees_with_ssm_at() {
        let g = named::fig1_example();
        let t = build_autotree(&g, &Coloring::unit(8), &DviclOptions::default());
        let i = SsmIndex::new(&t);
        // Query: an edge of the 4-cycle. Isomorphic matches include
        // triangle edges, but only cycle edges are symmetric.
        let via_sm = ssm_via_sm(&g, &t, &i, &[0, 1], 10_000);
        let via_at = crate::ssm::enumerate_images(&t, &i, &[0, 1], 10_000);
        let mut a = via_sm;
        let mut b = via_at.matches;
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        // SM alone over-generates (triangle edges and hub edges are
        // isomorphic to an edge, but not symmetric to a cycle edge).
        let raw = enumerate_induced(&g, &g.induced(&[0, 1]), 10_000);
        assert!(raw.len() > a.len());
    }

    #[test]
    fn work_budget_aborts_vf2() {
        use dvicl_govern::Resource;
        let g = named::complete(8);
        let q = named::complete(3);
        let err = try_enumerate_induced(&g, &q, 10_000, &Budget::with_max_work(3)).unwrap_err();
        assert!(matches!(
            err,
            DviclError::BudgetExceeded {
                resource: Resource::WorkUnits,
                ..
            }
        ));
        // The same search under an ample budget still succeeds.
        let ok = try_enumerate_induced(&g, &q, 10_000, &Budget::with_max_work(1_000_000));
        assert_eq!(ok.unwrap().len(), 56);
    }
}
