//! Reusable build sessions: one [`Session`] serves many graphs.
//!
//! The one-shot entry points ([`crate::build_autotree`] and friends)
//! allocate a fresh subgraph arena and a fresh `CombineCL` memo per
//! call — fine for a single graph, wasteful for a corpus. A `Session`
//! owns that working state (`build::Scratch`) across builds:
//!
//! * **arena pools** — `SubArena::reset` empties the segments but keeps
//!   every buffer's capacity, so the second and every later build runs
//!   allocation-free through the divide recursion (counted by the
//!   `session_arena_reuses` counter);
//! * **`CombineCL` memo** — leaf labelings are keyed injectively by
//!   exactly the input the IR engine sees, so symmetric leaves recur
//!   *across* graphs (chemical datasets are full of repeated fragments)
//!   and hit the memo just like symmetric siblings within one graph;
//! * **options** — the session pins one [`DviclOptions`]; the memo is
//!   implicitly keyed to `leaf_config`, so [`Session::set_options`]
//!   clears it when the engine configuration changes.
//!
//! What a session does *not* own: the obs sink and counters are
//! process-global (install one with `obs::install`; a serving loop
//! diffs `obs::snapshot()` around each request), and resource limits
//! arrive as a per-request [`Budget`] — admission control belongs to
//! the caller, one allowance per query, so one hostile request trips
//! its own typed error instead of starving the whole service.
//!
//! # Threads
//!
//! A session whose options set [`DviclOptions::threads`] `> 1` builds
//! sibling subtrees concurrently on a per-build work-stealing pool
//! (`dvicl-pool`; concurrency model in DESIGN.md §14). The worker
//! scratches — one arena and one `CombineCL` memo shard per worker —
//! live *inside* the session's scratch, so they amortize across builds
//! exactly like the leader's: [`Session::memo_len`] sums every shard,
//! and [`Session::clear_memo`] clears them all. The certificates are
//! byte-identical at every thread count, so a serving loop can change
//! `threads` between requests without invalidating anything.

use crate::build::{
    self, build_autotree_resilient_in, build_autotree_whole_leaf_in, try_build_autotree_in,
    BuildOutcome, DviclOptions,
};
use crate::tree::AutoTree;
use dvicl_govern::{Budget, DviclError};
use dvicl_graph::{CanonForm, Coloring, Fingerprint, Graph};
use dvicl_obs::{self as obs, Counter};

/// A reusable build context: [`DviclOptions`] plus the arena pools and
/// `CombineCL` memo shared by every build it serves. See the module
/// docs for what is reused and why that is sound.
///
/// ```
/// use dvicl_core::{DviclOptions, Session};
/// use dvicl_graph::named;
/// let mut session = Session::new(DviclOptions::default());
/// let a = session.canonical_form(&named::petersen());
/// let b = session.canonical_form(&named::petersen());
/// assert_eq!(a, b);
/// assert_eq!(session.builds(), 2);
/// ```
///
/// A parallel session build — four workers, same bytes:
///
/// ```
/// use dvicl_core::{DviclOptions, Session};
/// use dvicl_graph::named;
/// // Two disjoint 40-cycles: sibling subtrees big enough to spawn.
/// let g = named::cycle(40).disjoint_union(&named::cycle(40));
/// let mut sequential = Session::new(DviclOptions::default());
/// let mut parallel = Session::new(DviclOptions {
///     threads: 4,
///     ..DviclOptions::default()
/// });
/// // Certificates are byte-identical at every thread count.
/// assert_eq!(
///     parallel.canonical_form(&g),
///     sequential.canonical_form(&g),
/// );
/// ```
pub struct Session {
    opts: DviclOptions,
    scratch: build::Scratch,
    builds: u64,
}

impl Session {
    /// A fresh session pinned to `opts`.
    pub fn new(opts: DviclOptions) -> Session {
        Session {
            opts,
            scratch: build::Scratch::new(),
            builds: 0,
        }
    }

    /// The options every build of this session runs under.
    pub fn options(&self) -> &DviclOptions {
        &self.opts
    }

    /// Repins the session to `opts`. The `CombineCL` memo is keyed to
    /// the leaf engine configuration, so it is dropped when
    /// `leaf_config` differs from the current one; arena capacity is
    /// always kept.
    pub fn set_options(&mut self, opts: DviclOptions) {
        if opts.leaf_config != self.opts.leaf_config {
            self.scratch.clear_memo();
        }
        self.opts = opts;
    }

    /// How many builds this session has served (degraded fallbacks
    /// count as part of the build that triggered them, not separately).
    pub fn builds(&self) -> u64 {
        self.builds
    }

    /// Number of memoized `CombineCL` leaf labelings currently held.
    pub fn memo_len(&self) -> usize {
        self.scratch.memo_len()
    }

    /// Drops every memoized leaf labeling (the memo is sound across
    /// builds, so this is for memory pressure, not correctness).
    pub fn clear_memo(&mut self) {
        self.scratch.clear_memo();
    }

    /// Bookkeeping around every build: from the second build on, the
    /// arena pools (and possibly the memo) are being reused.
    fn note_build(&mut self) {
        if self.builds > 0 {
            obs::bump(Counter::SessionArenaReuses);
        }
        self.builds += 1;
    }

    /// [`crate::try_build_autotree`] with this session's state. The
    /// produced tree is byte-identical to the one-shot entry point's:
    /// reuse changes where the working memory comes from, never the
    /// certificate.
    pub fn try_build(
        &mut self,
        g: &Graph,
        pi0: &Coloring,
        budget: &Budget,
    ) -> Result<AutoTree, DviclError> {
        self.note_build();
        try_build_autotree_in(&mut self.scratch, g, pi0, &self.opts, budget)
    }

    /// [`Session::try_build`] under an unlimited budget.
    pub fn build(&mut self, g: &Graph, pi0: &Coloring) -> AutoTree {
        self.try_build(g, pi0, &Budget::unlimited())
            // dvicl-lint: allow(panic-freedom) -- Budget::unlimited() never exhausts, so the Err arm is unreachable
            .expect("an unlimited build cannot exceed its budget")
    }

    /// [`crate::build_autotree_resilient`] with this session's state:
    /// work-cap exhaustion degrades to a whole-graph leaf instead of
    /// failing.
    pub fn build_resilient(
        &mut self,
        g: &Graph,
        pi0: &Coloring,
        budget: &Budget,
    ) -> Result<BuildOutcome, DviclError> {
        self.note_build();
        build_autotree_resilient_in(&mut self.scratch, g, pi0, &self.opts, budget)
    }

    /// [`crate::build_autotree_whole_leaf`] with this session's state:
    /// the degraded-mode single-leaf build, for callers that must match
    /// an already-degraded certificate.
    pub fn build_whole_leaf(
        &mut self,
        g: &Graph,
        pi0: &Coloring,
        budget: &Budget,
    ) -> Result<AutoTree, DviclError> {
        self.note_build();
        build_autotree_whole_leaf_in(&mut self.scratch, g, pi0, &self.opts, budget)
    }

    /// Canonically labels `g` under the unit coloring and returns the
    /// owned certificate. The budgeted equivalent of
    /// [`crate::canonical_form`], served from session state.
    pub fn try_canonical_form(
        &mut self,
        g: &Graph,
        budget: &Budget,
    ) -> Result<CanonForm, DviclError> {
        let tree = self.try_build(g, &Coloring::unit(g.n()), budget)?;
        Ok(tree.canonical_form().to_form())
    }

    /// [`Session::try_canonical_form`] under an unlimited budget.
    pub fn canonical_form(&mut self, g: &Graph) -> CanonForm {
        self.try_canonical_form(g, &Budget::unlimited())
            // dvicl-lint: allow(panic-freedom) -- Budget::unlimited() never exhausts, so the Err arm is unreachable
            .expect("an unlimited build cannot exceed its budget")
    }

    /// One canonicalization, one fingerprint: the probe key for
    /// `dvicl-index` lookups, plus the form itself for the exact
    /// collision check.
    pub fn try_fingerprinted_form(
        &mut self,
        g: &Graph,
        budget: &Budget,
    ) -> Result<(Fingerprint, CanonForm), DviclError> {
        let form = self.try_canonical_form(g, budget)?;
        Ok((Fingerprint::of_form(&form), form))
    }

    /// [`Session::try_fingerprinted_form`] under an unlimited budget.
    pub fn fingerprinted_form(&mut self, g: &Graph) -> (Fingerprint, CanonForm) {
        self.try_fingerprinted_form(g, &Budget::unlimited())
            // dvicl-lint: allow(panic-freedom) -- Budget::unlimited() never exhausts, so the Err arm is unreachable
            .expect("an unlimited build cannot exceed its budget")
    }
}

impl Default for Session {
    fn default() -> Session {
        Session::new(DviclOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvicl_canon::Config;
    use dvicl_govern::Resource;
    use dvicl_graph::named;
    use std::sync::Mutex;

    /// Counters are process-global and `cargo test` runs tests in
    /// parallel: every test in this module builds through a `Session`
    /// (bumping `session_arena_reuses`), so the tests serialize on one
    /// lock to keep snapshot-diff assertions exact.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn session_forms_match_one_shot_forms() {
        let _serial = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut s = Session::new(DviclOptions::default());
        for g in [
            named::fig1_example(),
            named::petersen(),
            named::rary_tree(2, 3),
            named::complete_bipartite(3, 4),
            named::frucht(),
            named::cycle(9),
        ] {
            assert_eq!(s.canonical_form(&g), crate::canonical_form(&g));
        }
        assert_eq!(s.builds(), 6);
    }

    #[test]
    fn session_trees_match_one_shot_trees() {
        let _serial = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Not just the root form: generators and tree shape too.
        let mut s = Session::default();
        for g in [named::fig1_example(), named::hypercube(3)] {
            let pi = Coloring::unit(g.n());
            let st = s.build(&g, &pi);
            let ot = crate::build_autotree(&g, &pi, &DviclOptions::default());
            assert_eq!(st.canonical_form(), ot.canonical_form());
            assert_eq!(st.stats(), ot.stats());
            assert_eq!(
                crate::aut::group_order(&st).to_u64(),
                crate::aut::group_order(&ot).to_u64()
            );
        }
    }

    #[test]
    fn arena_reuse_is_counted() {
        let _serial = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut s = Session::default();
        let before = obs::snapshot();
        s.canonical_form(&named::petersen());
        s.canonical_form(&named::frucht());
        s.canonical_form(&named::cycle(12));
        let d = obs::snapshot().diff(&before);
        assert_eq!(s.builds(), 3);
        assert_eq!(d.get(Counter::SessionArenaReuses), 2);
    }

    #[test]
    fn memo_survives_builds_but_not_config_changes() {
        let _serial = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut s = Session::default();
        // K4 plus a pendant path divides into leaves that hit the memo.
        let g = named::fig1_example();
        s.canonical_form(&g);
        let after_first = s.memo_len();
        s.canonical_form(&g);
        assert_eq!(
            s.memo_len(),
            after_first,
            "identical rebuild must be served from the memo"
        );
        // Same leaf_config → memo kept.
        s.set_options(DviclOptions {
            use_divide_s: false,
            ..DviclOptions::default()
        });
        assert_eq!(s.memo_len(), after_first);
        // Different leaf_config → memo dropped.
        s.set_options(DviclOptions {
            leaf_config: Config::traces_like(),
            ..DviclOptions::default()
        });
        assert_eq!(s.memo_len(), 0);
    }

    #[test]
    fn per_request_budget_failure_leaves_session_usable() {
        let _serial = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut s = Session::default();
        let g = named::fig1_example();
        let r = s.try_build(&g, &Coloring::unit(g.n()), &Budget::with_max_work(3));
        assert!(matches!(
            r,
            Err(DviclError::BudgetExceeded {
                resource: Resource::WorkUnits,
                ..
            })
        ));
        // The failed request must not poison later ones.
        assert_eq!(s.canonical_form(&g), crate::canonical_form(&g));
    }

    #[test]
    fn resilient_and_whole_leaf_match_one_shot() {
        let _serial = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut s = Session::default();
        let g = named::fig1_example();
        let pi = Coloring::unit(g.n());
        let out = s
            .build_resilient(&g, &pi, &Budget::with_max_work(3))
            .expect("degradation absorbs work exhaustion");
        assert!(out.degraded);
        let direct = crate::build_autotree_whole_leaf(
            &g,
            &pi,
            &DviclOptions::default(),
            &Budget::unlimited(),
        )
        .expect("unlimited");
        assert_eq!(out.tree.canonical_form(), direct.canonical_form());
    }

    #[test]
    fn fingerprinted_form_is_consistent() {
        let _serial = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut s = Session::default();
        let (fp, form) = s
            .try_fingerprinted_form(&named::petersen(), &Budget::unlimited())
            .expect("unlimited");
        assert_eq!(fp, Fingerprint::of_form(&form));
        let (fp2, _) = s
            .try_fingerprinted_form(&named::petersen(), &Budget::unlimited())
            .expect("unlimited");
        assert_eq!(fp, fp2);
    }
}
